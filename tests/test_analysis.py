"""Tests for the cost-analysis utilities (breakdowns and crossovers)."""

import pytest

from repro.bsp import BSPMachine, MachineParams
from repro.eig import eigensolve_2p5d
from repro.model.analysis import (
    crossover_p,
    dominant_component,
    speedup_curve,
    time_breakdown,
)
from repro.model.costs import eigensolver_2p5d_cost
from repro.util.matrices import random_symmetric


class TestBreakdown:
    def test_shares_sum_to_one(self):
        cost = eigensolver_2p5d_cost(4096, 256, 0.5)
        bd = time_breakdown(cost, MachineParams())
        shares = sum(bd[k] for k in
                     ("compute_share", "horizontal_share", "vertical_share", "synchronization_share"))
        assert shares == pytest.approx(1.0)
        assert bd["total"] == pytest.approx(
            bd["compute"] + bd["horizontal"] + bd["vertical"] + bd["synchronization"]
        )

    def test_works_on_measured_costs(self):
        m = BSPMachine(4)
        eigensolve_2p5d(m, random_symmetric(32, 0))
        bd = time_breakdown(m.cost(), m.params)
        assert bd["total"] > 0

    def test_dominant_component_tracks_params(self):
        cost = eigensolver_2p5d_cost(4096, 256, 0.5)
        assert dominant_component(cost, MachineParams(gamma=1e9, beta=0, nu=0, alpha=0)) == "compute"
        assert dominant_component(cost, MachineParams(gamma=0, beta=1e9, nu=0, alpha=0)) == "horizontal"
        assert dominant_component(cost, MachineParams(gamma=0, beta=0, nu=0, alpha=1e9)) == "synchronization"


class TestCrossover:
    def test_bandwidth_bound_crosses_early(self):
        params = MachineParams(gamma=0.01, beta=1000.0, nu=1.0, alpha=1.0)
        p = crossover_p(1 << 16, params, baseline="scalapack")
        assert p is not None
        assert p <= 1 << 16

    def test_latency_bound_crosses_immediately_vs_scalapack(self):
        # Table I's S column: ScaLAPACK synchronizes per column (n log p),
        # the 2.5D solver only p^delta log^2 p times — on a pure-latency
        # machine the crossover is immediate whenever n >> p^delta.
        params = MachineParams(gamma=0.0, beta=0.0, nu=0.0, alpha=1.0)
        assert crossover_p(1 << 14, params, baseline="scalapack") == 2

    def test_unknown_baseline(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            crossover_p(1024, MachineParams(), baseline="mkl")

    def test_speedup_curve_grows_on_bandwidth_machine(self):
        params = MachineParams(gamma=0.01, beta=1000.0, nu=1.0, alpha=1.0)
        curve = speedup_curve(1 << 16, params)
        ratios = [r for _, r in curve]
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 1.0

    def test_speedup_curve_elpa(self):
        curve = speedup_curve(1 << 15, MachineParams(), baseline="elpa", p_values=(256, 4096))
        assert len(curve) == 2
