"""Unit and property tests for integer-math helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.intlog import (
    ceil_div,
    chunk_offsets,
    ilog2,
    is_power_of_two,
    next_multiple,
    next_power_of_two,
    split_evenly,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == -(-a // b)
        assert (ceil_div(a, b) - 1) * b < a or a == 0


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8

    def test_next_power_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(1, 2**40))
    def test_next_power_properties(self, x):
        np2 = next_power_of_two(x)
        assert is_power_of_two(np2)
        assert np2 >= x
        assert np2 // 2 < x

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(255) == 7
        assert ilog2(256) == 8

    def test_ilog2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestSplitEvenly:
    def test_divisible(self):
        assert split_evenly(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_first(self):
        assert split_evenly(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        assert split_evenly(2, 4) == [1, 1, 0, 0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_evenly(5, 0)
        with pytest.raises(ValueError):
            split_evenly(-1, 2)

    @given(st.integers(0, 10**6), st.integers(1, 997))
    def test_partition_properties(self, n, parts):
        sizes = split_evenly(n, parts)
        assert sum(sizes) == n
        assert len(sizes) == parts
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_offsets(self):
        assert chunk_offsets([3, 3, 2, 2]) == [0, 3, 6, 8]
        assert chunk_offsets([]) == []


class TestNextMultiple:
    def test_basic(self):
        assert next_multiple(10, 4) == 12
        assert next_multiple(12, 4) == 12
        assert next_multiple(0, 4) == 4

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            next_multiple(5, 0)
