"""Tests for CARMA rectangular matrix multiplication (Lemma III.2)."""

import math

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.model.costs import carma_cost


def run(p, m, n, k, seed=0, **kw):
    mach = BSPMachine(p)
    r = np.random.default_rng(seed)
    a = r.standard_normal((m, n))
    b = r.standard_normal((n, k))
    c = carma_matmul(mach, mach.world, a, b, **kw)
    return mach, a, b, c


class TestCorrectness:
    @pytest.mark.parametrize("p,m,n,k", [(1, 5, 7, 3), (4, 16, 16, 16), (8, 64, 8, 8),
                                         (8, 8, 64, 8), (8, 8, 8, 64), (16, 33, 17, 9)])
    def test_product_exact(self, p, m, n, k):
        mach, a, b, c = run(p, m, n, k)
        assert np.abs(c - a @ b).max() < 1e-10

    def test_shape_mismatch(self):
        mach = BSPMachine(2)
        with pytest.raises(ValueError):
            carma_matmul(mach, mach.world, np.zeros((2, 3)), np.zeros((4, 2)))

    def test_rejects_nonpositive_memory(self):
        mach = BSPMachine(2)
        with pytest.raises(ValueError):
            carma_matmul(mach, mach.world, np.zeros((2, 2)), np.zeros((2, 2)), memory_words=0)


class TestCostProfile:
    def test_work_is_balanced(self):
        mach, *_ = run(8, 64, 64, 64)
        rep = mach.cost()
        assert rep.total_flops >= 2 * 64**3
        assert rep.flop_imbalance < 1.5

    def test_1d_regime_cost(self):
        # Very tall times small: W should be ~ sizes/p, not (mnk/p)^{2/3}.
        p, m, n, k = 8, 1024, 8, 8
        mach, *_ = run(p, m, n, k)
        pred = carma_cost(m, n, k, p)
        assert mach.cost().W <= 6 * pred.W

    def test_3d_regime_cost(self):
        # Cube on many processors: the (mnk/p)^{2/3} term dominates.
        p, m, n, k = 64, 64, 64, 64
        mach, *_ = run(p, m, n, k)
        pred = carma_cost(m, n, k, p)
        assert mach.cost().W <= 8 * pred.W

    def test_supersteps_logarithmic(self):
        mach, *_ = run(64, 128, 128, 128)
        assert mach.cost().S <= 10 * math.log2(64)

    def test_no_redistribution_charge_option(self):
        m1, *_ = run(8, 32, 32, 32, charge_redistribution=True)
        m2, *_ = run(8, 32, 32, 32, charge_redistribution=False)
        assert m1.cost().W > m2.cost().W

    def test_memory_pressure_triggers_dfs(self):
        # A tight memory budget must raise W and S (the v-tradeoff) while
        # keeping the product exact.
        p, m, n, k = 8, 64, 64, 64
        mach_free, a, b, c_free = run(p, m, n, k)
        budget = (m * n + n * k + m * k) / p * 1.2
        mach_tight, _, _, c_tight = run(p, m, n, k, memory_words=budget)
        assert np.abs(c_tight - a @ b).max() < 1e-10
        assert mach_tight.cost().W > mach_free.cost().W
        assert mach_tight.cost().S >= mach_free.cost().S

    def test_single_rank_has_no_communication(self):
        mach, *_ = run(1, 32, 16, 8)
        assert mach.cost().W == 0.0
        assert mach.cost().flops >= 2 * 32 * 16 * 8
