"""Tests for matrix layouts and ownership maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bsp import BSPMachine, RankGroup
from repro.dist.grid import ProcGrid
from repro.dist.layout import (
    BlockCyclicLayout,
    BlockRowLayout,
    CyclicLayout,
    ReplicatedLayout,
    transfer_histogram,
)


@pytest.fixture
def grid4():
    return ProcGrid(BSPMachine(4), (2, 2))


class TestCyclic:
    def test_owner_pattern(self, grid4):
        lay = CyclicLayout(grid4, 4, 4)
        om = lay.owner_map()
        assert om[0, 0] == grid4.rank_at(0, 0)
        assert om[1, 0] == grid4.rank_at(1, 0)
        assert om[2, 2] == grid4.rank_at(0, 0)

    def test_perfect_balance_when_divisible(self, grid4):
        lay = CyclicLayout(grid4, 8, 8)
        wpr = lay.words_per_rank(4)
        assert set(wpr) == {16}

    def test_subview_preserves_ownership(self, grid4):
        lay = CyclicLayout(grid4, 8, 8)
        sub = lay.subview(2, 4, 4, 4)
        full = lay.owner_map()
        assert np.array_equal(sub.owner_map(), full[2:6, 4:8])

    def test_offset_multiple_of_grid_keeps_balance(self, grid4):
        # The Algorithm IV.1 invariant: trailing blocks at offsets divisible
        # by q stay perfectly balanced.
        lay = CyclicLayout(grid4, 8, 8).subview(2, 2, 6, 6)
        wpr = lay.words_per_rank(4)
        assert set(wpr) == {9}


class TestBlockCyclic:
    def test_block_granularity(self, grid4):
        lay = BlockCyclicLayout(grid4, 8, 8, mb=2, nb=2)
        om = lay.owner_map()
        assert om[0, 0] == om[1, 1]  # same 2x2 block
        assert om[0, 0] != om[2, 0]  # next block row

    def test_rejects_bad_blocks(self, grid4):
        with pytest.raises(ValueError):
            BlockCyclicLayout(grid4, 8, 8, mb=0, nb=2)

    def test_subview(self, grid4):
        lay = BlockCyclicLayout(grid4, 8, 8, mb=2, nb=2)
        sub = lay.subview(2, 2, 4, 4)
        assert np.array_equal(sub.owner_map(), lay.owner_map()[2:6, 2:6])


class TestBlockRow:
    def test_contiguous_rows(self):
        g = RankGroup((3, 5, 7))
        lay = BlockRowLayout(g, 9, 4)
        om = lay.owner_map()
        assert set(om[0]) == {3} and set(om[3]) == {5} and set(om[8]) == {7}

    def test_words_per_rank(self):
        lay = BlockRowLayout(RankGroup((0, 1)), 5, 3)
        wpr = lay.words_per_rank(2)
        assert wpr[0] == 9 and wpr[1] == 6  # rows 3+2

    def test_out_of_range_rejected(self):
        lay = BlockRowLayout(RankGroup((0, 1)), 4, 2)
        with pytest.raises(IndexError):
            lay.owner(np.array([4]), np.array([0]))


class TestReplicated:
    def test_copies_and_primary(self):
        m = BSPMachine(8)
        g3 = ProcGrid(m, (2, 2, 2))
        lays = [CyclicLayout(g3.layer(l), 4, 4) for l in range(2)]
        rep = ReplicatedLayout(lays[0], lays[1:])
        assert rep.n_copies == 2
        assert rep.ranks().size == 8
        assert np.array_equal(rep.owner_map(), lays[0].owner_map())

    def test_shape_mismatch_rejected(self):
        m = BSPMachine(8)
        g3 = ProcGrid(m, (2, 2, 2))
        a = CyclicLayout(g3.layer(0), 4, 4)
        b = CyclicLayout(g3.layer(1), 5, 4)
        with pytest.raises(ValueError):
            ReplicatedLayout(a, [b])


class TestTransferHistogram:
    def test_identity_relayout_is_free(self, grid4):
        lay = CyclicLayout(grid4, 6, 6)
        assert transfer_histogram(lay, lay, 4) == {}

    def test_conservation(self, grid4):
        src = CyclicLayout(grid4, 8, 8)
        dst = BlockCyclicLayout(grid4, 8, 8, mb=4, nb=4)
        hist = transfer_histogram(src, dst, 4)
        moved = sum(hist.values())
        # Elements that stay put are excluded; the rest balance out.
        src_out = {r: 0.0 for r in range(4)}
        dst_in = {r: 0.0 for r in range(4)}
        for (s, d), w in hist.items():
            assert s != d
            src_out[s] += w
            dst_in[d] += w
        assert moved <= 64
        assert sum(src_out.values()) == sum(dst_in.values())

    def test_shape_mismatch(self, grid4):
        with pytest.raises(ValueError):
            transfer_histogram(CyclicLayout(grid4, 4, 4), CyclicLayout(grid4, 5, 4), 4)

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_histogram_counts_exact(self, mm, nn):
        grid = ProcGrid(BSPMachine(4), (2, 2))
        src = CyclicLayout(grid, mm, nn)
        dst = BlockRowLayout(RankGroup((0, 1, 2, 3)), mm, nn)
        hist = transfer_histogram(src, dst, 4)
        om_s, om_d = src.owner_map(), dst.owner_map()
        assert sum(hist.values()) == int((om_s != om_d).sum())
