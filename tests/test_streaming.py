"""Tests for the streaming replicated multiplication (Algorithm III.1)."""

import numpy as np
import pytest

from repro.bsp import BSPMachine, MachineParams
from repro.blocks.streaming import streaming_matmul
from repro.dist.grid import ProcGrid
from repro.model.costs import streaming_mm_cost


def run(shape, m, n, k, seed=0, params=None, **kw):
    p = shape[0] * shape[1] * shape[2]
    mach = BSPMachine(p, params)
    grid = ProcGrid(mach, shape)
    r = np.random.default_rng(seed)
    a = r.standard_normal((m, n))
    b = r.standard_normal((n, k))
    c = streaming_matmul(mach, grid, a, b, **kw)
    return mach, a, b, c


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(1, 1, 1), (2, 2, 1), (2, 2, 2), (2, 2, 4)])
    def test_product_exact(self, shape):
        mach, a, b, c = run(shape, 32, 32, 8)
        assert np.abs(c - a @ b).max() < 1e-12

    def test_requires_3d_grid(self):
        mach = BSPMachine(4)
        with pytest.raises(ValueError):
            streaming_matmul(mach, ProcGrid(mach, (2, 2)), np.eye(4), np.eye(4))

    def test_requires_square_layers(self):
        mach = BSPMachine(8)
        with pytest.raises(ValueError):
            streaming_matmul(mach, ProcGrid(mach, (2, 4, 1)), np.eye(4), np.eye(4))

    def test_rejects_bad_w(self):
        mach = BSPMachine(4)
        g = ProcGrid(mach, (2, 2, 1))
        with pytest.raises(ValueError):
            streaming_matmul(mach, g, np.eye(4), np.eye(4), w=0)


class TestCostProfile:
    def test_w_scales_with_replication(self):
        """The Lemma III.3 headline: more layers, less horizontal traffic."""
        n, k = 128, 16
        m1, *_ = run((4, 4, 1), n, n, k, charge_b_redistribution=False)
        m2, *_ = run((2, 2, 4), n, n, k, charge_b_redistribution=False)
        # p identical (16); W must drop with c = 4 (p^δ: 4 -> 8).
        assert m2.cost().W < m1.cost().W

    def test_w_near_model(self):
        n, k = 128, 16
        mach, *_ = run((4, 4, 1), n, n, k)
        pred = streaming_mm_cost(n, n, k, 16, delta=0.5)
        assert mach.cost().W <= 6 * pred.W

    def test_supersteps_proportional_to_w_param(self):
        m1, *_ = run((2, 2, 1), 64, 64, 16, w=1)
        m4, *_ = run((2, 2, 1), 64, 64, 16, w=4)
        assert m4.cost().S > m1.cost().S

    def test_flops_balanced(self):
        mach, *_ = run((2, 2, 2), 64, 64, 16)
        assert mach.cost().flop_imbalance < 1.3


class TestCacheInteraction:
    def test_resident_a_avoids_repeat_traffic(self):
        """Lemma IV.1's mechanism: with H large, repeated multiplications
        against the same replicated A charge its read only once."""
        params_big = MachineParams(cache_words=1e9)
        p = (2, 2, 1)
        mach = BSPMachine(4, params_big)
        grid = ProcGrid(mach, p)
        r = np.random.default_rng(0)
        a = r.standard_normal((64, 64))
        b = r.standard_normal((64, 8))
        streaming_matmul(mach, grid, a, b, a_key="A")
        q_first = mach.cost().Q
        streaming_matmul(mach, grid, a, b, a_key="A")
        q_second = mach.cost().Q - q_first
        assert q_second < q_first  # A block reads became hits

    def test_small_cache_pays_every_time(self):
        params_small = MachineParams(cache_words=10.0)
        mach = BSPMachine(4, params_small)
        grid = ProcGrid(mach, (2, 2, 1))
        r = np.random.default_rng(0)
        a = r.standard_normal((64, 64))
        b = r.standard_normal((64, 8))
        streaming_matmul(mach, grid, a, b, a_key="A")
        q1 = mach.cost().Q
        streaming_matmul(mach, grid, a, b, a_key="A")
        q2 = mach.cost().Q - q1
        assert q2 >= q1 * 0.7  # no reuse possible

    def test_unkeyed_a_always_streams(self):
        mach, *_ = run((2, 2, 1), 64, 64, 8, params=MachineParams(cache_words=1e9))
        q1 = mach.cost().Q
        assert q1 > 0
