"""Smoke tests: every shipped example must run end-to-end.

The heavier mains are exercised through their parameterizable entry points
at reduced sizes; quickstart runs as-is (it is the advertised first contact
with the library and must work verbatim).
"""

import pathlib
import runpy
import sys

import numpy as np
import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_quickstart_runs_verbatim(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "max |lambda - numpy|" in out
    assert "full_to_band" in out


def test_scaling_study_small(capsys):
    sys.path.insert(0, str(EXAMPLES))
    try:
        mod = runpy.run_path(str(EXAMPLES / "scaling_study.py"))
        mod["main"](64)
    finally:
        sys.path.pop(0)
    out = capsys.readouterr().out
    assert "fitted W ~ p^e" in out
    assert "ScaLAPACK-like" in out


def test_electronic_structure_scf_converges(capsys):
    mod = runpy.run_path(str(EXAMPLES / "electronic_structure.py"))
    energies, iters, cost = mod["scf"](n=48, n_occ=6, p=16, max_iter=8)
    assert energies is not None and energies.size == 48
    assert np.all(np.diff(energies) >= -1e-12)
    assert cost.W > 0
    assert iters <= 8


def test_machine_tuning_profiles(capsys):
    mod = runpy.run_path(str(EXAMPLES / "machine_tuning.py"))
    # The module-level main does model sweeps + a measured validation; run
    # its pieces at the module's own sizes (fast).
    mod["main"]()
    out = capsys.readouterr().out
    assert "bandwidth-bound" in out
    assert "winner" in out


def test_density_of_states(capsys):
    mod = runpy.run_path(str(EXAMPLES / "density_of_states.py"))
    h = mod["anderson_hamiltonian"](6, 2.0)
    assert np.allclose(h, h.T)
    assert h.shape == (36, 36)
    hist = mod["ascii_histogram"](np.linspace(-1, 1, 50), bins=5)
    assert hist.count("\n") == 4


def test_density_of_states_main(capsys):
    runpy.run_path(str(EXAMPLES / "density_of_states.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Van Hove" in out
    assert "disorder W = 4.0" in out
