"""Tests for the two-sided aggregated update (Eqns IV.1 / IV.2)."""

import numpy as np
import pytest

from repro.linalg.householder import compact_wy_qr
from repro.linalg.two_sided import (
    aggregated_update_apply,
    aggregated_update_matmul,
    symmetric_two_sided,
    two_sided_update_vectors,
)
from repro.util.matrices import random_symmetric


@pytest.fixture
def wy(rng):
    """A symmetric X and a Householder (U, T) pair acting on it."""
    x = random_symmetric(20, seed=11)
    u, t, _ = compact_wy_qr(rng.standard_normal((20, 5)))
    return x, u, t


class TestEqnIV1:
    def test_matches_explicit_two_sided(self, wy):
        x, u, t = wy
        q = np.eye(20) - u @ t @ u.T
        assert np.abs(symmetric_two_sided(x, u, t) - q.T @ x @ q).max() < 1e-11

    def test_update_is_symmetric(self, wy):
        x, u, t = wy
        y = symmetric_two_sided(x, u, t)
        assert np.abs(y - y.T).max() < 1e-11

    def test_v_formula(self, wy):
        # V = ½·U Tᵀ Uᵀ X U T − X U T, checked term by term.
        x, u, t = wy
        v = two_sided_update_vectors(u, t, x)
        xut = x @ u @ t
        v_ref = 0.5 * u @ t.T @ u.T @ xut - xut
        assert np.abs(v - v_ref).max() < 1e-11

    def test_eigenvalues_preserved(self, wy):
        x, u, t = wy
        y = symmetric_two_sided(x, u, t)
        assert np.abs(np.linalg.eigvalsh(x) - np.linalg.eigvalsh(y)).max() < 1e-10


class TestEqnIV2:
    def test_deferred_matmul(self, wy, rng):
        x, u, t = wy
        v = two_sided_update_vectors(u, t, x)
        y = rng.standard_normal((20, 7))
        direct = aggregated_update_apply(x, u, v) @ y
        deferred = aggregated_update_matmul(x, u, v, y)
        assert np.abs(direct - deferred).max() < 1e-10


class TestAggregation:
    def test_two_updates_compose_by_appending_columns(self, rng):
        """The property Algorithm IV.1 relies on: applying (U1,V1) then
        (U2,V2) equals one update with U = [U1 U2], V = [V1 V2] when U2's
        update is computed against the already-updated matrix."""
        x = random_symmetric(16, seed=12)
        u1, t1, _ = compact_wy_qr(rng.standard_normal((16, 3)))
        v1 = two_sided_update_vectors(u1, t1, x)
        x1 = aggregated_update_apply(x, u1, v1)
        u2, t2, _ = compact_wy_qr(rng.standard_normal((16, 3)))
        v2 = two_sided_update_vectors(u2, t2, x1)
        x2_seq = aggregated_update_apply(x1, u2, v2)
        u_all = np.hstack([u1, u2])
        v_all = np.hstack([v1, v2])
        x2_agg = aggregated_update_apply(x, u_all, v_all)
        assert np.abs(x2_seq - x2_agg).max() < 1e-10

    def test_empty_update_is_identity(self):
        x = random_symmetric(8, seed=13)
        u = np.zeros((8, 0))
        v = np.zeros((8, 0))
        assert np.array_equal(aggregated_update_apply(x, u, v), x)
