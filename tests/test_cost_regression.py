"""Golden cost-regression corpus.

In a library whose *product is measured costs*, silently changing a charge
is a correctness bug even when the numerics stay exact.  These tests pin
the measured (F, W, S) of each building block at fixed inputs; an
intentional cost-model change must update the golden values (and, if
material, the numbers cited in EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.blocks import carma_matmul, rect_qr, streaming_matmul, tsqr
from repro.dist.grid import ProcGrid
from repro.eig import eigensolve_2p5d
from repro.util.matrices import random_symmetric


@pytest.fixture
def rng123():
    return np.random.default_rng(123)


def check(cost, f, w, s):
    assert cost.F == pytest.approx(f, rel=1e-9)
    assert cost.W == pytest.approx(w, rel=1e-9)
    assert cost.S == s


class TestGoldenCosts:
    def test_carma(self, rng123):
        m = BSPMachine(8)
        carma_matmul(m, m.world, rng123.standard_normal((64, 32)), rng123.standard_normal((32, 16)))
        check(m.cost(), 8320.0, 1280.0, 4)

    def test_streaming(self, rng123):
        m = BSPMachine(16)
        streaming_matmul(
            m, ProcGrid(m, (2, 2, 4)),
            rng123.standard_normal((64, 64)), rng123.standard_normal((64, 8)), a_key="A",
        )
        check(m.cost(), 4128.0, 256.0, 3)

    def test_tsqr(self, rng123):
        m = BSPMachine(8)
        tsqr(m, m.world, rng123.standard_normal((128, 8)))
        check(m.cost(), 13013.333333333336, 281.25483399593907, 11)

    def test_rect_qr(self, rng123):
        m = BSPMachine(8)
        rect_qr(m, m.world, rng123.standard_normal((128, 16)))
        check(m.cost(), 85598.71111111112, 4135.1149427694845, 73)

    def test_full_driver(self):
        m = BSPMachine(16)
        res = eigensolve_2p5d(m, random_symmetric(64, seed=99), delta=2.0 / 3.0)
        # W dropped from 21510.295750816636 when band-to-band switched to a
        # single shared data evolution for both chase engines: the direct
        # compact-WY update keeps the bulge's exact-zero triangle exactly
        # zero, so window fetches no longer ship the kernel recursion's
        # epsilon fill-in (charges are unchanged; the windows' nonzero
        # content genuinely shrank).
        check(res.cost, 1522450.9777777777, 21466.295750816636, 312)
        assert res.cost.Q == pytest.approx(34267.0, rel=1e-9)
        assert res.cost.M == pytest.approx(4608.0, rel=1e-9)

    def test_costs_are_value_independent(self, rng123):
        """Same structure, different entries: identical charges (cost
        depends on shapes and layouts only)."""
        costs = []
        for seed in (1, 2):
            m = BSPMachine(8)
            r = np.random.default_rng(seed)
            carma_matmul(m, m.world, r.standard_normal((40, 24)), r.standard_normal((24, 8)))
            costs.append(m.cost())
        assert costs[0].F == costs[1].F
        assert costs[0].W == costs[1].W
        assert costs[0].S == costs[1].S
