"""Tests for table formatting and the ASCII figures."""

import pytest

from repro.report.figures import render_figure1, render_figure2
from repro.report.tables import fit_exponent, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["p", "W"], [[4, 100.0], [16, 25.5]], title="scaling")
        lines = out.splitlines()
        assert lines[0] == "scaling"
        assert "p" in lines[1] and "W" in lines[1]
        assert "100" in out and "25.5" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_number_formats(self):
        out = format_table(["x"], [[1234567.0], [0.0001234], [3.0]])
        assert "1.23e+06" in out
        assert "0.000123" in out
        assert "3" in out

    def test_fit_exponent(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**1.5 for x in xs]
        assert fit_exponent(xs, ys) == pytest.approx(1.5, abs=1e-9)

    def test_fit_exponent_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_exponent([1.0], [2.0])


class TestFigure1:
    def test_contains_panel_and_trailing(self):
        fig = render_figure1()
        assert "P" in fig and "A" in fig and "#" in fig
        assert "recursive step 3" in fig
        assert "recursive step 4" in fig
        assert "legend" in fig

    def test_aggregates_grow_between_steps(self):
        fig = render_figure1(step=2)
        s2, s3 = fig.split("recursive step 3")
        assert s2.count("u") < s3.count("u")

    def test_step_bounds(self):
        with pytest.raises(ValueError):
            render_figure1(n_panels=4, step=4)


class TestFigure2:
    def test_default_reproduces_paper_sets(self):
        fig = render_figure2()
        assert "(3,1)" in fig and "(2,3)" in fig and "(1,5)" in fig
        assert "(3,2)" in fig and "(2,4)" in fig and "(1,6)" in fig

    def test_marks_qr_and_update(self):
        fig = render_figure2()
        assert "Q" in fig and "v" in fig

    def test_invalid_phase(self):
        with pytest.raises(ValueError, match="phase"):
            render_figure2(n=24, b=8, k=2, phases=(99, 100))
