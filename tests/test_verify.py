"""Tests for the dynamic BSP discipline verifier (``VerifiedMachine``).

Unit tests seed each invariant violation by hand and assert it raises
:class:`BSPDisciplineError`; the integration sweep runs the full 2.5D
eigensolver under verification for n ∈ {64, 128}, p ∈ {4, 16} and both
replication regimes and asserts nothing fires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BSPMachine, eigensolve_2p5d
from repro.bsp.group import RankGroup
from repro.bsp.kernels import sharded_axpy, sharded_dot, sharded_matvec, sharded_rank2_update
from repro.eig.scalapack_like import eigensolve_scalapack_like
from repro.lint import BSPDisciplineError, VerifiedMachine
from repro.model.bounds import memory_bound_words
from repro.util import random_symmetric
from repro.util.validation import reference_spectrum_error


class TestMemoryBound:
    def test_formula(self):
        # slack·(n²/p^{2(1−δ)} + n + p) at δ=1/2 → n²/p leading term
        assert memory_bound_words(64, 16, 0.5, slack=1.0) == pytest.approx(
            64 * 64 / 16 + 64 + 16
        )

    def test_delta_sharpens_to_full_replication(self):
        loose = memory_bound_words(256, 64, 2.0 / 3.0)
        tight = memory_bound_words(256, 64, 0.5)
        assert loose > tight  # more replication ⇒ larger per-rank footprint

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            memory_bound_words(64, 16, 0.25)
        with pytest.raises(ValueError):
            memory_bound_words(64, 16, 0.5, slack=0.0)


class TestInvariantViolations:
    def test_conservation_mismatch_raises_at_superstep(self):
        m = VerifiedMachine(4)
        m.charge_comm(sends={0: 10.0})  # receive side never booked
        with pytest.raises(BSPDisciplineError, match="conservation"):
            m.superstep()

    def test_balanced_exchange_passes(self):
        m = VerifiedMachine(4)
        m.charge_comm(sends={0: 10.0}, recvs={1: 10.0})
        m.superstep()
        assert m.checks_run == 1

    def test_cost_snapshot_also_verifies(self):
        m = VerifiedMachine(2)
        m.charge_comm(recvs={1: 5.0})
        with pytest.raises(BSPDisciplineError, match="conservation"):
            m.cost()

    def test_memory_overshoot_raises(self):
        m = VerifiedMachine(4, memory_bound_words=100.0)
        m.note_memory(2, 101.0)
        with pytest.raises(BSPDisciplineError, match="memory-bound"):
            m.superstep()

    def test_memory_within_budget_passes(self):
        m = VerifiedMachine(4, memory_bound_words=100.0)
        m.note_memory(m.world, 100.0)
        m.superstep()
        assert m.checks_run == 1

    def test_monotone_violation_raises(self):
        m = VerifiedMachine(2)
        m.charge_flops(m.world, 50.0)
        m.superstep()
        m.counters[0].flops = 1.0  # someone "un-charged" work
        with pytest.raises(BSPDisciplineError, match="monotonicity"):
            m.superstep()

    def test_strict_read_of_unknown_key_raises(self):
        m = VerifiedMachine(4, strict_reads=True)
        with pytest.raises(BSPDisciplineError, match="read-provenance"):
            m.mem_read(3, "panel", 64.0)

    def test_strict_read_allowed_after_write_or_grant(self):
        m = VerifiedMachine(4, strict_reads=True)
        m.mem_write(0, "panel", 64.0)
        m.mem_read(0, "panel", 64.0)  # writer may read back
        m.grant([1, 2], "panel")  # e.g. a charged broadcast delivered it
        m.mem_read(1, "panel", 64.0)
        with pytest.raises(BSPDisciplineError, match="rank 3"):
            m.mem_read(3, "panel", 64.0)

    def test_reset_clears_verifier_state(self):
        m = VerifiedMachine(2, strict_reads=True)
        m.mem_write(0, "x", 8.0)
        m.charge_comm(sends={0: 4.0}, recvs={1: 4.0})
        m.superstep()
        m.reset()
        assert m.cost().F == 0.0
        with pytest.raises(BSPDisciplineError):
            m.mem_read(0, "x", 8.0)  # provenance was wiped with the counters


class TestShardedKernels:
    """The group-sharded kernels that closed the scalapack_like cost leak."""

    def test_matvec_values_and_charges(self):
        m = BSPMachine(4)
        group = RankGroup((0, 1))
        a = np.arange(12.0).reshape(3, 4)
        v = np.ones(4)
        y = sharded_matvec(m, group, a, v, scale=2.0)
        np.testing.assert_allclose(y, 2.0 * (a @ v))
        assert m.counters[0].flops == pytest.approx(2 * 3 * 4 / 2)
        assert m.counters[0].mem_traffic == pytest.approx(3 * 4 / 2)
        assert m.counters[2].flops == 0.0  # outside the group

    def test_dot_axpy_rank2_consistency(self):
        m = BSPMachine(2)
        group = RankGroup((0, 1))
        rng = np.random.default_rng(7)
        a = rng.standard_normal((5, 5))
        v = rng.standard_normal(5)
        w = rng.standard_normal(5)
        assert sharded_dot(m, group, v, w) == pytest.approx(float(np.dot(v, w)))
        y = w.copy()
        sharded_axpy(m, group, -0.5, v, y)
        np.testing.assert_allclose(y, w - 0.5 * v)
        expect = a - np.outer(v, y) - np.outer(y, v)
        sharded_rank2_update(m, group, a, v, y)
        np.testing.assert_allclose(a, expect)
        assert all(c.flops > 0 for c in m.counters)

    def test_shape_mismatch_rejected(self):
        m = BSPMachine(2)
        with pytest.raises(ValueError, match="shape mismatch"):
            sharded_dot(m, m.world, np.ones(3), np.ones(4))
        with pytest.raises(ValueError, match="shape mismatch"):
            sharded_rank2_update(m, m.world, np.ones((3, 3)), np.ones(3), np.ones(2))


class TestPipelineUnderVerification:
    @pytest.mark.parametrize("n", [64, 128])
    @pytest.mark.parametrize("p,delta", [(4, 0.5), (4, 2 / 3), (16, 0.5), (16, 2 / 3)])
    def test_eigensolver_clean_under_verifier(self, n, p, delta):
        machine = VerifiedMachine.for_problem(p, n, delta)
        a = random_symmetric(n, seed=3)
        res = eigensolve_2p5d(machine, a, delta=delta)
        assert machine.checks_run > 0
        assert reference_spectrum_error(a, res.eigenvalues) < 1e-8
        # the sweep exercises both replication regimes: c = 4 at (p=16,
        # δ=2/3), c = 1 everywhere else the grid admits
        assert res.replication == (4 if (p == 16 and delta > 0.6) else 1)

    def test_scalapack_baseline_clean_under_verifier(self):
        machine = VerifiedMachine.for_problem(4, 64, 0.5, slack=16.0)
        a = random_symmetric(64, seed=1)
        evals = eigensolve_scalapack_like(machine, a)
        assert machine.checks_run > 0
        assert reference_spectrum_error(a, evals) < 1e-8

    def test_verified_costs_match_plain_machine(self):
        """Verification must observe, never perturb, the accounting."""
        a = random_symmetric(64, seed=9)
        plain, verified = BSPMachine(16), VerifiedMachine.for_problem(16, 64, 2 / 3)
        res_p = eigensolve_2p5d(plain, a, delta=2 / 3)
        res_v = eigensolve_2p5d(verified, a, delta=2 / 3)
        cp, cv = plain.cost(), verified.cost()
        assert (cp.F, cp.W, cp.Q, cp.S) == (cv.F, cv.W, cv.Q, cv.S)
        np.testing.assert_allclose(res_p.eigenvalues, res_v.eigenvalues)
