"""Tests for distributed dense and banded matrices (cost accounting)."""

import numpy as np
import pytest

from repro.bsp import BSPMachine, RankGroup
from repro.dist import DistBandMatrix, DistMatrix, ProcGrid
from repro.dist.layout import BlockRowLayout, CyclicLayout
from repro.util.matrices import random_banded_symmetric


class TestDistMatrix:
    def test_shape_layout_mismatch(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        with pytest.raises(ValueError, match="match layout"):
            DistMatrix(m, np.zeros((3, 3)), CyclicLayout(grid, 4, 4))

    def test_from_global_charges_distribution(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        DistMatrix.cyclic(m, np.ones((8, 8)), grid, charge_distribution=True)
        assert m.cost().W > 0
        assert m.cost().S == 1

    def test_from_global_free_by_default(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        DistMatrix.cyclic(m, np.ones((8, 8)), grid)
        assert m.cost().W == 0

    def test_memory_noted(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        DistMatrix.cyclic(m, np.ones((8, 8)), grid)
        assert m.cost().M == 16.0  # 64 words over 4 ranks

    def test_replicate_charges_and_marks(self):
        m = BSPMachine(8)
        g3 = ProcGrid(m, (2, 2, 2))
        dm = DistMatrix.cyclic(m, np.ones((8, 8)), g3.layer(0))
        rep = dm.replicate(g3.layers())
        assert rep.is_replicated
        # Each layer-1 rank must have received its 16-word share.
        l1 = g3.layer(1)
        for r in l1.group():
            assert m.counters[r].words_recv >= 16.0
        # Memory per rank now reflects a layer-local share.
        assert m.cost().M >= 16.0

    def test_redistribute_charges_histogram(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        dm = DistMatrix.cyclic(m, np.arange(64.0).reshape(8, 8), grid)
        new_layout = BlockRowLayout(RankGroup((0, 1, 2, 3)), 8, 8)
        dm2 = dm.redistribute(new_layout)
        assert m.cost().W > 0
        assert np.array_equal(dm2.data, dm.data)

    def test_gather(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        dm = DistMatrix.cyclic(m, np.arange(16.0).reshape(4, 4), grid)
        out = dm.gather(0)
        assert out.shape == (4, 4)
        assert m.counters[0].words_recv == pytest.approx(12.0)  # 16 - own 4

    def test_submatrix_is_free_and_shares_data(self):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        dm = DistMatrix.cyclic(m, np.zeros((8, 8)), grid)
        before = m.cost().W
        sub = dm.submatrix(2, 2, 4, 4)
        assert m.cost().W == before
        sub.data[0, 0] = 7.0
        assert dm.data[2, 2] == 7.0

    def test_submatrix_bounds(self):
        m = BSPMachine(4)
        dm = DistMatrix.cyclic(m, np.zeros((4, 4)), ProcGrid(m, (2, 2)))
        with pytest.raises(ValueError):
            dm.submatrix(2, 2, 4, 4)

    def test_local_words(self):
        m = BSPMachine(4)
        dm = DistMatrix.cyclic(m, np.zeros((4, 4)), ProcGrid(m, (2, 2)))
        assert dm.local_words(0) == 4


class TestDistBandMatrix:
    def make(self, p=4, n=16, b=3):
        m = BSPMachine(p)
        a = random_banded_symmetric(n, b, seed=0)
        return m, DistBandMatrix(m, a, b, m.world)

    def test_column_ownership(self):
        m, band = self.make()
        assert band.owner_of_col(0) == 0
        assert band.owner_of_col(15) == 3
        assert band.owners_of_cols(3, 5).ranks == (0, 1)

    def test_owner_bounds(self):
        m, band = self.make()
        with pytest.raises(IndexError):
            band.owner_of_col(16)

    def test_fetch_window_charges(self):
        m, band = self.make()
        g = RankGroup((2, 3))
        win = band.fetch_window(slice(0, 4), slice(0, 2), g)
        assert win.shape == (4, 2)
        assert m.counters[2].words_recv == pytest.approx(4.0)  # 8 words / 2
        assert m.cost().S == 1

    def test_store_window_mirrors_symmetrically(self):
        m, band = self.make()
        vals = np.arange(8.0).reshape(4, 2)
        band.store_window(slice(4, 8), slice(0, 2), vals, RankGroup((0,)))
        assert np.array_equal(band.data[4:8, 0:2], vals)
        assert np.array_equal(band.data[0:2, 4:8], vals.T)

    def test_store_window_shape_check(self):
        m, band = self.make()
        with pytest.raises(ValueError):
            band.store_window(slice(0, 4), slice(0, 2), np.zeros((3, 2)), RankGroup((0,)))

    def test_gather_collects_band_words(self):
        m, band = self.make(p=4, n=16, b=3)
        band.gather(0)
        # 3 remote ranks x 4 columns x (b+1) words
        assert m.counters[0].words_recv == pytest.approx(3 * 4 * 4.0)

    def test_redistribute_to_smaller_group(self):
        m, band = self.make(p=4, n=16, b=3)
        small = m.world.take(2)
        band2 = band.redistribute(small)
        assert band2.group.size == 2
        assert m.cost().W > 0

    def test_memory_noted_in_band_words(self):
        m, band = self.make(p=4, n=16, b=3)
        assert m.cost().M == pytest.approx((3 + 1) * 4)

    def test_with_bandwidth(self):
        m, band = self.make()
        b2 = band.with_bandwidth(1)
        assert b2.b == 1
        assert b2.data is band.data
