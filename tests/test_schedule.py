"""Tests for the bulge-chase pipeline schedule (Figure 2)."""

import pytest

from repro.eig.schedule import (
    group_of_step,
    max_concurrency,
    pipeline_schedule,
    schedule_checks,
)
from repro.linalg.sbr import chase_steps


class TestFigure2:
    def test_paper_phase5(self):
        """Figure 2 (left): iterations {(3,1), (2,3), (1,5)} concurrent."""
        sched = {p.phase: p for p in pipeline_schedule(48, 8, 4)}
        assert sched[5].ij_set == {(3, 1), (2, 3), (1, 5)}

    def test_paper_phase6(self):
        """Figure 2 (right): iterations {(3,2), (2,4), (1,6)}."""
        sched = {p.phase: p for p in pipeline_schedule(48, 8, 4)}
        assert sched[6].ij_set == {(3, 2), (2, 4), (1, 6)}

    def test_phase1_is_first_panel(self):
        sched = pipeline_schedule(48, 8, 4)
        assert sched[0].ij_set == {(1, 1)}
        assert sched[0].phase == 1

    def test_phases_strictly_increasing(self):
        sched = pipeline_schedule(40, 8, 2)
        phases = [p.phase for p in sched]
        assert phases[0] == 1
        assert all(b > a for a, b in zip(phases, phases[1:]))


class TestStructure:
    @pytest.mark.parametrize("n,b,h", [(48, 8, 4), (60, 6, 3), (64, 16, 4), (40, 8, 2)])
    def test_invariants(self, n, b, h):
        checks = schedule_checks(n, b, h)
        assert checks["phases_disjoint"], "concurrent QR blocks overlap"
        assert checks["bulge_handoff"], "chase j+1 does not start at chase j's rows"

    def test_schedule_covers_all_steps(self):
        n, b, h = 48, 8, 4
        total = sum(ph.concurrency for ph in pipeline_schedule(n, b, h))
        assert total == len(chase_steps(n, b, h))

    def test_max_concurrency_grows_with_matrix(self):
        assert max_concurrency(96, 8, 4) > max_concurrency(32, 8, 4)

    def test_concurrency_bounded_by_half_band_count(self):
        # At most ~n/(2b) bulges are in flight (the paper's pipeline bound).
        n, b, h = 96, 8, 4
        assert max_concurrency(n, b, h) <= n // (2 * b) + 1


class TestGroupAssignment:
    def test_group_is_chase_index(self):
        n, b = 48, 8
        for s in chase_steps(n, b, 4):
            g = group_of_step(s, n, b)
            assert 0 <= g < n // b
            assert g == (s.j - 1) % (n // b)

    def test_same_phase_distinct_groups(self):
        # Concurrent steps run on distinct groups (they have distinct j).
        for ph in pipeline_schedule(48, 8, 4):
            groups = [group_of_step(s, 48, 8) for s in ph.steps]
            assert len(set(groups)) == len(groups)

    @pytest.mark.parametrize("n,b,h", [(44, 16, 8), (76, 16, 8), (50, 8, 4)])
    def test_ragged_band_keeps_groups_disjoint(self, n, b, h):
        """Regression: with b ∤ n the group count must be ⌈n/b⌉, not ⌊n/b⌋.

        Flooring wrapped the ragged chain's extra chase onto group 0, so two
        *same-phase* steps of one pipeline phase landed on the same processor
        group — serializing steps the schedule proves disjoint and
        double-charging that group's ranks.
        """
        assert n % b != 0  # the configurations that used to collide
        for ph in pipeline_schedule(n, b, h):
            groups = [group_of_step(s, n, b) for s in ph.steps]
            assert len(set(groups)) == len(groups), f"phase {ph.phase} collides"
        checks = schedule_checks(n, b, h)
        assert checks["groups_disjoint"]

    @pytest.mark.parametrize("n,b,h", [(48, 8, 4), (64, 16, 4), (44, 16, 8)])
    def test_schedule_checks_report_groups_disjoint(self, n, b, h):
        assert schedule_checks(n, b, h)["groups_disjoint"]

    def test_group_count_is_ceil(self):
        # 5 chases per chain at (44, 16): indices 0..4 with no wrap-around.
        seen = {group_of_step(s, 44, 16) for s in chase_steps(44, 16, 8)}
        assert seen == set(range(-(-44 // 16)))
