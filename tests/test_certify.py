"""Tests for the symbolic cost-certificate engine (``repro.lint.certify``).

Three layers:

* ``Poly`` algebra — the sparse posynomial the extractor computes with;
* end-to-end certification of the shipped stages (each must extract with
  no problems and match its ``repro.model.costs`` lemma exactly), plus the
  deliberate asymptotic regression in ``tests/data/lint_cases/`` that must
  be rejected with REPRO010;
* the ``lemma_leading_terms`` registry itself, cross-checked against the
  numeric ``*_cost`` closed forms by scaling-drift (the ratio of numeric
  cost to the lemma's leading terms must stay bounded as the point grows).
"""

from __future__ import annotations

import math
import re
from pathlib import Path

import pytest

from repro.lint.certify import (
    STAGE_SPECS,
    Poly,
    certify_source,
    parse_hints,
)
from repro.model import costs
from repro.model.costs import LEMMA_STAGES, lemma_leading_terms

REPO_ROOT = Path(__file__).resolve().parents[1]
CASES = Path(__file__).parent / "data" / "lint_cases"

THETA = {"n": 1.0, "m": 1.0, "k": 1.0, "b": 0.5, "p": 0.25}


def n() -> Poly:
    return Poly.sym("n")


def b() -> Poly:
    return Poly.sym("b")


class TestPoly:
    def test_identical_monomials_cancel_exactly(self):
        """(c0 + b) - c0 -> b: slice widths must collapse symbolically."""
        width = (Poly.sym("c0") + b()) - Poly.sym("c0")
        assert width.terms == b().terms

    def test_full_cancellation_gives_empty_poly(self):
        assert (n() - n()).terms == {}
        assert math.isinf(Poly({}).degree(THETA))

    def test_zero_exponents_are_normalized_away(self):
        """p^0 from delta-dependent exponents must merge with constants."""
        assert Poly({(("p", 0.0),): 2.0}).terms == {(): 2.0}
        assert (Poly({(("p", 0.5),): 1.0}) * Poly({(("p", -0.5),): 3.0})).terms == {
            (): 3.0
        }

    def test_mul_adds_degrees(self):
        assert (n() * n() * b()).degree(THETA) == pytest.approx(2.5)

    def test_degree_is_max_over_terms(self):
        assert (n() * n() + b()).degree(THETA) == pytest.approx(2.0)

    def test_single_term_division_is_exact(self):
        q = (n() * n()).div(n(), THETA)
        assert q.terms == n().terms

    def test_multi_term_division_divides_by_smallest_denominator(self):
        """An upper bound: n^2 / (n + 1) is treated as n^2 / 1."""
        q = (n() * n()).div(n() + Poly.const(1.0), THETA)
        assert q.degree(THETA) == pytest.approx(2.0)

    def test_fractional_power_scales_exponents(self):
        assert (n() * n()).powf(0.5).degree(THETA) == pytest.approx(1.0)

    def test_leading_term_names_the_dominant_monomial(self):
        poly = n() * n() * Poly.const(3.0) + b()
        assert poly.leading_term(THETA) == "n^2"


class TestHints:
    def test_trips_and_count_hints_parse(self):
        src = (
            "for step in chase_steps(n, b, h):  # certify: trips(n / b)\n"
            "    machine.charge_comm(x)  # certify: count(n / h)\n"
        )
        hints = parse_hints(src)
        assert set(hints) == {1, 2}
        assert hints[1][0] == "trips" and hints[2][0] == "count"

    def test_plain_comments_are_not_hints(self):
        assert parse_hints("x = 1  # certify later\ny = 2  # cost: free(r)\n") == {}


def _stage_source(spec) -> str:
    return (REPO_ROOT / "src" / spec.path_suffix).read_text()


class TestShippedStagesCertify:
    @pytest.mark.parametrize("spec", STAGE_SPECS, ids=lambda s: s.stage)
    def test_stage_extracts_clean_against_its_lemma(self, spec):
        """Every registered stage in src/ must certify with no findings —
        extraction succeeds and leading degrees stay within the lemma."""
        findings = certify_source(spec.stage, _stage_source(spec), spec.path_suffix)
        assert findings == [], [f.format() for f in findings]

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError, match="unknown certification stage"):
            certify_source("nonexistent", "def f():\n    pass\n", "x.py")

    def test_missing_function_is_uncertifiable(self):
        findings = certify_source("streaming_matmul", "def other():\n    pass\n", "x.py")
        assert [f.rule for f in findings] == ["REPRO011"]

    def test_stripped_hints_make_ca_sbr_uncertifiable(self):
        """REPRO011 path: without the '# certify:' hints the chase loop's
        trip count is uninferable, and that must be a finding, not a pass."""
        spec = next(s for s in STAGE_SPECS if s.stage == "ca_sbr_halve")
        stripped = re.sub(r"#\s*certify:[^\n]*", "", _stage_source(spec))
        findings = certify_source(spec.stage, stripped, spec.path_suffix)
        assert findings and all(f.rule == "REPRO011" for f in findings)
        assert "not extractable" in findings[0].message


class TestAsymptoticRegression:
    def test_unaggregated_full_to_band_fails_on_words(self):
        """The acceptance fixture: eager per-panel trailing updates move
        Theta(n^3 / (b p^delta)) words where the lemma allows n^2/p^delta.
        The flop count is unchanged, so only W may fire."""
        source = (CASES / "viol_f2b_unaggregated.py").read_text()
        findings = certify_source(
            "full_to_band_2p5d", source, "viol_f2b_unaggregated.py"
        )
        assert [f.rule for f in findings] == ["REPRO010"]
        msg = findings[0].message
        assert "W ~" in msg and "exceeds lemma 'full_to_band'" in msg
        assert "F ~" not in msg

    def test_shipped_full_to_band_is_not_flagged(self):
        """Control: the aggregated (correct) implementation passes the very
        check that rejects the eager variant."""
        spec = next(s for s in STAGE_SPECS if s.stage == "full_to_band_2p5d")
        assert certify_source(spec.stage, _stage_source(spec), spec.path_suffix) == []


# ------------------------------------------------------------------ #
# lemma registry <-> numeric closed forms

# stage -> (numeric cost at a symbol assignment, ordered symbols it uses)
_NUMERIC = {
    "streaming_mm": lambda v, d: costs.streaming_mm_cost(
        v["m"], v["n"], v["k"], v["p"], d
    ),
    "carma": lambda v, d: costs.carma_cost(v["m"], v["n"], v["k"], v["p"]),
    "rect_qr": lambda v, d: costs.rect_qr_cost(v["m"], v["n"], v["p"], d),
    "square_qr": lambda v, d: costs.square_qr_cost(v["n"], v["p"], d),
    "full_to_band": lambda v, d: costs.full_to_band_cost(v["n"], v["p"], d, v["b"]),
    "ca_sbr_halve": lambda v, d: costs.ca_sbr_halve_cost(v["n"], v["b"], v["p"]),
    "band_to_band": lambda v, d: costs.band_to_band_cost(
        v["n"], v["b"], v["k"], v["p"], d
    ),
    "eigensolver_2p5d": lambda v, d: costs.eigensolver_2p5d_cost(v["n"], v["p"], d),
}

_BASE_POINT = {"n": 4096.0, "m": 4096.0, "k": 1024.0, "b": 64.0, "p": 256.0}


def _lemma_value(terms, values):
    return sum(
        math.prod(values[s] ** e for s, e in term.items()) for term in terms
    )


class TestLemmaRegistry:
    def test_registry_covers_every_stage(self):
        assert set(_NUMERIC) == set(LEMMA_STAGES)
        for stage in LEMMA_STAGES:
            table = lemma_leading_terms(stage, 0.5)
            assert table["flops"] and table["words"]

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError, match="unknown lemma stage"):
            lemma_leading_terms("fft", 0.5)

    @pytest.mark.parametrize("stage", LEMMA_STAGES)
    @pytest.mark.parametrize("delta", [0.5, 2.0 / 3.0])
    def test_leading_terms_track_numeric_closed_forms(self, stage, delta):
        """Scaling-drift check: numeric_cost / lemma_leading_terms must stay
        within a constant factor when every parameter is scaled up — i.e.
        the registry's exponents match the closed forms' growth rates."""
        terms = lemma_leading_terms(stage, delta)
        ratios = []
        for scale in (1.0, 4.0):
            values = {s: x * scale for s, x in _BASE_POINT.items()}
            cost = _NUMERIC[stage](values, delta)
            for metric, attr in (("flops", "F"), ("words", "W")):
                predicted = _lemma_value(terms[metric], values)
                ratios.append((metric, scale, getattr(cost, attr) / predicted))
        by_metric: dict[str, list[float]] = {}
        for metric, _, r in ratios:
            by_metric.setdefault(metric, []).append(r)
        for metric, (r1, r4) in by_metric.items():
            drift = r4 / r1
            assert 0.5 < drift < 2.0, (
                f"{stage}/{metric}: lemma exponents drift from the closed "
                f"form (ratio went {r1:.3g} -> {r4:.3g} under 4x scaling)"
            )
