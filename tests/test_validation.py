"""Tests for argument validation and matrix generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.matrices import (
    clustered_spectrum,
    random_banded_symmetric,
    random_orthogonal,
    random_spectrum_symmetric,
    random_symmetric,
    wilkinson,
)
from repro.util.validation import (
    check_banded,
    check_positive_int,
    check_power_of_two,
    check_square,
    check_symmetric,
    frobenius_norm,
    matrix_bandwidth,
)


class TestCheckers:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(5), "x") == 5

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive_int(0, "x")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "x")

    def test_power_of_two(self):
        assert check_power_of_two(8, "p") == 8
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two(6, "p")

    def test_square_rejects_rect(self):
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((2, 3)))

    def test_symmetric_rejects_asymmetric(self):
        a = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(a)

    def test_symmetric_tolerance_is_relative(self):
        a = np.array([[1e12, 1e12], [1e12 + 0.1, 1e12]])
        check_symmetric(a)  # 0.1 absolute skew on 1e12-scale entries is fine

    def test_banded_accepts_within_band(self):
        a = random_banded_symmetric(10, 2, seed=0)
        check_banded(a, 2)
        check_banded(a, 5)

    def test_banded_rejects_outside(self):
        a = random_banded_symmetric(10, 4, seed=1)
        with pytest.raises(ValueError, match="band-width"):
            check_banded(a, 2)

    def test_matrix_bandwidth(self):
        assert matrix_bandwidth(np.eye(5)) == 0
        assert matrix_bandwidth(wilkinson(7)) == 1
        assert matrix_bandwidth(random_banded_symmetric(16, 3, seed=2)) == 3


class TestFrobeniusRelativeTolerances:
    """Regression (large-scale inputs): tolerances are relative to
    ``max(1, ‖A‖_F)``, so 1e6-scale matrices are judged by their own
    magnitude instead of an absolute threshold."""

    def test_frobenius_norm_matches_numpy(self):
        a = random_symmetric(12, seed=0)
        assert frobenius_norm(a) == float(np.linalg.norm(a))
        assert frobenius_norm(np.zeros((3, 3))) == 0.0

    def test_large_scale_symmetric_passes(self):
        # float roundoff on 1e6-scale entries exceeds any absolute 1e-10
        # gate but is far inside the Frobenius-relative one
        a = 1e6 * random_symmetric(64, seed=1)
        a[0, 1] += 1e-6  # absolute skew ~ eps * ‖A‖_F
        check_symmetric(a)

    def test_large_scale_asymmetry_still_rejected(self):
        a = 1e6 * random_symmetric(64, seed=1)
        a[0, 1] += 0.1 * frobenius_norm(a)  # genuinely asymmetric
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(a)

    def test_large_scale_banded(self):
        a = 1e6 * random_banded_symmetric(64, 3, seed=2)
        a[0, 40] = a[40, 0] = 1e-6  # negligible relative to ‖A‖_F
        check_banded(a, 3)
        a[0, 40] = a[40, 0] = frobenius_norm(a)  # genuine fill
        with pytest.raises(ValueError, match="band-width"):
            check_banded(a, 3)


class TestGenerators:
    def test_random_symmetric_is_symmetric(self):
        a = random_symmetric(20, seed=3)
        assert np.allclose(a, a.T)

    def test_seed_reproducibility(self):
        assert np.array_equal(random_symmetric(8, seed=4), random_symmetric(8, seed=4))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_symmetric(8, seed=4), random_symmetric(8, seed=5))

    def test_banded_bandwidth_bounds(self):
        with pytest.raises(ValueError):
            random_banded_symmetric(8, 8, seed=0)
        with pytest.raises(ValueError):
            random_banded_symmetric(8, -1, seed=0)

    def test_orthogonal(self):
        q = random_orthogonal(15, seed=6)
        assert np.allclose(q.T @ q, np.eye(15), atol=1e-12)

    def test_prescribed_spectrum(self):
        d = np.linspace(-3, 7, 12)
        a = random_spectrum_symmetric(d, seed=7)
        assert np.allclose(np.linalg.eigvalsh(a), np.sort(d), atol=1e-10)

    def test_wilkinson_structure(self):
        w = wilkinson(9)
        assert matrix_bandwidth(w) == 1
        assert w[0, 0] == w[8, 8] == 4.0

    def test_clustered_spectrum(self):
        vals = clustered_spectrum(50, n_clusters=3, spread=1e-9, seed=8)
        assert vals.size == 50
        assert np.all(np.diff(vals) >= 0)

    @given(st.integers(2, 30), st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_banded_generator_property(self, n, b):
        if b >= n:
            return
        a = random_banded_symmetric(n, b, seed=9)
        assert np.allclose(a, a.T)
        assert matrix_bandwidth(a) <= b
