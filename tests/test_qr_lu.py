"""Tests for sequential QR, non-pivoted LU, and Householder reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.lu import (
    invert_unit_lower,
    invert_upper,
    lu_nopivot,
    modified_lu,
    solve_unit_lower,
    solve_upper,
)
from repro.linalg.qr import blocked_qr, householder_qr, qr_residuals
from repro.linalg.reconstruct import (
    householder_reconstruct,
    reconstruct_q,
    reconstruction_error,
)
from repro.linalg.householder import expand_q


class TestHouseholderQR:
    def test_reduced_mode(self, rng):
        a = rng.standard_normal((20, 7))
        q, r = householder_qr(a)
        res, orth = qr_residuals(a, q, r)
        assert res < 1e-13 and orth < 1e-13
        assert q.shape == (20, 7)

    def test_complete_mode(self, rng):
        a = rng.standard_normal((10, 4))
        q, r = householder_qr(a, mode="complete")
        assert q.shape == (10, 10)
        assert np.abs(q @ r - a).max() < 1e-12

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError, match="mode"):
            householder_qr(rng.standard_normal((4, 2)), mode="bogus")

    def test_r_matches_numpy_up_to_signs(self, rng):
        a = rng.standard_normal((15, 6))
        _, r = householder_qr(a)
        _, r_np = np.linalg.qr(a)
        assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-10)


class TestBlockedQR:
    @pytest.mark.parametrize("nb", [1, 3, 8, 100])
    def test_block_sizes(self, rng, nb):
        a = rng.standard_normal((24, 16))
        u, t, r = blocked_qr(a.copy(), nb=nb)
        q = expand_q(u, t)
        assert np.abs(q @ r - a).max() < 1e-11
        assert np.abs(q.T @ q - np.eye(16)).max() < 1e-12

    def test_rejects_bad_nb(self, rng):
        with pytest.raises(ValueError):
            blocked_qr(rng.standard_normal((8, 4)), nb=0)

    @given(st.integers(4, 24), st.integers(1, 12), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_random_shapes(self, m, n, nb):
        if m < n:
            m, n = n, m
        if m == 0 or n == 0:
            return
        a = np.random.default_rng(m * 31 + n).standard_normal((m, n))
        u, t, r = blocked_qr(a.copy(), nb=nb)
        q = expand_q(u, t)
        assert np.abs(q @ r - a).max() < 1e-10


class TestLU:
    def test_roundtrip(self, rng):
        a = rng.standard_normal((8, 8)) + 8 * np.eye(8)  # diagonally dominant
        lo, up = lu_nopivot(a)
        assert np.abs(lo @ up - a).max() < 1e-10
        assert np.allclose(np.diag(lo), 1.0)

    def test_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            lu_nopivot(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            lu_nopivot(np.zeros((3, 4)))

    def test_triangular_solves(self, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        lo, up = lu_nopivot(a)
        b = rng.standard_normal(6)
        x = solve_upper(up, solve_unit_lower(lo, b))
        assert np.abs(a @ x - b).max() < 1e-9

    def test_inverses(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        lo, up = lu_nopivot(a)
        assert np.abs(invert_unit_lower(lo) @ lo - np.eye(5)).max() < 1e-11
        assert np.abs(invert_upper(up) @ up - np.eye(5)).max() < 1e-9

    def test_singular_upper_solve_raises(self):
        with pytest.raises(ZeroDivisionError):
            solve_upper(np.zeros((2, 2)), np.ones(2))


class TestModifiedLU:
    def test_factors_orthonormal_top_block(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((12, 5)))
        lo, up, s = modified_lu(q[:5, :])
        assert np.abs(lo @ up - (q[:5, :] - np.diag(s))).max() < 1e-12
        assert set(np.unique(s)) <= {-1.0, 1.0}

    def test_pivots_at_least_one(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((9, 9)))
        _, up, _ = modified_lu(q)
        assert np.abs(np.diag(up)).min() >= 1.0 - 1e-12

    def test_handles_identity(self):
        # Q1 = I: degenerate but valid (diag all +1 -> S = -I).
        lo, up, s = modified_lu(np.eye(4))
        assert np.abs(lo @ up - (np.eye(4) + np.eye(4))).max() < 1e-14
        assert np.all(s == -1.0)


class TestReconstruction:
    @pytest.mark.parametrize("shape", [(8, 8), (20, 6), (50, 3), (7, 1)])
    def test_roundtrip(self, rng, shape):
        a = rng.standard_normal(shape)
        q, _ = np.linalg.qr(a)
        u, t, s = householder_reconstruct(q)
        assert reconstruction_error(q, u, t, s) < 1e-10

    def test_full_q_is_orthogonal(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((16, 5)))
        u, t, _ = householder_reconstruct(q)
        qf = np.eye(16) - u @ t @ u.T
        assert np.abs(qf.T @ qf - np.eye(16)).max() < 1e-10

    def test_u_unit_lower_trapezoidal(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 4)))
        u, t, _ = householder_reconstruct(q)
        assert np.allclose(np.diag(u[:4, :4]), 1.0, atol=1e-12)
        assert np.abs(np.triu(u[:4, :4], 1)).max() < 1e-12

    def test_wide_rejected(self, rng):
        with pytest.raises(ValueError):
            householder_reconstruct(rng.standard_normal((3, 5)))

    def test_sign_semantics(self, rng):
        # reconstruct_q equals Q·diag(s) exactly.
        q, _ = np.linalg.qr(rng.standard_normal((12, 5)))
        u, t, s = householder_reconstruct(q)
        assert np.abs(reconstruct_q(u, t) - q * s).max() < 1e-10

    def test_reconstruction_of_identity_prefix(self):
        # Q = first columns of I: an edge case with zero tails.
        q = np.eye(8, 3)
        u, t, s = householder_reconstruct(q)
        assert reconstruction_error(q, u, t, s) < 1e-12
