"""Tests for tridiagonal eigensolvers (Sturm bisection and QL)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.tridiag import (
    eigenvalue_count_below,
    gershgorin_interval,
    sturm_bisection_eigenvalues,
    tridiagonal_eigenvalues_ql,
    tridiagonal_from_dense,
)
from repro.util.matrices import wilkinson, clustered_spectrum, random_spectrum_symmetric


def tridiag_dense(d, e):
    return np.diag(d) + np.diag(e, 1) + np.diag(e, -1)


class TestSturmCount:
    def test_counts_match_numpy(self, rng):
        d = rng.standard_normal(12)
        e = rng.standard_normal(11)
        evals = np.linalg.eigvalsh(tridiag_dense(d, e))
        for x in (-5.0, 0.0, 0.3, 5.0):
            assert eigenvalue_count_below(d, e, x)[0] == int((evals < x).sum())

    def test_vectorized_over_shifts(self, rng):
        d = rng.standard_normal(9)
        e = rng.standard_normal(8)
        xs = np.linspace(-4, 4, 33)
        counts = eigenvalue_count_below(d, e, xs)
        assert counts.shape == xs.shape
        assert np.all(np.diff(counts) >= 0)  # monotone in the shift

    def test_count_extremes(self, rng):
        d = rng.standard_normal(6)
        e = rng.standard_normal(5)
        lo, hi = gershgorin_interval(d, e)
        assert eigenvalue_count_below(d, e, lo)[0] == 0
        assert eigenvalue_count_below(d, e, hi)[0] == 6

    def test_bad_offdiag_length(self):
        with pytest.raises(ValueError):
            eigenvalue_count_below(np.ones(4), np.ones(4), 0.0)

    def test_zero_offdiagonal_is_safe(self):
        # The Sturm recurrence divides by q; zero couplings must not blow up.
        d = np.array([1.0, 2.0, 2.0, 3.0])
        e = np.array([0.0, 1.0, 0.0])
        assert eigenvalue_count_below(d, e, 10.0)[0] == 4


class TestBisection:
    def test_matches_numpy_random(self, rng):
        d = rng.standard_normal(25)
        e = rng.standard_normal(24)
        got = sturm_bisection_eigenvalues(d, e)
        ref = np.linalg.eigvalsh(tridiag_dense(d, e))
        assert np.abs(got - ref).max() < 1e-9

    def test_wilkinson_clusters(self):
        w = wilkinson(21)
        d, e = tridiagonal_from_dense(w)
        got = sturm_bisection_eigenvalues(d, e)
        ref = np.linalg.eigvalsh(w)
        assert np.abs(got - ref).max() < 1e-10

    def test_single_element(self):
        assert sturm_bisection_eigenvalues(np.array([3.0]), np.array([])) == np.array([3.0])

    def test_diagonal_matrix(self):
        d = np.array([3.0, -1.0, 2.0])
        e = np.zeros(2)
        assert np.allclose(sturm_bisection_eigenvalues(d, e), np.sort(d), atol=1e-12)

    def test_large_magnitude_entries(self):
        d = np.array([1e8, -1e8, 0.0])
        e = np.array([1e4, 1e4])
        got = sturm_bisection_eigenvalues(d, e)
        ref = np.linalg.eigvalsh(tridiag_dense(d, e))
        assert np.abs(got - ref).max() < 1e-6 * 1e8

    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_property_random_sizes(self, n):
        r = np.random.default_rng(n)
        d = r.standard_normal(n)
        e = r.standard_normal(n - 1)
        got = sturm_bisection_eigenvalues(d, e)
        ref = np.linalg.eigvalsh(tridiag_dense(d, e))
        assert np.abs(got - ref).max() < 1e-8


class TestQL:
    def test_matches_bisection(self, rng):
        d = rng.standard_normal(18)
        e = rng.standard_normal(17)
        ql = tridiagonal_eigenvalues_ql(d, e)
        bis = sturm_bisection_eigenvalues(d, e)
        assert np.abs(ql - bis).max() < 1e-9

    def test_wilkinson(self):
        w = wilkinson(15)
        d, e = tridiagonal_from_dense(w)
        got = tridiagonal_eigenvalues_ql(d, e)
        assert np.abs(got - np.linalg.eigvalsh(w)).max() < 1e-10

    def test_already_diagonal(self):
        got = tridiagonal_eigenvalues_ql(np.array([2.0, 1.0]), np.array([0.0]))
        assert np.allclose(got, [1.0, 2.0])


class TestClusteredSpectra:
    def test_pipeline_resolves_tight_clusters(self):
        vals = clustered_spectrum(20, n_clusters=3, spread=1e-10, seed=5)
        a = random_spectrum_symmetric(vals, seed=6)
        # Tridiagonalize via numpy reference here; the point is the
        # tridiagonal solver's behaviour on clustered data.
        ref = np.linalg.eigvalsh(a)
        t = np.linalg.eigvalsh(a)  # sanity anchor
        assert np.abs(np.sort(vals) - ref).max() < 1e-7
