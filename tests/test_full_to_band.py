"""Tests for Algorithm IV.1: 2.5D full-to-band reduction."""

import numpy as np
import pytest

from repro.bsp import BSPMachine, MachineParams
from repro.dist.grid import ProcGrid
from repro.eig.full_to_band import full_to_band_2p5d, grid_delta
from repro.util.matrices import random_symmetric
from repro.util.validation import matrix_bandwidth

from tests.helpers import eig_err


def run(shape, n, b, seed=0, params=None, **kw):
    p = shape[0] * shape[1] * shape[2]
    mach = BSPMachine(p, params)
    grid = ProcGrid(mach, shape)
    a = random_symmetric(n, seed=seed)
    out = full_to_band_2p5d(mach, grid, a, b, **kw)
    return mach, a, out


class TestCorrectness:
    @pytest.mark.parametrize("shape", [(1, 1, 1), (2, 2, 1), (2, 2, 2), (2, 2, 4), (4, 4, 1)])
    def test_bandwidth_and_spectrum(self, shape):
        mach, a, out = run(shape, 48, 8)
        assert matrix_bandwidth(out) <= 8
        assert eig_err(a, out) < 1e-10

    @pytest.mark.parametrize("n,b", [(40, 5), (48, 16), (33, 4), (24, 23)])
    def test_various_bandwidths(self, n, b):
        mach, a, out = run((2, 2, 1), n, b)
        assert matrix_bandwidth(out) <= b
        assert eig_err(a, out) < 1e-10

    def test_output_is_symmetric(self):
        _, _, out = run((2, 2, 1), 32, 4)
        assert np.abs(out - out.T).max() < 1e-12

    def test_rejects_non3d_grid(self):
        mach = BSPMachine(4)
        with pytest.raises(ValueError):
            full_to_band_2p5d(mach, ProcGrid(mach, (2, 2)), np.eye(8), 2)

    def test_rejects_bad_bandwidth(self):
        mach = BSPMachine(4)
        grid = ProcGrid(mach, (2, 2, 1))
        with pytest.raises(ValueError):
            full_to_band_2p5d(mach, grid, random_symmetric(8, 0), 8)

    def test_rejects_asymmetric(self):
        mach = BSPMachine(4)
        grid = ProcGrid(mach, (2, 2, 1))
        with pytest.raises(ValueError):
            full_to_band_2p5d(mach, grid, np.triu(np.ones((8, 8))), 2)


class TestGridDelta:
    def test_delta_half_for_c1(self):
        mach = BSPMachine(16)
        assert grid_delta(ProcGrid(mach, (4, 4, 1))) == pytest.approx(0.5)

    def test_delta_two_thirds_for_cube(self):
        mach = BSPMachine(64)
        assert grid_delta(ProcGrid(mach, (4, 4, 4))) == pytest.approx(2.0 / 3.0)

    def test_single_rank(self):
        mach = BSPMachine(1)
        assert grid_delta(ProcGrid(mach, (1, 1, 1))) == 0.5


class TestCostProfile:
    def test_replication_reduces_w(self):
        """The headline (Lemma IV.1): at fixed p, W drops with c."""
        n, b = 256, 32
        m1, _, _ = run((4, 4, 1), n, b)
        m2, _, _ = run((2, 2, 4), n, b)
        assert m2.cost().W < m1.cost().W

    def test_memory_grows_with_replication(self):
        n, b = 128, 16
        m1, _, _ = run((4, 4, 1), n, b)
        m2, _, _ = run((2, 2, 4), n, b)
        # M = O(n²/q²): q drops 4 -> 2, footprint grows ~4x.
        assert m2.cost().M > 2 * m1.cost().M

    def test_work_efficiency(self):
        n, b, p = 96, 16, 16
        mach, _, _ = run((2, 2, 4), n, b)
        assert mach.cost().total_flops < 30 * 2 * n**3

    def test_small_cache_pays_extra_vertical(self):
        """Lemma IV.1's conditional Q term: H below the replicated footprint
        forces the trailing matrix through memory every panel."""
        n, b, q = 96, 16, 2
        big, _, _ = run((2, 2, 1), n, b, params=MachineParams(cache_words=1e9))
        small, _, _ = run((2, 2, 1), n, b, params=MachineParams(cache_words=100.0))
        extra = small.cost().Q - big.cost().Q
        # The conditional term of Lemma IV.1 is (n/b)·n²/q² per rank.
        predicted = (n / b) * n * n / q**2
        assert extra > 0.25 * predicted

    def test_supersteps_grow_sublinearly_in_n(self):
        m1, _, _ = run((2, 2, 1), 64, 16)
        m2, _, _ = run((2, 2, 1), 128, 32)
        # S depends on panel count and p, not on n for fixed n/b.
        assert m2.cost().S < 2.5 * m1.cost().S
