"""Tests for the eigenvector back-transformation extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.eigvec import symmetric_eig
from repro.util.matrices import (
    clustered_spectrum,
    random_spectrum_symmetric,
    random_symmetric,
    wilkinson,
)


def decomposition_checks(a, dec, tol=1e-8):
    n = a.shape[0]
    scale = max(1.0, np.abs(dec.eigenvalues).max())
    ref = np.linalg.eigvalsh(a)
    assert np.abs(dec.eigenvalues - ref).max() < tol * scale
    resid = np.abs(a @ dec.eigenvectors - dec.eigenvectors * dec.eigenvalues).max()
    assert resid < tol * scale
    orth = np.abs(dec.eigenvectors.T @ dec.eigenvectors - np.eye(n)).max()
    assert orth < tol


class TestSymmetricEig:
    def test_random(self):
        a = random_symmetric(40, seed=1)
        decomposition_checks(a, symmetric_eig(a))

    def test_explicit_bandwidth(self):
        a = random_symmetric(32, seed=2)
        dec = symmetric_eig(a, b=8)
        decomposition_checks(a, dec)
        assert dec.stage_bandwidths == [8, 4, 2, 1]

    def test_wilkinson_clusters(self):
        w = wilkinson(31)
        decomposition_checks(w, symmetric_eig(w), tol=1e-7)

    def test_tight_clusters(self):
        vals = clustered_spectrum(24, n_clusters=3, spread=1e-10, seed=3)
        a = random_spectrum_symmetric(vals, seed=4)
        dec = symmetric_eig(a)
        # Residual and orthogonality are the right metrics for clusters
        # (individual vectors within a cluster are not unique).
        resid = np.abs(a @ dec.eigenvectors - dec.eigenvectors * dec.eigenvalues).max()
        assert resid < 1e-7 * max(1, np.abs(vals).max())
        assert np.abs(dec.eigenvectors.T @ dec.eigenvectors - np.eye(24)).max() < 1e-7

    def test_one_by_one(self):
        dec = symmetric_eig(np.array([[3.0]]))
        assert dec.eigenvalues[0] == 3.0
        assert dec.eigenvectors[0, 0] == 1.0

    def test_diagonal_input(self):
        a = np.diag(np.array([3.0, -1.0, 2.0, 0.5]))
        decomposition_checks(a, symmetric_eig(a), tol=1e-10)

    def test_stage_count_is_logarithmic(self):
        a = random_symmetric(64, seed=5)
        dec = symmetric_eig(a, b=16)
        # b, b/2, ..., 1: log2(b)+1 stages.
        assert dec.n_stages == 5
        assert dec.stage_bandwidths[-1] == 1

    def test_back_transform_cost_linear_in_stages(self):
        """The paper's warning: each extra reduction stage costs O(n³)-class
        work in the back-transformation path — flops_per_stage must all be
        the same order, so total grows ~linearly with the stage count."""
        a = random_symmetric(64, seed=6)
        dec = symmetric_eig(a, b=16)
        n = 64
        for f in dec.flops_per_stage:
            assert f > 0
            assert f < 40 * n**3
        assert sum(dec.flops_per_stage) > dec.n_stages * min(dec.flops_per_stage)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            symmetric_eig(np.triu(np.ones((4, 4))))

    @given(st.integers(4, 28), st.integers(0, 30))
    @settings(max_examples=12, deadline=None)
    def test_property_random(self, n, seed):
        a = random_symmetric(n, seed=seed)
        decomposition_checks(a, symmetric_eig(a), tol=1e-7)
