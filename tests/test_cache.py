"""Tests for the per-rank LRU cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bsp.cache import CacheModel


class TestBasics:
    def test_compulsory_miss_then_hit(self):
        c = CacheModel(1000)
        assert c.access("a", 100) == 100
        assert c.access("a", 100) == 0
        assert c.contains("a")

    def test_write_charges_and_leaves_resident(self):
        c = CacheModel(1000)
        assert c.write("out", 50) == 50
        assert c.access("out", 50) == 0

    def test_eviction_is_lru(self):
        c = CacheModel(100)
        c.access("a", 60)
        c.access("b", 40)  # fills the cache
        c.access("a", 60)  # refresh a
        c.access("c", 40)  # must evict b (LRU), not a
        assert c.contains("a")
        assert not c.contains("b")

    def test_oversized_dataset_streams(self):
        c = CacheModel(10)
        assert c.access("huge", 100) == 100
        assert c.access("huge", 100) == 100  # never resident
        assert c.used_words == 0

    def test_growth_charges_only_delta(self):
        c = CacheModel(1000)
        c.access("a", 100)
        # The resident prefix is reused; only the new 100 words move.
        assert c.access("a", 200) == 100

    def test_shrink_is_a_free_subset_hit(self):
        c = CacheModel(1000)
        c.access("a", 100)
        assert c.access("a", 60) == 0
        # ...and the freed capacity is actually released.
        assert c.used_words == 60

    def test_growth_past_capacity_streams_delta(self):
        c = CacheModel(150)
        c.access("a", 100)
        assert c.access("a", 200) == 100  # delta charged
        assert not c.contains("a")  # too big to stay resident
        assert c.access("a", 200) == 200  # subsequent full stream

    def test_invalidate(self):
        c = CacheModel(1000)
        c.access("a", 10)
        c.invalidate("a")
        assert not c.contains("a")
        assert c.access("a", 10) == 10

    def test_clear(self):
        c = CacheModel(100)
        c.access("a", 10)
        c.clear()
        assert c.used_words == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CacheModel(0)
        c = CacheModel(10)
        with pytest.raises(ValueError):
            c.access("a", -1)
        with pytest.raises(ValueError):
            c.write("a", -1)


class TestCapacityInvariant:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.floats(1, 500)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_used_never_exceeds_capacity(self, ops):
        c = CacheModel(1000)
        for key, words in ops:
            c.access(key, words)
            assert c.used_words <= 1000 + 1e-9

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_total_traffic_bounded_by_accesses(self, keys):
        c = CacheModel(10_000)
        total = sum(c.access(k, 100) for k in keys)
        # With ample capacity, only compulsory misses: one per distinct key.
        assert total == 100 * len(set(keys))
