"""Tests for RankGroup and the event trace."""

import pytest

from repro.bsp import BSPMachine, RankGroup
from repro.bsp.trace import Trace


class TestRankGroup:
    def test_contiguous(self):
        g = RankGroup.contiguous(2, 3)
        assert g.ranks == (2, 3, 4)
        assert g.root == 2

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            RankGroup(())
        with pytest.raises(ValueError):
            RankGroup((1, 1))

    def test_split_even(self):
        parts = RankGroup.contiguous(0, 8).split(4)
        assert [p.size for p in parts] == [2, 2, 2, 2]
        assert parts[1].ranks == (2, 3)

    def test_split_ragged(self):
        parts = RankGroup.contiguous(0, 7).split(3)
        assert [p.size for p in parts] == [3, 2, 2]
        assert sum((p.ranks for p in parts), ()) == tuple(range(7))

    def test_split_rejects_too_many_parts(self):
        with pytest.raises(ValueError, match="cannot split"):
            RankGroup.contiguous(0, 2).split(3)

    def test_take(self):
        g = RankGroup.contiguous(4, 4)
        assert g.take(2).ranks == (4, 5)
        with pytest.raises(ValueError):
            g.take(5)
        with pytest.raises(ValueError):
            g.take(0)

    def test_membership_and_indexing(self):
        g = RankGroup((5, 7, 9))
        assert 7 in g and 6 not in g
        assert g[1] == 7
        assert g[1:].ranks == (7, 9)
        assert g.index_of(9) == 2

    def test_groups_are_hashable_value_types(self):
        assert RankGroup((1, 2)) == RankGroup((1, 2))
        assert hash(RankGroup((1, 2))) == hash(RankGroup((1, 2)))


class TestTrace:
    def test_disabled_trace_records_nothing(self):
        t = Trace(enabled=False)
        t.record("x", (0,))
        assert len(t) == 0

    def test_record_and_query(self):
        t = Trace(enabled=True)
        t.record("bcast", (0, 1), words=10.0, tag="setup")
        t.record("qr", (0,), flops=99.0, tag="panel0")
        t.record("bcast", (2, 3), words=20.0, tag="panel0")
        assert len(t.of_kind("bcast")) == 2
        assert len(t.with_tag("panel0")) == 2
        assert t.tags() == ["setup", "panel0"]

    def test_machine_trace_integration(self):
        m = BSPMachine(4, trace=True)
        m.superstep()
        assert len(m.trace.of_kind("superstep")) == 1

    def test_clear(self):
        t = Trace(enabled=True)
        t.record("x", (0,))
        t.clear()
        assert len(t) == 0
