"""Tests for sequential successive band reduction (the numerical reference
for Algorithms IV.1 / IV.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.band import SymmetricBand
from repro.linalg.sbr import (
    apply_chase_step,
    band_reduce_seq,
    chase_steps,
    eigenvalues_via_sbr,
    full_to_band_seq,
    tridiagonalize_band_seq,
)
from repro.util.matrices import random_banded_symmetric, random_symmetric
from repro.util.validation import matrix_bandwidth

from tests.helpers import eig_err


class TestChaseSteps:
    def test_rejects_bad_bandwidths(self):
        with pytest.raises(ValueError):
            chase_steps(10, 4, 4)  # h must be < b
        with pytest.raises(ValueError):
            chase_steps(10, 12, 2)  # b must be < n

    def test_first_step_is_panel_elimination(self):
        steps = chase_steps(24, 4, 2)
        s = steps[0]
        assert (s.i, s.j) == (1, 1)
        assert s.oqr_r == 2 and s.oqr_c == 0
        assert s.ov == 0

    def test_bulge_handoff_invariant(self):
        # Chase j+1 eliminates columns starting exactly at chase j's rows.
        for steps_by_panel in [chase_steps(36, 6, 3), chase_steps(40, 8, 2)]:
            by_panel = {}
            for s in steps_by_panel:
                by_panel.setdefault(s.i, []).append(s)
            for chain in by_panel.values():
                for s0, s1 in zip(chain, chain[1:]):
                    assert s1.oqr_c == s0.oqr_r

    def test_offsets_in_range(self):
        for s in chase_steps(30, 6, 2):
            assert 0 <= s.oqr_c < s.oqr_r < 30
            assert s.nr >= 1 and s.ncols >= 1
            assert s.oqr_r + s.nr <= 30

    def test_phase_formula(self):
        for s in chase_steps(48, 8, 4):
            assert s.phase == s.j + 2 * (s.i - 1)

    @given(st.integers(10, 40), st.integers(2, 8), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_every_column_block_eliminated(self, n, b, h):
        if not (1 <= h < b < n):
            return
        steps = chase_steps(n, b, h)
        # Panel eliminations (j = 1) must cover all columns up to n-h.
        covered = set()
        for s in steps:
            if s.j == 1:
                covered.update(range(s.oqr_c, s.oqr_c + s.ncols))
        n_panels = -(-n // h) - 1
        assert covered == set(range(min(n - 1, n_panels * h)))


class TestBandReduce:
    @pytest.mark.parametrize("n,b,h", [(24, 4, 2), (24, 4, 1), (32, 8, 4), (30, 6, 3), (30, 6, 2)])
    def test_bandwidth_and_eigenvalues(self, n, b, h):
        a = random_banded_symmetric(n, b, seed=n + b + h)
        out = band_reduce_seq(a, b, h)
        assert matrix_bandwidth(out) <= h
        assert eig_err(a, out) < 1e-10

    def test_ragged_sizes(self):
        # n not divisible by b or h.
        a = random_banded_symmetric(29, 5, seed=1)
        out = band_reduce_seq(a, 5, 2)
        assert matrix_bandwidth(out) <= 2
        assert eig_err(a, out) < 1e-10

    def test_single_chase_step_preserves_eigenvalues(self):
        a = random_banded_symmetric(20, 4, seed=2)
        b_mat = a.copy()
        step = chase_steps(20, 4, 2)[0]
        apply_chase_step(b_mat, step)
        b_mat = (b_mat + b_mat.T) / 2
        assert eig_err(a, b_mat) < 1e-11

    def test_dense_input_with_declared_band_fails_gracefully(self):
        # Reducing a matrix whose actual band-width exceeds `b` is a caller
        # contract violation; the reduction then cannot reach band h.
        a = random_symmetric(16, seed=3)  # dense
        out = band_reduce_seq(a, 4, 2)
        assert matrix_bandwidth(out) > 2  # leftover fill betrays the misuse


class TestFullToBand:
    @pytest.mark.parametrize("n,b", [(24, 4), (32, 8), (29, 6), (16, 15)])
    def test_bandwidth_and_eigenvalues(self, n, b):
        a = random_symmetric(n, seed=n + b)
        out = full_to_band_seq(a, b)
        assert matrix_bandwidth(out) <= b
        assert eig_err(a, out) < 1e-10

    def test_rejects_bad_bandwidth(self):
        a = random_symmetric(8, seed=4)
        with pytest.raises(ValueError):
            full_to_band_seq(a, 0)
        with pytest.raises(ValueError):
            full_to_band_seq(a, 8)

    def test_band_input_is_noop_like(self):
        a = random_banded_symmetric(20, 3, seed=5)
        out = full_to_band_seq(a, 10)
        assert eig_err(a, out) < 1e-11


class TestTridiagonalizeAndPipeline:
    def test_tridiagonalize(self):
        a = random_banded_symmetric(24, 6, seed=6)
        t = tridiagonalize_band_seq(a, 6)
        assert matrix_bandwidth(t) <= 1
        assert eig_err(a, t) < 1e-9

    def test_eigenvalues_via_sbr(self):
        a = random_symmetric(40, seed=7)
        evals = eigenvalues_via_sbr(a)
        assert eig_err(a, evals) < 1e-9

    def test_eigenvalues_via_sbr_small(self):
        a = random_symmetric(3, seed=8)
        assert eig_err(a, eigenvalues_via_sbr(a)) < 1e-12

    def test_eigenvalues_one_by_one(self):
        a = np.array([[5.0]])
        assert eigenvalues_via_sbr(a)[0] == 5.0

    @given(st.integers(6, 28))
    @settings(max_examples=15, deadline=None)
    def test_property_spectrum_preserved(self, n):
        a = random_symmetric(n, seed=n * 7)
        assert eig_err(a, eigenvalues_via_sbr(a)) < 1e-8


class TestSymmetricBandStorage:
    def test_roundtrip(self):
        a = random_banded_symmetric(12, 3, seed=9)
        sb = SymmetricBand.from_dense(a, 3)
        assert np.abs(sb.to_dense() - a).max() < 1e-14
        assert sb.words == 4 * 12

    def test_indexing(self):
        a = random_banded_symmetric(8, 2, seed=10)
        sb = SymmetricBand.from_dense(a, 2)
        assert sb[3, 1] == pytest.approx(a[3, 1])
        assert sb[1, 3] == pytest.approx(a[3, 1])  # symmetric access
        assert sb[0, 7] == 0.0  # outside band reads zero

    def test_write_outside_band_raises(self):
        sb = SymmetricBand(8, 2)
        with pytest.raises(IndexError):
            sb[0, 5] = 1.0

    def test_bandwidth_check_and_shrink(self):
        a = random_banded_symmetric(10, 1, seed=11)
        sb = SymmetricBand.from_dense(a, 4)
        assert sb.bandwidth_check() == 1
        small = sb.shrink(2)
        assert small.b == 2
        with pytest.raises(ValueError):
            small.shrink(0)  # data has band-width 1 > 0

    def test_eigenvalues(self):
        a = random_banded_symmetric(14, 3, seed=12)
        sb = SymmetricBand.from_dense(a, 3)
        assert eig_err(a, sb.eigenvalues()) < 1e-9

    def test_eigenvalues_tridiagonal_and_diagonal(self):
        a = random_banded_symmetric(10, 1, seed=13)
        assert eig_err(a, SymmetricBand.from_dense(a, 1).eigenvalues()) < 1e-10
        d = np.diag(np.arange(5.0))
        assert np.allclose(SymmetricBand.from_dense(d, 0).eigenvalues(), np.arange(5.0))
