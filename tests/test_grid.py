"""Tests for processor grids and the 2.5D factorization helper."""

import numpy as np
import pytest

from repro.bsp import BSPMachine, RankGroup
from repro.dist.grid import ProcGrid, factor_2p5d


class TestFactor2p5d:
    def test_delta_half_gives_c1(self):
        assert factor_2p5d(16, 0.5) == (4, 1)
        assert factor_2p5d(64, 0.5) == (8, 1)

    def test_delta_two_thirds_gives_cube(self):
        assert factor_2p5d(64, 2.0 / 3.0) == (4, 4)
        assert factor_2p5d(8, 2.0 / 3.0) == (2, 2)

    def test_product_is_p(self):
        for p in (1, 4, 8, 16, 36, 64, 128, 256):
            q, c = factor_2p5d(p, 0.6)
            assert q * q * c == p

    def test_rejects_delta_out_of_range(self):
        with pytest.raises(ValueError):
            factor_2p5d(16, 0.8)

    def test_prime_p_falls_back_to_degenerate_grid(self):
        # Every p admits at least the q=1, c=p factorization.
        assert factor_2p5d(7, 0.5) == (1, 7)


class TestProcGrid:
    def test_rank_at_row_major(self):
        m = BSPMachine(12)
        g = ProcGrid(m, (3, 4))
        assert g.rank_at(0, 0) == 0
        assert g.rank_at(0, 3) == 3
        assert g.rank_at(2, 3) == 11

    def test_rank_at_validates(self):
        m = BSPMachine(4)
        g = ProcGrid(m, (2, 2))
        with pytest.raises(ValueError):
            g.rank_at(2, 0)
        with pytest.raises(ValueError):
            g.rank_at(0)

    def test_custom_rank_set(self):
        m = BSPMachine(8)
        g = ProcGrid(m, (2, 2), RankGroup((4, 5, 6, 7)))
        assert g.rank_at(1, 1) == 7

    def test_size_mismatch_rejected(self):
        m = BSPMachine(8)
        with pytest.raises(ValueError):
            ProcGrid(m, (3, 3))  # needs 9 > 8 ranks

    def test_layer_and_fiber(self):
        m = BSPMachine(8)
        g = ProcGrid(m, (2, 2, 2))
        l0 = g.layer(0)
        l1 = g.layer(1)
        assert l0.shape == (2, 2)
        assert set(l0.group()) | set(l1.group()) == set(range(8))
        assert set(l0.group()) & set(l1.group()) == set()
        fiber = g.fiber(1, 1)
        assert fiber.size == 2
        assert set(fiber) == {g.rank_at(1, 1, 0), g.rank_at(1, 1, 1)}

    def test_layers_cover_grid(self):
        m = BSPMachine(27)
        g = ProcGrid(m, (3, 3, 3))
        all_ranks = set()
        for layer in g.layers():
            all_ranks |= set(layer.group())
        assert all_ranks == set(range(27))

    def test_subgrid(self):
        m = BSPMachine(16)
        g = ProcGrid(m, (2, 2, 4))
        sub = g.subgrid(slice(0, 2), slice(0, 1), slice(0, 4))
        assert sub.shape == (2, 1, 4)
        assert sub.size == 8
        assert all(r in g.group() for r in sub.group())

    def test_row_col_groups(self):
        m = BSPMachine(6)
        g = ProcGrid(m, (2, 3))
        assert g.row_group(1).ranks == (3, 4, 5)
        assert g.col_group(2).ranks == (2, 5)

    def test_layer_requires_3d(self):
        m = BSPMachine(4)
        with pytest.raises(ValueError):
            ProcGrid(m, (2, 2)).layer(0)
