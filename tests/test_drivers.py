"""Tests for the complete eigensolvers (Algorithm IV.3 and the baselines)."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.eig import (
    eigensolve_2p5d,
    eigensolve_ca_sbr,
    eigensolve_elpa_like,
    eigensolve_scalapack_like,
)
from repro.eig.driver import default_initial_bandwidth, eigensolve_2p5d_check, finish_sequential
from repro.dist.banded import DistBandMatrix
from repro.util.matrices import (
    random_banded_symmetric,
    random_spectrum_symmetric,
    random_symmetric,
    wilkinson,
)

from tests.helpers import eig_err


class Test2p5dSolver:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_spectrum_across_p(self, p):
        a = random_symmetric(48, seed=p)
        res, err = eigensolve_2p5d_check(BSPMachine(p), a)
        assert err < 1e-8

    @pytest.mark.parametrize("delta", [0.5, 0.58, 2.0 / 3.0])
    def test_spectrum_across_delta(self, delta):
        a = random_symmetric(64, seed=1)
        res, err = eigensolve_2p5d_check(BSPMachine(16), a, delta=delta)
        assert err < 1e-8

    def test_prescribed_spectrum(self):
        d = np.linspace(-5, 5, 32)
        a = random_spectrum_symmetric(d, seed=2)
        res = eigensolve_2p5d(BSPMachine(4), a)
        assert np.abs(res.eigenvalues - d).max() < 1e-8

    def test_wilkinson_clusters(self):
        w = wilkinson(33)
        res = eigensolve_2p5d(BSPMachine(4), w, b0=8)
        assert eig_err(w, res.eigenvalues) < 1e-8

    def test_result_metadata(self):
        res = eigensolve_2p5d(BSPMachine(16), random_symmetric(48, 3), delta=2.0 / 3.0)
        assert res.replication >= 1
        assert 0.5 <= res.delta <= 0.76
        assert res.initial_bandwidth >= 2
        assert res.cost.p == 16
        assert len(res.stages) >= 2
        assert "full_to_band" in res.stages[0][0]
        assert "finish" in res.stages[-1][0]
        assert "total" in res.stage_summary()

    def test_stage_costs_sum_to_total(self):
        res = eigensolve_2p5d(BSPMachine(8), random_symmetric(48, 4))
        stage_flops = sum(rep.total_flops for _, rep in res.stages)
        assert stage_flops == pytest.approx(res.cost.total_flops, rel=1e-9)

    def test_explicit_b0(self):
        res = eigensolve_2p5d(BSPMachine(4), random_symmetric(48, 5), b0=12)
        assert res.initial_bandwidth == 12
        assert eig_err(random_symmetric(48, 5), res.eigenvalues) < 1e-8

    def test_rejects_n_smaller_than_p(self):
        with pytest.raises(ValueError, match="n >= p"):
            eigensolve_2p5d(BSPMachine(64), random_symmetric(8, 0))

    def test_rejects_bad_b0(self):
        with pytest.raises(ValueError):
            eigensolve_2p5d(BSPMachine(4), random_symmetric(16, 0), b0=16)

    def test_default_initial_bandwidth(self):
        b = default_initial_bandwidth(1024, 64, 0.5)
        assert b & (b - 1) == 0  # power of two
        assert 2 <= b <= 512


class TestBaselines:
    def test_scalapack_like(self):
        a = random_symmetric(40, seed=6)
        m = BSPMachine(16)
        ev = eigensolve_scalapack_like(m, a)
        assert eig_err(a, ev) < 1e-9
        assert m.cost().S >= 40  # per-column synchronization

    def test_elpa_like(self):
        a = random_symmetric(48, seed=7)
        m = BSPMachine(16)
        ev = eigensolve_elpa_like(m, a)
        assert eig_err(a, ev) < 1e-8

    def test_elpa_explicit_bandwidth(self):
        a = random_symmetric(48, seed=8)
        ev = eigensolve_elpa_like(BSPMachine(4), a, b=6)
        assert eig_err(a, ev) < 1e-8

    def test_elpa_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            eigensolve_elpa_like(BSPMachine(4), random_symmetric(16, 0), b=16)

    def test_ca_sbr_solver(self):
        a = random_symmetric(48, seed=9)
        m = BSPMachine(16)
        ev = eigensolve_ca_sbr(m, a)
        assert eig_err(a, ev) < 1e-8

    def test_all_solvers_agree(self):
        a = random_symmetric(32, seed=10)
        evs = [
            eigensolve_2p5d(BSPMachine(4), a).eigenvalues,
            eigensolve_scalapack_like(BSPMachine(4), a),
            eigensolve_elpa_like(BSPMachine(4), a),
            eigensolve_ca_sbr(BSPMachine(4), a),
        ]
        for ev in evs[1:]:
            assert np.abs(ev - evs[0]).max() < 1e-8


class TestFinishSequential:
    def test_charges_only_root(self):
        m = BSPMachine(4)
        a = random_banded_symmetric(24, 3, seed=11)
        band = DistBandMatrix(m, a, 3, m.world)
        ev = finish_sequential(m, band)
        assert eig_err(a, ev) < 1e-9
        assert m.counters[0].flops > 0
        assert m.counters[1].flops == 0.0

    def test_tridiagonal_band_skips_reduction(self):
        m = BSPMachine(2)
        a = random_banded_symmetric(16, 1, seed=12)
        band = DistBandMatrix(m, a, 1, m.world)
        ev = finish_sequential(m, band)
        assert eig_err(a, ev) < 1e-10
