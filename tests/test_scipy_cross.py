"""Cross-validation against scipy (an independent oracle from numpy)."""

import numpy as np
import pytest
import scipy.linalg

from repro.linalg.qr import householder_qr
from repro.linalg.sbr import eigenvalues_via_sbr, full_to_band_seq
from repro.linalg.tridiag import sturm_bisection_eigenvalues, tridiagonal_eigenvalues_ql
from repro.util.matrices import random_banded_symmetric, random_symmetric


class TestAgainstScipy:
    def test_tridiagonal_solvers_vs_scipy(self, rng):
        d = rng.standard_normal(30)
        e = rng.standard_normal(29)
        ref = scipy.linalg.eigvalsh_tridiagonal(d, e)
        assert np.abs(sturm_bisection_eigenvalues(d, e) - ref).max() < 1e-9
        assert np.abs(tridiagonal_eigenvalues_ql(d, e) - ref).max() < 1e-9

    def test_full_pipeline_vs_scipy(self):
        a = random_symmetric(36, seed=20)
        ref = scipy.linalg.eigvalsh(a)
        assert np.abs(eigenvalues_via_sbr(a) - ref).max() < 1e-8

    def test_banded_reduction_vs_scipy_eig_banded(self):
        b = 4
        a = random_banded_symmetric(32, b, seed=21)
        # scipy's banded storage: row i holds the i-th subdiagonal.
        bands = np.zeros((b + 1, 32))
        for d_off in range(b + 1):
            bands[d_off, : 32 - d_off] = np.diag(a, -d_off)
        ref = scipy.linalg.eig_banded(bands, lower=True, eigvals_only=True)
        reduced = full_to_band_seq(a, 2)
        got = np.linalg.eigvalsh(reduced)
        assert np.abs(got - ref).max() < 1e-9

    def test_qr_matches_scipy_up_to_signs(self, rng):
        a = rng.standard_normal((20, 8))
        q1, r1 = householder_qr(a)
        q2, r2 = scipy.linalg.qr(a, mode="economic")
        s = np.sign(np.diag(r1)) * np.sign(np.diag(r2))
        assert np.abs(r1 - s[:, None] * r2).max() < 1e-10
        assert np.abs(q1 - q2 * s).max() < 1e-10
