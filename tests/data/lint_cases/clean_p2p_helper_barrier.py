"""REPRO004 regression (false-positive fix): the superstep barrier that
closes a p2p pair may live in a helper called by the sending function, or
in every caller of a send-only helper.  Both patterns are clean."""


def _sync(machine, pair):
    machine.superstep(pair, 1)


def exchange_via_helper(machine, pair, src, dst, words):
    """The barrier is inside _sync(): no REPRO004."""
    machine.p2p(src, dst, words)
    _sync(machine, pair)


def _send_only(machine, src, dst, words):
    """Send-only helper: every caller below closes the barrier."""
    machine.p2p(src, dst, words)


def caller_closes_barrier(machine, pair, src, dst, words):
    _send_only(machine, src, dst, words)
    machine.superstep(pair, 1)


def other_caller_also_closes(machine, pair, src, dst, words):
    _send_only(machine, src, dst, words)
    _sync(machine, pair)
