"""Known-clean BSP idioms (mirrors blocks/ and dist/): the dataflow rules
must stay silent on every function in this module."""

import numpy as np


def scatter_blocks(machine, grid, a):
    """Per-rank block distribution mediated by a charged collective."""
    group = grid.group()
    blocks = {}
    for idx, rank in enumerate(group):
        blocks[rank] = a[idx :: len(group), :].copy()
        machine.note_memory(rank, float(blocks[rank].size))
    machine.charge_comm_batch(group, float(a.size), float(a.size))
    machine.superstep(group, 1)
    return blocks


def accumulate_partials(machine, group, partials):
    """Reduction over per-rank partials, charged and barriered."""
    total = None
    for rank in group:
        part = partials[rank]
        total = part if total is None else total + part
    machine.charge_comm_batch(group, float(len(group)), 0.0)
    machine.superstep(group, 1)
    return total


def ring_shift(machine, group, buffers):
    """p2p ring exchange: every send is closed by the barrier."""
    for rank in group:
        machine.p2p(rank, (rank + 1) % len(group), float(buffers[rank].size))
    machine.superstep(group, len(group))
    for rank in group:
        buffers[rank] = buffers[(rank - 1) % len(group)].copy()
    return buffers


def owner_slices(machine, grid, a, b):
    """Streaming panel walk over local (non-rank-indexed) arrays."""
    n = a.shape[0]
    c0 = 0
    out = np.zeros((n, b))
    while n - c0 > b:
        out[c0 : c0 + b, :] = a[c0 :, c0 : c0 + b][:b, :]
        machine.mem_stream_group(grid.group(), float(n * b))
        c0 += b
    return out
