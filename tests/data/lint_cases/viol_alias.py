"""REPRO008 fixtures: rank-indexed stores that alias live buffers."""


def share_one_buffer(dist, group):
    """True positive: every rank's slot points at the same '.data' storage."""
    blocks = {}
    for rank in group:
        blocks[rank] = dist.data  # MARK:alias-store
    return blocks


def alias_neighbor_slot(group, blocks):
    """True positive: rank slots rebound to another slot's storage."""
    for rank in group:
        blocks[rank] = blocks[0]  # MARK:alias-neighbor
    return blocks


def copy_per_rank(machine, dist, group):
    """Known clean: each rank gets a charged private copy."""
    blocks = {}
    for rank in group:
        blocks[rank] = dist.data.copy()
    machine.charge_comm_batch(group, float(dist.data.size), 0.0)
    machine.superstep(group, 1)
    return blocks


def replicate_with_charge(machine, dist, group):
    """Known clean: aliasing is fine when the replication is charged —
    the simulator's collectives share storage deliberately."""
    blocks = {}
    machine.charge_comm_batch(group, float(dist.data.size), float(dist.data.size))
    machine.superstep(group, 1)
    for rank in group:
        blocks[rank] = dist.data
    return blocks
