"""REPRO009 fixtures: rank-owned '.data' buffers escaping uncharged contexts."""


def record_somewhere(entry):
    print("block", entry)


def leak_return(dist):
    """True positive: a live view of rank storage is returned, uncharged."""
    view = dist.data[::2, :]
    return view  # MARK:escape-return


def hand_to_logger(dist):
    """True positive: the raw buffer is handed to an uncharging sink."""
    record_somewhere(dist.data)  # MARK:escape-arg
    return None


def capture_in_closure(dist):
    """True positive: a nested reader keeps the buffer alive, uncharged."""
    local = dist.data

    def reader():
        return local[0]  # MARK:escape-closure

    return reader


class BlockCache:
    def stash(self, dist):
        """True positive: the transposed view outlives the call."""
        self.block = dist.data.T  # MARK:escape-attribute
        return self.block


def charged_gather(machine, dist, group):
    """Known clean: the escape is paid for by a charged collective."""
    block = dist.data[:1, :]
    machine.charge_comm_batch(group, float(block.size), 0.0)
    machine.superstep(group, 1)
    return block


def export_copy(machine, dist, group):
    """Known clean: a charged copy terminates the buffer's provenance."""
    out = dist.data.copy()
    machine.charge_comm_batch(group, float(out.size), 0.0)
    machine.superstep(group, 1)
    return out
