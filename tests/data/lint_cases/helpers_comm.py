"""Charged communication helpers for the cross-module dataflow fixtures."""


def exchange_halo(machine, group):
    """Move every rank's boundary row to its neighbor (charged + barriered)."""
    machine.charge_comm_batch(group, 16.0, 16.0)
    machine.superstep(group, 1)


def close_superstep(machine, group):
    """Barrier-only helper: closes whatever sends are in flight."""
    machine.superstep(group, 1)
