"""Asymptotic-regression fixture for the cost certifier (REPRO010).

This variant of full-to-band applies the two-sided trailing update
*eagerly* on every panel instead of aggregating (U, V) — numerically
identical, but each panel now touches the whole trailing submatrix, so
the words moved grow from the lemma's Theta(n^2 / p^delta) to
Theta(n^3 / (b p^delta)).  certify_source("full_to_band_2p5d", ...) must
reject this file with REPRO010 on the words metric (the flop degree is
unchanged and must still pass).
"""

from repro.blocks.carma import carma_matmul
from repro.blocks.rect_qr import rect_qr
from repro.blocks.streaming import streaming_matmul


def full_to_band_2p5d(machine, grid, a, b, w=None, tag="f2b-eager"):
    n = a.shape[0]
    p = grid.size
    group = grid.group()
    c0 = 0
    while n - c0 > b:
        panel = a[c0:, c0 : c0 + b].copy()
        a21 = panel[b:, :]
        q1, r1, t1 = rect_qr(machine, group, a21)
        a22 = a[c0 + b :, c0 + b :]
        v1 = carma_matmul(machine, group, a22, q1)
        # BUG (deliberate): the full trailing update every panel — the
        # aggregation of (U, V) across panels is what the lemma requires
        upd = streaming_matmul(machine, grid, q1, v1.T)
        c0 += b
    return a
