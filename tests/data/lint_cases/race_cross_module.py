"""Cross-module REPRO006 fixture: the mediating collective lives in another
module (helpers_comm).  Linted alone this function looks like a race; the
--dataflow call graph resolves exchange_halo() and keeps it clean."""

from helpers_comm import exchange_halo


def make_block(rank):
    return [[float(rank)]]


def neighbor_update_via_helper(machine, buffers, group):
    for rank in group:
        buffers[rank] = make_block(rank)
    exchange_halo(machine, group)
    for rank in group:
        buffers[rank] = buffers[rank] + buffers[(rank + 1) % len(group)]
    return buffers
