"""REPRO006 fixtures: cross-rank reads with and without mediation."""


def make_block(rank):
    return [[float(rank)]]


def unmediated_neighbor_read(buffers, group):
    """True positive: folds in the neighbor's buffer, never communicates."""
    for rank in group:
        buffers[rank] = make_block(rank)
    for rank in group:
        buffers[rank] = buffers[rank] + buffers[(rank + 1) % len(group)]  # MARK:cross-read
    return buffers


def mediated_neighbor_read(machine, buffers, group):
    """Known clean: the halo moved through a charged collective first."""
    for rank in group:
        buffers[rank] = make_block(rank)
    machine.charge_comm_batch(group, 8.0, 8.0)
    machine.superstep(group, 1)
    for rank in group:
        buffers[rank] = buffers[rank] + buffers[(rank + 1) % len(group)]
    return buffers


def pragma_waived_read(buffers, group):
    """Suppressed: the caller exchanged the halo before entry."""
    for rank in group:
        buffers[rank] = make_block(rank)
    for rank in group:
        buffers[rank] = buffers[rank] + buffers[(rank - 1) % len(group)]  # cost: free(halo exchanged by the caller before entry)
    return buffers


def nested_grid_read(buffers, row_group, col_group):
    """True positive: reads a row peer's buffer inside the column loop."""
    for r in row_group:
        buffers[r] = make_block(r)
    for r in row_group:
        for s in col_group:
            buffers[s] = buffers[r] + make_block(s)  # MARK:foreign-rank-read
    return buffers
