"""REPRO003 blind-spot fixtures: copy forms the seed analyzer missed."""

import numpy as np


def blindspot_np_copy(dist):
    """np.copy(x.data) is a copy even with no .copy() method call."""
    return np.copy(dist.data)  # MARK:np-copy


def blindspot_np_array(dist):
    """np.array(...) duplicates the buffer."""
    dup = np.array(dist.data)  # MARK:np-array
    return dup


def blindspot_slice_copy(dist, rows):
    """A sliced '.data[...]' copy still moves words."""
    return dist.data[rows, :].copy()  # MARK:slice-copy


def blindspot_asarray(dist):
    """np.asarray of a '.data' expression (may copy on dtype/layout)."""
    flat = np.asarray(dist.data)  # MARK:asarray-copy
    return float(flat[0, 0])


def blindspot_derived_copy(dist):
    """A tracked alias of '.data' copied through a plain name."""
    view = dist.data
    return view.copy()  # MARK:derived-copy


def charged_np_copy(machine, dist, group):
    """Known clean: the copy's words are charged."""
    dup = np.copy(dist.data)
    machine.charge_comm_batch(group, float(dup.size), 0.0)
    machine.superstep(group, 1)
    return dup
