"""REPRO007 fixtures: writes to buffers that are still in flight."""


def overwrite_in_flight(machine, group, left, right, payload):
    """True positive: the payload is mutated before the barrier lands."""
    machine.p2p(left, right, float(payload.size))
    payload[0] = 0.0  # MARK:write-after-send
    machine.superstep(group, 1)


def raw_send_overwrite(machine, group, owner, buf):
    """True positive: raw charge_comm send, then an in-place '+='."""
    machine.charge_comm(sends={owner: float(buf.size)})
    buf += 1.0  # MARK:aug-write-after-send
    machine.superstep(group, 1)


def barrier_then_write(machine, group, left, right, payload):
    """Known clean: the superstep closes the send before the write."""
    machine.p2p(left, right, float(payload.size))
    machine.superstep(group, 1)
    payload[0] = 0.0


def write_after_helper_barrier(machine, group, left, right, payload):
    """Known clean: the barrier lives in a helper the call graph resolves."""
    machine.p2p(left, right, float(payload.size))
    _close(machine, group)
    payload[0] = 0.0


def _close(machine, group):
    machine.superstep(group, 1)


def write_other_buffer_in_flight(machine, group, left, right, payload, scratch):
    """Known clean: only an unrelated buffer is written while in flight."""
    machine.p2p(left, right, float(payload.size))
    scratch[0] = float(scratch.size)
    machine.superstep(group, 1)
