"""Fixture: raw dense math that must be flagged (REPRO001)."""

import numpy as np


def leaky_product(a, b):
    c = a @ b  # MARK:matmul-op
    d = np.dot(a, b)  # MARK:np-dot
    return c + d
