"""Fixture: direct linalg calls that must be flagged (REPRO002)."""

import numpy as np
from numpy.linalg import svd


def leaky_reference(a):
    evals = np.linalg.eigvalsh(a)  # MARK:eigvalsh
    u, s, vt = svd(a)  # MARK:from-import
    return evals, s
