"""Regression fixture: the pre-fix ``eig/scalapack_like.py`` cost leak.

Condensed copy of the trailing-matrix update as it stood before the fix
routed it through ``repro.bsp.kernels``: the matvec, the ``np.dot(w, v)``
correction, and the outer-product rank-2 update performed raw numpy math
while only part of the work was charged.  The linter must keep detecting
this exact shape so the leak cannot regress.
"""

import numpy as np


def trailing_update_prefix(machine, group, a, j, v, tau, p):
    nbar = a.shape[0] - j - 1
    machine.charge_flops(group, 2.0 * nbar * nbar / p)
    if tau != 0.0:
        w = tau * (a[j + 1 :, j + 1 :] @ v)  # MARK:leak-matvec
        w -= (0.5 * tau * np.dot(w, v)) * v  # MARK:leak-dot
        a[j + 1 :, j + 1 :] -= np.outer(v, w) + np.outer(w, v)  # MARK:leak-outer
    return a
