"""Fixture: p2p send/recv pair with no superstep barrier (REPRO004)."""

from repro.bsp import collectives


def leaky_exchange(machine):
    collectives.p2p(machine, 0, 1, 8.0)  # MARK:unbarriered-p2p


def barriered_exchange(machine):
    collectives.p2p(machine, 0, 1, 8.0)
    machine.superstep(machine.world, 1)
