"""Fixture: uncounted rank-owned buffer copy (REPRO003).

``leak_window`` copies the distributed container's ``.data`` without any
communication charge; ``charged_window`` does the same copy but books the
transfer, so only the former is flagged.
"""


class FakeDist:
    def __init__(self, data):
        self.data = data

    def leak_window(self, rows):
        return self.data[rows].copy()  # MARK:uncounted-copy

    def charged_window(self, machine, group, rows):
        window = self.data[rows].copy()
        machine.charge_comm(sends={0: 1.0}, recvs={1: 1.0})
        machine.superstep(group, 1)
        return window
