"""Fixture: per-line cost pragmas waive findings (must lint clean)."""

import numpy as np


def justified(a, b):
    c = a @ b  # cost: free(model-only product; flops charged by the caller)
    return np.dot(c, c)  # cost: free(verification cross-check, never charged)
