"""Fixture: malformed pragmas are findings themselves (REPRO005) and do
not waive the operation they annotate."""

import numpy as np


def bad(a, b):
    c = a @ b  # cost: free()
    d = np.dot(a, b)  # cost: gratis(wrong keyword)
    return c + d
