"""Fixture: a module-level waiver covers every finding in the file."""
# cost: free-module(sequential numerics fixture; charged by hypothetical callers)

import numpy as np


def anything(a, b):
    return a @ np.dot(a, b)
