"""The documented entry points must work exactly as written."""

import pathlib
import re

import numpy as np


def test_readme_quickstart_snippet_runs():
    """Execute the README's quickstart block verbatim."""
    readme = (pathlib.Path(__file__).parent.parent / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
    assert match, "README must contain a python quickstart block"
    ns: dict = {}
    exec(match.group(1), ns)  # noqa: S102 — executing our own README
    assert "result" in ns
    assert ns["result"].eigenvalues.shape == (256,)


def test_package_docstring_snippet_runs():
    import repro

    match = re.search(r"Quickstart::\n\n(.*?)\n\nPackage map", repro.__doc__, re.DOTALL)
    assert match
    code = "\n".join(line[4:] for line in match.group(1).splitlines())
    ns: dict = {}
    exec(code, ns)  # noqa: S102
    assert ns["result"].cost.W > 0


def test_version_consistency():
    import repro

    pyproject = (pathlib.Path(__file__).parent.parent / "pyproject.toml").read_text()
    assert f'version = "{repro.__version__}"' in pyproject


def test_design_md_names_real_modules():
    """Every module path DESIGN.md's inventory cites must exist."""
    root = pathlib.Path(__file__).parent.parent
    design = (root / "DESIGN.md").read_text()
    for mod in re.findall(r"`((?:bsp|dist|linalg|blocks|eig|model|report|util)/\w+\.py)`", design):
        assert (root / "src" / "repro" / mod).exists(), f"DESIGN.md cites missing {mod}"
