"""Tests for the persistent δ-autotuning cache (``repro.serve.cache``)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.bsp.params import MachineParams
from repro.model.tuning import best_delta
from repro.serve.cache import (
    CACHE_VERSION,
    TuningCache,
    cache_key,
    cached_best_delta,
    cached_replan_delta,
    model_fingerprint,
)

SRC_DIR = str(Path(repro.__file__).parents[1])


def make_params(**overrides) -> MachineParams:
    base = dict(gamma=1.0, beta=20.0, nu=2.0, alpha=3000.0, memory_words=float(2**20))
    base.update(overrides)
    return MachineParams(**base)


class TestKeying:
    def test_params_enter_the_key(self):
        a = cache_key("best_delta", "eig2p5d", 64, 16, make_params())
        b = cache_key("best_delta", "eig2p5d", 64, 16, make_params(beta=21.0))
        assert a != b

    def test_shape_and_kind_enter_the_key(self):
        p = make_params()
        keys = {
            cache_key("best_delta", "eig2p5d", 64, 16, p),
            cache_key("best_delta", "eig2p5d", 64, 8, p),
            cache_key("best_delta", "eig2p5d", 32, 16, p),
            cache_key("plan", "eig2p5d", 64, 16, p),
            cache_key("best_delta", "ca_sbr", 64, 16, p),
        }
        assert len(keys) == 5

    def test_machine_param_change_invalidates_per_key(self):
        """Changing any machine parameter misses — the old entry is unreachable."""
        cache = TuningCache()
        params = make_params()
        delta, t = cached_best_delta(cache, 64, 16, params)
        assert cache.stats.misses == 1
        # same shape, different α: must re-plan, not reuse the stale δ
        cached_best_delta(cache, 64, 16, make_params(alpha=1.0))
        assert cache.stats.misses == 2
        # and the original shape still hits
        assert cached_best_delta(cache, 64, 16, params) == (delta, t)
        assert cache.stats.hits == 1


class TestPersistence:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        params = make_params()
        first = TuningCache(path)
        delta, t = cached_best_delta(first, 48, 8, params)
        first.save()

        second = TuningCache(path)
        assert second.loaded_entries == 1
        assert cached_best_delta(second, 48, 8, params) == (delta, t)
        assert second.stats.hits == 1 and second.stats.misses == 0

    def test_round_trip_across_processes(self, tmp_path):
        """A store written by another interpreter warms this one."""
        path = tmp_path / "cache.json"
        script = (
            "from repro.serve.cache import TuningCache, cached_best_delta\n"
            "from repro.bsp.params import MachineParams\n"
            "p = MachineParams(gamma=1.0, beta=20.0, nu=2.0, alpha=3000.0,\n"
            "                  memory_words=float(2**20))\n"
            f"c = TuningCache({str(path)!r})\n"
            "print(cached_best_delta(c, 48, 8, p))\n"
            "c.save()\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr

        cache = TuningCache(path)
        params = make_params()
        got = cached_best_delta(cache, 48, 8, params)
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        # the child printed the tuple it computed; ours must match it
        assert str(got) == proc.stdout.strip()
        assert got == best_delta(48, 8, params)

    def test_save_is_atomic_no_temp_litter(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cached_best_delta(cache, 32, 4, make_params())
        cache.save()
        cache.save()
        assert [f.name for f in tmp_path.iterdir()] == ["cache.json"]
        assert json.loads(path.read_text())["version"] == CACHE_VERSION

    def test_in_memory_cache_save_is_noop(self):
        cache = TuningCache()
        assert cache.save() is None


class TestRecovery:
    def test_missing_file_is_a_cold_start(self, tmp_path):
        cache = TuningCache(tmp_path / "absent.json")
        assert len(cache) == 0
        assert cache.stats.load_failures == 0

    def test_truncated_store_recovers_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        full = TuningCache(path)
        cached_best_delta(full, 48, 8, make_params())
        full.save()
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # torn write / disk-full

        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.stats.load_failures == 1
        # still fully usable: plans fresh, then persists a clean store
        cached_best_delta(cache, 48, 8, make_params())
        cache.save()
        assert TuningCache(path).loaded_entries > 0

    @pytest.mark.parametrize(
        "blob",
        [
            "not json at all{{{",
            '"a bare string"',
            json.dumps({"version": "something/else", "entries": {}}),
            json.dumps({"version": CACHE_VERSION}),  # fingerprint + entries missing
        ],
    )
    def test_corrupt_or_foreign_stores_recover_empty(self, tmp_path, blob):
        path = tmp_path / "cache.json"
        path.write_text(blob)
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.stats.load_failures + cache.stats.stale_drops == 1

    def test_model_fingerprint_change_discards_store(self, tmp_path):
        """A store tuned under an older cost model is dropped wholesale."""
        path = tmp_path / "cache.json"
        old = TuningCache(path, fingerprint="feedfacedeadbeef")
        old.put("plan|eig2p5d|n=64|p=16|stale", {"p": 16, "delta": 0.9})
        old.save()

        cache = TuningCache(path)  # current model fingerprint
        assert len(cache) == 0
        assert cache.stats.stale_drops == 1
        assert cache.stats.load_failures == 0

    def test_fingerprint_is_stable_within_a_model(self):
        assert model_fingerprint() == model_fingerprint()


class TestMemoization:
    def test_infeasible_shape_negatively_cached(self):
        cache = TuningCache()
        tiny = make_params(memory_words=64.0)
        with pytest.raises(ValueError) as first:
            cached_best_delta(cache, 256, 4, tiny)
        with pytest.raises(ValueError) as second:
            cached_best_delta(cache, 256, 4, tiny)
        # the replay serves the original message from the store
        assert str(second.value) == str(first.value)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_replan_delta_is_total_and_memoized(self):
        cache = TuningCache()
        tiny = make_params(memory_words=64.0)
        assert cached_replan_delta(cache, 256, 1, make_params()) == 0.5
        assert cached_replan_delta(cache, 256, 4, tiny) == 0.5  # infeasible -> fallback
        d = cached_replan_delta(cache, 64, 16, make_params())
        assert cached_replan_delta(cache, 64, 16, make_params()) == d

    @given(
        n=st.sampled_from([8, 12, 16, 24, 32, 48, 64, 96]),
        p=st.sampled_from([1, 2, 4, 8, 16]),
        alpha=st.sampled_from([1.0, 100.0, 3000.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_cached_equals_fresh(self, n, p, alpha):
        """Property: a cache hit returns exactly what a fresh sweep would."""
        params = make_params(alpha=alpha)
        cache = TuningCache()
        try:
            fresh = best_delta(n, p, params)
        except ValueError:
            with pytest.raises(ValueError):
                cached_best_delta(cache, n, p, params)
            return
        assert cached_best_delta(cache, n, p, params) == fresh  # miss path
        assert cached_best_delta(cache, n, p, params) == fresh  # hit path
        assert cache.stats.hits == 1
