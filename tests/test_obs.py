"""Tests for the unified service telemetry layer (``repro.obs``).

The load-bearing guarantees, in order of importance:

1. **Strict no-op when disabled** — a service run with telemetry attached
   produces byte-identical deterministic summaries, spectra, and journal
   bytes to an unobserved run (and the pinned solver trace regenerates
   byte-identical after the ``span_event_args`` refactor).
2. **Determinism when enabled** — two telemetry-on runs of the same
   seeded workload produce identical event logs, telemetry documents,
   merged Perfetto traces, and dashboards.
3. The solver spans attached to each attempt *tile* the owning service
   slice exactly (solve model time == service time).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.bsp.machine import BSPMachine
from repro.cli import main
from repro.metrics.sketch import LatencySketch
from repro.obs import (
    NO_TELEMETRY,
    Gauge,
    SeriesRegistry,
    Telemetry,
    build_dash_html,
    build_telemetry_doc,
    check_telemetry,
    load_telemetry,
    merged_trace,
    read_event_log,
    write_dash,
    write_merged_trace,
    write_telemetry,
)
from repro.serve import EigenService, MachinePool, TuningCache, mixed_workload
from repro.serve import bench as serve_bench
from repro.serve.resilience import AdmissionPolicy, ResiliencePolicy
from repro.trace import write_chrome_trace
from repro.util.matrices import random_symmetric

PARAMS = serve_bench.SERVE_PARAMS

REPO = Path(__file__).resolve().parents[1]


def small_workload(jobs=10, seed=7):
    return mixed_workload(
        total_jobs=jobs, seed=seed, scf_iterations=2, kpoint_sizes=(12, 16)
    )


def run_service(
    telemetry=None, jobs=10, seed=7, scenario=None, journal=None, policy=None
):
    pool = MachinePool(2, 16, PARAMS)
    service = EigenService(
        pool, TuningCache(), telemetry=telemetry, scenario=scenario,
        journal=journal, policy=policy,
    )
    return service.run_workload(small_workload(jobs, seed)), pool


@pytest.fixture(scope="module")
def observed():
    """One shared telemetry-on run of the small clean workload."""
    telemetry = Telemetry(capture_solver_spans=True)
    report, pool = run_service(telemetry)
    return report, pool, telemetry


@pytest.fixture(scope="module")
def tdoc(observed):
    _, _, telemetry = observed
    return build_telemetry_doc(telemetry, config={"suite": "test"})


# ------------------------------------------------------------------ #
# latency sketch


class TestLatencySketch:
    def test_quantiles_within_relative_accuracy(self):
        sk = LatencySketch(rel_accuracy=0.01)
        values = [float(v) for v in range(1, 2001)]
        for v in values:
            sk.observe(v)
        for q in (0.5, 0.9, 0.99):
            exact = values[min(len(values) - 1, math.ceil(q * len(values)) - 1)]
            got = sk.quantile(q)
            assert abs(got - exact) / exact < 0.03

    def test_order_independent(self):
        a, b = LatencySketch(), LatencySketch()
        vals = [3.7, 1200.0, 0.9, 55.0, 55.0, 3.7e6]
        for v in vals:
            a.observe(v)
        for v in reversed(vals):
            b.observe(v)
        assert a.as_dict() == b.as_dict()

    def test_merge_equals_combined(self):
        a, b, both = LatencySketch(), LatencySketch(), LatencySketch()
        for i, v in enumerate([1.0, 10.0, 100.0, 42.0, 7.0]):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.as_dict() == both.as_dict()

    def test_dict_round_trip_exact(self):
        sk = LatencySketch()
        for v in (0.25, 3.0, 3.0, 9999.5):
            sk.observe(v)
        doc = json.loads(json.dumps(sk.as_dict()))
        assert LatencySketch.from_dict(doc).as_dict() == sk.as_dict()


class TestSeries:
    def test_gauge_samples_only_changes(self):
        g = Gauge("queue")
        for t, v in [(0.0, 0), (1.0, 0), (2.0, 3), (3.0, 3), (4.0, 1)]:
            g.sample(t, v)
        assert g.samples == [(0.0, 0), (2.0, 3), (4.0, 1)]
        assert g.last == 1 and g.max == 3

    def test_registry_digest_is_stable(self):
        def build():
            reg = SeriesRegistry()
            reg.counter_inc("jobs")
            reg.counter_inc("jobs", 2)
            reg.gauge("depth", 0.0, 4)
            reg.gauge("depth", 1.0, 2)
            return reg.as_dict()

        assert build() == build()
        assert build()["counters"]["jobs"] == 3


# ------------------------------------------------------------------ #
# the strict no-op guarantee


class TestStrictNoOp:
    def test_no_telemetry_singleton_is_inert(self):
        assert not NO_TELEMETRY.enabled
        assert not NO_TELEMETRY.capture_solver_spans
        NO_TELEMETRY.emit("submit", 0.0, job=1)  # all hooks are no-ops
        NO_TELEMETRY.counter("x")
        NO_TELEMETRY.gauge("g", 0.0, 1)
        NO_TELEMETRY.observe_latency("batch", 1.0)

    def test_observed_run_is_byte_identical_to_unobserved(self, observed):
        report, _, _ = observed
        clean, _ = run_service(telemetry=None)
        assert serve_bench.deterministic_summary(
            report.summary()
        ) == serve_bench.deterministic_summary(clean.summary())
        for a, b in zip(clean.results, report.results):
            assert np.array_equal(a.eigenvalues, b.eigenvalues)

    def test_span_capture_does_not_change_solver_results(self):
        """Engine-level identity: the spans=True machine the telemetry
        path builds produces bit-identical eigenvalues and cost totals
        (the fact that lets solver spans ride a gated pass)."""
        from repro.eig import solve_by_name

        a = random_symmetric(96, seed=3)
        res = {}
        for spans in (False, True):
            machine = BSPMachine(16, PARAMS, spans=spans)
            r = solve_by_name("eig2p5d", machine, a, 2.0 / 3.0)
            cost = machine.cost()
            res[spans] = (r.eigenvalues, cost.total_flops,
                          cost.total_words, cost.supersteps)
        assert np.array_equal(res[False][0], res[True][0])
        assert res[False][1:] == res[True][1:]

    def test_pinned_trace_regenerates_byte_identical(self, tmp_path):
        """The span_event_args refactor left the committed pinned trace
        byte-for-byte unchanged."""
        from repro.eig import eigensolve_2p5d

        committed = REPO / "benchmarks" / "results" / "trace_eig_n96_p16.json"
        if not committed.is_file():
            pytest.skip("no committed pinned trace")
        a = random_symmetric(96, seed=3)
        machine = BSPMachine(16, spans=True)
        eigensolve_2p5d(machine, a, delta=2.0 / 3.0)
        fresh = write_chrome_trace(
            machine.spans, tmp_path / "t.json", label="eigensolve_2p5d n=96 p=16"
        )
        assert fresh.read_bytes() == committed.read_bytes()

    def test_journal_bytes_identical_with_telemetry_on(self, tmp_path):
        j_off, j_on = tmp_path / "off.jsonl", tmp_path / "on.jsonl"
        run_service(telemetry=None, journal=j_off)
        run_service(telemetry=Telemetry(capture_solver_spans=True), journal=j_on)
        assert j_on.read_bytes() == j_off.read_bytes()
        assert "solver_spans" not in j_on.read_text()


# ------------------------------------------------------------------ #
# determinism when enabled


class TestDeterminism:
    def test_two_observed_runs_produce_identical_event_logs(self, observed, tmp_path):
        _, _, first = observed
        second = Telemetry(capture_solver_spans=True)
        run_service(second)
        assert second.event_log_lines() == first.event_log_lines()
        path = second.write_event_log(tmp_path / "events.jsonl")
        assert read_event_log(path) == second.events

    def test_telemetry_docs_and_dash_identical(self, observed, tdoc):
        second = Telemetry(capture_solver_spans=True)
        _, pool = run_service(second)
        doc2 = build_telemetry_doc(second, config={"suite": "test"})
        assert doc2 == tdoc
        assert build_dash_html(doc2) == build_dash_html(tdoc)
        _, _, first = observed
        assert merged_trace(second, pool=pool) == merged_trace(first, pool=pool)


# ------------------------------------------------------------------ #
# lifecycle events


class TestLifecycleEvents:
    def test_clean_run_covers_the_lifecycle(self, observed, tdoc):
        report, _, telemetry = observed
        by_kind = tdoc["events"]["by_kind"]
        jobs = report.jobs
        for kind in ("submit", "plan", "dispatch", "attempt_end", "terminal"):
            assert by_kind[kind] == jobs
        seqs = [e["seq"] for e in telemetry.events]
        assert seqs == sorted(seqs) == list(range(len(seqs)))
        # timestamps are monotone within each kind (the log interleaves
        # the up-front planning loop with the event loop, so global order
        # is by seq, not t)
        for kind in ("submit", "plan", "dispatch", "terminal"):
            ts = [e["t"] for e in telemetry.events_of(kind)]
            assert ts == sorted(ts)

    def test_terminal_latency_is_finish_minus_arrival(self, observed):
        report, _, telemetry = observed
        verdicts = {v.job_id: v for v in report.schedule.jobs}
        for e in telemetry.events_of("terminal"):
            v = verdicts[e["job"]]
            assert e["latency"] == v.finish - v.arrival

    def test_flaky_machine_records_breaker_transitions(self):
        telemetry = Telemetry(capture_solver_spans=False)
        run_service(telemetry, jobs=16, scenario="flaky-machine")
        states = [
            (e["prev"], e["state"]) for e in telemetry.events_of("breaker")
        ]
        assert ("closed", "open") in states
        assert telemetry.series.counters.get("quarantines", 0) >= 1
        # the breaker gauge tracked the transitions too
        codes = {
            v for g in telemetry.series.gauges.values()
            for _, v in g.samples if g.name.endswith("/breaker")
        }
        assert 2 in codes  # open

    def test_straggler_records_hedges(self):
        from repro.serve.resilience import HedgePolicy

        telemetry = Telemetry(capture_solver_spans=False)
        run_service(
            telemetry, jobs=24, scenario="straggler",
            policy=ResiliencePolicy(
                hedge=HedgePolicy(percentile=90.0, min_observations=8)
            ),
        )
        assert telemetry.events_of("hedge_scheduled")
        assert telemetry.series.counters.get("hedges", 0) >= 1

    def test_shed_jobs_emit_shed_events(self):
        telemetry = Telemetry(capture_solver_spans=False)
        pool = MachinePool(1, 8, PARAMS)
        policy = ResiliencePolicy(admission=AdmissionPolicy(queue_limit=1))
        service = EigenService(
            pool, TuningCache(), telemetry=telemetry, policy=policy
        )
        report = service.run_workload(small_workload(jobs=12))
        if report.shed_jobs:
            assert len(telemetry.events_of("shed")) == report.shed_jobs
            assert telemetry.series.counters["sheds"] == report.shed_jobs


# ------------------------------------------------------------------ #
# solver spans nested under service attempts


class TestSolverSpans:
    def test_every_clean_attempt_carries_spans(self, observed):
        report, _, telemetry = observed
        assert len(telemetry.solver) == report.jobs
        assert all(v["events"] for v in telemetry.solver.values())

    def test_solver_timeline_tiles_the_service_slice(self, observed):
        """Solve model time == service time: the solver span timeline,
        offset by the attempt start, ends exactly at the attempt finish."""
        _, _, telemetry = observed
        spans = {
            (str(s["job"]), s["attempt"]): s for s in telemetry.attempt_spans()
        }
        for key, rec in telemetry.solver.items():
            job, attempt = key.split(":")
            s = spans[(job, int(attempt))]
            slice_dur = s["finish"] - s["start"]
            last = max(ev["ts"] + ev["dur"] for ev in rec["events"])
            assert math.isclose(last, slice_dur, rel_tol=1e-9)

    def test_first_attach_wins(self):
        telemetry = Telemetry()
        ev = [{"path": "/x", "name": "x", "depth": 0, "group_size": 1,
               "ts": 0.0, "dur": 1.0, "flops": 1.0, "words": 0.0,
               "mem_traffic": 0.0, "supersteps": 1, "ranks": None}]
        telemetry.attach_solver_spans("7", 0, 4, ev)
        telemetry.attach_solver_spans("7", 0, 8, [])
        assert telemetry.solver["7:0"]["p"] == 4
        assert len(telemetry.solver["7:0"]["events"]) == 1


# ------------------------------------------------------------------ #
# merged Perfetto export


class TestPerfetto:
    def test_flow_events_link_service_to_solver_tracks(self, observed):
        _, pool, telemetry = observed
        doc = merged_trace(telemetry, pool=pool)
        evs = doc["traceEvents"]
        starts = [e for e in evs if e["ph"] == "s"]
        finishes = [e for e in evs if e["ph"] == "f"]
        assert len(starts) == len(finishes) == len(telemetry.solver)
        assert {e["id"] for e in starts} == {e["id"] for e in finishes}
        # the f-end binds enclosing so the arrow lands on the slice
        assert all(e.get("bp") == "e" for e in finishes)
        # service side on pid 0, solver side on a per-attempt pid
        assert all(e["pid"] == 0 for e in starts)
        assert all(e["pid"] >= 1000 for e in finishes)

    def test_machine_lanes_never_overlap(self, observed):
        _, pool, telemetry = observed
        doc = merged_trace(telemetry, pool=pool)
        by_tid: dict[int, list] = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e["pid"] == 0:
                by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
        assert by_tid
        for slices in by_tid.values():
            slices.sort()
            for (_, end), (start, _) in zip(slices, slices[1:]):
                assert start >= end  # Chrome sync slices on a tid must nest

    def test_write_merged_trace(self, observed, tmp_path):
        _, pool, telemetry = observed
        path = write_merged_trace(telemetry, tmp_path / "m.json", pool=pool)
        doc = json.loads(path.read_text())
        assert doc["otherData"]["solver_tracks"] == len(telemetry.solver)


# ------------------------------------------------------------------ #
# the gated document


class TestTelemetryDoc:
    def test_write_load_round_trip_exact(self, tdoc, tmp_path):
        path = write_telemetry(tdoc, tmp_path / "telemetry.json")
        assert load_telemetry(path) == tdoc
        assert check_telemetry(load_telemetry(path), tdoc) == []

    def test_check_flags_counter_drift(self, tdoc):
        import copy

        drifted = copy.deepcopy(tdoc)
        drifted["counters"]["dispatches"] += 1
        failures = check_telemetry(drifted, tdoc)
        assert failures and "counters" in failures[0]

    def test_check_names_event_kind_drift(self, tdoc):
        import copy

        drifted = copy.deepcopy(tdoc)
        drifted["events"]["by_kind"]["retry_fire"] = 5
        failures = check_telemetry(drifted, tdoc)
        assert any("by_kind" in f or "event counts" in f for f in failures)

    def test_version_mismatch_fails_loudly(self, tdoc):
        failures = check_telemetry({"version": 999}, tdoc)
        assert failures and "version" in failures[0]

    def test_missing_baseline_names_the_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="telemetry-out"):
            load_telemetry(tmp_path / "nope.json")


# ------------------------------------------------------------------ #
# ServeReport.summary round-tripping (satellite 2)


class TestSummaryRoundTrip:
    def _assert_native(self, value, path="$"):
        if isinstance(value, dict):
            for k, v in value.items():
                assert type(k) is str, f"non-str key at {path}: {k!r}"
                self._assert_native(v, f"{path}.{k}")
        elif isinstance(value, list):
            for i, v in enumerate(value):
                self._assert_native(v, f"{path}[{i}]")
        else:
            assert value is None or type(value) in (bool, int, float, str), (
                f"non-native {type(value).__name__} at {path}: {value!r}"
            )

    def test_summary_json_round_trip_is_ieee_exact(self, observed):
        report, _, _ = observed
        summary = report.summary()
        self._assert_native(summary)
        assert json.loads(json.dumps(summary)) == summary
        # and again through the on-disk formatting the bench writer uses
        assert json.loads(json.dumps(summary, indent=1, sort_keys=True)) == summary


# ------------------------------------------------------------------ #
# dashboard


class TestDash:
    def test_dash_contains_every_section(self, tdoc):
        html = build_dash_html(tdoc)
        for needle in (
            "viz-root", "Attempt timeline", "Queue depth", "SLO deadline",
            "chronology", "attempts table", "tile",
        ):
            assert needle in html
        assert "NaN" not in html and "Infinity" not in html

    def test_write_dash(self, tdoc, tmp_path):
        out = write_dash(tdoc, tmp_path / "dash.html", title="t")
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>") and "<title>t</title>" in text

    def test_dash_handles_an_empty_run(self):
        doc = build_telemetry_doc(Telemetry())
        html = build_dash_html(doc)
        assert "no attempts recorded" in html
        assert "no queue-depth samples" in html


# ------------------------------------------------------------------ #
# CLI plumbing (satellite 1: the shared exit-2 contract)


class TestCli:
    def test_dash_missing_telemetry_exits_2(self, tmp_path, capsys):
        rc = main(["dash", "--telemetry", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no telemetry baseline" in capsys.readouterr().err

    def test_dash_renders_a_written_doc(self, tdoc, tmp_path, capsys):
        src = write_telemetry(tdoc, tmp_path / "telemetry.json")
        out = tmp_path / "dash.html"
        rc = main(["dash", "--telemetry", str(src), "--out", str(out)])
        assert rc == 0
        assert out.is_file()
        assert "flight recorder" in capsys.readouterr().out

    def test_serve_bench_missing_telemetry_baseline_exits_2(self, tmp_path, capsys):
        rc = main([
            "serve-bench", "--telemetry-only",
            "--telemetry-check", str(tmp_path / "nope.json"),
        ])
        assert rc == 2
        assert "no telemetry baseline" in capsys.readouterr().err

    def test_serve_bench_missing_serve_baseline_still_exits_2(self, tmp_path, capsys):
        rc = main(["serve-bench", "--check", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no serve baseline" in capsys.readouterr().err
