"""Tests for the parallel QR building blocks: TSQR, square-QR, rect-QR."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.blocks.rect_qr import default_qmax, rect_qr
from repro.blocks.square_qr import square_qr
from repro.blocks.tsqr import tsqr, tsqr_thin
from repro.model.costs import rect_qr_cost


def hh_checks(a, u, t, r, tol=1e-9):
    """Assert the Householder-form output factors A exactly."""
    m, n = a.shape
    q_thin = np.eye(m, n) - u @ (t @ u[:n, :].T)
    assert np.abs(q_thin @ r - a).max() < tol * max(1, np.abs(a).max())
    assert np.abs(q_thin.T @ q_thin - np.eye(n)).max() < tol
    q_full = np.eye(m) - u @ t @ u.T
    assert np.abs(q_full.T @ q_full - np.eye(m)).max() < tol


class TestTSQR:
    @pytest.mark.parametrize("p,m,n", [(1, 30, 5), (2, 30, 5), (8, 128, 8), (8, 63, 5)])
    def test_householder_form(self, p, m, n):
        mach = BSPMachine(p)
        a = np.random.default_rng(p * m).standard_normal((m, n))
        u, t, r = tsqr(mach, mach.world, a)
        hh_checks(a, u, t, r)

    def test_thin_variant(self):
        mach = BSPMachine(4)
        a = np.random.default_rng(1).standard_normal((64, 6))
        q, r = tsqr_thin(mach, mach.world, a)
        assert np.abs(q @ r - a).max() < 1e-10
        assert np.abs(q.T @ q - np.eye(6)).max() < 1e-11

    def test_rejects_wide(self):
        mach = BSPMachine(2)
        with pytest.raises(ValueError):
            tsqr(mach, mach.world, np.zeros((3, 5)))

    def test_rank_count_self_limits(self):
        # m // n = 2 < p: only 2 ranks do leaf QRs; ranks 2+ stay idle.
        mach = BSPMachine(8)
        a = np.random.default_rng(2).standard_normal((16, 8))
        u, t, r = tsqr(mach, mach.world, a)
        hh_checks(a, u, t, r)
        assert mach.counters[7].flops == 0.0

    def test_tree_supersteps_logarithmic(self):
        mach = BSPMachine(16)
        a = np.random.default_rng(3).standard_normal((256, 4))
        tsqr(mach, mach.world, a)
        assert mach.cost().S <= 6 * np.log2(16) + 4

    def test_r_upper_triangular(self):
        mach = BSPMachine(4)
        a = np.random.default_rng(4).standard_normal((40, 6))
        _, _, r = tsqr(mach, mach.world, a)
        assert np.abs(np.tril(r, -1)).max() < 1e-12


class TestSquareQR:
    @pytest.mark.parametrize("p,m,n", [(1, 20, 20), (4, 24, 24), (4, 40, 24), (9, 36, 30)])
    def test_householder_form(self, p, m, n):
        mach = BSPMachine(p)
        a = np.random.default_rng(p + m).standard_normal((m, n))
        u, t, r = square_qr(mach, mach.world, a)
        hh_checks(a, u, t, r)

    def test_explicit_panel_width(self):
        mach = BSPMachine(4)
        a = np.random.default_rng(5).standard_normal((16, 16))
        u, t, r = square_qr(mach, mach.world, a, panel=3)
        hh_checks(a, u, t, r)

    def test_rejects_wide(self):
        mach = BSPMachine(2)
        with pytest.raises(ValueError):
            square_qr(mach, mach.world, np.zeros((3, 5)))

    def test_w_decreases_with_ranks(self):
        a = np.random.default_rng(6).standard_normal((64, 64))
        ws = []
        for p in (4, 16):
            mach = BSPMachine(p)
            square_qr(mach, mach.world, a)
            ws.append(mach.cost().W)
        assert ws[1] < ws[0]


class TestRectQR:
    @pytest.mark.parametrize(
        "p,m,n", [(1, 40, 10), (4, 80, 10), (8, 256, 8), (8, 60, 30), (16, 512, 4)]
    )
    def test_householder_form(self, p, m, n):
        mach = BSPMachine(p)
        a = np.random.default_rng(p * 3 + m).standard_normal((m, n))
        u, t, r = rect_qr(mach, mach.world, a)
        hh_checks(a, u, t, r)

    def test_rejects_wide(self):
        mach = BSPMachine(2)
        with pytest.raises(ValueError):
            rect_qr(mach, mach.world, np.zeros((3, 5)))

    def test_default_qmax_formula(self):
        assert default_qmax(1, 100, 10) == 1
        q = default_qmax(64, 640, 10, delta=0.5)
        assert q == int(np.ceil(64 * 10 / 640 * np.log2(64) ** 2))

    def test_cost_within_model_slack(self):
        p, m, n = 8, 512, 16
        mach = BSPMachine(p)
        a = np.random.default_rng(7).standard_normal((m, n))
        rect_qr(mach, mach.world, a)
        pred = rect_qr_cost(m, n, p)
        rep = mach.cost()
        assert rep.W <= 20 * pred.W  # constants + log factors
        assert rep.flops <= 20 * pred.F * p / p

    def test_work_efficiency(self):
        # Total flops across ranks stay within a constant of 2mn^2.
        p, m, n = 8, 256, 16
        mach = BSPMachine(p)
        a = np.random.default_rng(8).standard_normal((m, n))
        rect_qr(mach, mach.world, a)
        assert mach.cost().total_flops <= 12 * 2 * m * n * n

    def test_r_signs_consistent_with_q(self):
        # A = Q_thin R must hold exactly with the returned R (signs folded).
        mach = BSPMachine(4)
        a = np.random.default_rng(9).standard_normal((96, 12))
        u, t, r = rect_qr(mach, mach.world, a)
        q_thin = np.eye(96, 12) - u @ (t @ u[:12, :].T)
        assert np.abs(q_thin @ r - a).max() < 1e-9
