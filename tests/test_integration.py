"""Integration tests: the full pipeline across matrix types, plus the
cross-solver cost comparisons that mirror the paper's claims."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.eig import eigensolve_2p5d, eigensolve_scalapack_like
from repro.eig.full_to_band import full_to_band_2p5d
from repro.dist.grid import ProcGrid
from repro.util.matrices import (
    clustered_spectrum,
    random_spectrum_symmetric,
    random_symmetric,
    wilkinson,
)

from tests.helpers import eig_err


class TestMatrixZoo:
    """The solver must handle structurally nasty spectra, not just random."""

    def test_identity(self):
        res = eigensolve_2p5d(BSPMachine(4), np.eye(32))
        assert np.abs(res.eigenvalues - 1.0).max() < 1e-10

    def test_zero_matrix(self):
        res = eigensolve_2p5d(BSPMachine(4), np.zeros((32, 32)))
        assert np.abs(res.eigenvalues).max() < 1e-10

    def test_rank_one(self):
        v = np.arange(1.0, 33.0)
        a = np.outer(v, v) / np.dot(v, v)
        res = eigensolve_2p5d(BSPMachine(4), a)
        assert abs(res.eigenvalues[-1] - 1.0) < 1e-9
        assert np.abs(res.eigenvalues[:-1]).max() < 1e-9

    def test_tight_clusters(self):
        vals = clustered_spectrum(32, n_clusters=4, spread=1e-9, seed=1)
        a = random_spectrum_symmetric(vals, seed=2)
        res = eigensolve_2p5d(BSPMachine(8), a)
        assert np.abs(res.eigenvalues - np.sort(vals)).max() < 1e-7

    def test_wide_dynamic_range(self):
        vals = np.concatenate([np.logspace(-8, 8, 16), -np.logspace(-8, 8, 16)])
        a = random_spectrum_symmetric(np.sort(vals), seed=3)
        res = eigensolve_2p5d(BSPMachine(4), a)
        rel = np.abs(res.eigenvalues - np.sort(vals)) / np.maximum(np.abs(np.sort(vals)), 1e-8)
        assert np.median(rel) < 1e-6  # bisection resolves absolute scale

    def test_wilkinson_large(self):
        w = wilkinson(49)
        res = eigensolve_2p5d(BSPMachine(8), w, b0=8)
        assert eig_err(w, res.eigenvalues) < 1e-9

    def test_negative_definite(self):
        a = -random_spectrum_symmetric(np.linspace(1, 10, 24), seed=4)
        res = eigensolve_2p5d(BSPMachine(4), a)
        assert res.eigenvalues.max() < 0


class TestPaperClaims:
    """Coarse-grained cross-algorithm assertions (fine-grained shapes are in
    the benchmarks)."""

    def test_f2b_replication_tradeoff_w_down_m_up(self):
        n, b = 192, 32
        a = random_symmetric(n, seed=5)
        m1 = BSPMachine(16)
        full_to_band_2p5d(m1, ProcGrid(m1, (4, 4, 1)), a, b)
        m2 = BSPMachine(16)
        full_to_band_2p5d(m2, ProcGrid(m2, (2, 2, 4)), a, b)
        assert m2.cost().W < m1.cost().W  # less communication...
        assert m2.cost().M > m1.cost().M  # ...for more memory

    def test_2p5d_fewer_words_more_syncs_than_scalapack_shape(self):
        """At scale the 2.5D solver trades supersteps for bandwidth: S is
        larger per unit W than ScaLAPACK's per-column pattern for large n.
        Here we check the direction of the S difference at fixed n."""
        n = 64
        a = random_symmetric(n, seed=6)
        m_sc = BSPMachine(16)
        eigensolve_scalapack_like(m_sc, a)
        res = eigensolve_2p5d(BSPMachine(16), a, delta=2 / 3)
        # ScaLAPACK's S grows with n (per-column); ours with p^δ·log²p only.
        assert m_sc.cost().S >= n  # n columns, ≥1 superstep each
        assert res.cost.S < 40 * 16 ** (2 / 3) * np.log2(16) ** 2

    def test_work_efficiency_all_solvers(self):
        n = 48
        a = random_symmetric(n, seed=7)
        res = eigensolve_2p5d(BSPMachine(4), a)
        m_sc = BSPMachine(4)
        eigensolve_scalapack_like(m_sc, a)
        # Both within a constant factor of 2n³ total flops (plus the O(n²)
        # bisection sweeps, which dominate at this tiny n).
        for total in (res.cost.total_flops, m_sc.cost().total_flops):
            assert total < 200 * 2 * n**3

    def test_deterministic_given_seed(self):
        a = random_symmetric(40, seed=8)
        r1 = eigensolve_2p5d(BSPMachine(8), a)
        r2 = eigensolve_2p5d(BSPMachine(8), a)
        assert np.array_equal(r1.eigenvalues, r2.eigenvalues)
        assert r1.cost.words == r2.cost.words
        assert r1.cost.supersteps == r2.cost.supersteps
