"""Conservation and accounting invariants across the whole stack.

Words sent must equal words received, globally, for every algorithm — a
whole-system check that no charge path books one side of a transfer without
the other.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bsp import BSPMachine, RankGroup, collectives
from repro.dist.banded import DistBandMatrix
from repro.eig import (
    band_to_band_2p5d,
    eigensolve_2p5d,
    eigensolve_elpa_like,
    eigensolve_scalapack_like,
)
from repro.eig.full_to_band import full_to_band_2p5d
from repro.dist.grid import ProcGrid
from repro.util.matrices import random_banded_symmetric, random_symmetric


def sent_recv(machine):
    return (
        sum(c.words_sent for c in machine.counters),
        sum(c.words_recv for c in machine.counters),
    )


def assert_balanced(machine, rel=0.35):
    """Global sent ≈ global recv.

    Exact equality holds for point-to-point patterns; tree/two-phase
    collectives book slightly different send/recv shares per rank by
    design, so a tolerance applies.
    """
    s, r = sent_recv(machine)
    if s == r == 0:
        return
    assert abs(s - r) <= rel * max(s, r), (s, r)


class TestCollectiveConservation:
    @given(
        g=st.integers(2, 16),
        words=st.floats(1.0, 1e6),
        which=st.sampled_from(["bcast", "reduce", "allreduce", "allgather", "reduce_scatter", "gather", "scatter"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_each_collective_balanced(self, g, words, which):
        m = BSPMachine(g)
        group = m.world
        fn = getattr(collectives, which)
        if which in ("allgather", "gather", "scatter"):
            fn(m, group, words_each=words) if which == "allgather" else fn(m, group, words_each=words, root=group.root)
        elif which == "reduce_scatter":
            fn(m, group, words_total=words)
        else:
            fn(m, group, words=words)
        assert_balanced(m)


class TestAlgorithmConservation:
    def test_full_to_band(self):
        m = BSPMachine(16)
        full_to_band_2p5d(m, ProcGrid(m, (2, 2, 4)), random_symmetric(64, 1), 8)
        assert_balanced(m)

    def test_band_to_band(self):
        m = BSPMachine(8)
        a = random_banded_symmetric(64, 8, seed=2)
        band_to_band_2p5d(m, DistBandMatrix(m, a, 8, m.world), k=2)
        assert_balanced(m)

    @pytest.mark.parametrize("p", [4, 16])
    def test_complete_driver(self, p):
        m = BSPMachine(p)
        eigensolve_2p5d(m, random_symmetric(48, 3))
        assert_balanced(m)

    def test_baselines(self):
        for fn in (eigensolve_scalapack_like, eigensolve_elpa_like):
            m = BSPMachine(16)
            fn(m, random_symmetric(48, 4))
            assert_balanced(m)

    def test_no_negative_counters_anywhere(self):
        m = BSPMachine(8)
        eigensolve_2p5d(m, random_symmetric(40, 5))
        for c in m.counters:
            assert c.flops >= 0
            assert c.words_sent >= 0
            assert c.words_recv >= 0
            assert c.mem_traffic >= 0
            assert c.supersteps >= 0
            assert c.peak_memory_words >= 0
