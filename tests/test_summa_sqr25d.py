"""Tests for the SUMMA baseline and the 2.5D square-QR variant."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.blocks.square_qr_25d import square_qr_25d, usable_grid
from repro.blocks.streaming import streaming_matmul
from repro.blocks.summa import summa_matmul
from repro.dist.grid import ProcGrid


class TestSUMMA:
    def test_product_exact(self, rng):
        m = BSPMachine(16)
        grid = ProcGrid(m, (4, 4))
        a = rng.standard_normal((32, 24))
        b = rng.standard_normal((24, 16))
        c = summa_matmul(m, grid, a, b)
        assert np.abs(c - a @ b).max() < 1e-12

    def test_requires_square_2d_grid(self, rng):
        m = BSPMachine(8)
        with pytest.raises(ValueError):
            summa_matmul(m, ProcGrid(m, (2, 4)), np.eye(4), np.eye(4))
        with pytest.raises(ValueError):
            summa_matmul(m, ProcGrid(m, (2, 2, 2)), np.eye(4), np.eye(4))

    def test_shape_and_panel_validation(self, rng):
        m = BSPMachine(4)
        grid = ProcGrid(m, (2, 2))
        with pytest.raises(ValueError):
            summa_matmul(m, grid, np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            summa_matmul(m, grid, np.eye(4), np.eye(4), panel=0)

    def test_w_is_2d_scale(self, rng):
        # SUMMA W per rank ~ (m + k)·n/√p; the replicated streaming variant
        # on a c>1 grid must move fewer words — the Algorithm III.1 point.
        n = 128
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, 16))
        m1 = BSPMachine(16)
        summa_matmul(m1, ProcGrid(m1, (4, 4)), a, b)
        m2 = BSPMachine(16)
        streaming_matmul(m2, ProcGrid(m2, (2, 2, 4)), a, b, a_key="A")
        assert m2.cost().W < m1.cost().W

    def test_panel_count_drives_supersteps(self, rng):
        m_few = BSPMachine(4)
        m_many = BSPMachine(4)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        summa_matmul(m_few, ProcGrid(m_few, (2, 2)), a, b, panel=8)
        summa_matmul(m_many, ProcGrid(m_many, (2, 2)), a, b, panel=2)
        assert m_many.cost().S > m_few.cost().S


class TestSquareQR25D:
    def check(self, a, u, t, r, tol=1e-9):
        m, n = a.shape
        q_thin = np.eye(m, n) - u @ (t @ u[:n, :].T)
        assert np.abs(q_thin @ r - a).max() < tol
        assert np.abs(q_thin.T @ q_thin - np.eye(n)).max() < tol

    @pytest.mark.parametrize("g,shape", [(16, (48, 40)), (64, (64, 64)), (8, (24, 20))])
    def test_factorization(self, rng, g, shape):
        m = BSPMachine(g)
        a = rng.standard_normal(shape)
        u, t, r = square_qr_25d(m, m.world, a, delta=2.0 / 3.0)
        self.check(a, u, t, r)

    def test_fallback_to_2d_for_tiny_groups(self, rng):
        m = BSPMachine(3)
        a = rng.standard_normal((12, 10))
        u, t, r = square_qr_25d(m, m.world, a, delta=2.0 / 3.0)
        self.check(a, u, t, r)

    def test_rejects_wide(self, rng):
        m = BSPMachine(4)
        with pytest.raises(ValueError):
            square_qr_25d(m, m.world, rng.standard_normal((3, 5)))

    def test_usable_grid(self):
        m = BSPMachine(64)
        g = usable_grid(m, m.world, 2.0 / 3.0)
        assert g is not None
        assert g.shape[0] == g.shape[1]
        assert g.size <= 64

    def test_replication_memory_noted(self, rng):
        m = BSPMachine(16)
        a = rng.standard_normal((64, 64))
        square_qr_25d(m, m.world, a, delta=2.0 / 3.0)
        assert m.cost().M > 64 * 64 / 16  # more than the unreplicated share

    def test_explicit_panel(self, rng):
        m = BSPMachine(16)
        a = rng.standard_normal((40, 32))
        u, t, r = square_qr_25d(m, m.world, a, delta=2.0 / 3.0, panel=5)
        self.check(a, u, t, r)
