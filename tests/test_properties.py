"""Property-based tests of cross-cutting invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bsp import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.eig.driver import eigensolve_2p5d
from repro.linalg.sbr import band_reduce_seq, full_to_band_seq
from repro.util.matrices import random_banded_symmetric, random_symmetric
from repro.util.validation import matrix_bandwidth

from tests.helpers import eig_err


@given(n=st.integers(8, 40), p=st.sampled_from([1, 2, 4, 8]), seed=st.integers(0, 10**6))
@settings(max_examples=15, deadline=None)
def test_eigensolver_preserves_spectrum(n, p, seed):
    """The headline invariant: for any size/machine, eigenvalues match."""
    if n < p:
        return
    a = random_symmetric(n, seed=seed)
    res = eigensolve_2p5d(BSPMachine(p), a)
    assert eig_err(a, res.eigenvalues) < 1e-7


@given(
    n=st.integers(10, 36),
    b=st.integers(2, 10),
    h=st.integers(1, 9),
    seed=st.integers(0, 100),
)
@settings(max_examples=25, deadline=None)
def test_band_reduction_invariants(n, b, h, seed):
    """Any (n, b, h) with 1 <= h < b < n: band-width h, same spectrum."""
    if not (1 <= h < b < n):
        return
    a = random_banded_symmetric(n, b, seed=seed)
    out = band_reduce_seq(a, b, h)
    assert matrix_bandwidth(out) <= h
    assert np.abs(out - out.T).max() < 1e-10
    assert eig_err(a, out) < 1e-8


@given(n=st.integers(6, 32), b=st.integers(1, 10), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_full_to_band_invariants(n, b, seed):
    if b >= n:
        return
    a = random_symmetric(n, seed=seed)
    out = full_to_band_seq(a, b)
    assert matrix_bandwidth(out) <= b
    assert eig_err(a, out) < 1e-8


@given(
    m=st.integers(1, 32),
    n=st.integers(1, 32),
    k=st.integers(1, 32),
    p=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=25, deadline=None)
def test_carma_cost_invariants(m, n, k, p):
    """CARMA must be exact, work-efficient, and conserve send == recv."""
    mach = BSPMachine(p)
    r = np.random.default_rng(m * 1000 + n * 10 + k)
    a = r.standard_normal((m, n))
    b = r.standard_normal((n, k))
    c = carma_matmul(mach, mach.world, a, b)
    assert np.abs(c - a @ b).max() < 1e-9 * max(1.0, np.abs(a @ b).max())
    rep = mach.cost()
    total_sent = sum(rc.words_sent for rc in mach.counters)
    total_recv = sum(rc.words_recv for rc in mach.counters)
    assert abs(total_sent - total_recv) < 1e-6 * max(1.0, total_sent)
    assert rep.total_flops >= 2.0 * m * n * k


@given(p=st.sampled_from([2, 4, 8, 16]), seed=st.integers(0, 50))
@settings(max_examples=10, deadline=None)
def test_cost_report_consistency(p, seed):
    """Max-over-ranks never exceeds the rank totals; S is an integer; memory
    peak is monotone."""
    a = random_symmetric(max(p, 24), seed=seed)
    mach = BSPMachine(p)
    eigensolve_2p5d(mach, a)
    rep = mach.cost()
    assert rep.flops <= rep.total_flops + 1e-9
    assert rep.words <= rep.total_words + 1e-9
    assert rep.supersteps == int(rep.supersteps)
    assert rep.peak_memory_words >= 0
    assert all(rc.supersteps <= rep.supersteps for rc in mach.counters)
