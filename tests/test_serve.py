"""Tests for the batched eigensolver service (``repro.serve``)."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.bsp.params import MachineParams
from repro.cli import main
from repro.serve import (
    EigenService,
    MachinePool,
    TuningCache,
    Workload,
    mixed_workload,
    plan_job,
    schedule_jobs,
    scf_trace,
    verify_against_single_shot,
    zipf_stream,
)
from repro.serve import bench as serve_bench
from repro.util.matrices import random_symmetric
from repro.util.validation import reference_spectrum_error

PARAMS = serve_bench.SERVE_PARAMS

#: a miniature pinned suite so gate tests run in seconds, not minutes
TINY_PINNED = {
    "pool": {"machines": 2, "p": 8},
    "workload": {
        "total_jobs": 12,
        "seed": 3,
        "scf_iterations": 2,
        "kpoint_sizes": [12, 16],
        "zipf_mean_gap": 2.0e4,
    },
    "profile": {
        "gamma": 1.0, "beta": 20.0, "nu": 2.0, "alpha": 3000.0,
        "memory_words": float(2**20), "cache_words": None,
    },
    "algorithm": "eig2p5d",
    "calibration": {"n": 16, "p": 2, "delta": 0.5, "seed": 123, "repeats": 1},
}


def small_workload(jobs=8, seed=5):
    return mixed_workload(
        total_jobs=jobs, seed=seed, scf_iterations=1, kpoint_sizes=(12, 16)
    )


# ------------------------------------------------------------------ #
# workload generation


class TestWorkload:
    def test_generation_is_deterministic(self):
        a = mixed_workload(total_jobs=40, seed=7)
        b = mixed_workload(total_jobs=40, seed=7)
        assert a.jobs == b.jobs
        c = mixed_workload(total_jobs=40, seed=8)
        assert a.jobs != c.jobs

    def test_arrivals_sorted_and_ids_sequential(self):
        w = mixed_workload(total_jobs=50, seed=1)
        arrivals = [j.arrival for j in w.jobs]
        assert arrivals == sorted(arrivals)
        assert [j.job_id for j in w.jobs] == list(range(50))
        assert len({j.seed for j in w.jobs}) == 50  # distinct matrices

    def test_scf_trace_repeats_shapes_across_iterations(self):
        w = scf_trace(iterations=3, kpoint_sizes=(24, 32), seed=0)
        assert len(w) == 6
        assert sorted(w.sizes().items()) == [(24, 3), (32, 3)]

    def test_zipf_stream_favours_small_sizes(self):
        w = zipf_stream(jobs=300, sizes=(8, 16, 96), seed=2)
        sizes = w.sizes()
        assert sizes[8] > sizes.get(96, 0)

    def test_json_round_trip(self, tmp_path):
        w = mixed_workload(total_jobs=20, seed=9, scf_iterations=2)
        path = w.write(tmp_path / "trace.json")
        again = Workload.load(path)
        assert again.jobs == w.jobs
        assert again.descriptor == w.descriptor

    def test_total_smaller_than_scf_trace_rejected(self):
        with pytest.raises(ValueError, match="smaller than the SCF trace"):
            mixed_workload(total_jobs=3, scf_iterations=6)


# ------------------------------------------------------------------ #
# scheduler


class TestScheduler:
    def make_pool(self, machines=2, p=8):
        return MachinePool(machines, p, PARAMS)

    def test_capacity_never_exceeded(self):
        pool = self.make_pool(machines=2, p=8)
        reqs = [(i, float(i % 3), 1 + (i % 8), 50.0) for i in range(40)]
        sched = schedule_jobs(reqs, pool)
        assert len(sched.jobs) == 40
        # sweep every (start, finish) boundary: per-machine rank usage <= p
        times = sorted({j.start for j in sched.jobs} | {j.finish for j in sched.jobs})
        for t in times:
            for m in pool:
                used = sum(
                    j.p
                    for j in sched.jobs
                    if j.machine_id == m.machine_id and j.start <= t < j.finish
                )
                assert used <= m.p

    def test_start_never_before_arrival(self):
        sched = schedule_jobs(
            [(0, 10.0, 4, 5.0), (1, 0.0, 4, 5.0)], self.make_pool()
        )
        for j in sched.jobs:
            assert j.start >= j.arrival
            assert j.finish - j.start == pytest.approx(5.0)
            assert j.latency == pytest.approx(j.queue_wait + 5.0)

    def test_small_jobs_share_one_machine(self):
        pool = self.make_pool(machines=2, p=8)
        # two 4-rank jobs arriving together pack onto machine 0 (best fit)
        sched = schedule_jobs([(0, 0.0, 4, 100.0), (1, 0.0, 4, 100.0)], pool)
        assert {j.machine_id for j in sched.jobs} == {0}
        assert all(j.start == 0.0 for j in sched.jobs)

    def test_grid_job_gets_dedicated_machine(self):
        pool = self.make_pool(machines=2, p=8)
        sched = schedule_jobs(
            [(0, 0.0, 8, 100.0), (1, 1.0, 8, 100.0), (2, 2.0, 8, 100.0)], pool
        )
        by_id = {j.job_id: j for j in sched.jobs}
        assert by_id[0].machine_id != by_id[1].machine_id
        assert by_id[2].start == pytest.approx(100.0)  # waits for a drain

    def test_backfill_around_blocked_head(self):
        pool = self.make_pool(machines=1, p=8)
        # job 0 occupies the machine; job 1 (8 ranks) must wait; job 2
        # (1 rank) backfills around it instead of queueing behind
        sched = schedule_jobs(
            [(0, 0.0, 7, 100.0), (1, 1.0, 8, 10.0), (2, 2.0, 1, 10.0)], pool
        )
        by_id = {j.job_id: j for j in sched.jobs}
        assert by_id[2].start == pytest.approx(2.0)
        assert by_id[1].start >= 100.0

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError, match="largest pool machine"):
            schedule_jobs([(0, 0.0, 16, 1.0)], self.make_pool(machines=2, p=8))

    def test_utilization_and_percentiles(self):
        pool = self.make_pool(machines=1, p=2)
        sched = schedule_jobs([(0, 0.0, 2, 10.0), (1, 0.0, 2, 10.0)], pool)
        assert sched.makespan == pytest.approx(20.0)
        assert sched.utilization == pytest.approx(1.0)
        assert sched.percentile(50) == pytest.approx(10.0)
        assert sched.percentile(99) == pytest.approx(20.0)

    def test_empty_schedule(self):
        sched = schedule_jobs([], self.make_pool())
        assert sched.makespan == 0.0 and sched.utilization == 0.0
        assert sched.summary()["latency_p99"] == 0.0


# ------------------------------------------------------------------ #
# planner + service


class TestService:
    def test_regime_routing_varies_with_n(self):
        cache = TuningCache()
        small, _ = plan_job(cache, 8, 16, PARAMS)
        large, _ = plan_job(cache, 96, 16, PARAMS)
        assert small.p < large.p
        assert small.regime == "replicated"
        assert large.p == 16 and large.regime == "grid"

    def test_served_spectra_byte_identical_to_single_shot(self):
        pool = MachinePool(2, 8, PARAMS)
        service = EigenService(pool, TuningCache())
        report = service.run_workload(small_workload())
        assert report.ok_jobs == report.jobs
        assert verify_against_single_shot(report.results, PARAMS) == []

    def test_repeat_shapes_hit_the_plan_cache_in_pass(self):
        pool = MachinePool(2, 8, PARAMS)
        service = EigenService(pool, TuningCache())
        report = service.run_workload(
            scf_trace(iterations=3, kpoint_sizes=(12, 16), seed=4)
        )
        # 2 distinct shapes over 6 jobs: 4 of 6 plans are repeats
        assert report.plan_hits == 4

    def test_warm_cache_plans_everything_from_disk(self, tmp_path):
        path = tmp_path / "cache.json"
        workload = small_workload()
        pool = MachinePool(2, 8, PARAMS)
        cold = EigenService(pool, TuningCache(path)).run_workload(workload)
        warm = EigenService(pool, TuningCache(path)).run_workload(workload)
        assert warm.plan_hit_rate == 1.0
        assert cold.plan_hit_rate < 1.0
        for a, b in zip(cold.results, warm.results):
            assert np.array_equal(a.eigenvalues, b.eigenvalues)

    def test_multiprocessing_workers_match_inline(self):
        workload = small_workload(jobs=6)
        pool = MachinePool(2, 8, PARAMS)
        inline = EigenService(pool, TuningCache()).run_workload(workload)
        forked = EigenService(pool, TuningCache(), workers=2).run_workload(workload)
        assert forked.ok_jobs == inline.ok_jobs == 6
        for a, b in zip(inline.results, forked.results):
            assert np.array_equal(a.eigenvalues, b.eigenvalues)
            assert a.sim_cost == b.sim_cost

    def test_faulted_jobs_never_silently_wrong(self):
        pool = MachinePool(2, 8, PARAMS)
        service = EigenService(
            pool, TuningCache(), faults="chaos", fault_seed0=100
        )
        report = service.run_workload(small_workload(jobs=6, seed=13))
        assert report.jobs == 6
        for r in report.results:
            if r.ok:
                a = random_symmetric(r.n, seed=r.seed)
                assert reference_spectrum_error(a, r.eigenvalues) < 1e-6
            else:
                assert r.error_type  # typed, never a bare failure

    def test_escalation_ladder_ends_replicated(self):
        """The retry ladder: primary → same-plan → grid-shrink → replicated."""
        pool = MachinePool(2, 8, PARAMS)
        service = EigenService(pool, TuningCache(), faults="chaos")
        spec = small_workload(jobs=6).jobs[0]
        plan, _ = service.plan(96)  # a grid-routed shape (p = 8)
        rungs = [service._rung_for(plan, spec, k) for k in range(5)]
        assert [r.kind for r in rungs] == [
            "primary", "same-plan", "grid-shrink", "replicated", "replicated"
        ]
        assert rungs[0].p == plan.p and rungs[1].p == plan.p
        assert rungs[2].p == plan.p // 2
        assert rungs[3].p == 1

    def test_typed_error_retried_without_fault_config(self):
        """Recovery must not be gated on fault injection being configured:
        a flaky-machine scenario produces typed errors while ``faults`` is
        unset, and every job still lands ok/degraded via the ladder."""
        pool = MachinePool(2, 8, PARAMS)
        service = EigenService(pool, TuningCache(), scenario="flaky-machine")
        assert service.faults is None
        report = service.run_workload(small_workload(jobs=8, seed=23))
        assert report.resilience["dispositions"]["error"] == 0
        assert report.ok_jobs == report.jobs
        # the flaky machine actually flaked — recovery did real work
        assert report.resilience["retries"] > 0
        assert verify_against_single_shot(report.results, PARAMS) == []


# ------------------------------------------------------------------ #
# bench suite + gate


@pytest.fixture(scope="module")
def tiny_doc(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve_suite")
    return serve_bench.run_serve_suite(
        cache_path=tmp / "cache.json",
        trace_path=tmp / "trace.json",
        pinned=TINY_PINNED,
        log=lambda _: None,
    )


class TestServeSuite:
    def test_three_pass_doc_shape(self, tiny_doc):
        assert set(tiny_doc["passes"]) == {"cold", "warm", "edf"}
        assert tiny_doc["verify"]["mismatches"] == []
        assert tiny_doc["verify"]["warm_identical"] is True
        assert tiny_doc["verify"]["identical"] == {"warm": True, "edf": True}
        assert tiny_doc["passes"]["warm"]["plan_hit_rate"] == 1.0
        assert tiny_doc["calibration_wall_s"] > 0.0
        for entry in tiny_doc["passes"].values():
            assert entry["resilience"]["dispositions"]["error"] == 0
            assert set(entry["slo"]) <= {"interactive", "batch", "best-effort"}

    def test_gate_passes_against_itself(self, tiny_doc):
        assert serve_bench.check_serve(tiny_doc, copy.deepcopy(tiny_doc)) == []

    def test_gate_rejects_pinned_drift(self, tiny_doc):
        other = copy.deepcopy(tiny_doc)
        other["pinned"]["workload"]["seed"] = 999
        failures = serve_bench.check_serve(tiny_doc, other)
        assert len(failures) == 1 and "pinned" in failures[0]

    def test_gate_enforces_hit_rate_floor(self, tiny_doc):
        fresh = copy.deepcopy(tiny_doc)
        fresh["passes"]["warm"]["plan_hit_rate"] = 0.5
        failures = serve_bench.check_serve(fresh, tiny_doc)
        assert any("hit rate" in f and "80%" in f for f in failures)

    def test_gate_flags_simulated_drift_exactly(self, tiny_doc):
        fresh = copy.deepcopy(tiny_doc)
        fresh["passes"]["cold"]["sim_totals"]["flops"] += 1.0
        failures = serve_bench.check_serve(fresh, tiny_doc)
        assert any("simulated-result drift" in f for f in failures)

    def test_throughput_failure_is_retryable_wall_clock(self, tiny_doc):
        """The retry contract: wall-only failures say 'wall-clock regression'."""
        fresh = copy.deepcopy(tiny_doc)
        for entry in fresh["passes"].values():
            entry["jobs_per_s"] = 1e-6
        failures = serve_bench.check_serve(fresh, tiny_doc)
        assert failures
        assert all("wall-clock regression" in f for f in failures)

    def test_throughput_gate_is_host_calibrated(self, tiny_doc):
        # a host 10x slower overall (calibration and throughput alike) passes
        fresh = copy.deepcopy(tiny_doc)
        fresh["calibration_wall_s"] = tiny_doc["calibration_wall_s"] * 10.0
        for label, entry in fresh["passes"].items():
            entry["jobs_per_s"] = tiny_doc["passes"][label]["jobs_per_s"] / 10.0
        assert serve_bench.check_serve(fresh, tiny_doc) == []

    def test_gate_flags_attainment_drift(self, tiny_doc):
        fresh = copy.deepcopy(tiny_doc)
        fresh["attainment"] = {"tampered": {}}
        failures = serve_bench.check_serve(fresh, tiny_doc)
        assert any("attainment" in f for f in failures)


class TestSoak:
    def test_soak_invariants_hold(self, tmp_path):
        doc = serve_bench.run_soak(
            jobs=12, seed=21,
            journal_path=tmp_path / "journal.jsonl", log=lambda _: None,
        )
        assert doc["jobs"] == 12
        assert doc["silent_wrong"] == []
        assert doc["no_job_lost"] is True
        assert doc["deterministic"] is True
        assert doc["ok"] + doc["typed_errors"] + doc["shed"] == doc["jobs"]

    def test_soak_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(ValueError, match="unknown soak scenario"):
            serve_bench.run_soak(
                jobs=4, scenario="nope",
                journal_path=tmp_path / "j.jsonl", log=lambda _: None,
            )


# ------------------------------------------------------------------ #
# CLI


class TestServeCli:
    def test_serve_bench_and_check_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(serve_bench, "PINNED", TINY_PINNED)
        # the 12-job suite's wall clock is all process jitter; the gate's
        # throughput tolerance is exercised in TestServeSuite — relax it
        # here so this test only checks the CLI wiring
        real_check = serve_bench.check_serve
        monkeypatch.setattr(
            serve_bench,
            "check_serve",
            lambda fresh, baseline, wall_tolerance=100.0: real_check(
                fresh, baseline, 100.0
            ),
        )
        base = tmp_path / "BENCH_serve.json"
        argv = [
            "serve-bench",
            "--out", str(base),
            "--cache", str(tmp_path / "cache.json"),
            "--trace-out", str(tmp_path / "trace.json"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "eigensolver service benchmark" in out
        assert (tmp_path / "trace.json").is_file()
        assert json.loads(base.read_text())["verify"]["mismatches"] == []

        assert main(argv + ["--check", str(base), "--out", str(tmp_path / "f.json")]) == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_serve_bench_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["serve-bench", "--check", str(tmp_path / "absent.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "absent.json" in err and "Traceback" not in err

    def test_serve_soak_cli(self, tmp_path, capsys):
        rc = main([
            "serve-bench", "--soak", "--soak-jobs", "12",
            "--soak-out", str(tmp_path / "soak.json"),
            "--journal", str(tmp_path / "journal.jsonl"),
        ])
        assert rc == 0
        assert "soak invariants hold" in capsys.readouterr().out
        doc = json.loads((tmp_path / "soak.json").read_text())
        assert doc["silent_wrong"] == []
        assert doc["no_job_lost"] is True
        assert (tmp_path / "journal.jsonl").is_file()

    def test_bench_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["bench", "--check", str(tmp_path / "absent.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "absent.json" in err and "Traceback" not in err

    def test_metrics_missing_baseline_exits_2(self, tmp_path, capsys):
        rc = main(["metrics", "--check", str(tmp_path / "absent.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "absent.json" in err and "Traceback" not in err

    def test_metrics_corrupt_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        rc = main(["metrics", "--check", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err
