"""Tests for the accounting-engine benchmark harness (``repro bench``)."""

from __future__ import annotations

import copy
import json

import pytest

from repro import bench, cli
from repro.bsp import BSPMachine
from repro.bsp.counters import CounterArray


def small_suite_results():
    """A real (but tiny) suite run: one charging pass on each engine."""
    machine_a = BSPMachine(16, engine="array")
    machine_s = BSPMachine(16, engine="scalar")
    report_a = bench.charging_workload(machine_a, 2)
    report_s = bench.charging_workload(machine_s, 2)
    return report_a, report_s


class TestReportComparison:
    def test_identical_reports_have_no_mismatches(self):
        report_a, report_s = small_suite_results()
        assert bench.report_mismatches(report_a, report_s) == []

    def test_per_rank_arrays_cover_both_engines(self):
        report_a, report_s = small_suite_results()
        arrays_a = bench.per_rank_arrays(report_a)
        arrays_s = bench.per_rank_arrays(report_s)
        assert isinstance(report_a.per_rank, CounterArray)
        assert not isinstance(report_s.per_rank, CounterArray)
        assert set(arrays_a) == set(arrays_s)
        for name, arr in arrays_a.items():
            assert arr.shape == (16,), name

    def test_drift_is_reported_with_rank(self):
        _, report_s = small_suite_results()
        machine = BSPMachine(16, engine="array")
        bench.charging_workload(machine, 2)
        machine.counters.field_array("flops")[3] += 1.0
        issues = bench.report_mismatches(machine.cost(), report_s)
        assert any("rank 3" in issue for issue in issues)
        assert any("flops" in issue for issue in issues)

    def test_p_mismatch_short_circuits(self):
        report_a, _ = small_suite_results()
        other = BSPMachine(8, engine="array").cost()
        assert bench.report_mismatches(report_a, other) == ["p differs: 16 != 8"]


class TestBaselineCheck:
    def fresh(self):
        return {
            "version": 1,
            "pinned": bench.PINNED,
            "cases": {
                "charging_p512": {
                    "wall_s": 0.015,
                    "scalar_wall_s": 0.150,
                    "speedup_vs_scalar": 10.0,
                    "cost": {"flops": 100.0, "supersteps": 5},
                },
            },
        }

    def test_self_check_passes(self):
        doc = self.fresh()
        assert bench.check_against_baseline(doc, doc) == []

    def test_cost_drift_fails(self):
        doc, base = self.fresh(), self.fresh()
        base["cases"]["charging_p512"]["cost"]["flops"] = 99.0
        failures = bench.check_against_baseline(doc, base)
        assert any("simulated-cost drift" in f for f in failures)

    def test_wall_regression_fails(self):
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.015 * 2.0  # well past 25% + slack
        failures = bench.check_against_baseline(doc, base)
        assert any("wall-clock regression" in f for f in failures)

    def test_wall_gate_is_host_calibrated(self):
        # 2x slower wall is fine when the scalar oracle also ran 2x slower
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.030
        doc["cases"]["charging_p512"]["scalar_wall_s"] = 0.300
        assert bench.check_against_baseline(doc, base) == []

    def test_speedup_floor_fails(self):
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["speedup_vs_scalar"] = 2.0
        failures = bench.check_against_baseline(doc, base)
        assert any("floor" in f for f in failures)

    def test_pinned_mismatch_fails(self):
        doc, base = self.fresh(), copy.deepcopy(self.fresh())
        base["pinned"] = {"charging": {"p": 64, "iters": 1}}
        failures = bench.check_against_baseline(doc, base)
        assert failures and "pinned" in failures[0]

    def test_missing_case_fails(self):
        doc, base = self.fresh(), self.fresh()
        base["cases"] = {}
        failures = bench.check_against_baseline(doc, base)
        assert any("missing from baseline" in f for f in failures)


class TestWallRetries:
    def fresh(self):
        return TestBaselineCheck().fresh()

    def slow(self):
        doc = self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.030  # wall-only failure
        return doc

    def test_wall_only_failure_is_retried_until_clean(self):
        base = self.fresh()
        runs = [self.fresh()]  # second attempt passes

        final, failures = bench.check_with_retries(
            self.slow(), base, lambda: runs.pop(0), retries=2, log=lambda _: None
        )
        assert failures == []
        assert runs == []  # exactly one rerun consumed
        assert final["cases"]["charging_p512"]["wall_s"] == 0.015

    def test_retries_are_bounded(self):
        base = self.fresh()
        calls = []

        def rerun():
            calls.append(1)
            return self.slow()

        _, failures = bench.check_with_retries(
            self.slow(), base, rerun, retries=2, log=lambda _: None
        )
        assert len(calls) == 2
        assert any("wall-clock regression" in f for f in failures)

    def test_cost_drift_is_never_retried(self):
        base = self.fresh()
        doc = self.slow()
        doc["cases"]["charging_p512"]["cost"]["flops"] = 99.0

        def rerun():
            raise AssertionError("cost drift must not trigger a retry")

        _, failures = bench.check_with_retries(doc, base, rerun, retries=5, log=lambda _: None)
        assert any("simulated-cost drift" in f for f in failures)

    def test_speedup_floor_is_never_retried(self):
        base = self.fresh()
        doc = self.fresh()
        doc["cases"]["charging_p512"]["speedup_vs_scalar"] = 1.0

        def rerun():
            raise AssertionError("speedup floor must not trigger a retry")

        _, failures = bench.check_with_retries(doc, base, rerun, log=lambda _: None)
        assert any("floor" in f for f in failures)

    def test_envelope_env_var_overrides_tolerance(self, monkeypatch):
        # The module constant is read at import; the documented env knob
        # feeds it, with the legacy name as fallback.
        monkeypatch.setenv("REPRO_BENCH_ENVELOPE", "9.0")
        monkeypatch.setenv("REPRO_BENCH_WALL_TOL", "1.01")
        import importlib

        mod = importlib.reload(bench)
        try:
            assert mod.WALL_TOLERANCE == 9.0
            monkeypatch.delenv("REPRO_BENCH_ENVELOPE")
            mod = importlib.reload(bench)
            assert mod.WALL_TOLERANCE == 1.01
        finally:
            monkeypatch.delenv("REPRO_BENCH_WALL_TOL", raising=False)
            importlib.reload(bench)


class TestSuite:
    def test_suite_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            bench.run_suite(repeats=0)

    def test_charging_rank_charges_formula(self):
        assert bench._charging_rank_charges(512, 100) == int(100 * 15.5 * 512)

    def test_committed_baseline_matches_pinned_suite(self):
        """The checked-in BENCH_engine.json was produced by *this* suite."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[1] / bench.BASELINE_NAME
        doc = bench.load_baseline(baseline_path)
        assert doc["pinned"] == bench.PINNED
        assert set(doc["cases"]) == set(bench.CASES)
        charging = doc["cases"]["charging_p512"]
        assert charging["speedup_vs_scalar"] >= bench.SPEEDUP_FLOOR

    def test_load_baseline_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no benchmark baseline"):
            bench.load_baseline(tmp_path / "nope.json")


class TestCLI:
    def test_bench_writes_and_checks(self, tmp_path, capsys, monkeypatch):
        # Shrink the pinned suite so the CLI round-trip stays fast; the
        # full pinned sizes run in benchmarks/bench_engine.py and CI.
        small = {
            "charging": {"p": 32, "iters": 3},
            "eig": {"n": 24, "p": 4, "delta": 2.0 / 3.0, "seed": 3},
        }
        monkeypatch.setattr(bench, "PINNED", small)
        out = tmp_path / "fresh.json"
        baseline = tmp_path / "base.json"
        assert cli.main(["bench", "--repeats", "1", "--out", str(baseline)]) == 0
        assert (
            cli.main(
                ["bench", "--repeats", "1", "--out", str(out), "--check", str(baseline)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "baseline check passed" in captured.out
        doc = json.loads(out.read_text())
        assert set(doc["cases"]) == {"charging_p512", "eig_n96_p16"}

    def test_bench_check_fails_on_drift(self, tmp_path, capsys, monkeypatch):
        small = {
            "charging": {"p": 32, "iters": 3},
            "eig": {"n": 24, "p": 4, "delta": 2.0 / 3.0, "seed": 3},
        }
        monkeypatch.setattr(bench, "PINNED", small)
        baseline = tmp_path / "base.json"
        assert cli.main(["bench", "--repeats", "1", "--out", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["cases"]["charging_p512"]["cost"]["flops"] += 1.0
        baseline.write_text(json.dumps(doc))
        out = tmp_path / "fresh.json"
        assert (
            cli.main(
                ["bench", "--repeats", "1", "--out", str(out), "--check", str(baseline)]
            )
            == 1
        )
        assert "simulated-cost drift" in capsys.readouterr().err

    def test_bench_check_missing_baseline(self, tmp_path, capsys):
        # a missing baseline is a configuration error: exit 2 naming the
        # expected file, *before* the suite spends time running
        out = tmp_path / "fresh.json"
        missing = tmp_path / "gone.json"
        assert (
            cli.main(["bench", "--repeats", "1", "--out", str(out), "--check", str(missing)])
            == 2
        )
        err = capsys.readouterr().err
        assert "no benchmark baseline" in err and "gone.json" in err
        assert not out.exists()  # failed fast: the suite never ran
