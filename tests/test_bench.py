"""Tests for the accounting-engine benchmark harness (``repro bench``)."""

from __future__ import annotations

import copy
import json

import pytest

from repro import bench, cli
from repro.bsp import BSPMachine
from repro.bsp.counters import CounterArray


def small_suite_results():
    """A real (but tiny) suite run: one charging pass on each engine."""
    machine_a = BSPMachine(16, engine="array")
    machine_s = BSPMachine(16, engine="scalar")
    report_a = bench.charging_workload(machine_a, 2)
    report_s = bench.charging_workload(machine_s, 2)
    return report_a, report_s


class TestReportComparison:
    def test_identical_reports_have_no_mismatches(self):
        report_a, report_s = small_suite_results()
        assert bench.report_mismatches(report_a, report_s) == []

    def test_per_rank_arrays_cover_both_engines(self):
        report_a, report_s = small_suite_results()
        arrays_a = bench.per_rank_arrays(report_a)
        arrays_s = bench.per_rank_arrays(report_s)
        assert isinstance(report_a.per_rank, CounterArray)
        assert not isinstance(report_s.per_rank, CounterArray)
        assert set(arrays_a) == set(arrays_s)
        for name, arr in arrays_a.items():
            assert arr.shape == (16,), name

    def test_drift_is_reported_with_rank(self):
        _, report_s = small_suite_results()
        machine = BSPMachine(16, engine="array")
        bench.charging_workload(machine, 2)
        machine.counters.field_array("flops")[3] += 1.0
        issues = bench.report_mismatches(machine.cost(), report_s)
        assert any("rank 3" in issue for issue in issues)
        assert any("flops" in issue for issue in issues)

    def test_p_mismatch_short_circuits(self):
        report_a, _ = small_suite_results()
        other = BSPMachine(8, engine="array").cost()
        assert bench.report_mismatches(report_a, other) == ["p differs: 16 != 8"]


class TestBaselineCheck:
    def fresh(self):
        return {
            "version": 1,
            "pinned": bench.PINNED,
            "cases": {
                "charging_p512": {
                    "wall_s": 0.015,
                    "scalar_wall_s": 0.150,
                    "speedup_vs_scalar": 10.0,
                    "cost": {"flops": 100.0, "supersteps": 5},
                },
            },
        }

    def test_self_check_passes(self):
        doc = self.fresh()
        assert bench.check_against_baseline(doc, doc) == []

    def test_cost_drift_fails(self):
        doc, base = self.fresh(), self.fresh()
        base["cases"]["charging_p512"]["cost"]["flops"] = 99.0
        failures = bench.check_against_baseline(doc, base)
        assert any("simulated-cost drift" in f for f in failures)

    def test_wall_regression_fails(self):
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.015 * 2.0  # well past 25% + slack
        failures = bench.check_against_baseline(doc, base)
        assert any("wall-clock regression" in f for f in failures)

    def test_wall_gate_is_host_calibrated(self):
        # 2x slower wall is fine when the scalar oracle also ran 2x slower
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.030
        doc["cases"]["charging_p512"]["scalar_wall_s"] = 0.300
        assert bench.check_against_baseline(doc, base) == []

    def test_speedup_floor_fails(self):
        doc, base = self.fresh(), self.fresh()
        doc["cases"]["charging_p512"]["speedup_vs_scalar"] = 2.0
        failures = bench.check_against_baseline(doc, base)
        assert any("floor" in f for f in failures)

    def test_pinned_mismatch_fails(self):
        doc, base = self.fresh(), copy.deepcopy(self.fresh())
        base["pinned"] = {"charging": {"p": 64, "iters": 1}}
        failures = bench.check_against_baseline(doc, base)
        assert failures and "pinned" in failures[0]

    def test_missing_case_fails(self):
        doc, base = self.fresh(), self.fresh()
        base["cases"] = {}
        failures = bench.check_against_baseline(doc, base)
        assert any("missing from baseline" in f for f in failures)


class TestWallRetries:
    def fresh(self):
        return TestBaselineCheck().fresh()

    def slow(self):
        doc = self.fresh()
        doc["cases"]["charging_p512"]["wall_s"] = 0.030  # wall-only failure
        return doc

    def test_wall_only_failure_is_retried_until_clean(self):
        base = self.fresh()
        runs = [self.fresh()]  # second attempt passes

        final, failures = bench.check_with_retries(
            self.slow(), base, lambda: runs.pop(0), retries=2, log=lambda _: None
        )
        assert failures == []
        assert runs == []  # exactly one rerun consumed
        assert final["cases"]["charging_p512"]["wall_s"] == 0.015

    def test_retries_are_bounded(self):
        base = self.fresh()
        calls = []

        def rerun():
            calls.append(1)
            return self.slow()

        _, failures = bench.check_with_retries(
            self.slow(), base, rerun, retries=2, log=lambda _: None
        )
        assert len(calls) == 2
        assert any("wall-clock regression" in f for f in failures)

    def test_cost_drift_is_never_retried(self):
        base = self.fresh()
        doc = self.slow()
        doc["cases"]["charging_p512"]["cost"]["flops"] = 99.0

        def rerun():
            raise AssertionError("cost drift must not trigger a retry")

        _, failures = bench.check_with_retries(doc, base, rerun, retries=5, log=lambda _: None)
        assert any("simulated-cost drift" in f for f in failures)

    def test_speedup_floor_is_never_retried(self):
        base = self.fresh()
        doc = self.fresh()
        doc["cases"]["charging_p512"]["speedup_vs_scalar"] = 1.0

        def rerun():
            raise AssertionError("speedup floor must not trigger a retry")

        _, failures = bench.check_with_retries(doc, base, rerun, log=lambda _: None)
        assert any("floor" in f for f in failures)

    def test_envelope_env_var_overrides_tolerance(self, monkeypatch):
        # The module constant is read at import; the documented env knob
        # feeds it, with the legacy name as fallback.
        monkeypatch.setenv("REPRO_BENCH_ENVELOPE", "9.0")
        monkeypatch.setenv("REPRO_BENCH_WALL_TOL", "1.01")
        import importlib

        mod = importlib.reload(bench)
        try:
            assert mod.WALL_TOLERANCE == 9.0
            monkeypatch.delenv("REPRO_BENCH_ENVELOPE")
            mod = importlib.reload(bench)
            assert mod.WALL_TOLERANCE == 1.01
        finally:
            monkeypatch.delenv("REPRO_BENCH_WALL_TOL", raising=False)
            importlib.reload(bench)


class TestSuite:
    def test_suite_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            bench.run_suite(repeats=0)

    def test_charging_rank_charges_formula(self):
        assert bench._charging_rank_charges(512, 100) == int(100 * 15.5 * 512)

    def test_committed_baseline_matches_pinned_suite(self):
        """The checked-in BENCH_engine.json was produced by *this* suite."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[1] / bench.BASELINE_NAME
        doc = bench.load_baseline(baseline_path)
        assert doc["pinned"] == bench.PINNED
        assert set(doc["cases"]) == set(bench.CASES) | {"scaling_exponents"}
        charging = doc["cases"]["charging_p512"]
        assert charging["speedup_vs_scalar"] >= bench.SPEEDUP_FLOOR
        large = doc["cases"]["eig_n512_p256"]["cost"]
        assert large["p"] == 256
        scaling = doc["cases"]["scaling_exponents"]["cost"]
        assert abs(scaling["W_exponent"] - 1.0) <= bench.W_EXPONENT_TOL
        assert scaling["S_exponent"] <= 1.0 + bench.S_EXPONENT_SLACK

    def test_load_baseline_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no benchmark baseline"):
            bench.load_baseline(tmp_path / "nope.json")

    def test_unpinned_cases_are_skipped(self, monkeypatch):
        """PINNED is the source of truth: dropping a case's inputs drops the
        case (how tests and ad-hoc runs shrink the suite)."""
        monkeypatch.setattr(bench, "PINNED", {"charging": {"p": 8, "iters": 2}})
        results = bench.run_suite(repeats=1, log=lambda _msg: None)
        assert set(results["cases"]) == {"charging_p512"}


class TestScalingSuite:
    def test_scaling_bandwidth_is_even_and_floored(self):
        assert bench.scaling_bandwidth(512, 256, 2.0 / 3.0) % 2 == 0
        assert bench.scaling_bandwidth(8, 4096, 0.9) == 4  # floor engages
        # b approximates n/p^delta
        n, p, delta = 384, 32, 2.0 / 3.0
        assert abs(bench.scaling_bandwidth(n, p, delta) - n / p**delta) <= 1.0

    def test_closed_forms_match_lemma(self):
        w, s = bench.lemma_iv3_closed_forms(n=256, p=16, b=32, k=2, delta=0.5)
        assert w == pytest.approx(256**1.5 * 32**0.5 / 16**0.5)
        assert s == pytest.approx(2**0.5 * 256**0.5 * 16**0.5 / 32**0.5 * 4.0)

    def test_fit_recovers_exact_power_law(self):
        closed = [10.0, 100.0, 1000.0, 5000.0]
        assert bench.fit_loglog_slope(closed, [3.0 * c for c in closed]) == pytest.approx(1.0)
        assert bench.fit_loglog_slope(closed, [c**0.7 for c in closed]) == pytest.approx(0.7)

    def test_scaling_point_engines_identical(self):
        ra, _ = bench.run_scaling_point("array", 64, 8, 2.0 / 3.0)
        rs, _ = bench.run_scaling_point("scalar", 64, 8, 2.0 / 3.0)
        assert bench.report_mismatches(ra, rs) == []

    def test_scaling_case_gates_exponents(self, monkeypatch):
        """A tiny grid still fits W with unit slope; a sabotaged tolerance
        turns the same measurements into a BenchError."""
        small = dict(bench.PINNED)
        small["scaling"] = {
            "k": 2,
            "seed": 3,
            "grid": [
                [96, 8, 2.0 / 3.0],
                [192, 8, 2.0 / 3.0],
                [128, 16, 2.0 / 3.0],
                [256, 16, 2.0 / 3.0],
            ],
        }
        monkeypatch.setattr(bench, "PINNED", small)
        entry = bench.run_scaling_case(repeats=1)
        assert abs(entry["cost"]["W_exponent"] - 1.0) <= bench.W_EXPONENT_TOL
        assert entry["cost"]["S_exponent"] <= 1.0 + bench.S_EXPONENT_SLACK
        assert len(entry["cost"]["W_measured"]) == 4
        monkeypatch.setattr(bench, "W_EXPONENT_TOL", 0.0)
        with pytest.raises(bench.BenchError, match="fitted W exponent"):
            bench.run_scaling_case(repeats=1)


class TestCLI:
    def test_bench_writes_and_checks(self, tmp_path, capsys, monkeypatch):
        # Shrink the pinned suite so the CLI round-trip stays fast; the
        # full pinned sizes run in benchmarks/bench_engine.py and CI.
        small = {
            "charging": {"p": 32, "iters": 3},
            "eig": {"n": 24, "p": 4, "delta": 2.0 / 3.0, "seed": 3},
        }
        monkeypatch.setattr(bench, "PINNED", small)
        out = tmp_path / "fresh.json"
        baseline = tmp_path / "base.json"
        assert cli.main(["bench", "--repeats", "1", "--out", str(baseline)]) == 0
        assert (
            cli.main(
                ["bench", "--repeats", "1", "--out", str(out), "--check", str(baseline)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "baseline check passed" in captured.out
        doc = json.loads(out.read_text())
        assert set(doc["cases"]) == {"charging_p512", "eig_n96_p16"}

    def test_bench_check_fails_on_drift(self, tmp_path, capsys, monkeypatch):
        small = {
            "charging": {"p": 32, "iters": 3},
            "eig": {"n": 24, "p": 4, "delta": 2.0 / 3.0, "seed": 3},
        }
        monkeypatch.setattr(bench, "PINNED", small)
        baseline = tmp_path / "base.json"
        assert cli.main(["bench", "--repeats", "1", "--out", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["cases"]["charging_p512"]["cost"]["flops"] += 1.0
        baseline.write_text(json.dumps(doc))
        out = tmp_path / "fresh.json"
        assert (
            cli.main(
                ["bench", "--repeats", "1", "--out", str(out), "--check", str(baseline)]
            )
            == 1
        )
        assert "simulated-cost drift" in capsys.readouterr().err

    def test_bench_check_missing_baseline(self, tmp_path, capsys):
        # a missing baseline is a configuration error: exit 2 naming the
        # expected file, *before* the suite spends time running
        out = tmp_path / "fresh.json"
        missing = tmp_path / "gone.json"
        assert (
            cli.main(["bench", "--repeats", "1", "--out", str(out), "--check", str(missing)])
            == 2
        )
        err = capsys.readouterr().err
        assert "no benchmark baseline" in err and "gone.json" in err
        assert not out.exists()  # failed fast: the suite never ran
