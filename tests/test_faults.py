"""Tests for the fault-injection / fault-tolerance subsystem (repro.faults).

Covers the seeded plan (determinism, caps, site filters), the injection
sites on :class:`~repro.faults.FaultyMachine`, ABFT checksum detection,
the post-stage invariant guards, the checkpoint/restart retry loop,
degenerate configurations (p=1, ragged n, finish-stage faults), and the
span-exactness property on faulty runs: per-span sums — including recovery
re-execution — reproduce the global report bit-for-bit on both engines.
"""

import numpy as np
import pytest

from repro.bsp import BSPMachine, collectives
from repro.bsp.group import RankGroup
from repro.bsp.machine import NO_FAULTS
from repro.eig.driver import eigensolve_2p5d
from repro.faults import (
    SCENARIOS,
    CorruptData,
    FaultDetected,
    FaultPlan,
    FaultSpec,
    FaultyMachine,
    RankFailure,
    RecoveryPolicy,
    UnrecoverableFault,
    machine_from_env,
    parse_faults,
)
from repro.faults.abft import abft_check
from repro.faults.recovery import (
    Checkpoint,
    guard_band,
    guard_tridiagonal,
    run_stage,
)
from repro.util.matrices import random_banded_symmetric, random_symmetric
from repro.util.validation import frobenius_norm

ENGINES = ("array", "scalar")

#: a scenario that exercises corruption + retry without killing ranks
KC = FaultSpec(name="kc", kernel_corrupt_prob=0.3, max_corruptions=2,
               max_rank_failures=0)


class TestFaultSpec:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="rank_failure_prob"):
            FaultSpec(rank_failure_prob=1.5)
        with pytest.raises(ValueError, match="nan_fraction"):
            FaultSpec(nan_fraction=-0.1)

    def test_scenarios_are_well_formed(self):
        assert set(SCENARIOS) >= {"clean", "rank-failure", "message-drop",
                                  "message-corrupt", "kernel-corrupt", "chaos"}
        for name, spec in SCENARIOS.items():
            assert spec.name == name

    def test_parse_faults(self):
        assert parse_faults("chaos:5") == (SCENARIOS["chaos"], 5)
        assert parse_faults("clean") == (SCENARIOS["clean"], 0)
        # a bare integer selects the chaos scenario
        assert parse_faults("7") == (SCENARIOS["chaos"], 7)
        with pytest.raises(ValueError, match="unknown fault scenario"):
            parse_faults("nonsense")


class TestFaultPlan:
    def test_draws_advance_on_every_consultation(self):
        plan = FaultPlan(FaultSpec(message_drop_prob=0.5), seed=0)
        for _ in range(10):
            plan.draw_message_drop("site", "span")
        assert plan.draws == 10

    def test_zero_probability_never_draws(self):
        plan = FaultPlan(SCENARIOS["clean"], seed=0)
        a = np.ones((4, 4))
        assert not plan.corrupt(a, "s", "sp", plan.spec.kernel_corrupt_prob)
        assert plan.draws == 0 and plan.events == []

    def test_same_seed_same_stream(self):
        specs = FaultSpec(kernel_corrupt_prob=0.6, max_corruptions=None)
        outs = []
        for _ in range(2):
            plan = FaultPlan(specs, seed=42)
            a = np.arange(16.0).reshape(4, 4)
            for i in range(8):
                plan.corrupt(a, f"site{i}", "span", specs.kernel_corrupt_prob)
            outs.append((plan.draws, tuple(plan.events), a.copy()))
        assert outs[0][0] == outs[1][0]
        assert outs[0][1] == outs[1][1]
        assert np.array_equal(outs[0][2], outs[1][2], equal_nan=True)

    def test_max_corruptions_cap(self):
        plan = FaultPlan(FaultSpec(kernel_corrupt_prob=1.0, max_corruptions=2),
                         seed=0)
        a = np.ones(100)
        fired = sum(plan.corrupt(a, "s", "sp", 1.0) for _ in range(10))
        assert fired == 2

    def test_site_filter(self):
        plan = FaultPlan(
            FaultSpec(kernel_corrupt_prob=1.0, site_filter=("finish",),
                      max_corruptions=None),
            seed=0,
        )
        a = np.ones(10)
        assert not plan.corrupt(a, "summa", "sp", 1.0)
        assert plan.corrupt(a, "finish:tridiag", "sp", 1.0)

    def test_corruption_changes_zero_entries(self):
        """The additive bump must perturb an exactly-zero entry too."""
        plan = FaultPlan(FaultSpec(kernel_corrupt_prob=1.0, nan_fraction=0.0,
                                   max_corruptions=None), seed=1)
        a = np.zeros(8)
        assert plan.corrupt(a, "s", "sp", 1.0)
        assert np.count_nonzero(a) == 1

    def test_summary_mentions_events(self):
        plan = FaultPlan(FaultSpec(kernel_corrupt_prob=1.0), seed=3)
        plan.corrupt(np.ones(4), "s", "sp", 1.0)
        assert "corruption=1" in plan.summary()


class TestInjectionSites:
    def test_plain_machine_has_noop_faults(self):
        machine = BSPMachine(4)
        assert machine.faults is NO_FAULTS
        assert not machine.faults.enabled
        g = machine.world
        assert machine.faults.live_group(g) is g

    def test_rank_failure_at_barrier_is_typed(self):
        machine = FaultyMachine(
            4, plan=FaultPlan(FaultSpec(rank_failure_prob=1.0), 0), spans=True)
        with pytest.raises(RankFailure) as exc_info:
            with machine.span("doomed"):
                machine.superstep(machine.world)
        err = exc_info.value
        assert err.rank in machine.world.ranks
        assert err.span == "doomed"
        assert err.rank in machine.faults.failed_ranks
        assert machine.spans.depth == 0  # the span context unwound

    def test_quiesce_suspends_injection(self):
        machine = FaultyMachine(
            4, plan=FaultPlan(FaultSpec(rank_failure_prob=1.0), 0))
        with machine.faults.quiesce():
            machine.superstep(machine.world)  # would raise otherwise
        assert machine.plan.draws == 0

    def test_dropped_collective_is_recharged(self):
        drop = FaultSpec(message_drop_prob=1.0, max_rank_failures=0)
        faulty = FaultyMachine(4, plan=FaultPlan(drop, 0))
        clean = BSPMachine(4)
        for m in (faulty, clean):
            collectives.allreduce(m, m.world, 64.0)
        # the retransmission doubles the collective's words and barriers
        assert faulty.cost().W == 2 * clean.cost().W
        assert faulty.cost().S == 2 * clean.cost().S
        assert faulty.plan.events[0].kind == "message_drop"

    def test_live_group_shrinks_after_failure(self):
        machine = FaultyMachine(
            4, plan=FaultPlan(FaultSpec(rank_failure_prob=1.0), 0))
        with pytest.raises(RankFailure):
            machine.superstep(machine.world)
        survivors = machine.faults.live_group(machine.world)
        assert survivors is not None and survivors.size == 3

    def test_generator_group_supersteps(self):
        """FaultyMachine must materialize iterator groups before drawing."""
        machine = FaultyMachine(4, plan=FaultPlan(SCENARIOS["clean"], 0))
        machine.superstep(iter([0, 1]))
        assert machine.cost().S == 1


class TestABFT:
    def _mats(self, rng):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 10))
        return a, b, a @ b

    def test_clean_product_passes(self, rng, machine4):
        a, b, c = self._mats(rng)
        abft_check(machine4, machine4.world, a, b, c, site="test")
        assert machine4.cost().F > 0  # detection cost is charged

    def test_single_flip_detected(self, rng, machine4):
        a, b, c = self._mats(rng)
        c[3, 4] += 1.0
        with pytest.raises(CorruptData, match="ABFT checksum mismatch"):
            abft_check(machine4, machine4.world, a, b, c, site="test")

    def test_nan_detected_with_span(self, rng):
        machine = BSPMachine(4, spans=True)
        a, b, c = self._mats(rng)
        c[0, 0] = np.nan
        with machine.span("product"):
            with pytest.raises(CorruptData) as exc_info:
                abft_check(machine, machine.world, a, b, c, site="test")
        assert exc_info.value.span == "product/abft"


class TestGuards:
    def test_guard_band_passes_clean(self, machine4):
        band = random_banded_symmetric(16, 3, seed=0)
        guard_band(machine4, band, 3, frobenius_norm(band), "stage",
                   machine4.world)

    @pytest.mark.parametrize("poison", ["nan", "asym", "outside", "bump"])
    def test_guard_band_catches(self, machine4, poison):
        band = random_banded_symmetric(16, 3, seed=0)
        norm0 = frobenius_norm(band)
        if poison == "nan":
            band[2, 2] = np.nan
        elif poison == "asym":
            band[1, 2] += 1.0  # breaks symmetry
        elif poison == "outside":
            band[0, 10] = band[10, 0] = 5.0  # outside the band
        else:
            band[2, 2] += 2.0**20  # symmetric, in-band, but norm drifts
        with pytest.raises(CorruptData):
            guard_band(machine4, band, 3, norm0, "stage", machine4.world)

    def test_guard_tridiagonal_catches_offdiag_flip(self, machine4):
        d = np.arange(1.0, 9.0)
        e = 0.5 * np.ones(7)
        norm0 = float(np.sqrt(np.sum(d * d) + 2.0 * np.sum(e * e)))
        guard_tridiagonal(machine4, d, e, norm0, root=0)
        e[3] += 1.0  # trace-preserving corruption: only the norm sees it
        with pytest.raises(CorruptData, match="norm drifted"):
            guard_tridiagonal(machine4, d, e, norm0, root=0)


class TestRunStage:
    def _machine(self, **spec_kw):
        spec = FaultSpec(**spec_kw) if spec_kw else SCENARIOS["clean"]
        return FaultyMachine(4, plan=FaultPlan(spec, 0), spans=True)

    def test_retry_restores_checkpoint(self):
        machine = self._machine()
        data = np.arange(8.0)
        ckpt = Checkpoint(machine, "stage", {"x": data}, machine.world)
        attempts = []

        def attempt():
            attempts.append(data.copy())
            if len(attempts) == 1:
                data[:] = np.nan  # corrupt, then "detect"
                raise CorruptData("injected", span="t")
            return float(data.sum())

        out = run_stage(machine, "stage", attempt, checkpoint=ckpt)
        assert out == 28.0
        assert len(attempts) == 2
        assert np.array_equal(attempts[1], np.arange(8.0))  # restored
        # the retry's charges live in dedicated spans
        paths = machine.cost().by_span().paths()
        assert "checkpoint" in paths and "recovery" in paths
        assert "recovery/restore" in paths

    def test_retries_exhausted_is_unrecoverable(self):
        machine = self._machine()

        def always_bad():
            raise CorruptData("persistent", span="stage-span")

        with pytest.raises(UnrecoverableFault, match="retries"):
            run_stage(machine, "bad", always_bad)
        # every allowed attempt was a recovery
        assert len(machine.faults.recoveries) == \
            machine.faults.policy.max_retries + 1

    def test_rank_loss_without_reconfigure_is_unrecoverable(self):
        machine = self._machine(rank_failure_prob=1.0)

        def barrier():
            machine.superstep(machine.world)

        with pytest.raises(UnrecoverableFault, match="cannot reconfigure"):
            run_stage(machine, "rigid", barrier)

    def test_rank_loss_invokes_reconfigure(self):
        machine = self._machine(rank_failure_prob=1.0, max_rank_failures=1)
        seen = []

        def flaky():
            machine.superstep(machine.world)
            return "ok"

        out = run_stage(machine, "elastic", flaky,
                        on_rank_loss=lambda g: seen.append(g))
        assert out == "ok"
        assert len(seen) == 1 and seen[0].size == 3


class TestDegenerateConfigs:
    def test_p1_rank_failure_is_clean_typed_error(self):
        a = random_symmetric(16, seed=3)
        machine = FaultyMachine(
            1, plan=FaultPlan(FaultSpec(rank_failure_prob=1.0), 0), spans=True)
        with pytest.raises(UnrecoverableFault, match="no surviving ranks"):
            eigensolve_2p5d(machine, a, delta=0.5)

    def test_ragged_n_recovers(self):
        """n=90 is not divisible by the panel width or by p."""
        a = random_symmetric(90, seed=3)
        machine = FaultyMachine(4, plan=FaultPlan(KC, 5), spans=True)
        res = eigensolve_2p5d(machine, a, delta=2.0 / 3.0)
        assert len(machine.plan.events) > 0  # faults actually fired
        ref = np.linalg.eigvalsh(a)
        assert float(np.abs(res.eigenvalues - ref).max()) < 1e-8

    def test_fault_inside_sequential_finish(self):
        a = random_symmetric(32, seed=3)
        hammer = FaultSpec(name="finish-kc", kernel_corrupt_prob=1.0,
                           site_filter=("finish",), max_corruptions=None,
                           max_rank_failures=0)
        machine = FaultyMachine(4, plan=FaultPlan(hammer, 0), spans=True)
        with pytest.raises(UnrecoverableFault) as exc_info:
            eigensolve_2p5d(machine, a, delta=0.5)
        assert "finish" in exc_info.value.span

    def test_finish_fault_capped_recovers(self):
        a = random_symmetric(32, seed=3)
        once = FaultSpec(name="finish-kc1", kernel_corrupt_prob=1.0,
                         site_filter=("finish",), max_corruptions=1,
                         max_rank_failures=0)
        machine = FaultyMachine(4, plan=FaultPlan(once, 0), spans=True)
        res = eigensolve_2p5d(machine, a, delta=0.5)
        assert len(machine.faults.recoveries) == 1
        ref = np.linalg.eigvalsh(a)
        assert float(np.abs(res.eigenvalues - ref).max()) < 1e-8


class TestFaultySpanExactness:
    """Satellite (f): per-span sums on a *faulty* run — including recovery
    re-execution — reproduce the global report bit-for-bit, on both engines,
    with identical rows across engines."""

    def _run(self, engine):
        a = random_symmetric(32, seed=3)
        machine = FaultyMachine(4, plan=FaultPlan(KC, 5), spans=True,
                                engine=engine)
        eigensolve_2p5d(machine, a, delta=2.0 / 3.0)
        assert len(machine.faults.recoveries) > 0  # retries happened
        return machine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_faulty_breakdown_is_bit_exact(self, engine):
        machine = self._run(engine)
        report = machine.cost()
        bd = report.by_span()
        assert bd.open_paths == ()
        assert bd.verify_exact() == []
        assert machine.spans.verify_attribution() == []
        total = bd.per_rank[bd.paths()[0]]["flops"].copy()
        for path in bd.paths()[1:]:
            total = total + bd.per_rank[path]["flops"]
        assert float(np.sum(total)) == report.total_flops
        # resilience overhead is visible as dedicated spans
        assert any("recovery" in p for p in bd.paths())
        assert any(p.endswith("/abft") for p in bd.paths())

    def test_engines_agree_on_faulty_run(self):
        machines = {engine: self._run(engine) for engine in ENGINES}
        a, s = (machines[e] for e in ENGINES)
        assert tuple(a.plan.events) == tuple(s.plan.events)
        assert a.plan.draws == s.plan.draws
        bda, bds = a.cost().by_span(), s.cost().by_span()
        assert bda.paths() == bds.paths()
        for ra, rs in zip(bda.rows, bds.rows):
            assert ra == rs


class TestEnvOptIn:
    def test_unset_returns_plain_machine(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        machine = machine_from_env(4)
        assert type(machine) is BSPMachine
        monkeypatch.setenv("REPRO_FAULTS", "0")
        assert type(machine_from_env(4)) is BSPMachine

    def test_env_scenario_and_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "message-drop:9")
        machine = machine_from_env(4, spans=True)
        assert isinstance(machine, FaultyMachine)
        assert machine.plan.spec.name == "message-drop"
        assert machine.plan.seed == 9

    def test_policy_defaults(self):
        policy = RecoveryPolicy()
        assert policy.max_retries == 2 and policy.checkpoints
