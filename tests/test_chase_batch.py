"""Batched bulge-chase charging: schedule arrays, ChargeLog, tapes, engines.

The batched chase engines replace per-step Python charging with one
order-preserving flush per stage; the contract is **bit-identity** of the
resulting cost reports — per rank, on both counter engines — plus unchanged
band numerics.  These tests pin that contract at the unit level (schedule
arrays, :class:`~repro.bsp.batch.ChargeLog`, :class:`~repro.bsp.batch.KernelTape`,
window charge twins), at the stage level (band-to-band and CA-SBR), and at
the full-pipeline level at the benchmark's pinned (n=96, p=16).  Engine
resolution — and the fallback to the per-step path whenever any observer
(trace, spans, metrics, faults) is live — is covered alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import report_mismatches
from repro.bsp import BSPMachine
from repro.bsp.batch import ChargeLog, FlatTape, KernelTape, batched_charging_ok
from repro.dist.banded import DistBandMatrix
from repro.eig.band_to_band import band_to_band_2p5d, resolve_chase_engine
from repro.eig.ca_sbr import ca_sbr_halve
from repro.eig.schedule import chase_step_arrays, pipeline_schedule, wave_sizes
from repro.linalg.sbr import chase_steps
from repro.util.matrices import random_banded_symmetric, random_symmetric

ENGINES = ("array", "scalar")

CONFIGS = [
    (32, 8, 4),
    (48, 8, 2),
    (64, 16, 8),
    (65, 16, 8),   # ragged: b does not divide n
    (96, 12, 3),
    (100, 14, 7),  # ragged both ways
]


# ------------------------------------------------------------------ #
# schedule arrays


class TestChaseStepArrays:
    @pytest.mark.parametrize("n,b,h", CONFIGS)
    def test_fields_match_step_enumeration(self, n, b, h):
        arrays = chase_step_arrays(n, b, h)
        steps = list(chase_steps(n, b, h))
        assert len(steps) == arrays["i"].size
        for field in ("i", "j", "oqr_r", "oqr_c", "nr", "ncols", "oup_c", "nc", "ov", "phase"):
            expected = np.array([getattr(s, field) for s in steps], dtype=np.int64)
            assert np.array_equal(arrays[field], expected), field

    @pytest.mark.parametrize("n,b,h", CONFIGS)
    def test_wave_sizes_match_pipeline_schedule(self, n, b, h):
        sizes = wave_sizes(n, b, h)
        sched = pipeline_schedule(n, b, h)
        assert sizes.sum() == sum(ph.concurrency for ph in sched)
        for ph in sched:
            assert sizes[ph.phase - 1] == ph.concurrency

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="need 1 <= h < b < n"):
            chase_step_arrays(32, 8, 8)


# ------------------------------------------------------------------ #
# ChargeLog


def _direct_workload(machine: BSPMachine) -> None:
    w = machine.world
    machine.charge_flops_batch(w, np.linspace(1.0, 2.0, w.size))
    machine.charge_flops(2, 7.0)
    machine.charge_comm(sends={0: 5.0, 1: 3.0}, recvs={2: 8.0})
    machine.mem_stream(1, 11.0)
    machine.superstep(w, 1)
    machine.superstep([0, 3], 2)
    machine.note_memory(w, 40.0)


def _logged_workload(machine: BSPMachine) -> None:
    w = machine.world
    log = ChargeLog(machine)
    log.charge_flops(w.indices(), np.linspace(1.0, 2.0, w.size))
    log.charge_flops(2, 7.0)
    log.charge_comm(np.array([0, 1]), np.array([5.0, 3.0]), np.array([2]), 8.0)
    log.mem_stream(1, 11.0)
    log.superstep(w.indices(), 1)
    log.superstep(np.array([0, 3]), 2)
    log.note_memory(w.indices(), 40.0)
    log.flush()


class TestChargeLog:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_flush_matches_direct_charges(self, engine):
        direct = BSPMachine(4, engine=engine)
        _direct_workload(direct)
        logged = BSPMachine(4, engine=engine)
        _logged_workload(logged)
        assert report_mismatches(direct.cost(), logged.cost()) == []

    @pytest.mark.parametrize("engine", ENGINES)
    def test_array_superstep_counts(self, engine):
        """Per-event int64 count arrays (from tape replay) add like scalars."""
        machine = BSPMachine(4, engine=engine)
        log = ChargeLog(machine)
        log._ss.append((np.array([0, 1, 1]), np.array([2, 1, 3], dtype=np.int64)))
        log.superstep(np.array([3]), 4)
        log.flush()
        ss = [machine.counters[r].supersteps for r in range(4)]
        assert ss == [2, 4, 0, 4]

    def test_flush_order_preserves_float_accumulation(self):
        """Same per-rank addition order => bit-identical float sums."""
        amounts = [0.1, 1e16, 0.1, -0.0, 3.7, 1e-8]
        direct = BSPMachine(2)
        for a in amounts:
            direct.charge_flops(0, abs(a))
        logged = BSPMachine(2)
        log = ChargeLog(logged)
        for a in amounts:
            log.charge_flops(0, abs(a))
        log.flush()
        assert (
            direct.counters.field_array("flops")[0]
            == logged.counters.field_array("flops")[0]
        )

    def test_negative_amounts_rejected(self):
        machine = BSPMachine(2)
        log = ChargeLog(machine)
        log.charge_flops(0, -1.0)
        with pytest.raises(ValueError, match="nonnegative"):
            log.flush()
        log = ChargeLog(machine)
        log.charge_comm(np.array([0]), -2.0, np.array([1]), 2.0)
        with pytest.raises(ValueError, match="nonnegative"):
            log.flush()

    def test_flush_clears_pending_events(self):
        machine = BSPMachine(2)
        log = ChargeLog(machine)
        log.charge_flops(0, 5.0)
        log.flush()
        log.flush()  # no pending events: must not double-charge
        assert machine.counters.field_array("flops")[0] == 5.0


# ------------------------------------------------------------------ #
# KernelTape


class TestKernelTape:
    @pytest.mark.parametrize("kind", ["rect_qr", "carma"])
    def test_replay_matches_direct_kernel(self, kind, rng):
        from repro.blocks.matmul import carma_matmul
        from repro.blocks.rect_qr import rect_qr

        direct = BSPMachine(8)
        group = direct.world
        if kind == "rect_qr":
            rect_qr(direct, group, rng.standard_normal((32, 8)),
                    charge_redistribution=False, tag="t")
        else:
            carma_matmul(direct, group, rng.standard_normal((24, 16)),
                         rng.standard_normal((16, 8)),
                         charge_redistribution=False, tag="t")

        replayed = BSPMachine(8)
        tape = KernelTape(replayed)
        log = ChargeLog(replayed)
        if kind == "rect_qr":
            tape.rect_qr(log, 32, 8, replayed.world)
        else:
            tape.carma(log, 24, 16, 8, replayed.world)
        log.flush()
        assert report_mismatches(direct.cost(), replayed.cost()) == []

    def test_tape_is_memoized_across_instances(self):
        from repro.bsp.batch import _TAPE_CACHE

        m = BSPMachine(8)
        log = ChargeLog(m)
        KernelTape(m).carma(log, 12, 12, 6, m.world)
        key = (m.p, repr(m.params), "carma", 12, 12, 6, m.world.ranks)
        first = _TAPE_CACHE[key]
        KernelTape(m).carma(log, 12, 12, 6, m.world)
        assert _TAPE_CACHE[key] is first
        assert isinstance(first, FlatTape)


# ------------------------------------------------------------------ #
# batched window charge twins


class TestBatchedWindowCharges:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fetch_and_store_twins_match(self, engine):
        a = random_banded_symmetric(32, 6, seed=5)
        rows, cols = slice(8, 14), slice(4, 10)

        perstep = BSPMachine(8, engine=engine)
        band = DistBandMatrix(perstep, a.copy(), 6, perstep.world)
        grp = perstep.world.take(4)
        win = band.fetch_window(rows, cols, grp)
        band.charge_store(rows, cols, grp)

        batched = BSPMachine(8, engine=engine)
        band2 = DistBandMatrix(batched, a.copy(), 6, batched.world)
        grp2 = batched.world.take(4)
        log = ChargeLog(batched)
        win2 = band2.fetch_window_batched(log, rows, cols, grp2)
        band2.charge_store_batched(log, rows, cols, grp2)
        log.flush()

        assert np.array_equal(win, win2)
        assert report_mismatches(perstep.cost(), batched.cost()) == []


# ------------------------------------------------------------------ #
# engine resolution


class TestEngineResolution:
    def test_auto_picks_batched_on_plain_machine(self):
        m = BSPMachine(4)
        assert batched_charging_ok(m)
        assert resolve_chase_engine(m) == "batched"

    @pytest.mark.parametrize("observer", ["trace", "spans", "metrics", "faults"])
    def test_auto_falls_back_under_observation(self, observer):
        if observer == "faults":
            from repro.faults import FaultPlan, FaultSpec, FaultyMachine

            m = FaultyMachine(4, plan=FaultPlan(FaultSpec(), seed=0))
        else:
            m = BSPMachine(4, **{observer: True})
        assert not batched_charging_ok(m)
        assert resolve_chase_engine(m) == "perstep"

    def test_verified_machine_falls_back(self):
        from repro.lint.verify import VerifiedMachine

        assert resolve_chase_engine(VerifiedMachine(4)) == "perstep"

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHASE_ENGINE", "perstep")
        assert resolve_chase_engine(BSPMachine(4)) == "perstep"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHASE_ENGINE", "perstep")
        assert resolve_chase_engine(BSPMachine(4), "batched") == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown chase engine"):
            resolve_chase_engine(BSPMachine(4), "simd")


# ------------------------------------------------------------------ #
# stage-level identity: per-step vs batched, both counter engines


def _b2b_run(counter_engine: str, chase_engine: str, n=64, b=8, p=16):
    a = random_banded_symmetric(n, b, seed=9)
    machine = BSPMachine(p, engine=counter_engine)
    band = DistBandMatrix(machine, a, b, machine.world)
    out = band_to_band_2p5d(machine, band, k=2, chase_engine=chase_engine)
    return machine.cost(), out.data.copy()


def _sbr_run(counter_engine: str, chase_engine: str, n=64, b=8, p=8, monkeypatch=None):
    a = random_banded_symmetric(n, b, seed=9)
    machine = BSPMachine(p, engine=counter_engine)
    band = DistBandMatrix(machine, a, b, machine.world)
    # CA-SBR resolves its engine from the environment / machine state only.
    monkeypatch.setenv("REPRO_CHASE_ENGINE", chase_engine)
    out = ca_sbr_halve(machine, band)
    return machine.cost(), out.data.copy()


class TestStageIdentity:
    @pytest.mark.parametrize("counter_engine", ENGINES)
    def test_band_to_band_batched_is_bit_identical(self, counter_engine):
        ref_cost, ref_data = _b2b_run(counter_engine, "perstep")
        bat_cost, bat_data = _b2b_run(counter_engine, "batched")
        assert report_mismatches(ref_cost, bat_cost) == []
        assert np.array_equal(ref_data, bat_data)

    @pytest.mark.parametrize("counter_engine", ENGINES)
    def test_ca_sbr_batched_is_bit_identical(self, counter_engine, monkeypatch):
        ref_cost, ref_data = _sbr_run(counter_engine, "perstep", monkeypatch=monkeypatch)
        bat_cost, bat_data = _sbr_run(counter_engine, "batched", monkeypatch=monkeypatch)
        assert report_mismatches(ref_cost, bat_cost) == []
        assert np.array_equal(ref_data, bat_data)

    def test_batched_rejected_configs_match_perstep(self):
        """Both engines validate k the same way."""
        a = random_banded_symmetric(32, 6, seed=1)
        for chase_engine in ("perstep", "batched"):
            m = BSPMachine(8)
            band = DistBandMatrix(m, a.copy(), 6, m.world)
            with pytest.raises(ValueError, match="must divide"):
                band_to_band_2p5d(m, band, k=4, chase_engine=chase_engine)


# ------------------------------------------------------------------ #
# full-pipeline identity at the benchmark's pinned instance


class TestPipelineIdentity:
    def test_eig_n96_p16_all_engine_pairings_identical(self):
        """The pinned bench case: cost reports must be byte-identical across
        {array, scalar} x {perstep, batched} — per rank, not just aggregate."""
        from repro.eig import eigensolve_2p5d

        a = random_symmetric(96, seed=3)
        reports = {}
        for counter_engine in ENGINES:
            for chase_engine in ("perstep", "batched"):
                m = BSPMachine(16, engine=counter_engine)
                eigensolve_2p5d(m, a.copy(), delta=2.0 / 3.0)
                reports[(counter_engine, chase_engine)] = m.cost()
        ref = reports[("array", "perstep")]
        for key, rep in reports.items():
            assert report_mismatches(ref, rep) == [], key

    def test_eig_n96_p16_matches_committed_baseline(self):
        """The live pinned cost equals the committed BENCH_engine.json entry
        (the bench CI gate asserts the same; this keeps it tier-1)."""
        import json
        from pathlib import Path

        from repro.bench import cost_dict, run_eig

        baseline_path = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
        if not baseline_path.is_file():
            pytest.skip("no committed BENCH_engine.json")
        baseline = json.loads(baseline_path.read_text())
        report, _wall = run_eig("array")
        assert cost_dict(report) == baseline["cases"]["eig_n96_p16"]["cost"]


# ------------------------------------------------------------------ #
# observed runs: the batched engine yields, artifacts stay exact


class TestObservedRuns:
    def test_faulty_run_takes_perstep_path_and_keeps_spans_exact(self):
        """A live fault injector disables batching (auto -> perstep); per-span
        sums still reproduce the global report bit-for-bit.  (Recovery-loop
        span exactness under actual injected faults is pinned in
        test_faults.py; here the injector is armed but silent so the stage
        runs to completion without a retry harness.)"""
        from repro.faults import SCENARIOS, FaultPlan, FaultyMachine

        a = random_banded_symmetric(48, 8, seed=2)
        machine = FaultyMachine(
            8, plan=FaultPlan(SCENARIOS["clean"], seed=4), spans=True
        )
        assert resolve_chase_engine(machine) == "perstep"
        band = DistBandMatrix(machine, a, 8, machine.world)
        band_to_band_2p5d(machine, band, k=2)
        bd = machine.cost().by_span()
        assert bd.open_paths == ()
        assert bd.verify_exact() == []

    def test_span_run_costs_match_unobserved_batched_run(self):
        """Spans change *where* charges are attributed, never their values:
        an observed (per-step) run and a batched run agree on every counter."""
        a = random_banded_symmetric(48, 8, seed=2)
        observed = BSPMachine(8, spans=True)
        band = DistBandMatrix(observed, a.copy(), 8, observed.world)
        band_to_band_2p5d(observed, band, k=2)

        plain = BSPMachine(8)
        band2 = DistBandMatrix(plain, a.copy(), 8, plain.world)
        band_to_band_2p5d(plain, band2, k=2, chase_engine="batched")
        assert report_mismatches(observed.cost(), plain.cost()) == []
