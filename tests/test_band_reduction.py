"""Tests for the parallel band reductions: Algorithm IV.2 and CA-SBR."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import band_to_tridiagonal_1d, ca_sbr_halve, ca_sbr_reduce
from repro.util.matrices import random_banded_symmetric
from repro.util.validation import matrix_bandwidth

from tests.helpers import eig_err


def make_band(p, n, b, seed=0):
    mach = BSPMachine(p)
    a = random_banded_symmetric(n, b, seed=seed)
    return mach, a, DistBandMatrix(mach, a.copy(), b, mach.world)


class TestBandToBand2p5d:
    @pytest.mark.parametrize("p,n,b,k", [(1, 32, 8, 2), (4, 32, 8, 2), (8, 48, 8, 4), (8, 64, 16, 2)])
    def test_bandwidth_and_spectrum(self, p, n, b, k):
        mach, a, band = make_band(p, n, b)
        out = band_to_band_2p5d(mach, band, k=k)
        assert out.b == b // k
        assert matrix_bandwidth(out.data) <= b // k
        assert eig_err(a, out.data) < 1e-9

    def test_rejects_non_dividing_k(self):
        mach, a, band = make_band(2, 32, 8)
        with pytest.raises(ValueError, match="divide"):
            band_to_band_2p5d(mach, band, k=3)

    def test_rejects_k_one(self):
        mach, a, band = make_band(2, 32, 8)
        with pytest.raises(ValueError):
            band_to_band_2p5d(mach, band, k=1)

    def test_charges_all_groups(self):
        mach, a, band = make_band(8, 64, 16)
        band_to_band_2p5d(mach, band, k=2)
        # Every rank participated in some group's chases.
        assert all(mach.counters[r].supersteps > 0 for r in range(8))

    def test_repeated_halving(self):
        mach, a, band = make_band(4, 48, 8)
        out = band_to_band_2p5d(mach, band, k=2)
        out = band_to_band_2p5d(mach, out, k=2)
        assert out.b == 2
        assert eig_err(a, out.data) < 1e-9

    def test_larger_k_fewer_supersteps_per_target(self):
        """k = 4 in one stage vs two k = 2 stages: fewer sync points
        (the trade-off discussed at the end of Section IV)."""
        mach1, a, band1 = make_band(8, 64, 16, seed=3)
        out1 = band_to_band_2p5d(mach1, band1, k=4)
        mach2, _, band2 = make_band(8, 64, 16, seed=3)
        out2 = band_to_band_2p5d(mach2, band_to_band_2p5d(mach2, band2, k=2), k=2)
        assert out1.b == out2.b == 4
        assert mach1.cost().S < mach2.cost().S


class TestCASBR:
    def test_halve(self):
        mach, a, band = make_band(4, 40, 8)
        out = ca_sbr_halve(mach, band)
        assert out.b == 4
        assert matrix_bandwidth(out.data) <= 4
        assert eig_err(a, out.data) < 1e-9

    def test_halve_rejects_tiny_band(self):
        mach, a, band = make_band(2, 16, 1)
        with pytest.raises(ValueError):
            ca_sbr_halve(mach, band)

    def test_reduce_to_target(self):
        mach, a, band = make_band(4, 48, 16)
        out = ca_sbr_reduce(mach, band, 3)
        assert out.b <= 3
        assert eig_err(a, out.data) < 1e-9

    def test_reduce_rejects_bad_target(self):
        mach, a, band = make_band(2, 16, 4)
        with pytest.raises(ValueError):
            ca_sbr_reduce(mach, band, 0)

    def test_band_to_tridiagonal(self):
        mach, a, band = make_band(4, 36, 6)
        out = band_to_tridiagonal_1d(mach, band)
        assert out.b == 1
        assert matrix_bandwidth(out.data) <= 1
        assert eig_err(a, out.data) < 1e-9

    def test_tridiagonal_input_is_noop(self):
        mach, a, band = make_band(2, 16, 1)
        out = band_to_tridiagonal_1d(mach, band)
        assert out is band
        assert mach.cost().W == 0

    def test_handoff_communication_charged(self):
        mach, a, band = make_band(4, 64, 8)
        ca_sbr_halve(mach, band)
        # Bulges cross ownership boundaries: some rank communicated.
        assert mach.cost().W > 0

    def test_flops_concentrated_on_column_owners(self):
        mach, a, band = make_band(4, 64, 8)
        ca_sbr_halve(mach, band)
        assert all(mach.counters[r].flops > 0 for r in range(4))
