"""Tests for the crash-safe job journal (``repro.serve.journal``).

Covers the WAL file format (header binding, idempotent appends, torn-tail
tolerance, mid-file corruption rejection), the service integration
(resume replays memoized attempts without recompute), and the satellite
crash/resume harness: a subprocess hard-killed mid-workload resumes
against its journal to a byte-identical report.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.serve import EigenService, MachinePool, TuningCache
from repro.serve import bench as serve_bench
from repro.serve.journal import (
    CRASH_AFTER_ENV,
    CRASH_EXIT_CODE,
    JOURNAL_VERSION,
    JobJournal,
    JournalError,
    JournalMismatch,
    read_journal,
)
from repro.serve.workload import mixed_workload

PARAMS = serve_bench.SERVE_PARAMS


def small_workload(jobs=10, seed=5):
    return mixed_workload(
        total_jobs=jobs, seed=seed, scf_iterations=1, kpoint_sizes=(12, 16)
    )


# ------------------------------------------------------------------ #
# the WAL format


class TestJournalFile:
    def test_fresh_journal_writes_header_and_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=2)
            j.record_submitted(0, {"n": 12})
            j.record_attempt("k0", {"ok": True, "eigenvalues": [1.0, 2.0]})
            j.record_terminal(0, {"disposition": "ok"})
        lines = [json.loads(s) for s in path.read_text().splitlines() if s]
        assert [d["kind"] for d in lines] == [
            "header", "submitted", "attempt", "terminal",
        ]
        assert lines[0]["version"] == JOURNAL_VERSION
        assert lines[0]["fingerprint"] == "fp-1"
        doc = read_journal(path)
        assert doc["submitted"] == 1 and doc["terminals"] == 1
        assert doc["attempts"] == 1 and not doc["torn_tail"]
        assert doc["missing_terminals"] == []
        assert doc["dispositions"] == {"ok": 1}

    def test_appends_are_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=1)
            for _ in range(3):
                j.record_submitted(0, {"n": 12})
                j.record_attempt("k0", {"ok": True})
                j.record_terminal(0, {"disposition": "ok"})
        assert read_journal(path)["records"] == 4  # header + one of each

    def test_reopen_replays_state(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=2)
            j.record_submitted(0, {"n": 12})
            j.record_submitted(1, {"n": 16})
            j.record_attempt("k0", {"ok": True, "eigenvalues": [0.5]})
            j.record_terminal(0, {"disposition": "ok"})
        with JobJournal(path) as j2:
            j2.open("fp-1", jobs=2)
            assert set(j2.submitted) == {0, 1}
            assert j2.attempts["k0"]["eigenvalues"] == [0.5]
            assert j2.missing_terminals() == [1]
            j2.record_terminal(1, {"disposition": "error"})
            assert j2.missing_terminals() == []

    def test_fingerprint_mismatch_refuses_to_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=1)
        with JobJournal(path) as j2:
            with pytest.raises(JournalMismatch, match="different run"):
                j2.open("fp-OTHER", jobs=1)

    def test_version_mismatch_refuses_to_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"kind": "header", "version": "repro.serve.journal/0",
                  "fingerprint": "fp-1", "jobs": 1}
        path.write_text(json.dumps(header) + "\n")
        with JobJournal(path) as j:
            with pytest.raises(JournalMismatch, match="version"):
                j.open("fp-1", jobs=1)

    def test_torn_tail_is_dropped_and_writes_continue_cleanly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=1)
            j.record_submitted(0, {"n": 12})
        # simulate a crash mid-append: a partial record with no newline
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "attempt", "key": "k0", "outco')
        assert read_journal(path)["torn_tail"] is True
        with JobJournal(path) as j2:
            j2.open("fp-1", jobs=1)
            assert j2.torn_tail and set(j2.submitted) == {0}
            assert j2.attempts == {}  # the torn attempt never happened
            j2.record_terminal(0, {"disposition": "ok"})
        # the post-crash file parses cleanly end to end
        doc = read_journal(path)
        assert doc["missing_terminals"] == [] and doc["terminals"] == 1

    def test_mid_file_corruption_is_an_error_not_a_crash_residue(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as j:
            j.open("fp-1", jobs=1)
            j.record_submitted(0, {"n": 12})
            j.record_terminal(0, {"disposition": "ok"})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a record that is NOT the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corruption"):
            read_journal(path)
        with JobJournal(path) as j2:
            with pytest.raises(JournalError, match="corruption"):
                j2.open("fp-1", jobs=1)

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "submitted", "job_id": 0}\n')
        with JobJournal(path) as j:
            with pytest.raises(JournalError, match="header"):
                j.open("fp-1", jobs=1)

    def test_crash_after_env_hard_kills_the_process(self, tmp_path):
        path = tmp_path / "j.jsonl"
        code = (
            "from repro.serve.journal import JobJournal\n"
            f"j = JobJournal({str(path)!r})\n"
            "j.open('fp-1', jobs=9)\n"
            "for i in range(9):\n"
            "    j.record_submitted(i, {'n': 12})\n"
            "print('unreachable')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={
                "PYTHONPATH": "src",
                CRASH_AFTER_ENV: "4",
                "PATH": "/usr/bin:/bin",
            },
            cwd="/root/repo",
        )
        assert proc.returncode == CRASH_EXIT_CODE
        assert "unreachable" not in proc.stdout
        doc = read_journal(path)
        assert doc["records"] == 4  # header + 3 submits, then the kill
        assert doc["submitted"] == 3


# ------------------------------------------------------------------ #
# service integration: resume without recompute


class TestServiceJournal:
    def test_journaled_run_matches_unjournaled_run(self, tmp_path):
        workload = small_workload()
        plain = EigenService(
            MachinePool(2, 8, PARAMS), TuningCache()
        ).run_workload(workload)
        journaled = EigenService(
            MachinePool(2, 8, PARAMS), TuningCache(),
            journal=tmp_path / "j.jsonl",
        ).run_workload(workload)
        assert serve_bench.deterministic_summary(
            plain.summary()
        ) == serve_bench.deterministic_summary(journaled.summary())

    def test_completed_journal_replays_with_zero_new_attempts(self, tmp_path):
        workload = small_workload()
        path = tmp_path / "j.jsonl"
        first = EigenService(
            MachinePool(2, 8, PARAMS), TuningCache(), journal=path
        ).run_workload(workload)
        attempts_after_first = read_journal(path)["attempts"]
        second = EigenService(
            MachinePool(2, 8, PARAMS), TuningCache(), journal=path
        ).run_workload(workload)
        # replay pre-seeded the memo: no new attempt records were written
        assert read_journal(path)["attempts"] == attempts_after_first
        assert serve_bench.deterministic_summary(
            first.summary()
        ) == serve_bench.deterministic_summary(second.summary())
        for a, b in zip(first.results, second.results):
            assert a.eigenvalues is None or (a.eigenvalues == b.eigenvalues).all()

    def test_no_job_lost_recorded_in_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        EigenService(
            MachinePool(2, 8, PARAMS), TuningCache(),
            scenario="poison-job", journal=path,
        ).run_workload(small_workload(jobs=12, seed=7))
        doc = read_journal(path)
        assert doc["submitted"] == 12
        assert doc["missing_terminals"] == []
        assert set(doc["dispositions"]) <= {"ok", "degraded", "shed", "error"}

    def test_workload_change_invalidates_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        EigenService(
            MachinePool(2, 8, PARAMS), TuningCache(), journal=path
        ).run_workload(small_workload(seed=5))
        with pytest.raises(JournalMismatch):
            EigenService(
                MachinePool(2, 8, PARAMS), TuningCache(), journal=path
            ).run_workload(small_workload(seed=6))


# ------------------------------------------------------------------ #
# satellite: crash mid-workload, resume byte-identical


class TestCrashResume:
    def test_killed_service_resumes_byte_identical(self, tmp_path):
        doc = serve_bench.run_crash_resume(
            jobs=10, seed=5, journal_path=tmp_path / "crash.jsonl",
            log=lambda *_: None,
        )
        assert doc["crash_exit"] == CRASH_EXIT_CODE
        # the crash left work behind: some jobs had no terminal record
        assert doc["journal_at_crash"]["missing_terminals"] != []
        # ... and the resumed run finished all of them
        assert doc["journal"]["missing_terminals"] == []
        assert doc["resumed_summary_identical"] is True
        assert doc["resumed_spectra_identical"] is True
        assert doc["no_job_lost"] is True
        assert doc["silent_wrong"] == []
        assert doc["deterministic"] is True

    def test_soak_crash_scenario_delegates_to_crash_resume(self, tmp_path):
        doc = serve_bench.run_soak(
            jobs=10, seed=5, scenario="crash",
            journal_path=tmp_path / "soak.jsonl", log=lambda *_: None,
        )
        assert doc["scenario"] == "crash"
        assert doc["no_job_lost"] is True and doc["deterministic"] is True
