"""Edge-case machine/matrix configurations for the full pipeline.

The paper assumes divisibility everywhere (n mod b = 0, p = q²c, powers of
two); a usable library cannot.  These tests pin down behaviour at awkward
sizes: prime p, non-square-factorable p, odd n, n barely above p, and
band-widths that do not divide n.
"""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.dist.banded import DistBandMatrix
from repro.dist.grid import factor_2p5d
from repro.eig import eigensolve_2p5d
from repro.eig.band_to_band import band_to_band_2p5d
from repro.eig.ca_sbr import ca_sbr_reduce
from repro.util.matrices import random_banded_symmetric, random_symmetric

from tests.helpers import eig_err


class TestAwkwardMachineSizes:
    @pytest.mark.parametrize("p", [3, 5, 6, 7, 12, 24])
    def test_non_square_p(self, p):
        a = random_symmetric(48, seed=p)
        res = eigensolve_2p5d(BSPMachine(p), a)
        assert eig_err(a, res.eigenvalues) < 1e-8

    def test_prime_p_degenerates_to_valid_grid(self):
        q, c = factor_2p5d(13, 0.6)
        assert q * q * c == 13

    def test_p_equals_n(self):
        a = random_symmetric(16, seed=1)
        res = eigensolve_2p5d(BSPMachine(16), a)
        assert eig_err(a, res.eigenvalues) < 1e-8


class TestAwkwardMatrixSizes:
    @pytest.mark.parametrize("n", [17, 31, 33, 50])
    def test_odd_and_prime_n(self, n):
        a = random_symmetric(n, seed=n)
        res = eigensolve_2p5d(BSPMachine(4), a)
        assert eig_err(a, res.eigenvalues) < 1e-8

    def test_tiny_n(self):
        for n in (2, 3, 5):
            a = random_symmetric(n, seed=n)
            res = eigensolve_2p5d(BSPMachine(1), a)
            assert eig_err(a, res.eigenvalues) < 1e-9

    def test_band_not_dividing_n(self):
        a = random_banded_symmetric(50, 12, seed=2)
        m = BSPMachine(4)
        out = band_to_band_2p5d(m, DistBandMatrix(m, a.copy(), 12, m.world), k=2)
        assert eig_err(a, out.data) < 1e-9

    def test_ca_sbr_odd_band(self):
        a = random_banded_symmetric(45, 7, seed=3)
        m = BSPMachine(3)
        out = ca_sbr_reduce(m, DistBandMatrix(m, a.copy(), 7, m.world), 1)
        assert out.b == 1
        assert eig_err(a, out.data) < 1e-9


class TestScaleInvariance:
    def test_spectrum_scaling(self):
        """Solving c·A must give c·λ(A) — the pipeline has no hidden
        absolute thresholds."""
        a = random_symmetric(32, seed=4)
        r1 = eigensolve_2p5d(BSPMachine(4), a).eigenvalues
        r2 = eigensolve_2p5d(BSPMachine(4), 1e6 * a).eigenvalues
        assert np.abs(r2 - 1e6 * r1).max() < 1e-4  # 1e6-scaled tolerance

    def test_shift_invariance(self):
        a = random_symmetric(32, seed=5)
        r1 = eigensolve_2p5d(BSPMachine(4), a).eigenvalues
        r2 = eigensolve_2p5d(BSPMachine(4), a + 100.0 * np.eye(32)).eigenvalues
        assert np.abs((r2 - 100.0) - r1).max() < 1e-8

    def test_costs_independent_of_values(self):
        """Communication depends on structure, not entries."""
        m1, m2 = BSPMachine(8), BSPMachine(8)
        eigensolve_2p5d(m1, random_symmetric(40, seed=6))
        eigensolve_2p5d(m2, random_symmetric(40, seed=777) * 3.0)
        assert m1.cost().W == m2.cost().W
        assert m1.cost().S == m2.cost().S
