"""Tests for the closed-form cost models, Table I, tuning, and bounds."""

import math

import numpy as np
import pytest

from repro.bsp.params import MachineParams
from repro.model.bounds import (
    attains_memory_bound,
    memory_dependent_lower_bound,
    synchronization_tradeoff_lower_bound,
)
from repro.model.costs import (
    band_to_band_cost,
    c_to_delta,
    ca_sbr_eigensolver_cost,
    carma_cost,
    delta_to_c,
    eigensolver_2p5d_cost,
    elpa_cost,
    full_to_band_cost,
    rect_qr_cost,
    scalapack_cost,
    square_qr_cost,
    streaming_mm_cost,
)
from repro.model.table1 import render_table1, table1_numeric, table1_ratios
from repro.model.tuning import (
    bandwidth_bound_speedup,
    best_delta,
    feasible_deltas,
    tuning_table,
)


class TestDeltaC:
    def test_roundtrip(self):
        for p in (16, 64, 256):
            for d in (0.5, 0.6, 2 / 3):
                assert c_to_delta(p, delta_to_c(p, d)) == pytest.approx(d)

    def test_endpoints(self):
        assert delta_to_c(64, 0.5) == pytest.approx(1.0)
        assert delta_to_c(64, 2 / 3) == pytest.approx(64 ** (1 / 3))


class TestCostAlgebra:
    def test_carma_regimes(self):
        # 1D: sizes/p dominates; 3D: (mnk/p)^{2/3} dominates.
        c1 = carma_cost(10**6, 8, 8, 16)
        assert c1.W == pytest.approx((10**6 * 8 * 2 + 64) / 16 + (10**6 * 64 / 16) ** (2 / 3), rel=0.01)
        c3 = carma_cost(512, 512, 512, 4096)
        assert (512 * 512 * 3) / 4096 < (512**3 / 4096) ** (2 / 3)

    def test_streaming_cache_condition(self):
        with_cache = streaming_mm_cost(256, 256, 32, 64, 0.5, a_in_cache=True)
        without = streaming_mm_cost(256, 256, 32, 64, 0.5, a_in_cache=False)
        assert without.Q > with_cache.Q
        assert without.W == with_cache.W

    def test_full_to_band_matches_theorem_shape(self):
        n, p = 4096, 4096
        for d in (0.5, 2 / 3):
            c = full_to_band_cost(n, p, d, b=n // 12)
            assert c.W == pytest.approx(n * n / p**d)
            assert c.M == pytest.approx(n * n / p ** (2 * (1 - d)))

    def test_band_to_band_stage_invariance(self):
        """The ζ = (1−δ)/δ shrink keeps per-stage W constant (Thm IV.4)."""
        n, d = 4096, 2 / 3
        zeta = (1 - d) / d
        w0 = band_to_band_cost(n, 256, 2, 512, d).W
        w1 = band_to_band_cost(n, 128, 2, int(512 / 2**zeta), d).W
        assert w1 == pytest.approx(w0, rel=0.05)

    def test_eigensolver_w_beats_2d_by_sqrt_c(self):
        n, p = 8192, 4096
        w_2d = eigensolver_2p5d_cost(n, p, 0.5).W
        w_25d = eigensolver_2p5d_cost(n, p, 2 / 3).W
        assert w_2d / w_25d == pytest.approx(math.sqrt(delta_to_c(p, 2 / 3)), rel=0.01)

    def test_add_composes(self):
        a = scalapack_cost(1024, 64)
        b = elpa_cost(1024, 64)
        s = a + b
        assert s.W == a.W + b.W
        assert s.M == max(a.M, b.M)

    def test_time_uses_machine_params(self):
        c = square_qr_cost(512, 64, 0.5)
        t = c.time(MachineParams(gamma=1, beta=0, nu=0, alpha=0))
        assert t == pytest.approx(c.F)

    def test_rect_qr_tall_skinny_limit(self):
        # For m >> n the mn/p term dominates W.
        c = rect_qr_cost(10**7, 8, 64)
        assert c.W == pytest.approx(10**7 * 8 / 64, rel=0.2)


class TestTable1:
    def test_render_contains_all_rows(self):
        text = render_table1()
        for name in ("ScaLAPACK", "ELPA", "CA-SBR", "Theorem IV.4"):
            assert name in text

    def test_numeric_w_ordering(self):
        rows = table1_numeric(8192, 4096, delta=2 / 3)
        ours = rows["Theorem IV.4"].W
        for name in ("ScaLAPACK", "ELPA", "CA-SBR"):
            assert rows[name].W > ours

    def test_ratios_equal_sqrt_c(self):
        p = 4096
        ratios = table1_ratios(8192, p, delta=2 / 3)
        expect = math.sqrt(delta_to_c(p, 2 / 3))
        for v in ratios.values():
            assert v == pytest.approx(expect, rel=0.01)

    def test_scalapack_q_is_cubic_when_cache_small(self):
        rows = table1_numeric(4096, 256)
        assert rows["ScaLAPACK"].Q == pytest.approx(4096**3 / 256)


class TestTuning:
    def test_feasible_deltas_shrink_with_memory(self):
        n, p = 8192, 4096
        all_d = feasible_deltas(n, p, memory_words=1e18)
        tight = feasible_deltas(n, p, memory_words=n * n / p * 1.5)
        assert len(tight) < len(all_d)
        assert min(tight) == min(all_d) == 0.5

    def test_bandwidth_bound_machine_prefers_max_c(self):
        params = MachineParams(gamma=0.0, beta=1.0, nu=0.0, alpha=0.0)
        d, _ = best_delta(8192, 4096, params)
        assert d == pytest.approx(2 / 3)

    def test_latency_bound_machine_prefers_c1(self):
        params = MachineParams(gamma=0.0, beta=0.0, nu=0.0, alpha=1.0)
        d, _ = best_delta(8192, 4096, params)
        assert d == pytest.approx(0.5)

    def test_memory_limit_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            best_delta(10**6, 4, MachineParams(memory_words=10.0))

    @pytest.mark.parametrize("samples", [2, 3, 5, 9, 33, 100])
    def test_delta_grid_pins_endpoints_exactly(self, samples):
        """Regression: the grid's endpoints are δ = 1/2 and 2/3 *exactly*,
        not the lerp's rounded `lo + (hi−lo)·i/(s−1)` — endpoint pinning
        must not depend on float rounding of the interpolation."""
        from repro.model.tuning import delta_grid

        grid = delta_grid(samples)
        assert len(grid) == samples
        assert grid[0] == 0.5
        assert grid[-1] == 2.0 / 3.0
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_feasible_deltas_include_exact_endpoints(self):
        cands = feasible_deltas(8192, 4096, memory_words=1e18)
        assert cands[0] == 0.5
        assert cands[-1] == 2.0 / 3.0

    def test_best_delta_ties_prefer_smaller_delta(self):
        # All-zero params: every δ costs 0.0; the scan must stay
        # deterministic and return the smallest candidate.
        params = MachineParams(gamma=0.0, beta=0.0, nu=0.0, alpha=0.0)
        d, t = best_delta(8192, 4096, params)
        assert d == 0.5
        assert t == 0.0

    def test_tuning_table_fields(self):
        rows = tuning_table(4096, 256, MachineParams())
        assert len(rows) == 9
        assert rows[0]["delta"] == pytest.approx(0.5)
        assert rows[-1]["delta"] == pytest.approx(2 / 3)
        assert all(r["c"] >= 1 for r in rows)

    def test_speedup_formula(self):
        assert bandwidth_bound_speedup(4096) == pytest.approx(4096 ** (1 / 6))


class TestBounds:
    def test_memory_bound_formula(self):
        assert memory_dependent_lower_bound(1024, 64, 1024**2 / 64) == pytest.approx(
            1024**3 / (64 * 1024 / 8)
        )

    def test_sync_tradeoff(self):
        assert synchronization_tradeoff_lower_bound(1024, 1024) == pytest.approx(1024)
        with pytest.raises(ValueError):
            synchronization_tradeoff_lower_bound(10, 0)

    def test_2p5d_attains_memory_bound_along_delta(self):
        for d in (0.5, 0.6, 2 / 3):
            assert attains_memory_bound(8192, 4096, d)

    def test_w_s_product_meets_tradeoff(self):
        # W·S for the 2.5D solver is Ω(n²) (up to log factors), as required.
        n, p = 8192, 4096
        c = eigensolver_2p5d_cost(n, p, 2 / 3)
        assert c.W * c.S >= n * n
