"""Tests for the BSP machine core: params, counters, machine charging."""

import math

import numpy as np
import pytest

from repro.bsp import BSPMachine, MachineParams, RankGroup
from repro.bsp.counters import RankCounters, aggregate
from repro.bsp.params import BANDWIDTH_BOUND, LATENCY_BOUND


class TestMachineParams:
    def test_defaults_satisfy_paper_assumptions(self):
        MachineParams().validate_paper_assumptions()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MachineParams(beta=-1.0)

    def test_rejects_gamma_above_beta(self):
        with pytest.raises(ValueError, match="gamma <= beta"):
            MachineParams(gamma=10.0, beta=1.0).validate_paper_assumptions()

    def test_rejects_nu_above_beta(self):
        with pytest.raises(ValueError, match="nu <= beta"):
            MachineParams(gamma=0.1, nu=10.0, beta=1.0).validate_paper_assumptions()

    def test_cache_assumption(self):
        p = MachineParams(gamma=1.0, nu=50.0, beta=100.0, cache_words=4.0)
        with pytest.raises(ValueError, match="sqrt"):
            p.validate_paper_assumptions()

    def test_time_formula(self):
        p = MachineParams(gamma=1.0, beta=2.0, nu=3.0, alpha=4.0)
        assert p.time(1, 1, 1, 1) == 10.0

    def test_with_cache_and_memory(self):
        p = MachineParams().with_cache(100.0).with_memory(1000.0)
        assert p.cache_words == 100.0
        assert p.memory_words == 1000.0

    def test_presets(self):
        assert BANDWIDTH_BOUND.time(100, 7, 100, 100) == 7
        assert LATENCY_BOUND.time(100, 100, 100, 7) == 7


class TestCounters:
    def test_words_is_sent_plus_received(self):
        c = RankCounters(words_sent=3.0, words_recv=4.0)
        assert c.words == 7.0

    def test_aggregate_max_and_total(self):
        rep = aggregate(
            [RankCounters(flops=10.0), RankCounters(flops=30.0), RankCounters(flops=20.0)]
        )
        assert rep.flops == 30.0
        assert rep.total_flops == 60.0
        assert rep.p == 3
        assert rep.flop_imbalance == pytest.approx(1.5)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_paper_notation_properties(self):
        rep = aggregate([RankCounters(flops=1, words_sent=2, mem_traffic=3, supersteps=4)])
        assert (rep.F, rep.W, rep.Q, rep.S) == (1.0, 2.0, 3.0, 4)

    def test_subtraction_gives_interval_costs(self):
        m = BSPMachine(2)
        m.charge_flops(0, 10.0)
        snap = m.cost()
        m.charge_flops(1, 100.0)
        delta = m.cost() - snap
        assert delta.flops == 100.0
        assert delta.total_flops == 100.0

    def test_subtraction_rejects_different_machines(self):
        with pytest.raises(ValueError):
            BSPMachine(2).cost() - BSPMachine(3).cost()

    def test_summary_is_one_line(self):
        assert "\n" not in BSPMachine(2).cost().summary()


class TestMachine:
    def test_charge_flops_single_and_group(self):
        m = BSPMachine(4)
        m.charge_flops(1, 5.0)
        m.charge_flops(m.world, 2.0)
        assert m.counters[1].flops == 7.0
        assert m.counters[0].flops == 2.0

    def test_charge_comm(self):
        m = BSPMachine(3)
        m.charge_comm(sends={0: 10.0}, recvs={2: 10.0})
        assert m.counters[0].words_sent == 10.0
        assert m.counters[2].words_recv == 10.0
        assert m.cost().W == 10.0

    def test_rejects_negative_charges(self):
        m = BSPMachine(2)
        with pytest.raises(ValueError):
            m.charge_flops(0, -1.0)
        with pytest.raises(ValueError):
            m.charge_comm(sends={0: -1.0})

    def test_rejects_bad_rank(self):
        m = BSPMachine(2)
        with pytest.raises(ValueError, match="out of range"):
            m.charge_flops(2, 1.0)

    def test_superstep_group_scoping(self):
        m = BSPMachine(4)
        m.superstep(RankGroup((0, 1)))
        m.superstep()  # whole world
        assert m.counters[0].supersteps == 2
        assert m.counters[3].supersteps == 1
        assert m.cost().S == 2

    def test_memory_high_water(self):
        m = BSPMachine(2)
        m.note_memory(0, 100.0)
        m.note_memory(0, 50.0)  # lower does not reduce the peak
        assert m.counters[0].peak_memory_words == 100.0
        m.add_memory(0, 80.0)
        assert m.counters[0].peak_memory_words == 180.0
        m.release_memory(0, 300.0)  # clamps at zero
        assert m.counters[0].current_memory_words == 0.0

    def test_mem_read_hits_after_first_touch(self):
        m = BSPMachine(1)
        m.mem_read(0, "A", 100.0)
        m.mem_read(0, "A", 100.0)
        assert m.counters[0].mem_traffic == 100.0  # second access is a hit

    def test_mem_stream_always_charges(self):
        m = BSPMachine(1)
        m.mem_stream(0, 10.0)
        m.mem_stream(0, 10.0)
        assert m.counters[0].mem_traffic == 20.0

    def test_reset(self):
        m = BSPMachine(2, trace=True)
        m.charge_flops(0, 5.0)
        m.superstep()
        m.reset()
        rep = m.cost()
        assert rep.flops == 0 and rep.S == 0 and len(m.trace) == 0

    def test_small_cache_causes_repeat_misses(self):
        m = BSPMachine(1, MachineParams(cache_words=50.0))
        m.mem_read(0, "big", 100.0)  # larger than cache: streamed
        m.mem_read(0, "big", 100.0)
        assert m.counters[0].mem_traffic == 200.0
