"""Bit-identity of the vectorized and scalar accounting engines.

The vectorized ``array`` engine (:class:`repro.bsp.counters.CounterArray`)
must produce cost reports **bit-identical** to the pre-vectorization
``scalar`` oracle (:class:`repro.bsp.scalar.ScalarCounterStore`) — per rank,
not just in aggregate — for every charging path: collectives, batched entry
points, sharded kernels, memory tracking, and a full eigensolver run.  Both
engines receive the identical pre-computed charge values, so any difference
is an engine bug, never float noise.

Also covers the :class:`~repro.bsp.group.RankGroup` index/position caches
the vectorized engine relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bsp import BSPMachine, RankGroup, collectives
from repro.bsp.counters import COUNTER_FIELDS, CounterArray, RankCounters
from repro.bsp.kernels import sharded_axpy, sharded_dot, sharded_matvec
from repro.bsp.scalar import ScalarCounterStore


def both_machines(p: int, **kwargs) -> tuple[BSPMachine, BSPMachine]:
    return BSPMachine(p, engine="array", **kwargs), BSPMachine(p, engine="scalar", **kwargs)


def assert_identical(array_m: BSPMachine, scalar_m: BSPMachine) -> None:
    """Reports and every per-rank counter must match bit-for-bit."""
    ra, rs = array_m.cost(), scalar_m.cost()
    for name in (
        "p",
        "flops",
        "words",
        "mem_traffic",
        "supersteps",
        "total_flops",
        "total_words",
        "total_mem_traffic",
        "peak_memory_words",
    ):
        assert getattr(ra, name) == getattr(rs, name), name
    for fname in COUNTER_FIELDS:
        av = array_m.counters.field_array(fname)
        sv = scalar_m.counters.field_array(fname)
        assert np.array_equal(av, sv), f"per-rank {fname} differs"


def run_on_both(p, workload, **kwargs):
    ma, ms = both_machines(p, **kwargs)
    workload(ma)
    workload(ms)
    assert_identical(ma, ms)
    return ma, ms


# ------------------------------------------------------------------ #
# engine selection

def test_engine_selection_and_store_types():
    ma, ms = both_machines(4)
    assert isinstance(ma.counters, CounterArray)
    assert isinstance(ms.counters, ScalarCounterStore)
    assert ma.engine == "array" and ms.engine == "scalar"


def test_engine_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "scalar")
    assert isinstance(BSPMachine(4).counters, ScalarCounterStore)
    monkeypatch.delenv("REPRO_ENGINE")
    assert isinstance(BSPMachine(4).counters, CounterArray)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown accounting engine"):
        BSPMachine(4, engine="gpu")


def test_counters_preserve_rankcounters_view():
    ma, _ = both_machines(4)
    ma.charge_flops(ma.world, 3.0)
    slot = ma.counters[1]
    assert slot.flops == 3.0
    slot.flops = 7.0  # writable view, as tests and tools rely on
    assert ma.counters.field_array("flops")[1] == 7.0
    assert isinstance(ma.counters[0].copy(), RankCounters)
    assert len(ma.counters) == 4
    assert [s.flops for s in ma.counters] == [3.0, 7.0, 3.0, 3.0]


# ------------------------------------------------------------------ #
# collectives

COLLECTIVE_CASES = [
    lambda m: collectives.bcast(m, m.world, 144.0),
    lambda m: collectives.bcast(m, m.world, 144.0, root=5),
    lambda m: collectives.reduce(m, m.world, 80.0, root=3),
    lambda m: collectives.allreduce(m, m.world, 96.0),
    lambda m: collectives.reduce_scatter(m, m.world, 64.0),
    lambda m: collectives.allgather(m, m.world, 12.0),
    lambda m: collectives.gather(m, m.world, 10.0, root=2),
    lambda m: collectives.scatter(m, m.world, 10.0, root=6),
    lambda m: collectives.alltoall(
        m, m.world, {(0, 1): 5.0, (1, 0): 3.0, (2, 7): 11.0, (3, 3): 9.0}
    ),
    lambda m: collectives.p2p(m, 0, 7, 42.0),
]


@pytest.mark.parametrize("workload", COLLECTIVE_CASES)
def test_collectives_identical(workload):
    run_on_both(8, workload)


def test_collectives_on_subgroups_identical():
    def workload(m):
        for grp in m.world.split(4):
            collectives.bcast(m, grp, 33.0)
            collectives.allreduce(m, grp, 17.0)
            collectives.reduce(m, grp, 9.0)
        m.superstep(m.world)

    run_on_both(16, workload)


def test_alltoall_matrix_identical():
    mat = np.fromfunction(lambda i, j: (3.0 * i + j) % 5.0, (8, 8))

    def workload(m):
        collectives.alltoall_matrix(m, m.world, mat)

    ma, ms = run_on_both(8, workload)
    # and it matches the dict-based alltoall of the same transfers
    md = BSPMachine(8, engine="array")
    transfers = {(i, j): float(mat[i, j]) for i in range(8) for j in range(8) if mat[i, j]}
    collectives.alltoall(md, md.world, transfers)
    assert md.cost().words == ma.cost().words
    assert md.cost().supersteps == ma.cost().supersteps


# ------------------------------------------------------------------ #
# batched entry points

def test_charge_flops_batch_identical():
    weights = np.linspace(0.5, 4.0, 8)
    run_on_both(8, lambda m: m.charge_flops_batch(m.world, weights))


def test_charge_comm_batch_scalar_and_array_identical():
    sends = np.arange(8, dtype=np.float64)

    def workload(m):
        m.charge_comm_batch(m.world, 6.0, 6.0)
        m.charge_comm_batch(m.world, sends, sends[::-1].copy())
        m.charge_comm_batch(m.world, None, 2.0)

    run_on_both(8, workload)


def test_charge_comm_matrix_identical():
    mat = np.fromfunction(lambda i, j: np.abs(i - j) * 1.5, (6, 6))
    run_on_both(8, lambda m: m.charge_comm_matrix(m.world.take(6), mat))


def test_duplicate_rank_iterables_accumulate_identically():
    # Arbitrary iterables may repeat ranks; both engines must double-charge.
    def workload(m):
        m.charge_flops([0, 1, 1, 2, 0], 2.0)
        m.mem_stream_group([3, 3, 3], 1.5)
        m.superstep([0, 0, 1])
        m.add_memory([2, 2], 10.0)
        m.release_memory([2, 2], 4.0)

    ma, _ = run_on_both(4, workload)
    assert ma.counters.field_array("flops")[1] == 4.0
    assert ma.counters.field_array("mem_traffic")[3] == 4.5
    assert ma.counters.field_array("supersteps")[0] == 2


def test_memory_tracking_identical():
    def workload(m):
        m.note_memory(m.world, 50.0)
        m.add_memory(m.world.take(2), 30.0)
        m.release_memory(1, 100.0)  # clamps at zero
        m.note_memory(3, 10.0)  # below current peak: no effect

    ma, _ = run_on_both(4, workload)
    peaks = ma.counters.field_array("peak_memory_words")
    assert peaks[0] == 80.0 and peaks[3] == 50.0
    assert ma.counters.field_array("current_memory_words")[1] == 0.0


def test_cache_traffic_identical():
    def workload(m):
        for r in range(m.p):
            m.mem_read(r, "A", 100.0)
            m.mem_read(r, "A", 100.0)  # hit: free
            m.mem_write(r, "B", 40.0)
        m.mem_stream_group(m.world, 7.0)

    run_on_both(4, workload)


# ------------------------------------------------------------------ #
# sharded kernels and the full driver

def test_sharded_kernels_identical(rng):
    x = rng.standard_normal(64)
    y = rng.standard_normal(64)
    a = rng.standard_normal((64, 64))

    def workload(m):
        sharded_matvec(m, m.world, a, x)
        sharded_dot(m, m.world, x, y)
        sharded_axpy(m, m.world, 1.5, x, y.copy())

    run_on_both(8, workload)


def test_full_driver_identical():
    from repro.eig import eigensolve_2p5d
    from repro.util.matrices import random_symmetric

    a = random_symmetric(48, seed=7)

    def workload(m):
        eigensolve_2p5d(m, a.copy(), delta=2.0 / 3.0)

    run_on_both(16, workload)


def test_report_subtraction_identical():
    def run(engine):
        m = BSPMachine(8, engine=engine)
        collectives.allreduce(m, m.world, 64.0)
        before = m.cost()
        collectives.bcast(m, m.world, 32.0)
        m.charge_flops(m.world, 5.0)
        return m.cost() - before

    da, ds = run("array"), run("scalar")
    for name in ("flops", "words", "mem_traffic", "supersteps", "total_flops", "total_words"):
        assert getattr(da, name) == getattr(ds, name), name


# ------------------------------------------------------------------ #
# RankGroup caching

def test_rankgroup_indices_cached_and_readonly():
    g = RankGroup((3, 1, 4, 1 + 4))
    idx = g.indices()
    assert idx is g.indices()  # memoized: same object every call
    assert idx.dtype == np.int64
    assert idx.tolist() == [3, 1, 4, 5]
    with pytest.raises(ValueError):
        idx[0] = 0  # read-only


def test_rankgroup_min_max_cached():
    g = RankGroup((9, 2, 7))
    assert g.min_rank == 2 and g.max_rank == 9
    assert g.__dict__["_min_rank"] == 2  # cached alongside indices()


def test_rankgroup_positions():
    g = RankGroup((5, 0, 2))
    assert 0 in g and 3 not in g
    assert g.index_of(2) == 2
    with pytest.raises(ValueError, match="not in group"):
        g.index_of(7)


def test_rankgroup_split_groups_cache_independently():
    g = RankGroup.contiguous(0, 8)
    parts = g.split(2)
    assert parts[0].indices().tolist() == [0, 1, 2, 3]
    assert parts[1].indices().tolist() == [4, 5, 6, 7]
    assert parts[0].indices() is not g.indices()


def test_machine_group_bounds_check_uses_cache():
    m = BSPMachine(4)
    with pytest.raises(ValueError, match="out of range"):
        m.charge_flops(RankGroup((0, 4)), 1.0)
    with pytest.raises(ValueError, match="out of range"):
        m.charge_flops(RankGroup((-1, 0)), 1.0)
