"""Tests for the BSP collectives' cost conventions.

Each collective must charge the two-phase bandwidth-optimal pattern
(every rank moves O(w), never O(g·w)) and O(1) supersteps.
"""

import pytest

from repro.bsp import BSPMachine, RankGroup, collectives


def group(*ranks):
    return RankGroup(tuple(ranks))


class TestBcast:
    def test_every_rank_moves_about_w(self):
        m = BSPMachine(8)
        collectives.bcast(m, m.world, words=800.0)
        for r in range(8):
            assert m.counters[r].words <= 3 * 800.0
            assert m.counters[r].words >= 800.0 * (8 - 1) / 8
        assert m.cost().S == 2

    def test_single_rank_is_free(self):
        m = BSPMachine(4)
        collectives.bcast(m, group(2), words=100.0)
        assert m.cost().W == 0 and m.cost().S == 0

    def test_root_must_be_member(self):
        m = BSPMachine(4)
        with pytest.raises(ValueError, match="root"):
            collectives.bcast(m, group(0, 1), words=10.0, root=3)

    def test_rejects_negative_words(self):
        m = BSPMachine(4)
        with pytest.raises(ValueError):
            collectives.bcast(m, m.world, words=-1.0)


class TestReduce:
    def test_charges_combining_flops(self):
        m = BSPMachine(4)
        collectives.reduce(m, m.world, words=400.0)
        assert m.counters[0].flops == pytest.approx(300.0)
        assert m.cost().S == 2

    def test_no_cost_for_singleton(self):
        m = BSPMachine(4)
        collectives.reduce(m, group(1), words=50.0)
        assert m.cost().W == 0


class TestAllreduceAndFriends:
    def test_allreduce_symmetric_charges(self):
        m = BSPMachine(4)
        collectives.allreduce(m, m.world, words=100.0)
        sent = {m.counters[r].words_sent for r in range(4)}
        assert len(sent) == 1  # perfectly symmetric

    def test_reduce_scatter(self):
        m = BSPMachine(4)
        collectives.reduce_scatter(m, m.world, words_total=400.0)
        assert m.counters[0].words_sent == pytest.approx(300.0)
        assert m.cost().S == 1

    def test_allgather(self):
        m = BSPMachine(4)
        collectives.allgather(m, m.world, words_each=10.0)
        assert m.counters[2].words_recv == pytest.approx(30.0)
        assert m.cost().S == 1


class TestGatherScatter:
    def test_gather_root_receives_everything(self):
        m = BSPMachine(4)
        collectives.gather(m, m.world, words_each=10.0, root=0)
        assert m.counters[0].words_recv == pytest.approx(30.0)
        assert m.counters[0].words_sent == 0.0
        assert m.counters[1].words_sent == pytest.approx(10.0)

    def test_scatter_is_dual_of_gather(self):
        m = BSPMachine(4)
        collectives.scatter(m, m.world, words_each=10.0, root=0)
        assert m.counters[0].words_sent == pytest.approx(30.0)
        assert m.counters[3].words_recv == pytest.approx(10.0)


class TestAlltoall:
    def test_charges_per_pair(self):
        m = BSPMachine(4)
        collectives.alltoall(m, m.world, {(0, 1): 5.0, (2, 3): 7.0, (1, 1): 100.0})
        assert m.counters[0].words_sent == 5.0
        assert m.counters[1].words_recv == 5.0
        assert m.counters[3].words_recv == 7.0
        # self-transfers are local and free
        assert m.counters[1].words_sent == 0.0
        assert m.cost().S == 1

    def test_rejects_transfers_outside_group(self):
        m = BSPMachine(4)
        with pytest.raises(ValueError, match="outside group"):
            collectives.alltoall(m, group(0, 1), {(0, 3): 1.0})


class TestP2P:
    def test_charges_both_ends_no_superstep(self):
        m = BSPMachine(4)
        collectives.p2p(m, 0, 3, 42.0)
        assert m.counters[0].words_sent == 42.0
        assert m.counters[3].words_recv == 42.0
        assert m.cost().S == 0  # caller batches supersteps

    def test_self_send_free(self):
        m = BSPMachine(4)
        collectives.p2p(m, 1, 1, 42.0)
        assert m.cost().W == 0
