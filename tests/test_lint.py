"""Tests for the static cost-accounting linter (``repro lint``).

The lexical fixture corpus lives in ``tests/data/lint_fixtures/`` and the
interprocedural race/ownership corpus in ``tests/data/lint_cases/``; each
expected diagnostic line is tagged in the fixture source with a
``# MARK:<tag>`` comment so the assertions stay exact without hard-coding
line numbers.
"""

from __future__ import annotations

import functools
import json
import shutil
from pathlib import Path

import pytest

from repro import cli
from repro.lint import (
    BASELINE_NAME,
    analyze_source,
    apply_baseline,
    lint_file,
    lint_paths,
    parse_pragmas,
)
from repro.lint.baseline import discover_baseline, parse_baseline, render_baseline, stale_entries
from repro.lint.rules import RULES, make_finding
from repro.lint.runner import main as lint_main

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
CASES = Path(__file__).parent / "data" / "lint_cases"
REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _marks_in(path: Path) -> dict[str, int]:
    out: dict[str, int] = {}
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        if "# MARK:" in text:
            out[text.split("# MARK:")[1].strip()] = lineno
    return out


def marks(name: str) -> dict[str, int]:
    """Map ``# MARK:<tag>`` comments in a fixture to their line numbers."""
    return _marks_in(FIXTURES / name)


def case_marks(name: str) -> dict[str, int]:
    return _marks_in(CASES / name)


@functools.lru_cache(maxsize=1)
def lint_cases_dataflow():
    """One dataflow lint of the whole lint_cases corpus (cached)."""
    return lint_paths([CASES], root=CASES, use_baseline=False, dataflow=True)


def diag(name: str) -> tuple[set[tuple[str, int]], int]:
    """Lint one fixture; returns ({(rule, line)}, pragma_suppressed)."""
    findings, suppressed = lint_file(FIXTURES / name, name)
    return {(f.rule, f.line) for f in findings}, suppressed


class TestAnalyzerFixtures:
    def test_matmul_operator_and_np_dot_flagged(self):
        m = marks("viol_matmul.py")
        found, _ = diag("viol_matmul.py")
        assert found == {("REPRO001", m["matmul-op"]), ("REPRO001", m["np-dot"])}

    def test_linalg_calls_flagged(self):
        m = marks("viol_linalg.py")
        found, _ = diag("viol_linalg.py")
        assert found == {("REPRO002", m["eigvalsh"]), ("REPRO002", m["from-import"])}

    def test_uncounted_data_copy_flagged_charged_one_is_not(self):
        m = marks("viol_copy.py")
        found, _ = diag("viol_copy.py")
        assert found == {("REPRO003", m["uncounted-copy"])}

    def test_p2p_without_superstep_flagged(self):
        m = marks("viol_p2p.py")
        found, _ = diag("viol_p2p.py")
        assert found == {("REPRO004", m["unbarriered-p2p"])}

    def test_line_pragmas_waive(self):
        found, suppressed = diag("clean_pragma.py")
        assert found == set()
        assert suppressed == 2

    def test_module_pragma_waives_whole_file(self):
        found, suppressed = diag("clean_module_pragma.py")
        assert found == set()
        assert suppressed == 2

    def test_bad_pragmas_are_findings_and_do_not_waive(self):
        found, suppressed = diag("viol_bad_pragma.py")
        assert suppressed == 0
        # line 8: empty reason; line 9: unknown keyword — each yields the
        # REPRO005 plus the unwaived dense-math finding it failed to cover
        assert found == {
            ("REPRO005", 8),
            ("REPRO001", 8),
            ("REPRO005", 9),
            ("REPRO001", 9),
        }

    def test_scalapack_cost_leak_regression(self):
        """The pre-fix eig/scalapack_like.py trailing update must stay
        detectable: matvec, np.dot correction, and both np.outer calls."""
        m = marks("viol_scalapack_prefix.py")
        findings, _ = lint_file(
            FIXTURES / "viol_scalapack_prefix.py", "viol_scalapack_prefix.py"
        )
        assert all(f.rule == "REPRO001" for f in findings)
        lines = sorted(f.line for f in findings)
        assert lines == [m["leak-matvec"], m["leak-dot"], m["leak-outer"], m["leak-outer"]]

    def test_parse_error_is_repro000(self):
        findings = analyze_source("def broken(:\n    pass\n", "broken.py")
        assert [f.rule for f in findings] == ["REPRO000"]

    def test_finding_format_is_clickable(self):
        f = make_finding("pkg/mod.py", 12, 4, "REPRO001", "detail text")
        assert f.format() == "pkg/mod.py:12:4: REPRO001 uncounted-flops: detail text"

    def test_every_rule_has_a_description(self):
        assert set(RULES) >= {f"REPRO00{i}" for i in range(6)}
        assert all(RULES[r] for r in RULES)


class TestPragmas:
    def test_reason_may_contain_parentheses(self):
        src = "x = 1  # cost: free(see Theorem IV.4 (and docs/extending.md))\n"
        pragmas = parse_pragmas(src)
        assert pragmas.bad == []
        assert pragmas.free_lines[1] == "see Theorem IV.4 (and docs/extending.md)"

    def test_pragma_inside_string_is_ignored(self):
        src = 's = "# cost: free(not a pragma)"\n'
        pragmas = parse_pragmas(src)
        assert pragmas.free_lines == {} and pragmas.bad == []

    def test_module_pragma_suppresses_any_line(self):
        pragmas = parse_pragmas("# cost: free-module(fixture reason)\n")
        assert pragmas.module_free
        assert pragmas.suppresses(999)


class TestBaseline:
    def test_parse_render_round_trip(self):
        findings = [
            make_finding("a.py", 3, 0, "REPRO001", "x"),
            make_finding("a.py", 9, 0, "REPRO001", "y"),
            make_finding("b.py", 1, 0, "REPRO002", "z"),
        ]
        allowed = parse_baseline(render_baseline(findings))
        assert allowed == {("a.py", "REPRO001"): 2, ("b.py", "REPRO002"): 1}

    def test_malformed_baseline_line_raises(self):
        with pytest.raises(ValueError, match="expected"):
            parse_baseline("a.py REPRO001\n")
        with pytest.raises(ValueError, match="bad count"):
            parse_baseline("a.py REPRO001 many\n")

    def test_within_quota_suppresses_group(self):
        findings = [make_finding("a.py", i, 0, "REPRO001", "x") for i in (1, 2)]
        reported, suppressed = apply_baseline(findings, {("a.py", "REPRO001"): 2})
        assert reported == [] and suppressed == 2

    def test_group_growth_reports_every_finding(self):
        findings = [make_finding("a.py", i, 0, "REPRO001", "x") for i in (1, 2, 3)]
        reported, suppressed = apply_baseline(findings, {("a.py", "REPRO001"): 2})
        assert len(reported) == 3 and suppressed == 0

    def test_discover_walks_up_to_repo_baseline(self):
        assert discover_baseline(FIXTURES) == REPO_ROOT / BASELINE_NAME

    def test_stale_entries_detected(self):
        findings = [make_finding("a.py", 1, 0, "REPRO001", "x")]
        allowed = {("a.py", "REPRO001"): 3, ("b.py", "REPRO002"): 1}
        assert stale_entries(findings, allowed) == [
            ("a.py", "REPRO001", 3, 1),
            ("b.py", "REPRO002", 1, 0),
        ]

    def test_exact_quota_is_not_stale(self):
        findings = [make_finding("a.py", i, 0, "REPRO001", "x") for i in (1, 2)]
        assert stale_entries(findings, {("a.py", "REPRO001"): 2}) == []

    def test_lint_paths_reports_stale_baseline(self, tmp_path):
        work = tmp_path / "pkg"
        work.mkdir()
        shutil.copy(FIXTURES / "viol_matmul.py", work / "leaky.py")
        baseline = tmp_path / BASELINE_NAME
        baseline.write_text("pkg/leaky.py REPRO001 9\n")
        result = lint_paths([work], baseline=baseline)
        assert result.ok  # within quota: findings all suppressed
        assert result.stale_baseline == [("pkg/leaky.py", "REPRO001", 9, 2)]
        assert "stale baseline entry" in result.report()
        assert "ratchet" in result.stale_report()


class TestTree:
    def test_shipped_tree_lints_clean_against_baseline(self):
        result = lint_paths([SRC_REPRO])
        assert result.baseline_path == REPO_ROOT / BASELINE_NAME
        assert result.ok, result.report()

    def test_baseline_entries_are_live(self):
        """Without the baseline the tree reports exactly the baselined
        findings — the baseline has no stale (already-fixed) entries."""
        result = lint_paths([SRC_REPRO], use_baseline=False)
        from collections import Counter

        counts = Counter((f.path, f.rule) for f in result.findings)
        baseline = parse_baseline((REPO_ROOT / BASELINE_NAME).read_text())
        assert dict(counts) == baseline

    def test_fixture_corpus_is_dirty_without_baseline(self):
        result = lint_paths([FIXTURES], use_baseline=False)
        assert not result.ok
        rules = {f.rule for f in result.findings}
        assert rules == {"REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005"}


class TestCopyBlindspots:
    """Satellite fix: REPRO003 copy forms the seed analyzer missed."""

    EXPECTED_TAGS = ("np-copy", "np-array", "slice-copy", "asarray-copy", "derived-copy")

    def test_all_blindspot_forms_detected_lexically(self):
        """The fix applies in default (per-module) mode, not just --dataflow."""
        m = case_marks("viol_copy_blindspots.py")
        findings, _ = lint_file(CASES / "viol_copy_blindspots.py", "viol_copy_blindspots.py")
        assert {(f.rule, f.line) for f in findings} == {
            ("REPRO003", m[tag]) for tag in self.EXPECTED_TAGS
        }

    def test_charged_np_copy_stays_clean(self):
        findings, _ = lint_file(CASES / "viol_copy_blindspots.py", "viol_copy_blindspots.py")
        source = (CASES / "viol_copy_blindspots.py").read_text().splitlines()
        flagged_funcs = {source[f.line - 1] for f in findings}
        assert not any("charged_np_copy" in line for line in flagged_funcs)


class TestHelperBarrierRegression:
    """Satellite fix: a superstep in a helper (or in every caller) closes
    the p2p pair — the seed analyzer reported these as REPRO004."""

    def test_helper_and_caller_barriers_are_clean(self):
        findings, _ = lint_file(
            CASES / "clean_p2p_helper_barrier.py", "clean_p2p_helper_barrier.py"
        )
        assert findings == [], [f.format() for f in findings]

    def test_still_clean_under_dataflow(self):
        result = lint_cases_dataflow()
        assert not any(f.path == "clean_p2p_helper_barrier.py" for f in result.findings)

    def test_unbarriered_p2p_still_fires(self):
        """The fix must not swallow the true positive."""
        m = marks("viol_p2p.py")
        found, _ = diag("viol_p2p.py")
        assert ("REPRO004", m["unbarriered-p2p"]) in found


class TestDataflowCorpus:
    """The interprocedural corpus: every seeded race/escape/alias is found,
    the known-clean idioms stay silent."""

    def expected(self) -> set[tuple[str, str, int]]:
        out: set[tuple[str, str, int]] = set()
        for name, rule, tags in (
            ("race_cross_rank.py", "REPRO006", ["cross-read", "foreign-rank-read"]),
            ("viol_alias.py", "REPRO008", ["alias-store", "alias-neighbor"]),
            (
                "viol_copy_blindspots.py",
                "REPRO003",
                list(TestCopyBlindspots.EXPECTED_TAGS),
            ),
            (
                "viol_escape.py",
                "REPRO009",
                ["escape-return", "escape-arg", "escape-closure", "escape-attribute"],
            ),
            (
                "viol_write_after_send.py",
                "REPRO007",
                ["write-after-send", "aug-write-after-send"],
            ),
        ):
            m = case_marks(name)
            out |= {(name, rule, m[tag]) for tag in tags}
        return out

    def test_seeded_findings_exact(self):
        result = lint_cases_dataflow()
        got = {(f.path, f.rule, f.line) for f in result.findings}
        assert got == self.expected()

    def test_known_clean_files_are_silent(self):
        result = lint_cases_dataflow()
        dirty = {f.path for f in result.findings}
        for clean in (
            "clean_known_patterns.py",
            "clean_p2p_helper_barrier.py",
            "race_cross_module.py",
            "helpers_comm.py",
            "viol_f2b_unaggregated.py",  # certify-only fixture; path-gated
        ):
            assert clean not in dirty

    def test_pragma_waives_race_finding(self):
        assert lint_cases_dataflow().pragma_suppressed == 1

    def test_race_rules_require_dataflow_flag(self):
        result = lint_paths([CASES], root=CASES, use_baseline=False, dataflow=False)
        from repro.lint import DATAFLOW_RULES

        assert not {f.rule for f in result.findings} & DATAFLOW_RULES

    def test_cross_module_mediation_needs_the_global_graph(self):
        """Linted alone, the helper is unresolvable and the race fires;
        linted with its helper module, the call graph clears it."""
        alone = lint_paths(
            [CASES / "race_cross_module.py"], root=CASES, use_baseline=False, dataflow=True
        )
        assert any(f.rule == "REPRO006" for f in alone.findings)
        together = lint_cases_dataflow()
        assert not any(f.path == "race_cross_module.py" for f in together.findings)

    def test_dataflow_rules_have_explanations(self):
        from repro.lint import DATAFLOW_RULES, explain_rule

        for rule in sorted(DATAFLOW_RULES):
            text = explain_rule(rule)
            assert rule in text and len(text) > 100


class TestExplainAndSarif:
    def test_explain_cli(self, capsys):
        assert cli.main(["lint", "--explain", "REPRO007"]) == 0
        out = capsys.readouterr().out
        assert "REPRO007" in out and "in flight" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert lint_main(["--explain", "repro006"]) == 0
        assert "cross-rank" in capsys.readouterr().out

    def test_explain_unknown_rule_errors(self, capsys):
        assert lint_main(["--explain", "REPRO999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_sarif_export(self, tmp_path, capsys):
        target = tmp_path / "lint.sarif"
        code = lint_main(
            [str(CASES), "--no-baseline", "--dataflow", "--sarif", str(target)]
        )
        assert code == 1  # seeded violations
        capsys.readouterr()
        log = json.loads(target.read_text())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)
        results = run["results"]
        assert results, "seeded findings must appear as SARIF results"
        by_rule = {r["ruleId"] for r in results}
        assert {"REPRO003", "REPRO006", "REPRO007", "REPRO008", "REPRO009"} <= by_rule
        # SARIF columns are 1-based (ast's are 0-based)
        assert all(
            r["locations"][0]["physicalLocation"]["region"]["startColumn"] >= 1
            for r in results
        )

    def test_sarif_written_even_when_clean(self, tmp_path, capsys):
        target = tmp_path / "clean.sarif"
        code = lint_main(
            [
                str(CASES / "clean_known_patterns.py"),
                "--no-baseline",
                "--dataflow",
                "--sarif",
                str(target),
            ]
        )
        assert code == 0
        capsys.readouterr()
        log = json.loads(target.read_text())
        assert log["runs"][0]["results"] == []


class TestCLI:
    def test_repro_lint_exits_zero_on_shipped_tree(self, capsys):
        assert cli.main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_repro_lint_exits_nonzero_on_seeded_violation(self, capsys):
        assert cli.main(["lint", str(FIXTURES / "viol_matmul.py"), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "REPRO001" in out and "viol_matmul.py" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        work = tmp_path / "pkg"
        work.mkdir()
        shutil.copy(FIXTURES / "viol_matmul.py", work / "leaky.py")
        baseline = tmp_path / BASELINE_NAME
        assert lint_main([str(work), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert parse_baseline(baseline.read_text()) == {("pkg/leaky.py", "REPRO001"): 2}
        assert lint_main([str(work), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_fail_stale_ratchets_inflated_baseline(self, tmp_path, capsys):
        work = tmp_path / "pkg"
        work.mkdir()
        shutil.copy(FIXTURES / "viol_matmul.py", work / "leaky.py")
        baseline = tmp_path / BASELINE_NAME
        baseline.write_text("pkg/leaky.py REPRO001 9\n")
        # inflated quota passes without the flag but fails with it
        assert lint_main([str(work), "--baseline", str(baseline)]) == 0
        assert lint_main([str(work), "--baseline", str(baseline), "--fail-stale"]) == 1
        assert "stale baseline entry" in capsys.readouterr().err
        # after regenerating, --fail-stale is clean again
        assert lint_main([str(work), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert lint_main([str(work), "--baseline", str(baseline), "--fail-stale"]) == 0
        capsys.readouterr()

    def test_fail_stale_passes_on_shipped_tree(self, capsys):
        # the committed baseline must stay fully ratcheted (CI runs this flag)
        assert cli.main(["lint", "--fail-stale"]) == 0
        capsys.readouterr()

    def test_dataflow_mode_is_clean_on_shipped_tree(self, capsys):
        """Acceptance gate: interprocedural rules + cost certificates find
        nothing in src/ (CI runs exactly this invocation)."""
        assert cli.main(["lint", "--dataflow", "--fail-stale"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
