"""Tests for Householder kernels and compact-WY aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.householder import (
    apply_block_reflector_left,
    apply_block_reflector_right,
    compact_wy_qr,
    compact_wy_qr_general,
    expand_q,
    householder_vector,
)


class TestHouseholderVector:
    def test_annihilates_tail(self, rng):
        x = rng.standard_normal(7)
        v, tau, beta = householder_vector(x)
        hx = x - tau * v * np.dot(v, x)
        assert abs(hx[0] - beta) < 1e-12
        assert np.abs(hx[1:]).max() < 1e-12

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(5)
        _, _, beta = householder_vector(x)
        assert abs(abs(beta) - np.linalg.norm(x)) < 1e-12

    def test_already_reduced_vector(self):
        v, tau, beta = householder_vector(np.array([3.0, 0.0, 0.0]))
        assert tau == 0.0 and beta == 3.0

    def test_sign_avoids_cancellation(self):
        _, _, beta = householder_vector(np.array([1.0, 1e-8]))
        assert beta < 0  # opposite sign of x[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            householder_vector(np.array([]))

    @given(st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_reflector_is_orthogonal(self, n):
        x = np.random.default_rng(n).standard_normal(n)
        v, tau, _ = householder_vector(x)
        h = np.eye(n) - tau * np.outer(v, v)
        assert np.abs(h @ h.T - np.eye(n)).max() < 1e-12


class TestCompactWY:
    def test_factorization_identity(self, rng):
        a = rng.standard_normal((12, 5))
        u, t, r = compact_wy_qr(a)
        q = np.eye(12) - u @ t @ u.T
        assert np.abs(q.T @ q - np.eye(12)).max() < 1e-12
        assert np.abs((q.T @ a)[:5] - r).max() < 1e-11
        assert np.abs((q.T @ a)[5:]).max() < 1e-11

    def test_u_is_unit_lower_trapezoidal(self, rng):
        u, t, r = compact_wy_qr(rng.standard_normal((8, 4)))
        assert np.allclose(np.diag(u[:4, :4]), 1.0)
        assert np.abs(np.triu(u[:4, :4], 1)).max() == 0.0

    def test_t_is_upper_triangular(self, rng):
        u, t, r = compact_wy_qr(rng.standard_normal((8, 4)))
        assert np.abs(np.tril(t, -1)).max() == 0.0

    def test_wy_identity(self, rng):
        # UᵀU = T⁻¹ + T⁻ᵀ for a valid Householder representation.
        u, t, _ = compact_wy_qr(rng.standard_normal((10, 4)))
        tinv = np.linalg.inv(t)
        assert np.abs(u.T @ u - (tinv + tinv.T)).max() < 1e-10

    def test_rejects_wide(self, rng):
        with pytest.raises(ValueError):
            compact_wy_qr(rng.standard_normal((3, 5)))

    def test_square_input(self, rng):
        a = rng.standard_normal((6, 6))
        u, t, r = compact_wy_qr(a)
        q = np.eye(6) - u @ t @ u.T
        assert np.abs(q @ r - a).max() < 1e-11


class TestCompactWYGeneral:
    def test_wide_matrix(self, rng):
        a = rng.standard_normal((3, 8))
        u, t, r = compact_wy_qr_general(a)
        q = np.eye(3) - u @ t @ u.T
        assert np.abs(q.T @ a - r).max() < 1e-11
        assert np.abs(np.tril(r[:, :3], -1)).max() == 0.0

    def test_tall_agrees_with_compact_wy(self, rng):
        a = rng.standard_normal((9, 4))
        u1, t1, r1 = compact_wy_qr(a.copy())
        u2, t2, r2 = compact_wy_qr_general(a.copy())
        assert np.array_equal(r1, r2)
        assert np.array_equal(u1, u2)


class TestApplyAndExpand:
    def test_apply_left_matches_explicit(self, rng):
        a = rng.standard_normal((10, 4))
        u, t, _ = compact_wy_qr(a)
        q = np.eye(10) - u @ t @ u.T
        c = rng.standard_normal((10, 6))
        assert np.abs(apply_block_reflector_left(u, t, c) - q @ c).max() < 1e-11
        assert np.abs(apply_block_reflector_left(u, t, c, transpose=True) - q.T @ c).max() < 1e-11

    def test_apply_right_matches_explicit(self, rng):
        a = rng.standard_normal((10, 4))
        u, t, _ = compact_wy_qr(a)
        q = np.eye(10) - u @ t @ u.T
        c = rng.standard_normal((6, 10))
        assert np.abs(apply_block_reflector_right(u, t, c) - c @ q).max() < 1e-11

    def test_expand_thin_vs_full(self, rng):
        u, t, _ = compact_wy_qr(rng.standard_normal((8, 3)))
        qf = expand_q(u, t, full=True)
        qt = expand_q(u, t)
        assert qt.shape == (8, 3)
        assert np.abs(qf[:, :3] - qt).max() < 1e-12
