"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.report.svg import line_chart, save_svg


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart({"a": [(1, 10), (10, 100)]}, title="t", xlabel="x", ylabel="y")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_series_rendered(self):
        svg = line_chart({"first": [(1, 1), (2, 4)], "second": [(1, 2), (2, 8)]})
        assert "first" in svg and "second" in svg
        assert svg.count("<path") == 2
        assert svg.count("<circle") == 4

    def test_loglog_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            line_chart({"a": [(0, 1), (1, 2)]})

    def test_linear_mode_allows_zero(self):
        svg = line_chart({"a": [(0, 0), (1, 2)]}, loglog=False)
        assert "<path" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_constant_series_does_not_divide_by_zero(self):
        svg = line_chart({"a": [(1, 5), (2, 5)]})
        ET.fromstring(svg)

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(path, line_chart({"a": [(1, 1), (2, 2)]}))
        assert path.read_text().startswith("<svg")
