"""Tests for the charged local compute kernels (repro.bsp.kernels)."""

import numpy as np
import pytest

from repro.bsp import BSPMachine, MachineParams
from repro.bsp.kernels import (
    local_elementwise,
    local_lu_nopivot,
    local_matmul,
    local_qr,
    local_qr_householder,
    matmul_flops,
    qr_flops,
)


class TestFlopFormulas:
    def test_matmul_flops(self):
        assert matmul_flops(2, 3, 4) == 48.0

    def test_qr_flops_positive_and_dominant_term(self):
        assert qr_flops(100, 10) == pytest.approx(2 * 100 * 100 - (2 / 3) * 1000)
        assert qr_flops(8, 8) > 0


class TestLocalMatmul:
    def test_result_and_charges(self, rng):
        m = BSPMachine(2)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        c = local_matmul(m, 1, a, b)
        assert np.abs(c - a @ b).max() < 1e-12
        assert m.counters[1].flops == matmul_flops(6, 4, 5)
        assert m.counters[0].flops == 0.0
        assert m.counters[1].mem_traffic > 0

    def test_transpose_flags(self, rng):
        m = BSPMachine(1)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((5, 4))
        c = local_matmul(m, 0, a, b, transpose_a=True, transpose_b=True)
        assert np.abs(c - a.T @ b.T).max() < 1e-12

    def test_accumulate(self, rng):
        m = BSPMachine(1)
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        acc = np.ones((3, 3))
        out = local_matmul(m, 0, a, b, accumulate=acc)
        assert out is acc
        assert np.abs(acc - (np.ones((3, 3)) + a @ b)).max() < 1e-12

    def test_shape_mismatch(self, rng):
        m = BSPMachine(1)
        with pytest.raises(ValueError):
            local_matmul(m, 0, np.zeros((2, 3)), np.zeros((4, 5)))

    def test_keyed_operands_hit_cache(self, rng):
        m = BSPMachine(1, MachineParams(cache_words=1e9))
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        local_matmul(m, 0, a, b, a_key="A", b_key="B")
        q1 = m.counters[0].mem_traffic
        local_matmul(m, 0, a, b, a_key="A", b_key="B")
        q2 = m.counters[0].mem_traffic - q1
        assert q2 < q1  # operand reads became hits


class TestLocalQR:
    def test_qr_and_charges(self, rng):
        m = BSPMachine(1)
        a = rng.standard_normal((10, 4))
        q, r = local_qr(m, 0, a)
        assert np.abs(q @ r - a).max() < 1e-11
        assert m.counters[0].flops == pytest.approx(qr_flops(10, 4))

    def test_qr_rejects_wide(self, rng):
        m = BSPMachine(1)
        with pytest.raises(ValueError):
            local_qr(m, 0, rng.standard_normal((3, 5)))

    def test_householder_form(self, rng):
        m = BSPMachine(1)
        a = rng.standard_normal((12, 5))
        u, t, r = local_qr_householder(m, 0, a)
        q = np.eye(12, 5) - u @ (t @ u[:5, :].T)
        assert np.abs(q @ r - a).max() < 1e-11


class TestLocalLU:
    def test_lu_and_charges(self, rng):
        m = BSPMachine(1)
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        lo, up = local_lu_nopivot(m, 0, a)
        assert np.abs(lo @ up - a).max() < 1e-10
        assert m.counters[0].flops == pytest.approx((2 / 3) * 216)


class TestElementwise:
    def test_charges_per_word(self):
        m = BSPMachine(1)
        local_elementwise(m, 0, [np.zeros((4, 4)), np.zeros(8)], flops_per_elem=2.0)
        assert m.counters[0].flops == 48.0
        assert m.counters[0].mem_traffic == 24.0
