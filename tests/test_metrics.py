"""Tests for the per-rank metrics layer (repro.metrics).

The tentpole invariant is *conservation*: the rank-to-rank word matrix
plus the unpaired residuals must reproduce the counter engines' per-rank
sent/recv totals bit-exactly, for every collective, every sharded kernel,
on both accounting engines, and under injected faults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bsp import BSPMachine, RankGroup, collectives
from repro.bsp.machine import NO_METRICS
from repro.metrics import (
    DEFAULT_ENVELOPE,
    build_metrics_doc,
    check_metrics,
)
from repro.model.bounds import memory_bound_words
from repro.util import random_symmetric

ENGINES = ("array", "scalar")


def metered(p: int, engine: str = "array", **kwargs) -> BSPMachine:
    return BSPMachine(p, engine=engine, metrics=True, **kwargs)


def snap_of(machine: BSPMachine):
    return machine.cost().metrics()


def assert_conserved(machine: BSPMachine) -> None:
    problems = machine.metrics.verify_conservation(machine.counters)
    assert problems == [], problems


def group(*ranks) -> RankGroup:
    return RankGroup(tuple(ranks))


# --------------------------------------------------------------------- #
# conservation over every collective


@pytest.mark.parametrize("engine", ENGINES)
class TestCollectiveConservation:
    """Every collective's comm matrix reproduces the counters bit-exactly."""

    def test_bcast(self, engine):
        m = metered(8, engine)
        collectives.bcast(m, group(0, 2, 5, 7), words=801.0, root=5)
        assert_conserved(m)
        s = snap_of(m)
        # the root forwards a share to every other member; nobody self-sends
        assert (np.diag(s.words_matrix) == 0.0).all()
        for r in (0, 2, 7):
            assert s.words_matrix[5, r] > 0.0

    def test_reduce(self, engine):
        m = metered(8, engine)
        collectives.reduce(m, group(1, 3, 4, 6), words=600.0, root=3)
        assert_conserved(m)
        s = snap_of(m)
        for r in (1, 4, 6):
            assert s.words_matrix[r, 3] > 0.0

    def test_allreduce(self, engine):
        m = metered(8, engine)
        collectives.allreduce(m, group(0, 1, 2, 3, 4), words=123.0)
        assert_conserved(m)

    def test_reduce_scatter(self, engine):
        m = metered(8, engine)
        collectives.reduce_scatter(m, group(2, 3, 6, 7), words_total=444.0)
        assert_conserved(m)

    def test_allgather(self, engine):
        m = metered(8, engine)
        collectives.allgather(m, group(0, 4, 5), words_each=37.0)
        assert_conserved(m)

    def test_gather(self, engine):
        m = metered(8, engine)
        collectives.gather(m, group(1, 2, 5), words_each=11.0, root=2)
        assert_conserved(m)
        s = snap_of(m)
        assert s.words_matrix[1, 2] > 0.0 and s.words_matrix[5, 2] > 0.0
        assert s.words_matrix[2].sum() == 0.0  # the root sends nothing

    def test_scatter(self, engine):
        m = metered(8, engine)
        collectives.scatter(m, group(0, 3, 6), words_each=13.0, root=6)
        assert_conserved(m)
        s = snap_of(m)
        assert s.words_matrix[6, 0] > 0.0 and s.words_matrix[6, 3] > 0.0
        assert s.words_matrix[:, 6].sum() == 0.0  # the root receives nothing

    def test_alltoall(self, engine):
        m = metered(8, engine)
        collectives.alltoall(
            m, group(0, 1, 2, 3),
            {(0, 1): 10.0, (1, 2): 20.0, (2, 0): 5.0, (3, 3): 99.0, (0, 3): 7.0},
        )
        assert_conserved(m)
        s = snap_of(m)
        # the (src, dst, w) triples are recorded exactly
        assert s.words_matrix[0, 1] == 10.0
        assert s.words_matrix[1, 2] == 20.0
        assert s.words_matrix[3, 3] == 0.0  # local transfers are free

    def test_alltoall_matrix(self, engine):
        m = metered(8, engine)
        g = group(0, 2, 4, 6)
        mat = np.arange(16, dtype=np.float64).reshape(4, 4) * 3.0
        collectives.alltoall_matrix(m, g, mat)
        assert_conserved(m)
        s = snap_of(m)
        off = mat.copy()
        np.fill_diagonal(off, 0.0)
        assert s.words_matrix[np.ix_(g.ranks, g.ranks)] == pytest.approx(off)

    def test_p2p(self, engine):
        m = metered(8, engine)
        collectives.p2p(m, 3, 5, words=42.0)
        assert_conserved(m)
        s = snap_of(m)
        assert s.words_matrix[3, 5] == 42.0
        assert s.words_matrix.sum() == 42.0
        assert s.messages_matrix[3, 5] == 1

    def test_every_collective_in_one_run(self, engine):
        m = metered(8, engine)
        collectives.bcast(m, m.world, words=800.0)
        collectives.reduce(m, m.world, words=800.0)
        collectives.allreduce(m, group(0, 1, 2), words=90.0)
        collectives.reduce_scatter(m, m.world, words_total=640.0)
        collectives.allgather(m, group(4, 5, 6, 7), words_each=25.0)
        collectives.gather(m, m.world, words_each=10.0, root=7)
        collectives.scatter(m, m.world, words_each=10.0, root=0)
        collectives.alltoall(m, group(0, 3, 6), {(0, 3): 5.0, (6, 0): 8.0})
        collectives.alltoall_matrix(m, group(1, 2), [[0.0, 4.0], [6.0, 0.0]])
        collectives.p2p(m, 7, 0, words=3.0)
        assert_conserved(m)
        s = snap_of(m)
        # the mirror accumulators repeat the store's adds -> bit-exact
        assert np.array_equal(s.sent_words, m.counters.field_array("words_sent"))
        assert np.array_equal(s.recv_words, m.counters.field_array("words_recv"))


# --------------------------------------------------------------------- #
# conservation through the sharded kernels (full eigensolve)


@pytest.mark.parametrize("engine", ENGINES)
def test_eigensolve_conserves(engine):
    from repro import eigensolve_2p5d

    a = random_symmetric(48, seed=1)
    m = metered(8, engine)
    eigensolve_2p5d(m, a)
    assert_conserved(m)


def test_engine_word_matrices_bit_identical():
    from repro import eigensolve_2p5d

    a = random_symmetric(48, seed=1)
    snaps = []
    for engine in ENGINES:
        m = metered(8, engine)
        eigensolve_2p5d(m, a)
        snaps.append(snap_of(m))
    assert np.array_equal(snaps[0].words_matrix, snaps[1].words_matrix)
    assert np.array_equal(snaps[0].messages_matrix, snaps[1].messages_matrix)
    assert np.array_equal(snaps[0].watermark_words, snaps[1].watermark_words)


@pytest.mark.parametrize("engine", ENGINES)
def test_faulty_run_conserves_and_shows_retransmission(engine):
    from repro import eigensolve_2p5d
    from repro.faults import FaultPlan, FaultyMachine
    from repro.faults.plan import SCENARIOS

    a = random_symmetric(48, seed=1)
    clean = metered(8, engine)
    eigensolve_2p5d(clean, a)
    faulty = FaultyMachine(
        8, engine=engine, metrics=True,
        plan=FaultPlan(SCENARIOS["message-drop"], seed=7),
    )
    eigensolve_2p5d(faulty, a)
    assert_conserved(faulty)
    # retransmitted payloads land in the matrix (the _charge closure re-fires)
    assert snap_of(faulty).total_words > snap_of(clean).total_words


# --------------------------------------------------------------------- #
# memory watermarks


@pytest.mark.parametrize("engine", ENGINES)
def test_watermarks_within_model_bound(engine):
    from repro import eigensolve_2p5d

    n, p = 48, 8
    a = random_symmetric(n, seed=1)
    m = metered(p, engine)
    res = eigensolve_2p5d(m, a)
    s = snap_of(m)
    peak = m.counters.field_array("peak_memory_words")
    assert (s.watermark_words <= peak).all()
    assert peak.max() <= memory_bound_words(n, p, res.delta)
    # the watermark superstep indices point inside the run
    assert (s.watermark_superstep >= 0).all()
    assert s.watermark_superstep.max() <= s.supersteps_seen


def test_superstep_series_is_sampled_and_bounded():
    from repro import eigensolve_2p5d

    m = metered(8)
    eigensolve_2p5d(m, random_symmetric(48, seed=1))
    s = snap_of(m)
    assert 0 < len(s.series) <= 2048
    times = [t for t, _, _ in s.series]
    assert times == sorted(times)


# --------------------------------------------------------------------- #
# the disabled path


def test_metrics_disabled_is_shared_noop():
    m = BSPMachine(4)
    assert m.metrics is NO_METRICS
    assert not m.metrics.enabled


def test_metrics_off_report_raises():
    m = BSPMachine(4)
    collectives.bcast(m, m.world, words=10.0)
    with pytest.raises(ValueError, match="no per-rank metrics"):
        m.cost().metrics()


@pytest.mark.parametrize("engine", ENGINES)
def test_metrics_do_not_change_the_cost_report(engine):
    from repro import eigensolve_2p5d

    a = random_symmetric(48, seed=1)
    plain = BSPMachine(8, engine=engine)
    r_plain = eigensolve_2p5d(plain, a).cost
    r_metered = eigensolve_2p5d(metered(8, engine), a).cost
    assert r_plain == r_metered  # metrics_data is compare=False; costs equal


def test_reset_clears_the_collector():
    m = metered(4)
    collectives.bcast(m, m.world, words=100.0)
    m.reset()
    s = snap_of(m)
    assert s.total_words == 0.0
    assert s.words_matrix.sum() == 0.0


# --------------------------------------------------------------------- #
# imbalance statistics


def test_imbalance_ignores_idle_ranks():
    m = metered(8)
    collectives.allreduce(m, group(0, 1, 2, 3), words=100.0)
    report = m.cost()
    # four ranks idle; a naive mean over p=8 would double the ratio
    assert report.imbalance("words") == pytest.approx(1.0)
    assert report.gini("words") == pytest.approx(0.0)


def test_flop_imbalance_alias():
    m = metered(4)
    collectives.reduce(m, m.world, words=400.0)
    report = m.cost()
    assert report.flop_imbalance == report.imbalance("flops")


def test_imbalance_rejects_unknown_field():
    m = metered(4)
    collectives.bcast(m, m.world, words=10.0)
    with pytest.raises(ValueError):
        m.cost().imbalance("nonsense")


# --------------------------------------------------------------------- #
# the metrics document and its gate


@pytest.fixture(scope="module")
def pinned_doc():
    from repro import eigensolve_2p5d

    n, p = 48, 8
    m = metered(p, spans=True)
    res = eigensolve_2p5d(m, random_symmetric(n, seed=3))
    return build_metrics_doc(res, n, engine="array", config={"seed": 3})


class TestMetricsDoc:
    def test_attainment_covers_every_stage(self, pinned_doc):
        stages = {e["stage"] for e in pinned_doc["attainment"]}
        assert any("full_to_band" in s for s in stages)
        assert any("finish" in s for s in stages)
        for entry in pinned_doc["attainment"]:
            for comp in ("flops", "words", "supersteps"):
                ratio = entry["ratio"].get(comp)
                assert ratio is None or ratio > 0.0

    def test_doc_is_json_serializable(self, pinned_doc):
        import json

        json.dumps(pinned_doc)

    def test_self_check_passes(self, pinned_doc):
        assert check_metrics(pinned_doc, pinned_doc) == []

    def test_check_flags_attainment_regression(self, pinned_doc):
        import copy

        worse = copy.deepcopy(pinned_doc)
        entry = worse["attainment"][0]
        comp = next(c for c in entry["ratio"] if entry["ratio"][c])
        entry["ratio"][comp] *= 1.0 + 2.0 * DEFAULT_ENVELOPE
        failures = check_metrics(worse, pinned_doc)
        assert any("attainment regression" in f for f in failures)

    def test_check_flags_memory_bound_violation(self, pinned_doc):
        import copy

        worse = copy.deepcopy(pinned_doc)
        worse["memory"]["max_peak"] = worse["memory"]["model_bound_words"] * 2.0
        failures = check_metrics(worse, pinned_doc)
        assert any("memory watermark exceeds" in f for f in failures)

    def test_check_flags_conservation_problem(self, pinned_doc):
        import copy

        bad = copy.deepcopy(pinned_doc)
        bad["conservation"]["problems"] = ["row sums diverge"]
        failures = check_metrics(bad, pinned_doc)
        assert any("conservation" in f for f in failures)

    def test_check_flags_comm_drift(self, pinned_doc):
        import copy

        drifted = copy.deepcopy(pinned_doc)
        drifted["comm"]["total_words"] *= 1.001
        failures = check_metrics(drifted, pinned_doc)
        assert any("comm drift" in f for f in failures)

    def test_render_mentions_every_section(self, pinned_doc):
        from repro.metrics import render_metrics

        text = render_metrics(pinned_doc)
        for needle in ("heaviest directed pairs", "per-rank imbalance",
                       "model bound", "bound attainment", "conservation: OK"):
            assert needle in text


# --------------------------------------------------------------------- #
# the per-rank Perfetto exporter


def test_per_rank_trace_has_rank_tracks_and_counters():
    import json

    from repro import eigensolve_2p5d
    from repro.trace import chrome_trace, chrome_trace_per_rank

    m = metered(8, spans=True)
    eigensolve_2p5d(m, random_symmetric(48, seed=1))
    doc = chrome_trace_per_rank(m.spans, metrics=snap_of(m))
    json.dumps(doc)
    events = doc["traceEvents"]
    names = {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    assert {f"rank {r} (1 us = 1 model time unit)" for r in range(8)} <= names
    counters = [e for e in events if e.get("ph") == "C"]
    assert any(e["name"] == "memory_words" for e in counters)
    assert any(e["name"] == "words_sent" for e in counters)
    assert "heatmap" in doc["otherData"] and "memory" in doc["otherData"]
    # the single-track exporter is untouched by the metrics layer
    plain = BSPMachine(8, spans=True)
    eigensolve_2p5d(plain, random_symmetric(48, seed=1))
    assert chrome_trace(plain.spans) == chrome_trace(m.spans)
