"""Shared assertion helpers for the test suite."""

from __future__ import annotations

import numpy as np


def eig_err(a: np.ndarray, b_or_evals: np.ndarray) -> float:
    """Max relative |λ_i(A) − λ_i(B)| (B a matrix or a sorted eigenvalue
    vector), scaled by the spectral magnitude."""
    ref = np.linalg.eigvalsh(a)
    if b_or_evals.ndim == 2:
        other = np.linalg.eigvalsh(b_or_evals)
    else:
        other = np.sort(np.asarray(b_or_evals))
    scale = max(1.0, np.abs(ref).max())
    return float(np.abs(ref - other).max() / scale)
