"""Vectorized band-container hot spots: equivalence and memory regressions.

Pins the three container-level rewrites that rode along with the batched
chase engine:

* :meth:`SymmetricBand.window` — one fancy-indexed gather must equal the
  old per-element double loop on every window shape, including windows
  crossing the band edge and clipped at the matrix border;
* :meth:`DistBandMatrix.redistribute` — the searchsorted owner maps must
  charge exactly what the old per-column scan charged, including ragged
  layouts where the column split is uneven, on both counter engines;
* :meth:`SymmetricBand.eigenvalues` with b > 1 — the reduction now runs in
  band storage, so its working set stays O((b+2)·n) words instead of the
  dense n² that to_dense() needed.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.bench import report_mismatches
from repro.bsp import BSPMachine, RankGroup
from repro.dist.banded import DistBandMatrix
from repro.linalg.band import SymmetricBand
from repro.util.matrices import random_banded_symmetric

ENGINES = ("array", "scalar")


def window_reference(band: SymmetricBand, rows: slice, cols: slice) -> np.ndarray:
    """The pre-vectorization per-element double loop, verbatim."""
    out = np.zeros((rows.stop - rows.start, cols.stop - cols.start))
    for a, i in enumerate(range(rows.start, rows.stop)):
        for b, j in enumerate(range(cols.start, cols.stop)):
            out[a, b] = band[i, j]
    return out


class TestWindowEquivalence:
    @pytest.mark.parametrize(
        "rows,cols",
        [
            (slice(0, 6), slice(0, 6)),       # top-left corner
            (slice(10, 18), slice(10, 18)),   # diagonal block, inside band
            (slice(10, 18), slice(2, 10)),    # sub-diagonal, crosses band edge
            (slice(2, 10), slice(10, 18)),    # super-diagonal (transposed read)
            (slice(0, 24), slice(20, 24)),    # tall sliver to the border
            (slice(23, 24), slice(0, 24)),    # single row across everything
            (slice(5, 5), slice(0, 4)),       # empty row range
        ],
    )
    def test_matches_double_loop(self, rows, cols):
        a = random_banded_symmetric(24, 5, seed=11)
        band = SymmetricBand.from_dense(a, 5)
        assert np.array_equal(band.window(rows, cols), window_reference(band, rows, cols))

    def test_matches_dense_submatrix(self):
        a = random_banded_symmetric(30, 7, seed=3)
        band = SymmetricBand.from_dense(a, 7)
        rows, cols = slice(4, 19), slice(9, 27)
        assert np.allclose(band.window(rows, cols), a[rows, cols])

    def test_far_off_band_window_is_zero(self):
        band = SymmetricBand.from_dense(random_banded_symmetric(24, 3, seed=0), 3)
        assert np.array_equal(band.window(slice(20, 24), slice(0, 4)), np.zeros((4, 4)))


class TestRedistributeRagged:
    def _reference_charges(self, old: DistBandMatrix, new: DistBandMatrix):
        """The pre-vectorization per-column accumulation, verbatim."""
        sends: dict[int, float] = {}
        recvs: dict[int, float] = {}
        w = float(old.b + 1)
        for j in range(old.n):
            src = old.owner_of_col(j)
            dst = new.owner_of_col(j)
            if src != dst:
                sends[src] = sends.get(src, 0.0) + w
                recvs[dst] = recvs.get(dst, 0.0) + w
        return sends, recvs

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "n,p,old_size,new_size",
        [
            (29, 8, 8, 3),   # ragged everywhere: 29 cols over 8 then 3 ranks
            (31, 8, 5, 7),   # grow the group, both splits uneven
            (16, 8, 4, 4),   # same size, shifted rank sets
            (7, 8, 8, 2),    # more ranks than columns: zero-width blocks
        ],
    )
    def test_charges_match_per_column_scan(self, engine, n, p, old_size, new_size):
        a = random_banded_symmetric(n, 3, seed=n)
        machine = BSPMachine(p, engine=engine)
        old_group = machine.world.take(old_size)
        new_group = RankGroup(tuple(range(p - new_size, p)))
        band = DistBandMatrix(machine, a, 3, old_group)
        before_sent = machine.counters.field_array("words_sent").copy()
        before_recv = machine.counters.field_array("words_recv").copy()
        new_band = band.redistribute(new_group)

        sends, recvs = self._reference_charges(band, new_band)
        got_sent = machine.counters.field_array("words_sent") - before_sent
        got_recv = machine.counters.field_array("words_recv") - before_recv
        want_sent = np.zeros(p)
        want_recv = np.zeros(p)
        for r, v in sends.items():
            want_sent[r] = v
        for r, v in recvs.items():
            want_recv[r] = v
        assert np.array_equal(got_sent, want_sent)
        assert np.array_equal(got_recv, want_recv)
        # conservation: every moved word is sent once and received once
        assert got_sent.sum() == got_recv.sum()

    def test_engines_identical_on_ragged_layout(self):
        a = random_banded_symmetric(29, 3, seed=29)
        reports = {}
        for engine in ENGINES:
            machine = BSPMachine(8, engine=engine)
            band = DistBandMatrix(machine, a.copy(), 3, machine.world.take(8))
            band.redistribute(machine.world.take(3))
            reports[engine] = machine.cost()
        assert report_mismatches(reports["array"], reports["scalar"]) == []


class TestBandEigenvaluesMemory:
    def test_wide_band_eigenvalues_match_numpy(self):
        a = random_banded_symmetric(120, 6, seed=8)
        band = SymmetricBand.from_dense(a, 6)
        got = band.eigenvalues()
        want = np.sort(np.linalg.eigvalsh(a))
        assert np.allclose(got, want, atol=1e-8 * max(1.0, np.abs(want).max()))

    def test_reduction_runs_in_band_storage_memory(self):
        """Peak allocations stay O((b+2)·n) words — far below the dense n²
        the old to_dense() path materialized."""
        n, b = 600, 4
        a = random_banded_symmetric(n, b, seed=13)
        band = SymmetricBand.from_dense(a, b)
        dense_bytes = n * n * 8

        tracemalloc.start()
        band.eigenvalues()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Band-storage working set is a few (b+2)·n panels plus bisection
        # scratch; a quarter of the dense matrix is a generous ceiling that
        # the old dense path (>= n² words) cannot meet.
        assert peak < dense_bytes / 4, f"peak {peak} bytes vs dense {dense_bytes}"
