"""Tests for the chaos harness (repro.faults.chaos + ``repro chaos``).

The chaos invariant: every seeded fault run either matches the reference
spectrum within the clean-run tolerance or fails with a typed,
span-attributed error — never a silently wrong answer.
"""

import json

import pytest

from repro.cli import main
from repro.faults.chaos import (
    SCENARIO_ORDER,
    ScenarioOutcome,
    render_report,
    run_chaos,
    run_scenario,
    write_report,
)
from repro.faults.plan import SCENARIOS

# small pinned configuration so the sweep stays fast in the suite
SMALL = dict(n=32, p=4, delta=2.0 / 3.0)


class TestRunScenario:
    def test_clean_seed_recovers_exactly(self):
        out = run_scenario(0, SCENARIOS["clean"], **SMALL)
        assert out.outcome == "recovered"
        assert out.spectrum_error is not None and out.spectrum_error < 1e-10
        assert out.events == 0 and out.draws == 0
        assert out.ok

    def test_same_seed_is_reproducible(self):
        runs = [run_scenario(5, **SMALL) for _ in range(2)]
        assert runs[0] == runs[1]

    def test_seed_cycles_scenarios(self):
        for seed, name in enumerate(SCENARIO_ORDER):
            out = run_scenario(seed, SCENARIOS["clean"], **SMALL)
            assert out.scenario == "clean"  # explicit spec wins
        out = run_scenario(1, **SMALL)
        assert out.scenario == SCENARIO_ORDER[1]

    def test_typed_error_carries_span(self):
        # hammer the finish stage: unlimited corruption exhausts retries
        from repro.faults.plan import FaultSpec

        hammer = FaultSpec(name="hammer", kernel_corrupt_prob=1.0,
                           site_filter=("finish",), max_corruptions=None,
                           max_rank_failures=0)
        out = run_scenario(0, hammer, **SMALL)
        assert out.outcome == "typed-error"
        assert out.error_type == "UnrecoverableFault"
        assert out.span and "finish" in out.span
        assert out.ok  # typed errors satisfy the invariant


class TestSweep:
    def test_invariant_holds_on_small_sweep(self):
        outcomes = run_chaos(range(len(SCENARIO_ORDER)), **SMALL)
        assert len(outcomes) == len(SCENARIO_ORDER)
        assert all(o.ok for o in outcomes)
        names = [o.scenario for o in outcomes]
        assert names == list(SCENARIO_ORDER)

    def test_report_rendering_and_json(self, tmp_path):
        outcomes = run_chaos(range(2), **SMALL)
        text = render_report(outcomes, n=SMALL["n"], p=SMALL["p"])
        assert "chaos sweep" in text and "clean" in text
        path = write_report(outcomes, tmp_path / "chaos.json",
                            n=SMALL["n"], p=SMALL["p"])
        doc = json.loads(path.read_text())
        assert doc["invariant_holds"] is True
        assert len(doc["outcomes"]) == 2
        assert doc["outcomes"][0]["scenario"] == "clean"
        assert isinstance(doc["outcomes"][0]["failed_ranks"], list)

    def test_outcome_ok_classification(self):
        bad = ScenarioOutcome(0, "x", "silent-wrong", 1.0, None, None, None,
                              0, 0, (), 0, "")
        assert not bad.ok


class TestChaosCLI:
    def test_cli_sweep_writes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = main(["chaos", "--n", "32", "--p", "4", "--seeds", "2",
                   "--out", str(out_path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "chaos invariant holds" in captured.out
        assert "0 silently wrong" in captured.out
        assert json.loads(out_path.read_text())["invariant_holds"] is True

    def test_cli_seed0_offsets_the_sweep(self, tmp_path, capsys):
        rc = main(["chaos", "--n", "32", "--p", "4", "--seeds", "1",
                   "--seed0", "1", "--out", str(tmp_path / "r.json")])
        assert rc == 0
        assert "rank-failure" in capsys.readouterr().out
