"""Tests for the cost profiler."""

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.bsp.profile import Profiler
from repro.blocks.rect_qr import rect_qr
from repro.blocks.streaming import streaming_matmul
from repro.dist.grid import ProcGrid


class TestProfiler:
    def test_attributes_charges_to_sections(self):
        m = BSPMachine(4)
        prof = Profiler(m)
        with prof.section("a"):
            m.charge_flops(0, 100.0)
        with prof.section("b"):
            m.charge_comm(sends={0: 10.0}, recvs={1: 10.0})
            m.superstep()
        assert prof.sections["a"].flops == 100.0
        assert prof.sections["a"].words == 0.0
        # Section costs are critical-path values (max over ranks): rank 0
        # sent 10 and rank 1 received 10, so the max is 10.
        assert prof.sections["b"].words == 10.0
        assert prof.sections["b"].supersteps == 1

    def test_repeated_sections_accumulate(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        for _ in range(3):
            with prof.section("loop"):
                m.charge_flops(0, 1.0)
        assert prof.sections["loop"].calls == 3
        assert prof.sections["loop"].flops == 3.0

    def test_nesting_depth_recorded(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        with prof.section("outer"):
            with prof.section("inner"):
                m.charge_flops(0, 5.0)
        assert prof.sections["outer"].depth == 0
        assert prof.sections["inner"].depth == 1
        # Parent includes the child's charges.
        assert prof.sections["outer"].flops == 5.0

    def test_report_and_top(self):
        m = BSPMachine(4)
        prof = Profiler(m)
        grid = ProcGrid(m, (2, 2, 1))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 8))
        with prof.section("mm"):
            streaming_matmul(m, grid, a, b)
        with prof.section("qr"):
            rect_qr(m, m.world, rng.standard_normal((64, 8)))
        text = prof.report()
        assert "mm" in text and "qr" in text and "share" in text
        assert prof.top("flops") in ("mm", "qr")

    def test_report_rejects_bad_key(self):
        prof = Profiler(BSPMachine(1))
        with pytest.raises(ValueError):
            prof.report(sort_by="bogus")

    def test_top_requires_sections(self):
        with pytest.raises(ValueError):
            Profiler(BSPMachine(1)).top()

    def test_exception_inside_section_still_recorded(self):
        m = BSPMachine(1)
        prof = Profiler(m)
        with pytest.raises(RuntimeError):
            with prof.section("boom"):
                m.charge_flops(0, 7.0)
                raise RuntimeError("x")
        assert prof.sections["boom"].flops == 7.0


class TestPerRankSections:
    """Section-level imbalance agrees with the metrics layer by construction
    (both fold the same per-rank counter deltas through the same helpers)."""

    def test_section_imbalance_matches_cost_report(self):
        m = BSPMachine(4)
        prof = Profiler(m)
        with prof.section("everything"):
            m.charge_flops(0, 300.0)
            m.charge_flops(1, 100.0)
            m.charge_comm(sends={0: 10.0, 1: 30.0}, recvs={2: 40.0})
            m.superstep()
        sec = prof.sections["everything"]
        report = m.cost()
        for fld in ("flops", "words", "words_sent", "mem_traffic", "supersteps"):
            assert sec.imbalance(fld) == report.imbalance(fld)
            assert sec.gini(fld) == report.gini(fld)

    def test_section_rank_values_accumulate(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        for _ in range(2):
            with prof.section("loop"):
                m.charge_flops(1, 5.0)
        vals = prof.sections["loop"].rank_values("flops")
        assert list(vals) == [0.0, 10.0]

    def test_section_active_ranks_mask(self):
        m = BSPMachine(4)
        prof = Profiler(m)
        with prof.section("s"):
            m.charge_flops(2, 1.0)
        assert list(prof.sections["s"].active_ranks()) == [False, False, True, False]

    def test_report_shows_balance_columns(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        with prof.section("s"):
            m.charge_comm(sends={0: 10.0}, recvs={1: 10.0})
            m.superstep()
        text = prof.report()
        assert "bal" in text and "gini" in text

    def test_idle_section_is_balanced(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        with prof.section("idle"):
            pass
        sec = prof.sections["idle"]
        assert sec.imbalance() == 1.0 and sec.gini() == 0.0
        assert list(sec.rank_values()) == [0.0, 0.0]

    def test_rank_values_rejects_unknown_field(self):
        m = BSPMachine(2)
        prof = Profiler(m)
        with prof.section("s"):
            m.charge_flops(0, 1.0)
        with pytest.raises(ValueError):
            prof.sections["s"].rank_values("bogus")
