"""Shared fixtures and helpers for the test suite.

Set ``REPRO_VERIFY=1`` to run every machine-fixture-based test on a
:class:`repro.lint.VerifiedMachine`, which asserts the BSP discipline
invariants (conservation, monotone counters) at every superstep.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bsp import BSPMachine
from repro.lint.verify import VerifiedMachine

VERIFY = os.environ.get("REPRO_VERIFY", "") not in ("", "0")


def make_machine(p: int, **kwargs) -> BSPMachine:
    """Machine factory honouring the ``REPRO_VERIFY`` switch."""
    cls = VerifiedMachine if VERIFY else BSPMachine
    return cls(p, **kwargs)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def machine4():
    return make_machine(4)


@pytest.fixture
def machine8():
    return make_machine(8)


@pytest.fixture
def machine16():
    return make_machine(16)


@pytest.fixture
def bsp_machine_factory():
    """Factory fixture: ``bsp_machine_factory(p)`` -> (possibly verified) machine."""
    return make_machine
