"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bsp import BSPMachine


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def machine4():
    return BSPMachine(4)


@pytest.fixture
def machine8():
    return BSPMachine(8)


@pytest.fixture
def machine16():
    return BSPMachine(16)

