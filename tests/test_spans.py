"""Tests for span tracing, critical-path breakdowns and Chrome export.

Covers the recorder core (nesting, exclusive attribution, bit-exactness of
the breakdown against the global cost report on both engines), the no-op
disabled path, the Chrome trace-event exporter, ``VerifiedMachine``'s
per-span invariant checks, and the engine-reset regression (the scalar
store's old list-replacing ``reset`` left held per-rank references stale).
"""

import json

import numpy as np
import pytest

from repro.bench import per_rank_arrays, report_mismatches
from repro.bsp import BSPMachine, collectives
from repro.trace import NULL_SPAN, SPAN_FIELDS, UNTRACED, chrome_trace, write_chrome_trace

from .conftest import make_machine

ENGINES = ("array", "scalar")


def _workload(machine: BSPMachine) -> None:
    """Small mixed workload: charges inside, outside, and between spans."""
    world = machine.world
    machine.charge_flops(world, 3.0)  # before any span -> untraced
    with machine.span("outer"):
        machine.charge_flops(world, 7.0)
        with machine.span("inner", group=world):
            collectives.allreduce(machine, world, 16.0)
        machine.charge_flops(world, 8.0)
        machine.superstep(world)
    machine.charge_comm_batch(world, 2.0, 2.0)  # after -> untraced
    machine.superstep(world)


class TestSpanRecorder:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_nested_paths_and_exclusive_attribution(self, engine):
        machine = BSPMachine(4, engine=engine, spans=True)
        _workload(machine)
        bd = machine.cost().by_span()
        paths = set(bd.paths())
        # allreduce opens its own span nested under outer/inner.
        assert {"outer", "outer/inner", "outer/inner/allreduce", UNTRACED} <= paths
        # outer's exclusive flops: 7 + 8 per rank (inner's excluded).
        outer = bd["outer"]
        assert outer.flops == 15.0
        assert bd["outer/inner"].flops == 0.0  # allreduce did the charging
        assert bd["outer/inner/allreduce"].flops > 0.0
        assert bd[UNTRACED].flops == 3.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_breakdown_is_bit_exact(self, engine):
        machine = BSPMachine(4, engine=engine, spans=True)
        _workload(machine)
        report = machine.cost()
        bd = report.by_span()
        assert bd.verify_exact() == []
        assert machine.spans.verify_attribution() == []
        # Row-ordered per-rank sums telescope to the report's arrays exactly.
        ranks = per_rank_arrays(report)
        for field in SPAN_FIELDS:
            total = bd.per_rank[bd.paths()[0]][field].copy()
            for path in bd.paths()[1:]:
                total = total + bd.per_rank[path][field]
            assert np.array_equal(total.astype(np.float64), ranks[field]), field

    def test_engines_agree_on_breakdown(self):
        rows = {}
        for engine in ENGINES:
            machine = BSPMachine(4, engine=engine, spans=True)
            _workload(machine)
            rows[engine] = machine.cost().by_span()
        a, s = rows["array"], rows["scalar"]
        assert a.paths() == s.paths()
        for ra, rs in zip(a.rows, s.rows):
            assert ra == rs

    def test_unbalanced_close_raises(self):
        machine = BSPMachine(2, spans=True)
        with pytest.raises(RuntimeError):
            machine.spans.close()

    def test_exception_closes_span(self):
        machine = BSPMachine(2, spans=True)
        with pytest.raises(ValueError, match="boom"):
            with machine.span("doomed"):
                machine.charge_flops(machine.world, 1.0)
                raise ValueError("boom")
        assert machine.spans.depth == 0
        bd = machine.cost().by_span()
        assert bd["doomed"].flops == 1.0

    def test_span_share_sums_to_one(self):
        machine = BSPMachine(4, spans=True)
        _workload(machine)
        bd = machine.cost().by_span()
        assert sum(r.share for r in bd.rows) == pytest.approx(1.0)
        assert bd.by_time()[0].time == max(r.time for r in bd.rows)


class TestDisabled:
    def test_disabled_machine_returns_null_span(self):
        machine = BSPMachine(4)
        assert machine.span("x") is NULL_SPAN
        with machine.span("x"):
            machine.charge_flops(machine.world, 1.0)
        assert machine.spans.events == []

    def test_disabled_report_has_no_breakdown(self):
        machine = BSPMachine(4)
        machine.charge_flops(machine.world, 1.0)
        with pytest.raises(ValueError, match="spans=True"):
            machine.cost().by_span()

    def test_env_var_enables_spans(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPANS", "1")
        assert BSPMachine(2).spans.enabled
        monkeypatch.setenv("REPRO_SPANS", "0")
        assert not BSPMachine(2).spans.enabled

    def test_disabled_costs_match_enabled(self):
        """Spans charge nothing: enabled and disabled runs cost the same."""
        reports = []
        for spans in (False, True):
            machine = BSPMachine(4, spans=spans)
            _workload(machine)
            reports.append(machine.cost())
        assert report_mismatches(reports[0], reports[1]) == []


class TestChromeExport:
    def test_trace_event_document(self, tmp_path):
        machine = BSPMachine(4, spans=True)
        _workload(machine)
        machine.cost()
        doc = chrome_trace(machine.spans)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 2
        assert len(xs) == len(machine.spans.events) > 0
        for e in xs:
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert {"F", "W", "Q", "S", "path", "depth"} <= set(e["args"])
        # Children nest inside their parents' [ts, ts+dur] window.
        by_path = {e["args"]["path"]: e for e in xs}
        inner, outer = by_path["outer/inner"], by_path["outer"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

        path = write_chrome_trace(machine.spans, tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["p"] == 4
        assert loaded["otherData"]["open_spans"] == []


class TestVerifiedSpans:
    def test_verified_machine_checks_each_span(self):
        from repro.lint.verify import VerifiedMachine

        machine = VerifiedMachine(4, spans=True)
        before = machine.checks_run
        with machine.span("ok"):
            machine.charge_flops(machine.world, 1.0)
        assert machine.checks_run > before
        assert machine.cost().by_span()["ok"].flops == 1.0

    def test_violation_is_pinned_to_the_span(self):
        from repro.lint.verify import BSPDisciplineError, VerifiedMachine

        machine = VerifiedMachine(4, spans=True)
        with pytest.raises(BSPDisciplineError, match=r"span\(lossy\)"):
            with machine.span("lossy"):
                machine.charge_comm(sends={0: 64.0})  # nothing received


class TestReset:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reset_restores_engine_state(self, engine):
        """Regression: ScalarCounterStore.reset() replaced its rank list, so
        previously handed-out RankCounters kept pre-reset values and the two
        engines diverged after any mid-run reset."""
        machine = BSPMachine(4, engine=engine, spans=True)
        held = machine.counters[0]  # per-rank view taken BEFORE the reset
        _workload(machine)
        assert held.flops > 0.0
        machine.reset()
        assert held.flops == 0.0
        assert held.supersteps == 0
        assert machine.spans.events == [] and machine.spans.depth == 0

    def test_rerun_after_reset_is_bit_identical_across_engines(self):
        reports = {}
        for engine in ENGINES:
            machine = BSPMachine(4, engine=engine, spans=True)
            _ = machine.counters[0]  # hold a view across the reset
            _workload(machine)
            machine.reset()
            _workload(machine)
            reports[engine] = machine.cost()
        assert report_mismatches(reports["array"], reports["scalar"]) == []
        fresh = BSPMachine(4, spans=True)
        _workload(fresh)
        assert report_mismatches(reports["array"], fresh.cost()) == []


class TestDriverProperty:
    """Per-span deltas sum exactly to the global report, for every solver."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("solver", ["eig2p5d", "ca_sbr", "scalapack", "elpa"])
    def test_span_sums_equal_totals(self, engine, solver):
        from repro.eig.ca_sbr_solver import eigensolve_ca_sbr
        from repro.eig.driver import eigensolve_2p5d
        from repro.eig.elpa_like import eigensolve_elpa_like
        from repro.eig.scalapack_like import eigensolve_scalapack_like
        from repro.util.matrices import random_symmetric

        a = random_symmetric(32, seed=7)
        machine = make_machine(4, engine=engine, spans=True)
        if solver == "eig2p5d":
            eigensolve_2p5d(machine, a, delta=2.0 / 3.0)
        elif solver == "ca_sbr":
            eigensolve_ca_sbr(machine, a)
        elif solver == "scalapack":
            eigensolve_scalapack_like(machine, a)
        else:
            eigensolve_elpa_like(machine, a)
        report = machine.cost()
        bd = report.by_span()
        assert bd.open_paths == ()
        assert bd.verify_exact() == []
        assert machine.spans.verify_attribution() == []
        # The row-ordered per-rank sums telescope to the report's totals
        # exactly (same np.sum over bit-identical arrays).
        total = bd.per_rank[bd.paths()[0]]["flops"].copy()
        for path in bd.paths()[1:]:
            total = total + bd.per_rank[path]["flops"]
        assert float(np.sum(total)) == report.total_flops
