"""Tests for the service resilience layer (``repro.serve.resilience``).

The event loop is exercised with synthetic rung/outcome callbacks — no
eigensolves — so every mechanism (deadlines, retries, quarantine,
hedging, shedding) is tested in isolation and in milliseconds.  The
integration with real solves is covered by ``tests/test_serve.py`` and
``tests/test_journal.py``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serve.pool import MachinePool
from repro.serve.resilience import (
    DEFAULT_POLICY,
    SERVICE_SCENARIOS,
    SLO_CLASSES,
    AdmissionPolicy,
    AttemptOutcome,
    HedgePolicy,
    QuarantinePolicy,
    ResiliencePolicy,
    RetryPolicy,
    Rung,
    ServiceScenario,
    SimJob,
    _hash01,
    deadline_for,
    run_resilient,
    slo_summary,
)
from repro.serve.scheduler import schedule_jobs

RUNG = Rung(1, 0.5, "primary")


def ok_outcome(service=10.0):
    def outcome_for(job_id, rung, attempt, machine_id):
        return AttemptOutcome(ok=True, service_time=service, sim_cost={"flops": 1.0})
    return outcome_for


def rung_ladder(job_id, failures):
    """A standard 1-rank ladder: primary, then escalating retries."""
    kinds = ["primary", "same-plan", "grid-shrink", "replicated"]
    return Rung(1, 0.5, kinds[min(failures, 3)])


NO_HEDGE = ResiliencePolicy(hedge=HedgePolicy(enabled=False))


# ------------------------------------------------------------------ #
# deterministic draws / policies


class TestPolicies:
    def test_hash01_is_deterministic_and_uniform_range(self):
        draws = [_hash01(i, 7) for i in range(1000)]
        assert draws == [_hash01(i, 7) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6  # roughly uniform

    def test_retry_backoff_grows_exponentially_with_bounded_jitter(self):
        pol = RetryPolicy(backoff_base=100.0, backoff_factor=2.0, jitter=0.25)
        d1, d2, d3 = (pol.delay(5, k) for k in (1, 2, 3))
        assert 100.0 <= d1 <= 125.0
        assert 200.0 <= d2 <= 250.0
        assert 400.0 <= d3 <= 500.0
        assert pol.delay(5, 1) == d1  # seeded, not sampled

    def test_scheduling_policy_validated(self):
        with pytest.raises(ValueError, match="fifo.*edf|edf.*fifo"):
            ResiliencePolicy(scheduling="sjf")

    def test_policy_fingerprint_distinguishes_configs(self):
        a = ResiliencePolicy()
        b = ResiliencePolicy(retry=RetryPolicy(budget=5))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == ResiliencePolicy().fingerprint()

    def test_deadlines_come_from_slo_class(self):
        assert deadline_for("interactive", 100.0) == pytest.approx(
            100.0 + SLO_CLASSES["interactive"].deadline
        )
        assert math.isinf(deadline_for("best-effort", 0.0))
        # unknown class falls back to the default, never crashes
        assert math.isfinite(deadline_for("nonsense", 0.0))

    def test_scenario_menu_covers_the_issue_scenarios(self):
        assert {"flaky-machine", "straggler", "poison-job"} <= set(SERVICE_SCENARIOS)
        scen = ServiceScenario(name="x", poison_rate=0.25, seed=3)
        poisoned = [j for j in range(200) if scen.is_poison(j)]
        assert 20 <= len(poisoned) <= 80  # seeded, near the configured rate
        assert poisoned == [j for j in range(200) if scen.is_poison(j)]


# ------------------------------------------------------------------ #
# the event loop: happy path + each mechanism


class TestHappyPath:
    def test_single_job_runs_and_settles_ok(self):
        pool = MachinePool(1, 1)
        run = run_resilient(
            [SimJob(0, 0.0)], pool, rung_ladder, ok_outcome(), NO_HEDGE
        )
        v = run.verdicts[0]
        assert v.disposition == "ok" and v.finish == pytest.approx(10.0)
        assert run.stats.trials == 1 and run.stats.retries == 0
        assert run.schedule.jobs[0].disposition == "ok"

    def test_matches_plain_scheduler_on_clean_workload(self):
        """With no failures/hedges/deadlines the resilient loop must place
        jobs exactly like the PR 7 scheduler (same machine, start, finish)."""
        rng = np.random.default_rng(42)
        pool = MachinePool(2, 8)
        jobs, services = [], {}
        for i in range(60):
            arrival = float(rng.uniform(0, 500))
            p = int(rng.integers(1, 9))
            service = float(rng.uniform(5, 80))
            jobs.append((SimJob(i, arrival), p, service))
            services[i] = (p, service)

        def rung_for(job_id, failures):
            return Rung(services[job_id][0], 0.5, "primary")

        def outcome_for(job_id, rung, attempt, machine_id):
            return AttemptOutcome(ok=True, service_time=services[job_id][1])

        run = run_resilient(
            [j for j, _, _ in jobs], pool, rung_for, outcome_for, NO_HEDGE
        )
        plain = schedule_jobs(
            [(i, j.arrival, services[i][0], services[i][1])
             for i, (j, _, _) in enumerate(jobs)],
            pool,
        )
        resilient_rows = {
            r.job_id: (r.machine_id, r.start, r.finish) for r in run.schedule.jobs
        }
        plain_rows = {
            r.job_id: (r.machine_id, r.start, r.finish) for r in plain.jobs
        }
        assert resilient_rows == plain_rows
        assert run.schedule.makespan == pytest.approx(plain.makespan)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_resilient(
                [SimJob(0, 0.0), SimJob(0, 1.0)], MachinePool(1, 1),
                rung_ladder, ok_outcome(),
            )

    def test_oversized_rung_stalls_loudly(self):
        def rung_for(job_id, failures):
            return Rung(64, 0.5, "primary")  # nothing in the pool fits
        with pytest.raises(RuntimeError, match="stalled"):
            run_resilient(
                [SimJob(0, 0.0)], MachinePool(1, 8), rung_for, ok_outcome(),
            )


class TestRetries:
    def test_ladder_escalates_and_settles_degraded(self):
        fails_left = {0: 2}

        def outcome_for(job_id, rung, attempt, machine_id):
            if fails_left[job_id] > 0:
                fails_left[job_id] -= 1
                return AttemptOutcome(ok=False, service_time=5.0)
            return AttemptOutcome(ok=True, service_time=10.0)

        run = run_resilient(
            [SimJob(0, 0.0)], MachinePool(1, 1), rung_ladder, outcome_for, NO_HEDGE
        )
        v = run.verdicts[0]
        # two failures → third attempt runs on the grid-shrink rung
        assert v.disposition == "degraded" and v.rung.kind == "grid-shrink"
        assert v.retries == 2 and v.attempts == 3
        assert run.stats.retries == 2
        # backoff delays pushed the finish past 3 service times
        assert v.finish > 3 * 5.0

    def test_budget_exhaustion_is_a_typed_error_not_a_loop(self):
        def outcome_for(job_id, rung, attempt, machine_id):
            return AttemptOutcome(ok=False, service_time=5.0)

        policy = ResiliencePolicy(
            retry=RetryPolicy(budget=3), hedge=HedgePolicy(enabled=False)
        )
        run = run_resilient(
            [SimJob(0, 0.0)], MachinePool(1, 1), rung_ladder, outcome_for, policy
        )
        v = run.verdicts[0]
        assert v.disposition == "error"
        assert v.attempts == 4  # primary + full budget, then stop
        assert run.stats.dispositions["error"] == 1

    def test_same_plan_retry_success_stays_ok_not_degraded(self):
        fails_left = {0: 1}

        def outcome_for(job_id, rung, attempt, machine_id):
            if fails_left[job_id] > 0:
                fails_left[job_id] -= 1
                return AttemptOutcome(ok=False, service_time=5.0)
            return AttemptOutcome(ok=True, service_time=10.0)

        run = run_resilient(
            [SimJob(0, 0.0)], MachinePool(1, 1), rung_ladder, outcome_for, NO_HEDGE
        )
        assert run.verdicts[0].disposition == "ok"
        assert run.verdicts[0].rung.kind == "same-plan"


class TestQuarantine:
    def test_flaky_machine_is_quarantined_and_drained(self):
        def outcome_for(job_id, rung, attempt, machine_id):
            return AttemptOutcome(ok=machine_id != 0, service_time=10.0)

        jobs = [SimJob(i, float(i)) for i in range(12)]
        run = run_resilient(
            [*jobs], MachinePool(2, 1), rung_ladder, outcome_for, NO_HEDGE
        )
        assert all(v.disposition in ("ok", "degraded") for v in run.verdicts.values())
        h0 = next(h for h in run.health if h["machine_id"] == 0)
        assert h0["quarantines"] >= 1 and h0["failures"] >= 3
        assert run.stats.quarantines >= 1
        # once open, machine 0 stops receiving work: all wins on machine 1
        assert all(v.machine_id == 1 for v in run.verdicts.values())

    def test_half_open_probe_readmits_a_recovered_machine(self):
        # machine 0 fails its first 3 attempts, then recovers
        attempts_on_0 = [0]

        def outcome_for(job_id, rung, attempt, machine_id):
            if machine_id == 0:
                attempts_on_0[0] += 1
                return AttemptOutcome(ok=attempts_on_0[0] > 3, service_time=10.0)
            return AttemptOutcome(ok=True, service_time=10.0)

        policy = ResiliencePolicy(
            quarantine=QuarantinePolicy(failure_threshold=3, cooldown=50.0),
            hedge=HedgePolicy(enabled=False),
        )
        jobs = [SimJob(i, float(i) * 5.0) for i in range(40)]
        run = run_resilient(
            jobs, MachinePool(2, 1), rung_ladder, outcome_for, policy
        )
        h0 = next(h for h in run.health if h["machine_id"] == 0)
        assert h0["probes"] >= 1
        assert h0["state"] == "closed"  # the probe succeeded, breaker closed
        # after re-admission machine 0 serves real work again
        wins_on_0 = [v for v in run.verdicts.values() if v.machine_id == 0]
        assert len(wins_on_0) >= 1

    def test_disabled_quarantine_never_opens(self):
        def outcome_for(job_id, rung, attempt, machine_id):
            return AttemptOutcome(ok=machine_id != 0, service_time=10.0)

        policy = ResiliencePolicy(
            quarantine=QuarantinePolicy(enabled=False),
            hedge=HedgePolicy(enabled=False),
        )
        run = run_resilient(
            [SimJob(i, float(i)) for i in range(10)], MachinePool(2, 1),
            rung_ladder, outcome_for, policy,
        )
        assert run.stats.quarantines == 0
        assert all(h["state"] == "closed" for h in run.health)


class TestHedging:
    def _straggler_setup(self, straggler_id=30, factor=50.0):
        def outcome_for(job_id, rung, attempt, machine_id):
            if job_id == straggler_id and attempt == 0:
                return AttemptOutcome(ok=True, service_time=10.0 * factor)
            return AttemptOutcome(ok=True, service_time=10.0)
        return outcome_for

    def test_straggler_is_hedged_and_the_duplicate_wins(self):
        policy = ResiliencePolicy(
            hedge=HedgePolicy(percentile=95.0, min_observations=16, max_hedges=4)
        )
        jobs = [SimJob(i, float(i) * 20.0) for i in range(40)]
        run = run_resilient(
            jobs, MachinePool(2, 2), rung_ladder, self._straggler_setup(), policy
        )
        assert run.stats.hedges == 1
        assert run.stats.hedge_wins == 1
        v = run.verdicts[30]
        assert v.hedged and v.disposition == "ok"
        # the duplicate (attempt 1, fast) finished long before the straggler
        assert v.finish < jobs[30].arrival + 500.0
        # the loser still ran to completion and was charged
        straggler_trials = [t for t in run.trials if t.job_id == 30]
        assert len(straggler_trials) == 2
        assert sum(t.outcome.service_time for t in straggler_trials) == 510.0

    def test_hedge_budget_caps_speculation(self):
        policy = ResiliencePolicy(
            hedge=HedgePolicy(percentile=50.0, min_observations=4, max_hedges=2)
        )

        def outcome_for(job_id, rung, attempt, machine_id):
            # every job after warmup looks like a straggler
            return AttemptOutcome(ok=True, service_time=10.0 + 10.0 * (job_id % 7))

        run = run_resilient(
            [SimJob(i, float(i) * 5.0) for i in range(30)], MachinePool(2, 2),
            rung_ladder, outcome_for, policy,
        )
        assert run.stats.hedges <= 2

    def test_disabled_hedging_never_speculates(self):
        run = run_resilient(
            [SimJob(i, float(i)) for i in range(40)], MachinePool(2, 2),
            rung_ladder, self._straggler_setup(), NO_HEDGE,
        )
        assert run.stats.hedges == 0
        assert all(not v.hedged for v in run.verdicts.values())


class TestAdmission:
    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        policy = ResiliencePolicy(
            admission=AdmissionPolicy(queue_limit=2),
            hedge=HedgePolicy(enabled=False),
        )
        # 10 jobs arrive at once onto one slow 1-rank machine
        jobs = [SimJob(i, 0.0) for i in range(10)]
        run = run_resilient(
            jobs, MachinePool(1, 1), rung_ladder, ok_outcome(100.0), policy
        )
        shed = [v for v in run.verdicts.values() if v.disposition == "shed"]
        served = [v for v in run.verdicts.values() if v.disposition == "ok"]
        assert len(shed) > 0 and len(served) > 0
        assert len(shed) + len(served) == 10
        assert run.stats.shed == len(shed)
        # shed rows appear in the schedule but not in latency percentiles
        rows = {r.job_id: r for r in run.schedule.jobs}
        assert all(rows[v.job_id].disposition == "shed" for v in shed)
        assert len(run.schedule.latencies()) == len(served)
        # a shed job never hits its deadline
        assert all(not v.deadline_hit for v in shed)

    def test_unbounded_queue_never_sheds(self):
        run = run_resilient(
            [SimJob(i, 0.0) for i in range(10)], MachinePool(1, 1),
            rung_ladder, ok_outcome(100.0), NO_HEDGE,
        )
        assert run.stats.shed == 0
        assert all(v.disposition == "ok" for v in run.verdicts.values())


class TestDeadlinesAndEDF:
    def test_edf_prioritizes_urgent_class_over_arrival_order(self):
        # batch job arrives first, interactive second, both before the
        # machine frees: EDF runs the interactive one first, FIFO doesn't
        jobs = [
            SimJob(0, 0.0),                       # occupies the machine
            SimJob(1, 1.0, slo="batch"),
            SimJob(2, 2.0, slo="interactive"),
        ]
        starts = {}
        for scheduling in ("fifo", "edf"):
            policy = ResiliencePolicy(
                scheduling=scheduling, hedge=HedgePolicy(enabled=False)
            )
            run = run_resilient(
                jobs, MachinePool(1, 1), rung_ladder, ok_outcome(50.0), policy
            )
            starts[scheduling] = {
                v.job_id: v.start for v in run.verdicts.values()
            }
        assert starts["fifo"][1] < starts["fifo"][2]   # arrival order
        assert starts["edf"][2] < starts["edf"][1]     # deadline order

    def test_slo_summary_counts_hits_per_class(self):
        jobs = [
            SimJob(0, 0.0, slo="interactive"),
            SimJob(1, 0.0, slo="interactive"),
            SimJob(2, 0.0, slo="best-effort"),
        ]
        # job 1 waits behind job 0 on the 1-rank machine and misses its
        # deadline with a service time just over half the budget
        service = SLO_CLASSES["interactive"].deadline * 0.6
        run = run_resilient(
            jobs, MachinePool(1, 1), rung_ladder, ok_outcome(service), NO_HEDGE
        )
        doc = slo_summary(list(run.verdicts.values()))
        assert doc["interactive"]["jobs"] == 2
        assert doc["interactive"]["deadline_hits"] == 1
        assert doc["interactive"]["hit_rate"] == pytest.approx(0.5)
        assert doc["best-effort"]["hit_rate"] == 1.0  # inf deadline


class TestDeterminismAndInvariants:
    def test_two_runs_produce_identical_stats_and_verdicts(self):
        scen = ServiceScenario(name="mix", poison_rate=0.1, seed=5)

        def outcome_for(job_id, rung, attempt, machine_id):
            if scen.is_poison(job_id):
                return AttemptOutcome(ok=False, service_time=3.0)
            return AttemptOutcome(ok=machine_id != 0 or job_id % 3 != 0,
                                  service_time=10.0)

        jobs = [SimJob(i, float(i) * 2.0) for i in range(30)]
        runs = [
            run_resilient(jobs, MachinePool(2, 1), rung_ladder, outcome_for)
            for _ in range(2)
        ]
        assert runs[0].stats.as_dict() == runs[1].stats.as_dict()
        assert {
            j: (v.disposition, v.finish, v.machine_id)
            for j, v in runs[0].verdicts.items()
        } == {
            j: (v.disposition, v.finish, v.machine_id)
            for j, v in runs[1].verdicts.items()
        }

    def test_no_job_lost_under_mixed_chaos(self):
        scen = ServiceScenario(
            name="mix", flaky_machines=1, flaky_rate=0.7,
            straggler_rate=0.2, poison_rate=0.15, seed=9,
        )

        def outcome_for(job_id, rung, attempt, machine_id):
            if scen.is_poison(job_id):
                return AttemptOutcome(ok=False, service_time=3.0)
            if scen.is_flaky_attempt(machine_id, job_id, attempt):
                return AttemptOutcome(ok=False, service_time=5.0)
            factor = 8.0 if scen.is_straggler(job_id, attempt) else 1.0
            return AttemptOutcome(ok=True, service_time=10.0 * factor)

        jobs = [SimJob(i, float(i) * 3.0) for i in range(50)]
        run = run_resilient(jobs, MachinePool(2, 2), rung_ladder, outcome_for)
        assert len(run.verdicts) == 50
        assert sum(run.stats.dispositions.values()) == 50
        assert all(
            v.disposition in ("ok", "degraded", "shed", "error")
            for v in run.verdicts.values()
        )
        # every schedule row carries a terminal disposition (satellite: no
        # dropped failed jobs)
        assert len(run.schedule.jobs) == 50
        assert run.schedule.summary()["dispositions"] == {
            k: v for k, v in run.stats.dispositions.items() if v
        }


# ------------------------------------------------------------------ #
# satellite: heapq running queue equivalence (property test)


def _oracle_schedule(requests, pool):
    """The PR 7 scheduler verbatim, with the sorted-list running queue —
    the oracle the heapq rewrite must match placement-for-placement."""
    reqs = [(r[0], r[1], r[2], r[3]) for r in requests]
    pending = sorted(reqs, key=lambda r: (r[1], r[0]))
    free = {m.machine_id: m.p for m in pool}
    running: list[tuple[float, int, int, int]] = []
    placed = []
    queue: list[tuple[int, float, int, float]] = []
    i = 0
    now = pending[0][1] if pending else 0.0

    def try_dispatch():
        nonlocal queue
        remaining = []
        for entry in sorted(queue, key=lambda e: (e[1], e[0])):
            job_id, arrival, p, service = entry
            best_m = None
            for m in pool:
                f = free[m.machine_id]
                if f >= p and (best_m is None or f < free[best_m]):
                    best_m = m.machine_id
            if best_m is None:
                remaining.append(entry)
                continue
            free[best_m] -= p
            running.append((now + service, best_m, p, job_id))
            running.sort()
            placed.append((job_id, best_m, now, now + service))
        queue = remaining

    while i < len(pending) or queue or running:
        next_arrival = pending[i][1] if i < len(pending) else math.inf
        next_finish = running[0][0] if running else math.inf
        now = min(next_arrival, next_finish)
        if math.isinf(now):
            break
        while running and running[0][0] <= now:
            _, m_id, p, _ = running.pop(0)
            free[m_id] += p
        while i < len(pending) and pending[i][1] <= now:
            queue.append(pending[i])
            i += 1
        try_dispatch()
    return sorted(placed)


class TestHeapqEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_heap_scheduler_matches_sorted_list_oracle(self, seed):
        rng = np.random.default_rng(seed)
        pool = MachinePool(int(rng.integers(1, 4)), 8)
        n_jobs = int(rng.integers(5, 80))
        reqs = [
            (
                i,
                float(rng.uniform(0, 300)),
                int(rng.integers(1, 9)),
                float(rng.uniform(1, 60)),
            )
            for i in range(n_jobs)
        ]
        sched = schedule_jobs(reqs, pool)
        got = sorted((j.job_id, j.machine_id, j.start, j.finish) for j in sched.jobs)
        assert got == _oracle_schedule(reqs, pool)

    def test_edf_policy_validated(self):
        with pytest.raises(ValueError, match="fifo.*edf|edf.*fifo"):
            schedule_jobs([], MachinePool(1, 1), policy="lifo")

    def test_edf_reorders_by_deadline_tuple(self):
        pool = MachinePool(1, 1)
        # both queued while the machine is busy; deadlines invert arrival
        reqs = [
            (0, 0.0, 1, 50.0, math.inf),
            (1, 1.0, 1, 10.0, 1000.0),
            (2, 2.0, 1, 10.0, 100.0),
        ]
        fifo = {j.job_id: j.start for j in schedule_jobs(reqs, pool).jobs}
        edf = {j.job_id: j.start for j in schedule_jobs(reqs, pool, policy="edf").jobs}
        assert fifo[1] < fifo[2]
        assert edf[2] < edf[1]
