"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_small(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "4", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max |lambda - numpy|" in out
        assert "full_to_band" in out

    def test_solve_delta_flag(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "16", "--delta", "0.5"])
        assert rc == 0
        assert "c=1" in capsys.readouterr().out


class TestTable1:
    def test_prints_symbolic_and_numeric(self, capsys):
        rc = main(["table1", "--n", "4096", "--p", "256"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Theorem IV.4" in out
        assert "n^2/p^delta" in out
        assert "evaluated at n=4096" in out


class TestFigures:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "recursive step" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "(3,1)" in out and "(1,6)" in out


class TestTune:
    def test_tune_default(self, capsys):
        rc = main(["tune", "--n", "8192", "--p", "512"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best delta" in out

    def test_tune_infeasible_memory(self, capsys):
        rc = main(["tune", "--n", "100000", "--p", "4", "--memory", "10"])
        assert rc == 1
        assert "no feasible delta" in capsys.readouterr().err

    def test_tune_latency_bound_picks_half(self, capsys):
        rc = main(["tune", "--n", "8192", "--p", "512", "--beta", "0.001", "--alpha", "1e9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best delta = 0.5000" in out


class TestTrace:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "--n", "32", "--p", "4", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "critical-path breakdown" in stdout
        assert "bit-exact" in stdout
        doc = json.loads(out.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs and all(e["dur"] >= 0 for e in xs)
        assert doc["otherData"]["p"] == 4

    def test_trace_scalar_engine_matches(self, tmp_path, capsys):
        rc = main([
            "trace", "--n", "32", "--p", "4",
            "--engine", "scalar", "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        assert "engine=scalar" in capsys.readouterr().out

    def test_trace_per_rank_writes_second_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "--n", "32", "--p", "4", "--per-rank", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "rank tracks" in stdout
        per_rank = tmp_path / "trace.per_rank.json"
        doc = json.loads(per_rank.read_text())
        meta = [e for e in doc["traceEvents"]
                if e.get("ph") == "M" and e.get("name") == "thread_name"]
        assert len(meta) >= 4
        assert "heatmap" in doc["otherData"]

    def test_trace_without_per_rank_writes_one_file(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "--n", "32", "--p", "4", "--out", str(out)]) == 0
        assert out.exists()
        assert not (tmp_path / "trace.per_rank.json").exists()


class TestMetrics:
    def test_metrics_writes_doc(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        rc = main(["metrics", "--n", "48", "--p", "8", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "per-rank metrics" in stdout
        assert "conservation: OK" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.metrics/1"
        assert doc["conservation"]["problems"] == []

    def test_metrics_check_roundtrip(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["metrics", "--n", "48", "--p", "8", "--out", str(base)]) == 0
        rc = main(["metrics", "--n", "48", "--p", "8",
                   "--out", str(tmp_path / "fresh.json"), "--check", str(base)])
        assert rc == 0
        assert "baseline check passed" in capsys.readouterr().out

    def test_metrics_check_missing_baseline(self, tmp_path, capsys):
        # configuration error, not a metrics failure: exit 2 naming the file
        rc = main(["metrics", "--n", "48", "--p", "8",
                   "--out", str(tmp_path / "m.json"),
                   "--check", str(tmp_path / "nope.json")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no metrics baseline" in err and "nope.json" in err

    def test_metrics_check_flags_config_drift(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["metrics", "--n", "48", "--p", "8", "--out", str(base)]) == 0
        rc = main(["metrics", "--n", "48", "--p", "8", "--seed", "4",
                   "--out", str(tmp_path / "fresh.json"), "--check", str(base)])
        assert rc == 1
        assert "config mismatch" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestInvalidConfigs:
    """Invalid n/p/delta exit 2 with a one-line diagnostic, not a traceback."""

    def test_n_smaller_than_p(self, capsys):
        rc = main(["solve", "--n", "8", "--p", "16"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "n >= p" in err

    def test_nonpositive_p(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "0"])
        assert rc == 2
        assert "must be positive" in capsys.readouterr().err

    def test_delta_out_of_range(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "4", "--delta", "0.9"])
        assert rc == 2
        assert "delta" in capsys.readouterr().err

    def test_trace_validates_too(self, capsys):
        rc = main(["trace", "--n", "8", "--p", "16"])
        assert rc == 2
        assert "repro: error:" in capsys.readouterr().err


class TestSolveFaults:
    def test_clean_scenario_prints_plan_summary(self, capsys):
        rc = main(["solve", "--n", "32", "--p", "4", "--faults", "clean"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FaultPlan('clean', seed=0): 0 draws, 0 events" in out

    def test_unknown_scenario_exits_2(self, capsys):
        rc = main(["solve", "--n", "32", "--p", "4", "--faults", "nonsense"])
        assert rc == 2
        assert "unknown fault scenario" in capsys.readouterr().err

    def test_injected_scenario_reports_events(self, capsys):
        rc = main(["solve", "--n", "32", "--p", "4",
                   "--faults", "message-drop:2"])
        out = capsys.readouterr().out
        assert rc == 0  # drops are healed by charged retransmission
        assert "FaultPlan('message-drop', seed=2)" in out
