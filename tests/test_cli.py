"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSolve:
    def test_solve_small(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "4", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max |lambda - numpy|" in out
        assert "full_to_band" in out

    def test_solve_delta_flag(self, capsys):
        rc = main(["solve", "--n", "48", "--p", "16", "--delta", "0.5"])
        assert rc == 0
        assert "c=1" in capsys.readouterr().out


class TestTable1:
    def test_prints_symbolic_and_numeric(self, capsys):
        rc = main(["table1", "--n", "4096", "--p", "256"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Theorem IV.4" in out
        assert "n^2/p^delta" in out
        assert "evaluated at n=4096" in out


class TestFigures:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "recursive step" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "(3,1)" in out and "(1,6)" in out


class TestTune:
    def test_tune_default(self, capsys):
        rc = main(["tune", "--n", "8192", "--p", "512"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best delta" in out

    def test_tune_infeasible_memory(self, capsys):
        rc = main(["tune", "--n", "100000", "--p", "4", "--memory", "10"])
        assert rc == 1
        assert "no feasible delta" in capsys.readouterr().err

    def test_tune_latency_bound_picks_half(self, capsys):
        rc = main(["tune", "--n", "8192", "--p", "512", "--beta", "0.001", "--alpha", "1e9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best delta = 0.5000" in out


class TestTrace:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        rc = main(["trace", "--n", "32", "--p", "4", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "critical-path breakdown" in stdout
        assert "bit-exact" in stdout
        doc = json.loads(out.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs and all(e["dur"] >= 0 for e in xs)
        assert doc["otherData"]["p"] == 4

    def test_trace_scalar_engine_matches(self, tmp_path, capsys):
        rc = main([
            "trace", "--n", "32", "--p", "4",
            "--engine", "scalar", "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 0
        assert "engine=scalar" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
