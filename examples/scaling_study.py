#!/usr/bin/env python3
"""Strong-scaling study: the four Table I algorithms side by side.

Sweeps the processor count at fixed n and prints measured F / W / Q / S for
ScaLAPACK-like, ELPA-like, CA-SBR, and the 2.5D solver at both δ endpoints —
a runnable, smaller-scale version of the Table I benchmark, useful as a
template for custom studies.

Run:  python examples/scaling_study.py [n]
"""

import sys

import numpy as np

from repro import (
    BSPMachine,
    eigensolve_2p5d,
    eigensolve_ca_sbr,
    eigensolve_elpa_like,
    eigensolve_scalapack_like,
)
from repro.report.tables import fit_exponent, format_table
from repro.util import random_symmetric


def main(n: int = 192) -> None:
    ps = (4, 16, 64)
    a = random_symmetric(n, seed=3)
    ref = np.linalg.eigvalsh(a)

    solvers = {
        "ScaLAPACK-like": lambda m: eigensolve_scalapack_like(m, a),
        "ELPA-like": lambda m: eigensolve_elpa_like(m, a, b=16),
        "CA-SBR": lambda m: eigensolve_ca_sbr(m, a),
        "2.5D (d=1/2)": lambda m: eigensolve_2p5d(m, a, delta=0.5).eigenvalues,
        "2.5D (d=2/3)": lambda m: eigensolve_2p5d(m, a, delta=2 / 3).eigenvalues,
    }

    rows = []
    w_series: dict[str, list[float]] = {}
    for name, solve in solvers.items():
        ws = []
        for p in ps:
            machine = BSPMachine(p)
            evals = solve(machine)
            err = np.abs(np.sort(np.asarray(evals)) - ref).max()
            rep = machine.cost()
            ws.append(rep.W)
            rows.append([name, p, rep.F, rep.W, rep.Q, rep.S, f"{err:.1e}"])
        w_series[name] = ws

    print(format_table(
        ["algorithm", "p", "F", "W", "Q", "S", "|eig err|"],
        rows,
        title=f"strong scaling at n = {n}",
    ))
    print()
    exp_rows = [[name, fit_exponent(ps, ws)] for name, ws in w_series.items()]
    print(format_table(["algorithm", "fitted W ~ p^e"], exp_rows))
    print("\n(paper: 2-D algorithms e = -1/2; Theorem IV.4 e = -delta)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 192)
