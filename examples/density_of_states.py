#!/usr/bin/env python3
"""Density of states of a disordered 2-D tight-binding lattice.

An eigenvalues-only workload (the regime the paper's algorithm is built
for — no back-transformation needed): compute the full spectrum of an
Anderson-model Hamiltonian on an L×L lattice,

    H = -t · (hopping between 4-neighbours) + diag(uniform disorder in [-W, W]),

and histogram it into the density of states (DOS).  With disorder the clean
lattice's Van Hove singularity at E = 0 smears out — visible directly in the
ASCII histogram.  The eigensolver runs on the simulated machine, so the
example also reports what the spectrum *cost* in BSP terms.

Run:  python examples/density_of_states.py
"""

import numpy as np

from repro import BSPMachine, eigensolve_2p5d
from repro.report.tables import format_table


def anderson_hamiltonian(side: int, disorder: float, seed: int = 0) -> np.ndarray:
    """L×L square lattice with periodic boundaries and diagonal disorder."""
    n = side * side
    rng = np.random.default_rng(seed)
    h = np.zeros((n, n))

    def site(i: int, j: int) -> int:
        return (i % side) * side + (j % side)

    for i in range(side):
        for j in range(side):
            s = site(i, j)
            for di, dj in ((0, 1), (1, 0)):
                t = site(i + di, j + dj)
                h[s, t] = h[t, s] = -1.0
    h[np.arange(n), np.arange(n)] = rng.uniform(-disorder, disorder, n)
    return h


def ascii_histogram(values: np.ndarray, bins: int = 25, width: int = 48) -> str:
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max()
    lines = []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak)) if peak else ""
        lines.append(f"{lo:+7.2f} .. {hi:+7.2f} | {bar} {c}")
    return "\n".join(lines)


def main() -> None:
    side, p = 14, 16  # 196 orbitals on 16 simulated processors
    rows = []
    for disorder in (0.0, 4.0):
        h = anderson_hamiltonian(side, disorder)
        machine = BSPMachine(p)
        result = eigensolve_2p5d(machine, h, delta=2.0 / 3.0, collect_stages=False)
        evals = result.eigenvalues
        print(f"\ndisorder W = {disorder}: spectrum in [{evals[0]:+.3f}, {evals[-1]:+.3f}]")
        print(ascii_histogram(evals))
        rows.append([disorder, result.cost.W, result.cost.S, f"{evals[-1] - evals[0]:.3f}"])
        # sanity: exact spectrum
        assert np.abs(evals - np.linalg.eigvalsh(h)).max() < 1e-8
    print()
    print(format_table(
        ["disorder", "W (words)", "S (supersteps)", "bandwidth of spectrum"],
        rows,
        title=f"cost of each spectrum (n = {side * side}, p = {p})",
    ))
    print("\nnote the clean lattice's central (Van Hove) peak flattening under disorder")


if __name__ == "__main__":
    main()
