#!/usr/bin/env python3
"""Quickstart: eigenvalues of a symmetric matrix on a simulated BSP machine.

Builds a 256×256 symmetric matrix, solves it with the paper's 2.5D
communication-avoiding pipeline on a simulated 64-processor machine, checks
the spectrum against numpy, and prints the measured BSP cost breakdown
(F flops, W horizontal words, Q vertical words, S supersteps) per stage.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BSPMachine, eigensolve_2p5d
from repro.util import random_symmetric


def main() -> None:
    n, p = 256, 64
    a = random_symmetric(n, seed=42)

    machine = BSPMachine(p)
    result = eigensolve_2p5d(machine, a, delta=2.0 / 3.0)

    ref = np.linalg.eigvalsh(a)
    err = np.abs(result.eigenvalues - ref).max()

    print(f"n = {n}, p = {p}, replication c = {result.replication} "
          f"(delta = {result.delta:.3f}), initial band-width b = {result.initial_bandwidth}")
    print(f"five smallest eigenvalues: {np.round(result.eigenvalues[:5], 6)}")
    print(f"max |lambda - numpy|:      {err:.3e}")
    print()
    print("measured BSP cost per stage (max over ranks):")
    print(result.stage_summary())
    print()
    t = result.cost.time(machine.params)
    print(f"modeled execution time on the default machine: {t:.4g} "
          f"(gamma*F + beta*W + nu*Q + alpha*S)")

    assert err < 1e-8, "spectrum mismatch"


if __name__ == "__main__":
    main()
