#!/usr/bin/env python3
"""Tuning the replication factor for a machine (Section V).

"Employing a large c is attractive for bandwidth-constrained problems on
massively-parallel architectures" — this example makes that concrete.  For
three machine profiles (bandwidth-bound, latency-bound, balanced) it:

1. sweeps δ ∈ [1/2, 2/3] through the closed-form Theorem IV.4 cost model,
2. picks δ* with :func:`repro.model.best_delta` under the memory budget,
3. validates the model's preference by *measuring* the full-to-band stage
   at the competing grid shapes and comparing modeled times.

Run:  python examples/machine_tuning.py
"""

from repro import BSPMachine, MachineParams
from repro.dist.grid import ProcGrid, factor_2p5d
from repro.eig.full_to_band import full_to_band_2p5d
from repro.model.tuning import best_delta, tuning_table
from repro.report.tables import format_table
from repro.util import random_symmetric

PROFILES = {
    "bandwidth-bound": MachineParams(gamma=1.0, beta=1000.0, nu=10.0, alpha=1e4),
    "latency-bound": MachineParams(gamma=1.0, beta=20.0, nu=5.0, alpha=1e8),
    "balanced": MachineParams(),
}

N_MODEL, P_MODEL = 65536, 32768  # the regime the paper targets (model only)
N_MEAS, P_MEAS, B_MEAS = 384, 64, 48  # what we can simulate and measure


def main() -> None:
    for name, params in PROFILES.items():
        d_star, t_star = best_delta(N_MODEL, P_MODEL, params)
        print(f"{name:17s}: best delta = {d_star:.3f} "
              f"(c = {P_MODEL ** (2 * d_star - 1):.1f}), modeled T = {t_star:.4g}")
    print()

    rows = [
        [r["delta"], r["c"], r["W"], r["S"], r["memory_words"], r["time"]]
        for r in tuning_table(N_MODEL, P_MODEL, PROFILES["bandwidth-bound"])
    ]
    print(format_table(
        ["delta", "c", "W", "S", "M/rank", "modeled T"],
        rows,
        title=f"tuning table, bandwidth-bound machine (n={N_MODEL}, p={P_MODEL})",
    ))
    print()

    # Measured validation at simulable scale: run full-to-band on both grid
    # shapes and price the measured costs with each machine profile.
    a = random_symmetric(N_MEAS, seed=0)
    measured = {}
    for delta in (0.5, 2.0 / 3.0):
        q, c = factor_2p5d(P_MEAS, delta)
        mach = BSPMachine(P_MEAS)
        full_to_band_2p5d(mach, ProcGrid(mach, (q, q, c)), a, B_MEAS)
        measured[delta] = (c, mach.cost())
    rows = []
    for name, params in PROFILES.items():
        t_2d = measured[0.5][1].time(params)
        t_rep = measured[2.0 / 3.0][1].time(params)
        rows.append([name, t_2d, t_rep, "replicated" if t_rep < t_2d else "2-D"])
    print(format_table(
        ["machine", "T at c=1", f"T at c={measured[2/3][0]}", "winner"],
        rows,
        title=f"measured full-to-band, priced per machine (n={N_MEAS}, p={P_MEAS})",
    ))


if __name__ == "__main__":
    main()
