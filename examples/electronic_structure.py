#!/usr/bin/env python3
"""Electronic-structure workload: a self-consistent-field (SCF) loop.

The paper's introduction motivates scalable symmetric eigensolvers with
electronic-structure methods (Hartree–Fock), which diagonalize a *sequence*
of symmetric Fock matrices.  This example runs a simplified closed-shell
SCF on a model Hamiltonian:

    F(D) = H_core + g * (2·J(D) − K(D)),

with a tight-binding core on a ring and schematic Coulomb/exchange terms
built from the density matrix D of the n_occ lowest orbitals.  Every SCF
iteration solves a dense symmetric eigenproblem with the 2.5D solver for
its eigenvalues — plus one small dense solve for the occupied eigenvectors
(the paper's algorithm computes eigenvalues; eigenvectors via
back-transformation are its stated future work, so the reference vectors
come from the sequential path here).

The point of the example: the *cumulative* communication cost over an SCF
run is dominated by the eigensolver, and switching the solver from the 2-D
(c = 1) to the replicated (c = p^{1/3}) configuration cuts the measured
words moved — the end-to-end effect the paper promises for this workload.

Run:  python examples/electronic_structure.py
"""

import numpy as np

from repro import BSPMachine, eigensolve_2p5d
from repro.util import random_symmetric


def core_hamiltonian(n: int, seed: int = 7) -> np.ndarray:
    """Tight-binding ring with mild random disorder."""
    rng = np.random.default_rng(seed)
    h = np.zeros((n, n))
    idx = np.arange(n)
    h[idx, idx] = rng.uniform(-0.5, 0.5, n)
    h[idx, (idx + 1) % n] = -1.0
    h[(idx + 1) % n, idx] = -1.0
    return h


def coulomb_exchange(d: np.ndarray, seed: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """Schematic two-electron terms: J from the density's diagonal through a
    fixed positive kernel, K as a damped congruence of D."""
    n = d.shape[0]
    rng = np.random.default_rng(seed)
    kernel = np.abs(rng.standard_normal((n, n))) / n
    kernel = (kernel + kernel.T) / 2.0
    j = np.diag(kernel @ np.diag(d))
    s = random_symmetric(n, seed=seed + 1, scale=0.1)
    k = 0.5 * (s @ d @ s)
    return j, (k + k.T) / 2.0


def scf(n: int = 128, n_occ: int = 16, p: int = 64, g: float = 0.3,
        max_iter: int = 12, tol: float = 1e-8, delta: float = 2.0 / 3.0):
    """Run the SCF loop; returns (orbital energies, iterations, total cost)."""
    h_core = core_hamiltonian(n)
    d = np.zeros((n, n))
    machine = BSPMachine(p)
    energy_prev = np.inf
    energies = None
    for it in range(1, max_iter + 1):
        j, k = coulomb_exchange(d)
        fock = h_core + g * (2.0 * j - k)
        fock = (fock + fock.T) / 2.0
        result = eigensolve_2p5d(machine, fock, delta=delta, collect_stages=False)
        energies = result.eigenvalues
        # Occupied eigenvectors for the new density (sequential reference —
        # back-transformation is the paper's future work).
        _, vecs = np.linalg.eigh(fock)
        occ = vecs[:, :n_occ]
        d = occ @ occ.T
        e_tot = 2.0 * energies[:n_occ].sum()
        print(f"  SCF iter {it:2d}: E = {e_tot:+.8f}   "
              f"cumulative W = {machine.cost().W:.4g}")
        if abs(e_tot - energy_prev) < tol:
            break
        energy_prev = e_tot
    return energies, it, machine.cost()


def main() -> None:
    print("SCF with the 2.5D eigensolver (delta = 2/3, replicated):")
    e_rep, iters, cost_rep = scf(delta=2.0 / 3.0)
    print(f"converged in {iters} iterations; HOMO-LUMO gap = "
          f"{e_rep[16] - e_rep[15]:.6f}")
    print()
    print("same SCF with the 2-D configuration (delta = 1/2, c = 1):")
    e_2d, _, cost_2d = scf(delta=0.5)
    print()
    print(f"total words moved, 2-D (c=1):        {cost_2d.W:.4g}")
    print(f"total words moved, 2.5D (c=p^1/3):   {cost_rep.W:.4g}")
    print(f"communication saving from replication: {cost_2d.W / cost_rep.W:.2f}x")
    assert np.abs(e_rep - e_2d).max() < 1e-7, "both configurations must agree"


if __name__ == "__main__":
    main()
