"""rect-QR (Algorithm III.2): QR of arbitrary rectangular matrices.

A binary reduction tree over row panels: ``r = min(p, ⌈m/2n⌉)`` concurrent
recursive factorizations on disjoint processor subsets, a recursive QR of
the stacked R factors on the whole group, then the concurrent products
``Q_i = W_i·Z_i`` (line 11).  Base cases (m ≤ 2n, or a single rank) use
:func:`~repro.blocks.square_qr.square_qr` on up to ``qmax`` ranks —
Theorem III.6 picks ``qmax = (p·n/m)·log(p)^{1/δ}`` to balance latency
against bandwidth.

The public entry point returns the aggregated Householder form ``(U, T, R)``
via reconstruction (Corollary III.7); the internal recursion passes explicit
thin Q factors (cheap at these panel sizes, and exactly what line 11
multiplies).
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.blocks.matmul import carma_matmul
from repro.blocks.square_qr import square_qr
from repro.blocks.square_qr_25d import square_qr_25d
from repro.blocks.tsqr import reconstruct_householder
from repro.linalg.householder import expand_q


def default_qmax(p: int, m: int, n: int, delta: float = 0.5) -> int:
    """Theorem III.6's base-case rank cap: (p·n/m)·log₂(p)^{1/δ}."""
    if p <= 1:
        return 1
    lg = max(1.0, np.log2(p))
    return max(1, int(np.ceil(p * n / m * lg ** (1.0 / delta))))


def _rect_qr_thin(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    qmax: int,
    delta: float,
    base25d: bool,
    tag: str,
) -> tuple[np.ndarray, np.ndarray]:
    m, n = a.shape
    g = group.size

    # Base cases (lines 1–2).  The 2.5D base case is opt-in: its replicated
    # streaming term wins only for base cases far larger than the 2b×b
    # blocks the eigensolvers produce (see bench_ablation.py).
    if g == 1 or m <= 2 * n:
        sub = group.take(min(g, max(1, qmax)))
        if base25d and delta > 0.5 and sub.size >= 8:
            u, t, r = square_qr_25d(machine, sub, a, delta=delta, tag=f"{tag}:base25")
        else:
            u, t, r = square_qr(machine, sub, a, tag=f"{tag}:base")
        return expand_q(u, t), r

    # Line 3: r row panels on disjoint subsets.
    r_parts = min(g, max(2, -(-m // (2 * n))))
    subgroups = group.split(r_parts)
    sizes = [m // r_parts + (1 if i < m % r_parts else 0) for i in range(r_parts)]
    offs = np.concatenate(([0], np.cumsum(sizes)))

    # Lines 5–6: concurrent recursive QRs (disjoint groups — costs land on
    # their own ranks, so sequential execution models concurrency).
    ws: list[np.ndarray] = []
    rs: list[np.ndarray] = []
    for i, sub in enumerate(subgroups):
        ai = a[offs[i] : offs[i + 1], :]
        wi, ri = _rect_qr_thin(machine, sub, ai, qmax, delta, base25d, tag=f"{tag}:leaf{i}")
        ws.append(wi)
        rs.append(ri)

    # Line 7: recursive QR of the stacked R factors on the whole group.
    stacked = np.vstack(rs)
    z, r_final = _rect_qr_thin(machine, group, stacked, qmax, delta, base25d, tag=f"{tag}:stack")

    # Lines 9–11: Q_i = W_i · Z_i, concurrent per subset.
    q_blocks: list[np.ndarray] = []
    for i, sub in enumerate(subgroups):
        zi = z[i * n : (i + 1) * n, :]
        q_blocks.append(
            carma_matmul(machine, sub, ws[i], zi, charge_redistribution=False, tag=f"{tag}:mm{i}")
        )
    machine.superstep(group, 1)
    return np.vstack(q_blocks), r_final


def rect_qr(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    qmax: int | None = None,
    delta: float = 0.5,
    base25d: bool = False,
    charge_redistribution: bool = True,
    tag: str = "rect_qr",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """QR of an m×n matrix (m ≥ n) on ``group``, in Householder form.

    Returns ``(U, T, R)`` with ``A = (I − U T Uᵀ)E·R``; measured costs
    follow Theorem III.6:  F = O(mn²/p), W = O(m^δ n^{2−δ}/p^δ + mn/p),
    S = O((np/m)^δ log² p).
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"rect_qr requires m >= n, got {a.shape}")
    machine.check_group(group)
    if qmax is None:
        qmax = default_qmax(group.size, m, n, delta)
    with machine.span("rect_qr", group=group):
        if charge_redistribution and group.size > 1:
            per_rank = m * n / group.size
            machine.charge_comm_batch(group, per_rank, per_rank)
            machine.superstep(group, 1)
        q_thin, r = _rect_qr_thin(machine, group, a, qmax, delta, base25d, tag)
        return reconstruct_householder(machine, group, q_thin, r, tag=tag)
