"""SUMMA: the classic 2-D matrix multiplication (van de Geijn & Watts).

Algorithm III.1 is described by the paper as "a variant of the SUMMA
algorithm"; this module provides the plain 2-D original as a baseline:
C stays stationary on a q×q grid, and for each of the n/nb panel steps the
current A-column-panel is broadcast along grid rows and the B-row-panel
along grid columns.

Costs per rank:  W = O((mn + nk)/√p · 1)  — the 2-D bound, a factor √c worse
than the replicated Algorithm III.1 whenever memory allows c > 1 (shown in
the matmul benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.dist.grid import ProcGrid


def summa_matmul(
    machine: BSPMachine,
    grid: ProcGrid,
    a: np.ndarray,
    b: np.ndarray,
    panel: int | None = None,
    tag: str = "summa",
) -> np.ndarray:
    """Compute C = A·B on a 2-D grid with SUMMA's broadcast structure.

    ``grid`` must be 2-D and square; ``panel`` is the broadcast panel width
    (defaults to ⌈n/q⌉, one step per grid column).
    """
    if grid.ndim != 2:
        raise ValueError("summa_matmul requires a 2-D grid")
    q0, q1 = grid.shape
    if q0 != q1:
        raise ValueError(f"summa_matmul requires a square grid, got {grid.shape}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    m, n = a.shape
    k = b.shape[1]
    q = q0
    p = grid.size
    group = grid.group()
    if panel is None:
        panel = max(1, -(-n // q))
    if panel <= 0:
        raise ValueError("panel must be positive")

    c = a @ b  # cost: free(numerical product computed once; flops charged per SUMMA step below)

    steps = -(-n // panel)
    # Per step and rank: receive an (m/q)×nb sliver of A (row broadcast) and
    # an nb×(k/q) sliver of B (column broadcast); multiply into local C.
    a_sliver = (m / q) * panel
    b_sliver = panel * (k / q)
    with machine.span("summa", group=group):
        for _ in range(steps):
            per_rank = 2.0 * (a_sliver + b_sliver) * (q - 1) / q
            machine.charge_comm_batch(group, per_rank, per_rank)
            machine.charge_flops(group, 2.0 * (m / q) * panel * (k / q))
            for r in group:
                machine.mem_stream(r, a_sliver + b_sliver + (m / q) * (k / q))
            machine.superstep(group, 2)
        machine.note_memory(group, (m * n + n * k + m * k) / p + a_sliver + b_sliver)
        if machine.faults.enabled:
            from repro.faults.abft import abft_check  # late import: faults wraps bsp

            c = machine.faults.corrupt_output(c, "summa")
            abft_check(machine, group, a, b, c, site="summa")
    machine.trace.record("summa", group.ranks, words=float(m * n + n * k), flops=2.0 * m * n * k, tag=tag)
    return c
