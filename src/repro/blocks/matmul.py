"""CARMA: communication-optimal recursive rectangular matrix multiplication.

Lemma III.2 (after Demmel, Eliahu, Fox, Kamil, Lipshitz, Schwartz,
Spillinger, IPDPS'13): for any load-balanced starting layout, an m×n by n×k
product on p processors costs

    W = O((mn + nk + mk)/p + v^{1/3} (mnk/p)^{2/3}),   S = O(v log p),

using M = O((mn+nk+mk)/p + (mnk/(vp))^{2/3}) memory, where v ≥ 1 trades
memory for communication (v = 1 with unconstrained memory).

The implementation walks the actual recursion — split the largest of
(m, n, k) in half, halving the processor group (a *BFS* step) — and charges
each rank the operand-doubling or partial-sum traffic of that split.  When a
per-rank memory budget is given and a BFS step would exceed it, a *DFS* step
executes both halves on the whole group sequentially (extra passes → the
``v^{1/3}`` communication inflation and ``v log p`` supersteps).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.kernels import local_matmul
from repro.bsp.machine import BSPMachine


def _charge_split(machine: BSPMachine, group: RankGroup, words_per_rank: float, tag: str) -> None:
    """Charge an operand re-spreading step: each rank sends and receives
    ``words_per_rank`` words, one superstep."""
    if words_per_rank <= 0:
        machine.superstep(group, 1)
        return
    machine.charge_comm_batch(group, words_per_rank, words_per_rank)
    machine.superstep(group, 1)
    machine.trace.record("mm_split", group.ranks, words=words_per_rank * group.size, tag=tag)


def _rec(
    machine: BSPMachine,
    a: np.ndarray,
    b: np.ndarray,
    group: RankGroup,
    memory_words: float,
    tag: str,
) -> np.ndarray:
    m, n = a.shape
    k = b.shape[1]
    g = group.size
    if g == 1:
        rank = group[0]
        machine.note_memory(rank, float(m * n + n * k + m * k))
        return local_matmul(machine, rank, a, b)

    # Per-rank footprint after a BFS split ~ doubles the non-split operands.
    footprint = (m * n + n * k + m * k) / g

    def bfs_ok(extra: float) -> bool:
        return footprint + extra <= memory_words

    if m >= n and m >= k:
        # Split m: B becomes twice as dense per rank.
        extra = n * k / g
        if bfs_ok(extra) or g == 1:
            _charge_split(machine, group, extra, tag)
            g1, g2 = group.split(2)
            c1 = _rec(machine, a[: m // 2], b, g1, memory_words, tag)
            c2 = _rec(machine, a[m // 2 :], b, g2, memory_words, tag)
            return np.vstack([c1, c2])
        # DFS: both halves on the full group, operands restreamed each pass.
        _charge_split(machine, group, (m * n / 2 + n * k) / g, tag + ":dfs")
        c1 = _rec(machine, a[: m // 2], b, group, memory_words, tag)
        _charge_split(machine, group, (m * n / 2 + n * k) / g, tag + ":dfs")
        c2 = _rec(machine, a[m // 2 :], b, group, memory_words, tag)
        return np.vstack([c1, c2])
    if k >= n:
        # Split k: A becomes twice as dense per rank.
        extra = m * n / g
        if bfs_ok(extra):
            _charge_split(machine, group, extra, tag)
            g1, g2 = group.split(2)
            c1 = _rec(machine, a, b[:, : k // 2], g1, memory_words, tag)
            c2 = _rec(machine, a, b[:, k // 2 :], g2, memory_words, tag)
            return np.hstack([c1, c2])
        _charge_split(machine, group, (m * n + n * k / 2) / g, tag + ":dfs")
        c1 = _rec(machine, a, b[:, : k // 2], group, memory_words, tag)
        _charge_split(machine, group, (m * n + n * k / 2) / g, tag + ":dfs")
        c2 = _rec(machine, a, b[:, k // 2 :], group, memory_words, tag)
        return np.hstack([c1, c2])
    # Split n (inner): partial C's must be summed across the halves.
    extra = m * k / g
    if bfs_ok(extra):
        g1, g2 = group.split(2)
        c1 = _rec(machine, a[:, : n // 2], b[: n // 2], g1, memory_words, tag)
        c2 = _rec(machine, a[:, n // 2 :], b[n // 2 :], g2, memory_words, tag)
        per_rank = m * k / g
        machine.charge_comm_batch(group, per_rank, per_rank)
        machine.charge_flops(group, per_rank)
        machine.superstep(group, 1)
        machine.trace.record("mm_reduce", group.ranks, words=float(m * k), tag=tag)
        return c1 + c2
    # DFS over n: sequential partial sums on the whole group.
    _charge_split(machine, group, (m * n + n * k) / (2 * g), tag + ":dfs")
    c1 = _rec(machine, a[:, : n // 2], b[: n // 2], group, memory_words, tag)
    _charge_split(machine, group, (m * n + n * k) / (2 * g), tag + ":dfs")
    c2 = _rec(machine, a[:, n // 2 :], b[n // 2 :], group, memory_words, tag)
    machine.charge_flops(group, m * k / g)
    return c1 + c2


def carma_matmul(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    b: np.ndarray,
    memory_words: float = math.inf,
    charge_redistribution: bool = True,
    tag: str = "carma",
) -> np.ndarray:
    """Multiply A (m×n) by B (n×k) on ``group`` with CARMA's cost profile.

    ``memory_words`` is the per-rank budget M; a finite budget triggers DFS
    steps (higher W and S, lower M), realizing the ``v`` trade-off of
    Lemma III.2.  ``charge_redistribution`` accounts the move from an
    arbitrary load-balanced input layout to the recursion's layout.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    machine.check_group(group)
    if memory_words <= 0:
        raise ValueError("memory_words must be positive")
    m, n = a.shape
    k = b.shape[1]
    with machine.span("carma", group=group):
        if charge_redistribution and group.size > 1:
            per_rank = (m * n + n * k) / group.size
            machine.charge_comm_batch(group, per_rank, per_rank)
            machine.superstep(group, 1)
        c = _rec(machine, a, b, group, memory_words, tag)
        if machine.faults.enabled:
            from repro.faults.abft import abft_check  # late import: faults wraps bsp

            c = machine.faults.corrupt_output(c, "carma")
            abft_check(machine, group, a, b, c, site="carma")
        return c
