"""Parallel building blocks of Section III.

* :func:`carma_matmul` — communication-optimal recursive rectangular matrix
  multiplication (Lemma III.2, after Demmel et al. IPDPS'13).
* :func:`streaming_matmul` — multiplication against a replicated operand on
  a q×q×c grid (Algorithm III.1 / Lemma III.3).
* :func:`tsqr` — tall-skinny QR on a binary reduction tree with Householder
  reconstruction (building block of Algorithm III.2).
* :func:`square_qr` — panel-recursive QR for (nearly) square matrices, the
  Lemma III.5 substitute (see DESIGN.md §7).
* :func:`rect_qr` — Algorithm III.2: rectangular QR via a binary row tree
  with square base cases (Theorem III.6), returning Householder form
  (Corollary III.7).
"""

from repro.blocks.matmul import carma_matmul
from repro.blocks.streaming import streaming_matmul
from repro.blocks.summa import summa_matmul
from repro.blocks.tsqr import tsqr
from repro.blocks.square_qr import square_qr
from repro.blocks.square_qr_25d import square_qr_25d
from repro.blocks.rect_qr import rect_qr

__all__ = [
    "carma_matmul",
    "streaming_matmul",
    "summa_matmul",
    "tsqr",
    "square_qr",
    "square_qr_25d",
    "rect_qr",
]
