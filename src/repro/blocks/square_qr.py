"""QR factorization of (nearly) square matrices on a processor group.

Substitute for Tiskin's generic-pairwise-elimination QR (Lemma III.5, see
DESIGN.md §7): a panel-recursive CAQR in which each panel is factored by
TSQR (real reduction tree) and the trailing matrix is updated with the
aggregated block reflector, charged as distributed matmuls over the group.
The panel width n/√g makes the measured horizontal cost Θ(n²/√g) — exactly
Lemma III.5 at δ = 1/2, and within a factor g^{δ−1/2} ≤ g^{1/6} (log-factor
territory for the base-case sizes the eigensolvers use) otherwise.

Returns the aggregated compact-WY form ``(U, T, R)`` exactly as
:func:`repro.blocks.tsqr.tsqr` does.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.kernels import matmul_flops
from repro.bsp.machine import BSPMachine
from repro.blocks.tsqr import tsqr
from repro.linalg.householder import apply_block_reflector_left


def _charged_trailing_update(
    machine: BSPMachine, group: RankGroup, rows: int, nb: int, cols: int
) -> None:
    """Charge one CAQR trailing update A[rows, cols] ← Qᵖᵀ·A on the group:
    the rows×nb panel (U, T) is broadcast along grid rows, the trailing
    block stays in place — flops 4·rows·nb·cols/g, words (rows+cols)·nb/√g
    per rank, one superstep each for the two thin products."""
    g = group.size
    machine.charge_flops(group, 2.0 * matmul_flops(rows, nb, cols) / g)
    if g > 1:
        per_rank = (rows + cols) * nb / np.sqrt(g)
        machine.charge_comm_batch(group, per_rank, per_rank)
    machine.superstep(group, 2)
    machine.mem_stream(group[0], float(rows * nb + nb * cols + rows * cols) / g)


def square_qr(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    panel: int | None = None,
    tag: str = "square_qr",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Panel-recursive QR of an m×n matrix with m ≤ ~2n on ``group``.

    Returns ``(U, T, R)`` with ``A = (I − U T Uᵀ)E·R`` (U m×n unit lower
    trapezoidal, T n×n upper triangular, R n×n upper triangular).
    """
    a = np.array(np.asarray(a, dtype=np.float64))
    m, n = a.shape
    if m < n:
        raise ValueError(f"square_qr requires m >= n, got {a.shape}")
    machine.check_group(group)
    g = group.size
    if panel is None:
        panel = max(1, int(np.ceil(n / max(1.0, np.sqrt(g)))))

    u = np.zeros((m, n))
    t = np.zeros((n, n))
    with machine.span("square_qr", group=group):
        for j0 in range(0, n, panel):
            j1 = min(j0 + panel, n)
            nb = j1 - j0
            # Panel QR by TSQR on the group (rank count self-limits to rows/nb).
            up, tp, rp = tsqr(machine, group, a[j0:, j0:j1], tag=f"{tag}:panel{j0}")
            a[j0 : j0 + nb, j0:j1] = rp
            a[j0 + nb :, j0:j1] = 0.0
            # Trailing update A[j0:, j1:] ← Qᵀ A[j0:, j1:]: two thin products,
            # charged as group-distributed matmuls.
            if j1 < n:
                _charged_trailing_update(machine, group, m - j0, nb, n - j1)
                a[j0:, j1:] = apply_block_reflector_left(up, tp, a[j0:, j1:], transpose=True)
            # Merge the panel reflectors into the aggregated (U, T).
            u[j0:, j0:j1] = up
            if j0 > 0:
                cross = u[j0:, :j0].T @ up  # cost: free(charged via matmul_flops two lines below)
                t[:j0, j0:j1] = -t[:j0, :j0] @ cross @ tp  # cost: free(lower-order T-merge; dominant product charged below)
                machine.charge_flops(group, matmul_flops(j0, m - j0, nb) / g)
            t[j0:j1, j0:j1] = tp
    r = np.triu(a[:n, :])
    machine.trace.record("square_qr", group.ranks, flops=2.0 * m * n * n, tag=tag)
    return u, t, r
