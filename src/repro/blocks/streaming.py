"""Streaming matrix multiplication against a replicated operand.

Algorithm III.1 / Lemma III.3: A (m×n) is stored redundantly on each of the
c layers of a q×q×c grid (block Aij on the whole fiber Π[i,j,:]); B (n×k) is
in any load-balanced layout.  Each fiber rank handles w of the z = w·c
column-blocks of B: per block it gathers B_jh, multiplies by its resident
A_ij, and reduce-scatters C_ih = Σ_j C̄_ijh across its grid row — giving

    W = O((mk + nk)/p^δ),   S = O(w),

with A never leaving cache if H ≥ mn/p^{2(1−δ)} (the conditional Q term of
Lemma III.3 arises *automatically* from the machine's LRU cache model).

By the grid's symmetry (q²·c = p) every rank's charge per h-iteration is
identical: it receives one n/q × k/z block of B, sends its share of the
gathers (the same volume), multiplies against its resident m/q × n/q block
of A, and exchanges (c−1)/c of an m/q × k/z partial C in the reduce-scatter.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.dist.grid import ProcGrid


def streaming_matmul(
    machine: BSPMachine,
    grid: ProcGrid,
    a: np.ndarray,
    b: np.ndarray,
    w: int = 1,
    a_key: object | None = None,
    charge_b_redistribution: bool = True,
    tag: str = "streaming_mm",
) -> np.ndarray:
    """Compute C = A·B where A is replicated on every layer of ``grid``.

    ``grid`` must be 3-D (q×q×c).  ``w`` is the pipeline depth (number of
    sequential block multiplications per rank: more supersteps, less
    temporary memory).  ``a_key`` identifies A in the cache model so that
    repeated calls against the same replicated A (the left-looking updates
    of Algorithm IV.1) hit cache when it fits.
    """
    if grid.ndim != 3:
        raise ValueError("streaming_matmul requires a q×q×c grid")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    if w < 1:
        raise ValueError("w must be >= 1")
    q0, q1, c = grid.shape
    if q0 != q1:
        raise ValueError(f"grid layers must be square, got {grid.shape}")
    q = q0
    m, n = a.shape
    k = b.shape[1]
    z = w * c
    p = grid.size
    group = grid.group()

    with machine.span("streaming_mm", group=group):
        # Line 4: redistribute B so each rank owns its k/(z·q) column slivers.
        if charge_b_redistribution and p > 1:
            per_rank = n * k / p
            machine.charge_comm_batch(group, per_rank, per_rank)
            machine.superstep(group, 1)
            machine.trace.record("streaming_b_redist", group.ranks, words=float(n * k), tag=tag)

        # The numerical product (identical to the sum of the per-fiber partials).
        c_out = a @ b  # cost: free(numerical product computed once; flops charged per pipeline stage below)

        blk_m = -(-m // q)  # rows of Aij and of the C_ih partial
        blk_n = -(-n // q)  # cols of Aij / rows of B_jh
        blk_k = -(-k // z)  # cols of B_jh
        a_block_words = float(blk_m * blk_n)
        b_block_words = float(blk_n * blk_k)
        c_block_words = float(blk_m * blk_k)

        for h in range(w):
            # Line 9: gather B_jh onto each rank (recv one block; by symmetry the
            # send side of all concurrent gathers is the same volume per rank).
            machine.charge_comm_batch(group, b_block_words, b_block_words)
            # Line 10: local multiply against the resident A block.
            machine.charge_flops(group, 2.0 * blk_m * blk_n * blk_k)
            for idx, rank in enumerate(group):
                if a_key is not None:
                    machine.mem_read(rank, (a_key, idx), a_block_words)
                else:
                    machine.mem_stream(rank, a_block_words)
                machine.mem_stream(rank, b_block_words + c_block_words)
            # Line 11: reduce-scatter C_ih = Σ_j C̄_ijh across the grid row
            # (q participants — this is the j-summation of Algorithm III.1).
            if q > 1:
                rs = c_block_words * (q - 1) / q
                machine.charge_comm_batch(group, rs, rs)
                machine.charge_flops(group, rs)
            machine.superstep(group, 2)
        if machine.faults.enabled:
            from repro.faults.abft import abft_check  # late import: faults wraps bsp

            c_out = machine.faults.corrupt_output(c_out, "streaming_mm")
            abft_check(machine, group, a, b, c_out, site="streaming_mm")
    machine.trace.record(
        "streaming_mm", group.ranks, words=float(m * k + n * k), flops=2.0 * m * n * k, tag=tag
    )
    machine.note_memory(group, a_block_words + b_block_words + c_block_words)
    return c_out
