"""2.5D square QR: a left-looking CAQR with replicated aggregates.

Closes the gap documented in DESIGN.md §7: :mod:`repro.blocks.square_qr`
is a 2-D panel CAQR (Lemma III.5 at δ = 1/2 only).  This variant applies
the same mechanism Algorithm IV.1 uses for the *two-sided* reduction to the
one-sided QR:

* the matrix and the aggregated reflector panels U live replicated on the
  c layers of a q×q×c grid;
* the algorithm is **left-looking** — the trailing matrix is never updated;
  each panel is brought up to date on demand with two streaming
  multiplications against the replicated aggregate
  (``panel ← panel − U·(Tᵀ·(Uᵀ·panel))``), so per panel the horizontal
  traffic is O((j₀ + m)·nb / p^δ) (Lemma III.3), summing to **O(mn/p^δ)** —
  Lemma III.5's bound for any δ ∈ [1/2, 2/3];
* panels are factored by TSQR + Householder reconstruction and their
  reflectors merged into one aggregated compact-WY pair.

Used as rect-QR's base case when the caller requests δ > 1/2 and the group
factors into a q×q×c grid; the benchmark ablation compares both base cases.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.blocks.streaming import streaming_matmul
from repro.blocks.tsqr import tsqr
from repro.dist.grid import ProcGrid, factor_2p5d


def usable_grid(machine: BSPMachine, group: RankGroup, delta: float) -> ProcGrid | None:
    """Largest q×q×c grid with q²c ≤ |group| matching the requested δ.

    Returns None when nothing better than a single rank fits (callers fall
    back to the 2-D variant).
    """
    for g in range(group.size, 0, -1):
        try:
            q, c = factor_2p5d(g, delta)
        except ValueError:
            continue
        if q >= 2 or (q == 1 and c == 1):
            return ProcGrid(machine, (q, q, c), group.take(q * q * c))
    return None


def square_qr_25d(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    delta: float = 2.0 / 3.0,
    panel: int | None = None,
    tag: str = "sqr25d",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """QR of an m×n matrix (m ≥ n) with 2.5D (replicated) cost structure.

    Returns the aggregated compact-WY form ``(U, T, R)`` exactly like
    :func:`repro.blocks.square_qr.square_qr`.  Falls back to the 2-D
    variant when the group does not factor into a useful q×q×c grid.
    """
    a = np.array(np.asarray(a, dtype=np.float64))
    m, n = a.shape
    if m < n:
        raise ValueError(f"square_qr_25d requires m >= n, got {a.shape}")
    machine.check_group(group)
    grid = usable_grid(machine, group, delta)
    if grid is None or grid.size < 4:
        from repro.blocks.square_qr import square_qr  # late: avoid cycle

        return square_qr(machine, group, a, panel=panel, tag=tag)

    q = grid.shape[0]
    ggroup = grid.group()
    if panel is None:
        # Thin panels: the left-looking streaming updates carry the O(mn/p^δ)
        # volume regardless of nb, while the per-panel TSQR/merge overheads
        # scale with nb² — so nb ≈ n/p^δ keeps them subdominant.
        pdelta = grid.size**delta
        panel = max(1, int(np.ceil(n / pdelta)))

    with machine.span("sqr25d", group=ggroup):
        # Replicate A onto every layer (one fiber allgather).
        share = float(m * n) / (q * q)
        machine.charge_comm_batch(ggroup, share, share)
        machine.superstep(ggroup, 1)
        machine.note_memory(ggroup, 2 * share)

        u = np.zeros((m, n))
        t = np.zeros((n, n))
        for j0 in range(0, n, panel):
            j1 = min(j0 + panel, n)
            nb = j1 - j0
            if j0:
                # Left-looking update of the FULL column block (its top j0 rows
                # become the R block): col ← col − U·(Tᵀ·(Uᵀ·col)), with the
                # aggregate U replicated (two streaming products + a small one).
                col = a[:, j0:j1]
                u_prev = u[:, :j0]
                w1 = streaming_matmul(machine, grid, u_prev.T, col, a_key=(tag, "U"), tag=f"{tag}:upd")
                w2 = t[:j0, :j0].T @ w1  # cost: free(charged via charge_flops on the next line)
                machine.charge_flops(ggroup, 2.0 * j0 * j0 * nb / grid.size)
                a[:, j0:j1] = col - streaming_matmul(
                    machine, grid, u_prev, w2, a_key=(tag, "U"), tag=f"{tag}:upd"
                )
            pan = a[j0:, j0:j1].copy()
            # Panel factorization: TSQR + reconstruction on the whole grid group.
            up, tp, rp = tsqr(machine, ggroup, pan, tag=f"{tag}:panel{j0}")
            a[j0 : j0 + nb, j0:j1] = rp
            a[j0 + nb :, j0:j1] = 0.0
            # Merge into the aggregate: T12 = −T11 (U_prevᵀ U_p) T22.
            u[j0:, j0:j1] = up
            if j0:
                cross = u[j0:, :j0].T @ up  # cost: free(charged via charge_flops on the next line)
                machine.charge_flops(ggroup, 2.0 * j0 * (m - j0) * nb / grid.size)
                t[:j0, j0:j1] = -t[:j0, :j0] @ cross @ tp  # cost: free(lower-order T-merge; dominant product charged above)
            t[j0:j1, j0:j1] = tp
            # Replicate the new panel of U over the layers.
            rep = float(up.size) / (q * q)
            machine.charge_comm_batch(ggroup, rep, rep)
            machine.superstep(ggroup, 1)
    r = np.triu(a[:n, :])
    machine.trace.record("square_qr_25d", ggroup.ranks, flops=2.0 * m * n * n, tag=tag)
    return u, t, r
