"""TSQR: tall-skinny QR on a binary reduction tree, with Householder
reconstruction.

The classic communication-avoiding QR for m×n with m ≫ n (Demmel, Grigori,
Hoemmen, Langou): each rank QR-factors its row block, then pairs of R
factors are stacked and re-factored up a binary tree (log p supersteps, each
moving one n×n triangle).  The thin Q is recovered down the tree, and
Householder reconstruction (Corollary III.7) converts it to one compact-WY
pair ``(U, T)`` — the representation the eigensolvers aggregate.

All tree nodes perform *real* factorizations of the actual data, so the
returned factors are bit-for-bit those of the distributed algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.kernels import local_matmul, qr_flops
from repro.bsp.machine import BSPMachine
from repro.linalg.householder import compact_wy_qr, expand_q
from repro.linalg.reconstruct import householder_reconstruct
from repro.util.intlog import chunk_offsets, split_evenly


def reconstruct_householder(
    machine: BSPMachine,
    group: RankGroup,
    q_thin: np.ndarray,
    r: np.ndarray,
    tag: str = "hh_reconstruct",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder reconstruction with Corollary III.7 cost charges.

    Returns ``(U, T, R')`` where ``Q_thin = (I − U T Uᵀ)E · diag(s)`` and
    ``R' = diag(s)·R`` so that ``A = (I − U T Uᵀ)E · R'`` exactly.

    Charged per the corollary's proof: a parallel non-pivoted LU of the n×n
    top block plus triangular-solve matmuls over the group — flops
    O(mn²/g), horizontal words O(mn/g + n²/√g), O(log g) supersteps.
    """
    m, n = q_thin.shape
    u, t, s = householder_reconstruct(q_thin)
    r_signed = s[:, None] * r
    g = group.size
    with machine.span("reconstruct", group=group):
        machine.charge_flops(group, 4.0 * m * n * n / g + (2.0 / 3.0) * n**3 / g)
        if g > 1:
            # Q's rows never move: the LU runs on the n×n top block and each
            # rank forms its rows of U = Y·W₁⁻¹ locally after a W₁ broadcast.
            per_rank = n * n / np.sqrt(g)
            machine.charge_comm_batch(group, per_rank, per_rank)
            machine.superstep(group, max(1, int(np.ceil(np.log2(g)))))
        machine.mem_stream(group[0], float(u.size + t.size))
    machine.trace.record("reconstruct", group.ranks, flops=4.0 * m * n * n, tag=tag)
    return u, t, r_signed


def tsqr_thin(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    tag: str = "tsqr",
) -> tuple[np.ndarray, np.ndarray]:
    """TSQR returning the explicit thin Q and R (no reconstruction).

    The number of ranks actually used is capped at ``m // n`` so every leaf
    block is at least as tall as it is wide.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    if m < n:
        raise ValueError(f"tsqr requires m >= n, got {a.shape}")
    machine.check_group(group)
    p_eff = max(1, min(group.size, m // n))
    grp = group.take(p_eff)

    with machine.span("tsqr", group=grp):
        if p_eff == 1:
            rank = grp[0]
            u, t, r = compact_wy_qr(a)
            machine.charge_flops(rank, qr_flops(m, n))
            machine.mem_stream(rank, float(a.size + u.size + r.size))
            return expand_q(u, t), r

        sizes = split_evenly(m, p_eff)
        offs = chunk_offsets(sizes)
        # Leaf QRs (concurrent; each rank factors its block).
        leaf_q: list[np.ndarray] = []
        rs: list[np.ndarray] = []
        for idx, (o, sz) in enumerate(zip(offs, sizes)):
            rank = grp[idx]
            u, t, r = compact_wy_qr(a[o : o + sz, :])
            machine.charge_flops(rank, qr_flops(sz, n))
            machine.mem_stream(rank, float(sz * n + n * n))
            leaf_q.append(expand_q(u, t))
            rs.append(r)
        machine.superstep(grp, 1)

        # Reduction tree: node owners are the even-index ranks of each level.
        tri_words = float(n * (n + 1) // 2)
        nodes: list[tuple[np.ndarray, int]] = [(r, i) for i, r in enumerate(rs)]  # (R, owner idx)
        tree_qs: list[list[np.ndarray | None]] = []
        while len(nodes) > 1:
            nxt: list[tuple[np.ndarray, int]] = []
            level_qs: list[np.ndarray | None] = []
            for k in range(0, len(nodes) - 1, 2):
                (ra, ia), (rb, ib) = nodes[k], nodes[k + 1]
                machine.charge_comm(sends={grp[ib]: tri_words}, recvs={grp[ia]: tri_words})
                stacked = np.vstack([ra, rb])
                u, t, r = compact_wy_qr(stacked)
                machine.charge_flops(grp[ia], qr_flops(2 * n, n))
                machine.mem_stream(grp[ia], float(3 * n * n))
                level_qs.append(expand_q(u, t))
                nxt.append((r, ia))
            if len(nodes) % 2:
                nxt.append(nodes[-1])
                level_qs.append(None)
            machine.superstep(grp, 1)
            tree_qs.append(level_qs)
            nodes = nxt

        r_final = nodes[0][0]

        # Downward pass: expand the implicit Q.  Each edge sends one n×n block
        # back to the child owner; leaves then form Q_leaf · Z locally.
        zs: list[np.ndarray] = [np.eye(n)]
        for level_qs in reversed(tree_qs):
            new_zs: list[np.ndarray] = []
            zi = 0
            for qnode in level_qs:
                if qnode is None:
                    new_zs.append(zs[zi])
                else:
                    z = zs[zi]
                    prod = qnode @ z  # cost: free(explicit-Q expansion is simulation-only; Lemma III.4 charges the implicit tree QR)
                    new_zs.append(prod[:n, :])
                    new_zs.append(prod[n:, :])
                zi += 1
            zs = new_zs
        # Communication of the downward pass: one n×n block per tree edge,
        # charged uniformly (each rank touches O(1) edges per level).
        if p_eff > 1:
            per_rank = float(n * n)
            machine.charge_comm_batch(grp, per_rank, per_rank)
            machine.superstep(grp, max(1, int(np.ceil(np.log2(p_eff)))))

        q_blocks = []
        for idx, (qleaf, z) in enumerate(zip(leaf_q, zs)):
            rank = grp[idx]
            q_blocks.append(local_matmul(machine, rank, qleaf, z))
        machine.superstep(grp, 1)
        q_thin = np.vstack(q_blocks)
    machine.trace.record("tsqr", grp.ranks, flops=2.0 * m * n * n, tag=tag)
    return q_thin, r_final


def tsqr(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    tag: str = "tsqr",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """TSQR in Householder form: returns ``(U, T, R)``.

    ``A = (I − U T Uᵀ)E · R`` with U unit-lower-trapezoidal m×n, T n×n upper
    triangular.  This is TSQR + Householder reconstruction, the combination
    every QR call site in Section IV relies on.
    """
    q_thin, r = tsqr_thin(machine, group, a, tag=tag)
    p_eff = max(1, min(group.size, a.shape[0] // a.shape[1]))
    return reconstruct_householder(machine, group.take(p_eff), q_thin, r, tag=tag)
