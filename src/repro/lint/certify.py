"""Symbolic cost certificates: static asymptotic checks against the lemmas.

For each registered stage (``streaming_matmul``, ``full_to_band_2p5d``,
CA-SBR's ``_run_chases_1d``) the certifier abstractly interprets the
function body over polynomials in the problem symbols (n, b, m, k, p, with
p^delta fixed by the reference scaling), summing every ``charge_flops`` /
``charge_comm*`` magnitude multiplied by the enclosing loop trip counts.
The extracted leading-term degrees of F and W are then compared against
the stage's lemma in :mod:`repro.model.costs`
(:func:`repro.model.costs.lemma_leading_terms`) at several reference
scalings — so a refactor that changes the asymptotic cost class (say,
un-aggregating full_to_band's trailing update, turning W = O(n²/p^δ) into
O(n³/(b·p^δ))) fails ``repro lint --dataflow`` before any benchmark runs.

Interpretation is an *upper bound*: both branches of every ``if`` are
charged, ``max`` becomes a sum, loops are charged for their full trip
count.  A loop whose trips (or a charge whose magnitude) cannot be
resolved makes the stage **uncertifiable** (REPRO011) rather than
silently unchecked; the escape hatches are source hints::

    for step in chase_steps(n, b, h):  # certify: trips((n / b) * (n / h) / p)
        ...
        machine.charge_comm(sends={last: w}, recvs={o: w})  # certify: count(n / h)

``trips(expr)`` overrides a loop's inferred trip count (use the *per-rank*
count when charges land on single ranks); ``count(expr)`` replaces the
accumulated loop multiplier of one charge statement with an absolute
execution count.  Hint expressions are evaluated in the current symbolic
environment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.lint.callgraph import ModuleSummary
from repro.lint.rules import Finding, make_finding
from repro.model.costs import lemma_leading_terms

_NEG_INF = float("-inf")

# --------------------------------------------------------------------- #
# polynomials


class Poly:
    """Sparse signed-coefficient posynomial over named symbols with real
    exponents.  Exact cancellation of identical monomials is what makes
    slice widths like ``(c0 + b) - c0`` collapse to ``b``."""

    __slots__ = ("terms",)

    def __init__(self, terms: dict[tuple[tuple[str, float], ...], float]) -> None:
        out: dict[tuple[tuple[str, float], ...], float] = {}
        for k, c in terms.items():
            if abs(c) <= 1e-12:
                continue
            key = tuple(sorted((s, x) for s, x in k if abs(x) > 1e-12))
            out[key] = out.get(key, 0.0) + c
        self.terms = {k: c for k, c in out.items() if abs(c) > 1e-12}

    @staticmethod
    def const(c: float) -> "Poly":
        return Poly({(): float(c)})

    @staticmethod
    def sym(name: str) -> "Poly":
        return Poly({((name, 1.0),): 1.0})

    def __add__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for k, c in other.terms.items():
            out[k] = out.get(k, 0.0) + c
        return Poly(out)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + other.neg()

    def neg(self) -> "Poly":
        return Poly({k: -c for k, c in self.terms.items()})

    def __mul__(self, other: "Poly") -> "Poly":
        out: dict[tuple[tuple[str, float], ...], float] = {}
        for k1, c1 in self.terms.items():
            e1 = dict(k1)
            for k2, c2 in other.terms.items():
                e = dict(e1)
                for s, x in k2:
                    e[s] = e.get(s, 0.0) + x
                key = tuple(sorted((s, x) for s, x in e.items() if abs(x) > 1e-12))
                out[key] = out.get(key, 0.0) + c1 * c2
        return Poly(out)

    def is_single_term(self) -> bool:
        return len(self.terms) == 1

    def invert_single(self) -> "Poly":
        ((key, coeff),) = self.terms.items()
        return Poly({tuple((s, -x) for s, x in key): 1.0 / coeff if coeff else 1.0})

    def div(self, other: "Poly", theta: dict[str, float]) -> "Poly":
        if not other.terms:
            return Poly({})
        if other.is_single_term():
            return self * other.invert_single()
        # multi-term denominator: divide by its min-degree term (the
        # smallest denominator), which upper-bounds the quotient's degree
        best = min(
            other.terms.items(), key=lambda kv: sum(x * theta.get(s, 0.0) for s, x in kv[0])
        )
        return self * Poly({best[0]: abs(best[1]) or 1.0}).invert_single()

    def powf(self, e: float) -> "Poly":
        """Term-wise fractional power — an upper bound on the degree of
        ``(sum of terms)^e`` for 0 < e <= 1, exact for single terms."""
        out: dict[tuple[tuple[str, float], ...], float] = {}
        for k, c in self.terms.items():
            key = tuple((s, x * e) for s, x in k)
            out[key] = out.get(key, 0.0) + abs(c) ** e
        return Poly(out)

    def degree(self, theta: dict[str, float]) -> float:
        if not self.terms:
            return _NEG_INF
        return max(sum(x * theta.get(s, 0.0) for s, x in k) for k in self.terms)

    def leading_term(self, theta: dict[str, float]) -> str:
        if not self.terms:
            return "0"
        key = max(self.terms, key=lambda k: sum(x * theta.get(s, 0.0) for s, x in k))
        if not key:
            return f"{self.terms[key]:g}"
        return "*".join(f"{s}^{x:g}" if x != 1.0 else s for s, x in key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Poly({self.terms!r})"


# --------------------------------------------------------------------- #
# abstract values


class _Opaque:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "OPAQUE"


OPAQUE = _Opaque()


@dataclass(frozen=True)
class Shape:
    rows: Poly
    cols: Poly

    @property
    def size(self) -> Poly:
        return self.rows * self.cols


@dataclass(frozen=True)
class GroupVal:
    size: Poly


@dataclass
class RefPoint:
    """One reference scaling: delta plus the symbols' log-log slopes."""

    delta: float
    theta: dict[str, float]


@dataclass
class StageSpec:
    """How to certify one function against one lemma."""

    stage: str  # registry key / display name
    path_suffix: str  # "repro/eig/full_to_band.py"
    func: str  # qualname inside the module
    lemma: str  # key into repro.model.costs lemma registry
    build_env: Callable[["Ctx"], dict[str, object]]
    points: tuple[RefPoint, ...]
    pins: tuple[str, ...] = ()  # names whose binding assignments never change


class Ctx:
    """Symbol constructors handed to a spec's ``build_env``."""

    def __init__(self, delta: float) -> None:
        self.delta = delta
        self.p = Poly.sym("p")
        self.q = Poly({((("p"), 1.0 - delta),): 1.0})
        self.c = Poly({((("p"), 2.0 * delta - 1.0),): 1.0})
        self.pdelta = Poly({((("p"), delta),): 1.0})

    @staticmethod
    def sym(name: str) -> Poly:
        return Poly.sym(name)

    @staticmethod
    def const(x: float) -> Poly:
        return Poly.const(x)

    def shape(self, rows: Poly, cols: Poly) -> Shape:
        return Shape(rows, cols)

    def group(self) -> GroupVal:
        return GroupVal(self.p)


@dataclass
class Extraction:
    flops: Poly = field(default_factory=lambda: Poly({}))
    words: Poly = field(default_factory=lambda: Poly({}))
    traffic: Poly = field(default_factory=lambda: Poly({}))
    steps: Poly = field(default_factory=lambda: Poly({}))
    problems: list[str] = field(default_factory=list)


_HINT_RE = re.compile(r"#\s*certify:\s*(trips|count)\((.*)\)\s*$")


def parse_hints(source: str) -> dict[int, tuple[str, ast.expr]]:
    """``# certify: trips(...)`` / ``count(...)`` comments, by line number."""
    hints: dict[int, tuple[str, ast.expr]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _HINT_RE.search(line)
        if not m:
            continue
        try:
            expr = ast.parse(m.group(2), mode="eval").body
        except SyntaxError:
            continue
        hints[lineno] = (m.group(1), expr)
    return hints


#: charge-call handlers: terminal name -> which metric and which args
_FLOP_CHARGES = {"charge_flops": 1, "charge_flops_batch": 1}
_MEM_CHARGES = frozenset({"mem_stream", "mem_stream_group", "mem_read", "mem_write"})


class Extractor:
    """Abstract interpreter for one function body at one reference point."""

    def __init__(
        self,
        env: dict[str, object],
        theta: dict[str, float],
        delta: float,
        hints: dict[int, tuple[str, ast.expr]],
        pins: frozenset[str],
    ) -> None:
        self.env = env
        self.theta = dict(theta)
        self.delta = delta
        self.hints = hints
        self.pins = pins
        self.out = Extraction()
        self._loop_id = 0

    # ---------------------------------------------------------------- #
    # driving

    def run(self, fn: ast.FunctionDef) -> Extraction:
        try:
            self._exec_block(fn.body, Poly.const(1.0))
        except RecursionError:  # pragma: no cover - pathological nesting
            self.out.problems.append("recursion limit hit during extraction")
        return self.out

    def _exec_block(self, stmts: list[ast.stmt], mult: Poly) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, mult)

    def _exec_stmt(self, stmt: ast.stmt, mult: Poly) -> None:
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, mult)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, mult)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, mult))
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, mult)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                if name not in self.pins:
                    old = self.env.get(name)
                    if isinstance(old, Poly) and isinstance(value, Poly) and isinstance(
                        stmt.op, (ast.Add, ast.Sub)
                    ):
                        self.env[name] = old + value if isinstance(stmt.op, ast.Add) else old - value
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, mult)
            self._exec_block(stmt.body, mult)
            self._exec_block(stmt.orelse, mult)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, mult)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, mult)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, mult)
            self._exec_block(stmt.body, mult)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, mult)
            for handler in stmt.handlers:
                self._exec_block(handler.body, mult)
            self._exec_block(stmt.orelse, mult)
            self._exec_block(stmt.finalbody, mult)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, mult)
        # Raise / Pass / Import / FunctionDef / Assert / etc.: no cost

    # ---------------------------------------------------------------- #
    # loops

    def _fresh_loop_sym(self, base: str, extent_degree: float) -> Poly:
        self._loop_id += 1
        name = f"{base}'{self._loop_id}"
        self.theta[name] = max(0.0, extent_degree)
        return Poly.sym(name)

    def _block_charges(self, stmts: list[ast.stmt]) -> bool:
        watched = set(_FLOP_CHARGES) | {
            "charge_comm", "charge_comm_batch", "charge_comm_matrix", "p2p",
            "streaming_matmul", "carma_matmul", "rect_qr", "square_qr", "square_qr_25d",
        }
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    chain = _chain(node.func)
                    if chain and chain[-1] in watched:
                        return True
        return False

    def _iter_trips(self, node: ast.expr, mult: Poly) -> Poly | None:
        """Trip count of a ``for`` iterable, or None if uninferable."""
        if isinstance(node, ast.Call):
            chain = _chain(node.func)
            callee = chain[-1] if chain else None
            if callee == "range" and node.args:
                vals = [self._eval(a, mult) for a in node.args]
                if not all(isinstance(v, Poly) for v in vals):
                    return None
                polys = [v for v in vals if isinstance(v, Poly)]
                if len(polys) == 1:
                    return polys[0]
                span = polys[1] - polys[0]
                if len(polys) == 2:
                    return span
                return span.div(polys[2].powf(1.0), self.theta)
            if callee in ("enumerate", "sorted", "reversed", "list", "tuple") and node.args:
                return self._iter_trips(node.args[0], mult)
        value = self._eval(node, mult)
        if isinstance(value, GroupVal):
            return value.size
        if isinstance(value, Shape):
            return value.rows
        if isinstance(value, tuple):
            return Poly.const(float(len(value)))
        return None

    def _exec_for(self, node: ast.For, mult: Poly) -> None:
        hint = self.hints.get(node.lineno)
        trips: Poly | None = None
        if hint is not None and hint[0] == "trips":
            v = self._eval(hint[1], mult)
            trips = v if isinstance(v, Poly) else None
        if trips is None:
            trips = self._iter_trips(node.iter, mult)
        if trips is None:
            if self._block_charges(node.body):
                self.out.problems.append(
                    f"line {node.lineno}: cannot infer the loop's trip count "
                    "(add '# certify: trips(<expr>)')"
                )
            trips = Poly.const(1.0)
        extent_deg = trips.degree(self.theta)
        for name in _target_names(node.target):
            self.env[name] = self._fresh_loop_sym(name, extent_deg)
        self._exec_block(node.body, mult * trips)
        self._exec_block(node.orelse, mult)

    def _exec_while(self, node: ast.While, mult: Poly) -> None:
        hint = self.hints.get(node.lineno)
        trips: Poly | None = None
        loop_var: str | None = None
        step: Poly | None = None
        logarithmic = False
        for sub in node.body:
            if isinstance(sub, ast.AugAssign) and isinstance(sub.target, ast.Name):
                loop_var = sub.target.id
                sval = self._eval(sub.value, Poly.const(0.0))
                if isinstance(sub.op, (ast.Add, ast.Sub)) and isinstance(sval, Poly):
                    step = sval
                elif isinstance(sub.op, (ast.Mult, ast.Div, ast.FloorDiv)):
                    logarithmic = True
                break
        extent: Poly | None = None
        if isinstance(node.test, ast.Compare) and len(node.test.comparators) == 1:
            saved = self.env.get(loop_var) if loop_var else None
            if loop_var:
                self.env[loop_var] = Poly.const(0.0)
            left = self._eval(node.test.left, Poly.const(0.0))
            right = self._eval(node.test.comparators[0], Poly.const(0.0))
            if isinstance(left, Poly) and isinstance(right, Poly):
                extent = left - right
            if loop_var:
                if saved is None:
                    self.env.pop(loop_var, None)
                else:
                    self.env[loop_var] = saved
        if hint is not None and hint[0] == "trips":
            v = self._eval(hint[1], mult)
            trips = v if isinstance(v, Poly) else None
        elif logarithmic:
            trips = Poly.const(1.0)  # halving/doubling: O(log) -> degree 0
        elif extent is not None and step is not None:
            trips = extent.div(step, self.theta)
        if trips is None:
            if self._block_charges(node.body):
                self.out.problems.append(
                    f"line {node.lineno}: cannot infer the while-loop's trip count "
                    "(add '# certify: trips(<expr>)')"
                )
            trips = Poly.const(1.0)
        if loop_var and loop_var not in self.pins:
            deg = extent.degree(self.theta) if extent is not None else trips.degree(self.theta)
            self.env[loop_var] = self._fresh_loop_sym(loop_var, deg)
        self._exec_block(node.body, mult * trips)
        self._exec_block(node.orelse, mult)

    # ---------------------------------------------------------------- #
    # binding

    def _bind(self, target: ast.expr, value: object) -> None:
        if isinstance(target, ast.Name):
            if target.id not in self.pins:
                self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, Shape):
                value = (value.rows, value.cols)
            if isinstance(value, tuple) and len(value) == len(target.elts):
                for elt, v in zip(target.elts, value):
                    self._bind(elt, v)
            else:
                for elt in target.elts:
                    self._bind(elt, OPAQUE)
        # Subscript / Attribute targets: in-place update, shapes unchanged

    # ---------------------------------------------------------------- #
    # charges

    def _charge_multiplier(self, node: ast.Call, mult: Poly) -> Poly:
        hint = self.hints.get(node.lineno)
        if hint is not None and hint[0] == "count":
            v = self._eval(hint[1], mult)
            if isinstance(v, Poly):
                return v
            self.out.problems.append(
                f"line {node.lineno}: count() hint did not evaluate to a polynomial"
            )
        return mult

    def _as_words(self, node: ast.expr, mult: Poly) -> Poly | None:
        """A comm magnitude: a scalar expression or a {rank: words} dict."""
        if isinstance(node, ast.Dict):
            total = Poly.const(0.0)
            for v in node.values:
                ev = self._eval(v, mult)
                if not isinstance(ev, Poly):
                    return None
                total = total + ev
            return total
        value = self._eval(node, mult)
        return value if isinstance(value, Poly) else None

    def _apply_charge(self, callee: str, node: ast.Call, mult: Poly) -> bool:
        eff = self._charge_multiplier(node, mult)
        args = node.args
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}

        def problem(what: str) -> None:
            self.out.problems.append(
                f"line {node.lineno}: cannot resolve the {what} magnitude of {callee}() "
                "(add '# certify: count(<expr>)' or simplify the expression)"
            )

        if callee in _FLOP_CHARGES:
            idx = _FLOP_CHARGES[callee]
            expr = args[idx] if len(args) > idx else kwargs.get("flops_each")
            val = self._eval(expr, mult) if expr is not None else None
            if isinstance(val, Poly):
                self.out.flops = self.out.flops + eff * val
            else:
                problem("flop")
            return True
        if callee == "charge_comm_batch":
            total = Poly.const(0.0)
            ok = False
            for expr in args[1:3]:
                val = self._eval(expr, mult)
                if isinstance(val, Poly):
                    total, ok = total + val, True
            if ok:
                self.out.words = self.out.words + eff * total
            else:
                problem("word")
            return True
        if callee in ("charge_comm", "charge_comm_matrix"):
            total = Poly.const(0.0)
            ok = False
            for expr in list(args) + [
                kwargs[k] for k in ("sends", "recvs") if k in kwargs
            ]:
                val = self._as_words(expr, mult)
                if val is not None:
                    total, ok = total + val, True
            if ok:
                self.out.words = self.out.words + eff * total
            else:
                problem("word")
            return True
        if callee == "p2p":
            if args:
                val = self._eval(args[-1], mult)
                if isinstance(val, Poly):
                    self.out.words = self.out.words + eff * val
                    return True
            problem("word")
            return True
        if callee == "superstep":
            val = self._eval(args[1], mult) if len(args) > 1 else Poly.const(1.0)
            self.out.steps = self.out.steps + eff * (
                val if isinstance(val, Poly) else Poly.const(1.0)
            )
            return True
        if callee in _MEM_CHARGES:
            if args:
                val = self._eval(args[-1], mult)
                if isinstance(val, Poly):
                    self.out.traffic = self.out.traffic + eff * val
            return True  # Q is not gated: opaque magnitudes are tolerated
        return False

    # ---------------------------------------------------------------- #
    # composed block algorithms (their lemmas, Section III)

    def _compose_block(self, callee: str, node: ast.Call, mult: Poly) -> object | None:
        th = self.theta
        d = self.delta
        p = Poly.sym("p")
        pd = Poly({((("p"), d),): 1.0})
        eff = self._charge_multiplier(node, mult)
        args = node.args

        def shape_arg(i: int) -> Shape | None:
            if i < len(args):
                v = self._eval(args[i], mult)
                if isinstance(v, Shape):
                    return v
            return None

        if callee == "streaming_matmul":
            a, b = shape_arg(2), shape_arg(3)
            if a is None or b is None:
                self.out.problems.append(
                    f"line {node.lineno}: streaming_matmul operand shapes are unresolved"
                )
                return OPAQUE
            m, n, k = a.rows, a.cols, b.cols
            self.out.flops = self.out.flops + eff * Poly.const(2.0) * m * n * k * p.invert_single()
            self.out.words = self.out.words + eff * (
                (m * k + n * k).div(pd, th) + (n * k).div(p, th)
            )
            return Shape(m, k)
        if callee == "carma_matmul":
            a, b = shape_arg(2), shape_arg(3)
            if a is None or b is None:
                self.out.problems.append(
                    f"line {node.lineno}: carma_matmul operand shapes are unresolved"
                )
                return OPAQUE
            m, n, k = a.rows, a.cols, b.cols
            mnk = m * n * k
            self.out.flops = self.out.flops + eff * Poly.const(2.0) * mnk.div(p, th)
            self.out.words = self.out.words + eff * (
                (m * n + n * k + m * k).div(p, th) + mnk.div(p, th).powf(2.0 / 3.0)
            )
            return Shape(m, k)
        if callee == "rect_qr":
            a = shape_arg(2)
            if a is None:
                self.out.problems.append(
                    f"line {node.lineno}: rect_qr operand shape is unresolved"
                )
                return OPAQUE
            m, n = a.rows, a.cols
            self.out.flops = self.out.flops + eff * Poly.const(2.0) * m * (n * n).div(p, th)
            self.out.words = self.out.words + eff * (
                m.powf(d) * n.powf(2.0 - d) * pd.invert_single() + (m * n).div(p, th)
            )
            return (Shape(m, n), Shape(n, n), Shape(n, n))
        if callee in ("square_qr", "square_qr_25d"):
            a = shape_arg(2)
            if a is None:
                self.out.problems.append(
                    f"line {node.lineno}: {callee} operand shape is unresolved"
                )
                return OPAQUE
            n = a.rows
            self.out.flops = self.out.flops + eff * Poly.const(2.0) * (n * n * n).div(p, th)
            self.out.words = self.out.words + eff * (n * n).div(pd, th)
            return (Shape(n, n), Shape(n, n))
        return None

    # ---------------------------------------------------------------- #
    # expression evaluation

    def _eval(self, node: ast.expr, mult: Poly) -> object:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None or isinstance(node.value, str):
                return OPAQUE
            if isinstance(node.value, (int, float)):
                return Poly.const(float(node.value))
            return OPAQUE
        if isinstance(node, ast.Name):
            return self.env.get(node.id, OPAQUE)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, mult)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, mult)
        if isinstance(node, ast.Call):
            return self._eval_call(node, mult)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, mult)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(node.operand, mult)
            if isinstance(node.op, ast.USub) and isinstance(val, Poly):
                return val.neg()
            return val
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._eval(e, mult) for e in node.elts)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, mult)
            a = self._eval(node.body, mult)
            b = self._eval(node.orelse, mult)
            if isinstance(a, Poly) and isinstance(b, Poly):
                return a + b  # upper bound over both branches
            return a if not isinstance(a, _Opaque) else b
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self._eval(sub, mult)
            return OPAQUE
        if isinstance(node, ast.JoinedStr):
            return OPAQUE
        if isinstance(node, ast.Dict):
            for v in node.values:
                self._eval(v, mult)
            return OPAQUE
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return OPAQUE
        if isinstance(node, ast.Starred):
            return self._eval(node.value, mult)
        return OPAQUE

    def _eval_attribute(self, node: ast.Attribute, mult: Poly) -> object:
        chain = _chain(node)
        if chain:
            dotted = ".".join(chain)
            if dotted in self.env:
                return self.env[dotted]
        base = self._eval(node.value, mult)
        attr = node.attr
        if isinstance(base, Shape):
            if attr == "T":
                return Shape(base.cols, base.rows)
            if attr == "size":
                return base.size
            if attr == "shape":
                return (base.rows, base.cols)
            if attr == "ndim":
                return Poly.const(2.0)
            return OPAQUE
        if isinstance(base, GroupVal):
            if attr == "size":
                return base.size
            return OPAQUE
        return OPAQUE

    def _eval_subscript(self, node: ast.Subscript, mult: Poly) -> object:
        base = self._eval(node.value, mult)
        idx = node.slice
        if isinstance(base, tuple):
            if isinstance(idx, ast.Constant) and isinstance(idx.value, int):
                if -len(base) <= idx.value < len(base):
                    return base[idx.value]
            return OPAQUE
        if isinstance(base, Shape):
            dims = [base.rows, base.cols]
            parts = list(idx.elts) if isinstance(idx, ast.Tuple) else [idx]
            out: list[Poly] = []
            for dim, part in zip(dims, parts):
                sliced = self._slice_extent(dim, part, mult)
                if sliced is not None:
                    out.append(sliced)
            out.extend(dims[len(parts):])
            if len(out) == 2:
                return Shape(out[0], out[1])
            if len(out) == 1:
                return Shape(out[0], Poly.const(1.0))
            return OPAQUE
        return OPAQUE

    def _slice_extent(self, dim: Poly, part: ast.expr, mult: Poly) -> Poly | None:
        """Extent of one subscript component; None drops the axis."""
        if isinstance(part, ast.Slice):
            lo = self._eval(part.lower, mult) if part.lower is not None else Poly.const(0.0)
            hi = self._eval(part.upper, mult) if part.upper is not None else dim
            if isinstance(lo, Poly) and isinstance(hi, Poly):
                return hi - lo
            return dim
        return None  # integer index: the axis disappears

    def _eval_binop(self, node: ast.BinOp, mult: Poly) -> object:
        left = self._eval(node.left, mult)
        right = self._eval(node.right, mult)
        if isinstance(node.op, ast.MatMult):
            if isinstance(left, Shape) and isinstance(right, Shape):
                return Shape(left.rows, right.cols)
            return OPAQUE
        # array arithmetic: the result has the array operand's shape
        if isinstance(left, Shape) and isinstance(right, (Shape, Poly)):
            return left
        if isinstance(right, Shape) and isinstance(left, Poly):
            return right
        if not (isinstance(left, Poly) and isinstance(right, Poly)):
            return OPAQUE
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return left.div(right, self.theta)
        if isinstance(node.op, ast.Mod):
            return right  # x % m < m
        if isinstance(node.op, ast.Pow):
            if not right.terms:  # exponent cancelled to exactly zero
                return Poly.const(1.0)
            if all(k == () for k in right.terms):  # numeric exponent
                e = right.terms[()]
                if left.is_single_term():
                    return Poly(
                        {tuple((s, x * e) for s, x in k): abs(c) ** e
                         for k, c in left.terms.items()}
                    )
                if float(e).is_integer() and 0 <= e <= 4:
                    out = Poly.const(1.0)
                    for _ in range(int(e)):
                        out = out * left
                    return out
                if 0 < e <= 1:
                    return left.powf(e)
            return OPAQUE
        return OPAQUE

    def _eval_call(self, node: ast.Call, mult: Poly) -> object:
        chain = _chain(node.func)
        callee = chain[-1] if chain else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        # machine charges first (by terminal name, any receiver)
        if callee is not None and self._apply_charge(callee, node, mult):
            return OPAQUE
        composed = self._compose_block(callee, node, mult) if callee else None
        if composed is not None:
            return composed
        args = [self._eval(a, mult) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value, mult)
        if callee in ("float", "int", "round", "abs"):
            return args[0] if args else OPAQUE
        if callee == "max":
            flat = _flatten_polys(args)
            if flat:
                total = Poly.const(0.0)
                for v in flat:
                    total = total + v
                return total  # max(a, b) <= a + b
            return OPAQUE
        if callee == "min":
            flat = _flatten_polys(args)
            if flat:
                return min(flat, key=lambda v: v.degree(self.theta))
            return OPAQUE
        if callee == "len":
            if args and isinstance(args[0], GroupVal):
                return args[0].size
            if args and isinstance(args[0], tuple):
                return Poly.const(float(len(args[0])))
            return OPAQUE
        if callee == "group":  # grid.group(), subgrid(...).group()
            return GroupVal(Poly.sym("p"))
        if callee == "grid_delta":
            return Poly.const(self.delta)
        if callee == "check_symmetric":
            return args[0] if args else OPAQUE
        if callee == "qr_flops" and len(args) >= 2:
            m, n = args[0], args[1]
            if isinstance(m, Poly) and isinstance(n, Poly):
                return Poly.const(2.0) * m * n * n + Poly.const(2.0 / 3.0) * n * n * n
            return OPAQUE
        if callee == "matmul_flops" and len(args) >= 3:
            m, n, k = args[0], args[1], args[2]
            if isinstance(m, Poly) and isinstance(n, Poly) and isinstance(k, Poly):
                return Poly.const(2.0) * m * n * k
            return OPAQUE
        if callee == "compact_wy_qr_general" and args and isinstance(args[0], Shape):
            a = args[0]
            return (a, Shape(a.cols, a.cols), Shape(a.cols, a.cols))
        if chain and len(chain) >= 2 and callee is not None:
            np_val = self._numpy_call(chain, callee, node, args)
            if np_val is not None:
                return np_val
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("copy", "astype"):
            receiver = self._eval(node.func.value, mult)
            if isinstance(receiver, (Shape, Poly)):
                return receiver
        return OPAQUE

    def _numpy_call(
        self, chain: list[str], callee: str, node: ast.Call, args: list[object]
    ) -> object | None:
        if callee in ("zeros", "ones", "empty", "full"):
            if args and isinstance(args[0], tuple):
                dims = [d for d in args[0] if isinstance(d, Poly)]
                if len(dims) == 2:
                    return Shape(dims[0], dims[1])
                if len(dims) == 1:
                    return Shape(dims[0], Poly.const(1.0))
            if args and isinstance(args[0], Poly):
                return Shape(args[0], Poly.const(1.0))
            return OPAQUE
        if callee in ("zeros_like", "ones_like", "empty_like", "full_like", "asarray",
                      "ascontiguousarray", "copy", "array"):
            return args[0] if args and isinstance(args[0], (Shape, Poly)) else OPAQUE
        if callee in ("hstack", "vstack"):
            if args and isinstance(args[0], tuple):
                shapes = [s for s in args[0] if isinstance(s, Shape)]
                if shapes:
                    total = Poly.const(0.0)
                    if callee == "hstack":
                        for s in shapes:
                            total = total + s.cols
                        return Shape(shapes[0].rows, total)
                    for s in shapes:
                        total = total + s.rows
                    return Shape(total, shapes[0].cols)
            return OPAQUE
        if callee == "clip" and len(args) >= 3 and isinstance(args[2], Poly):
            return args[2]  # clip(x, lo, hi) <= hi
        if callee in ("log", "log2", "sqrt", "ceil", "floor", "rint", "round"):
            if callee == "sqrt" and args and isinstance(args[0], Poly):
                return args[0].powf(0.5)
            if callee in ("ceil", "floor", "rint", "round") and args and isinstance(args[0], Poly):
                return args[0]
            return Poly.const(1.0)  # logs: degree 0
        return None


def _chain(node: ast.AST) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _target_names(target: ast.AST) -> list[str]:
    return [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]


def _flatten_polys(args: list[object]) -> list[Poly]:
    out: list[Poly] = []
    for a in args:
        if isinstance(a, Poly):
            out.append(a)
        elif isinstance(a, tuple):
            out.extend(v for v in a if isinstance(v, Poly))
    return out


# --------------------------------------------------------------------- #
# stage registry


def _f2b_env(ctx: Ctx) -> dict[str, object]:
    n, b = ctx.sym("n"), ctx.sym("b")
    return {
        "machine": OPAQUE,
        "grid": OPAQUE,
        "grid.size": ctx.p,
        "grid.shape": (ctx.q, ctx.q, ctx.c),
        "grid.ndim": ctx.const(3),
        "a": ctx.shape(n, n),
        "b": b,
        "w": ctx.const(1),
        "tag": OPAQUE,
        "p": ctx.p,
        # the U/V aggregates grow to at most n columns: pin their shape
        "u_glob": ctx.shape(n, n),
        "v_glob": ctx.shape(n, n),
    }


def _streaming_env(ctx: Ctx) -> dict[str, object]:
    m, n, k = ctx.sym("m"), ctx.sym("n"), ctx.sym("k")
    return {
        "machine": OPAQUE,
        "grid": OPAQUE,
        "grid.size": ctx.p,
        "grid.shape": (ctx.q, ctx.q, ctx.c),
        "grid.ndim": ctx.const(3),
        "a": ctx.shape(m, n),
        "b": ctx.shape(n, k),
        "w": ctx.sym("w"),
        "a_key": OPAQUE,
        "charge_b_redistribution": OPAQUE,
        "tag": OPAQUE,
        "p": ctx.p,
    }


def _sbr_env(ctx: Ctx) -> dict[str, object]:
    n, b = ctx.sym("n"), ctx.sym("b")
    return {
        "machine": OPAQUE,
        "band": OPAQUE,
        "band.n": n,
        "band.b": b,
        "band.group": ctx.group(),
        "h": b,  # one halving step: the target half-width is Theta(b)
        "tag": OPAQUE,
        "n": n,
        "b": b,
        "p": ctx.p,
        "step.nr": b,
        "step.ncols": b,
        "step.nc": b,
    }


_BASE_THETA = {"n": 1.0, "m": 1.0, "k": 1.0, "b": 0.5, "p": 0.25, "w": 0.0}
_SMALL_B_THETA = {"n": 1.0, "m": 1.0, "k": 1.0, "b": 0.25, "p": 0.125, "w": 0.0}

_DEFAULT_POINTS = (
    RefPoint(delta=2.0 / 3.0, theta=_BASE_THETA),
    RefPoint(delta=0.5, theta=_BASE_THETA),
    RefPoint(delta=2.0 / 3.0, theta=_SMALL_B_THETA),
)

STAGE_SPECS: tuple[StageSpec, ...] = (
    StageSpec(
        stage="streaming_matmul",
        path_suffix="repro/blocks/streaming.py",
        func="streaming_matmul",
        lemma="streaming_mm",
        build_env=_streaming_env,
        points=_DEFAULT_POINTS,
    ),
    StageSpec(
        stage="full_to_band_2p5d",
        path_suffix="repro/eig/full_to_band.py",
        func="full_to_band_2p5d",
        lemma="full_to_band",
        build_env=_f2b_env,
        points=_DEFAULT_POINTS,
        pins=("u_glob", "v_glob"),
    ),
    StageSpec(
        stage="ca_sbr_halve",
        path_suffix="repro/eig/ca_sbr.py",
        func="_run_chases_1d",
        lemma="ca_sbr_halve",
        build_env=_sbr_env,
        points=_DEFAULT_POINTS,
    ),
)

#: tolerance on degree comparisons (degrees are exact rationals in practice)
_DEGREE_TOL = 1e-6

_GATED: tuple[tuple[str, str], ...] = (("flops", "F"), ("words", "W"))


def _lemma_degree(terms: list[dict[str, float]], theta: dict[str, float]) -> float:
    if not terms:
        return _NEG_INF
    return max(sum(e * theta.get(s, 0.0) for s, e in term.items()) for term in terms)


def _find_function(tree: ast.Module, qualname: str) -> ast.FunctionDef | None:
    parts = qualname.split(".")
    scope: list[ast.stmt] = tree.body
    fn: ast.FunctionDef | None = None
    for i, part in enumerate(parts):
        found = None
        for node in scope:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)) and node.name == part:
                found = node
                break
        if found is None:
            return None
        if isinstance(found, ast.FunctionDef):
            if i == len(parts) - 1:
                fn = found
            scope = found.body
        else:
            scope = found.body
    return fn


def certify_stage(
    spec: StageSpec, tree: ast.Module, source: str, path: str
) -> list[Finding]:
    """Run one spec against one parsed module; returns REPRO010/011 findings."""
    fn = _find_function(tree, spec.func)
    if fn is None:
        return [
            make_finding(
                path, 1, 0, "REPRO011",
                f"registered stage '{spec.stage}' has no function {spec.func}() here",
            )
        ]
    hints = parse_hints(source)
    findings: list[Finding] = []
    for point in spec.points:
        ctx = Ctx(point.delta)
        extractor = Extractor(
            env=dict(spec.build_env(ctx)),
            theta=point.theta,
            delta=point.delta,
            hints=hints,
            pins=frozenset(spec.pins),
        )
        try:
            result = extractor.run(fn)
        except Exception as exc:  # never let the certifier crash the lint
            findings.append(
                make_finding(
                    path, fn.lineno, fn.col_offset, "REPRO011",
                    f"stage '{spec.stage}' extraction failed: {exc!r}",
                )
            )
            break
        if result.problems:
            findings.append(
                make_finding(
                    path, fn.lineno, fn.col_offset, "REPRO011",
                    f"stage '{spec.stage}' is not extractable: {result.problems[0]}",
                )
            )
            break
        lemma = lemma_leading_terms(spec.lemma, point.delta)
        theta = extractor.theta  # includes the loop symbols' degrees
        for metric, label in _GATED:
            extracted: Poly = getattr(result, metric)
            got = extracted.degree(theta)
            allowed = _lemma_degree(lemma[metric], point.theta)
            if got > allowed + _DEGREE_TOL:
                findings.append(
                    make_finding(
                        path, fn.lineno, fn.col_offset, "REPRO010",
                        f"stage '{spec.stage}': extracted {label} ~ "
                        f"{extracted.leading_term(theta)} (degree {got:.3f}) exceeds "
                        f"lemma '{spec.lemma}' degree {allowed:.3f} at "
                        f"delta={point.delta:.3g}, theta={point.theta}",
                    )
                )
        if any(f.rule == "REPRO010" for f in findings):
            break  # one failing point is enough; avoid near-duplicates
    return sorted(set(findings))


def certify_findings(summaries: list[ModuleSummary]) -> list[Finding]:
    """Certify every registered stage present in the linted file set."""
    findings: list[Finding] = []
    for spec in STAGE_SPECS:
        for summary in summaries:
            if not summary.path.endswith(spec.path_suffix) or summary.tree is None:
                continue
            if spec.func not in summary.functions:
                continue
            findings.extend(certify_stage(spec, summary.tree, summary.source, summary.path))
    return findings


def certify_source(stage: str, source: str, path: str) -> list[Finding]:
    """Certify arbitrary source against a named registered stage (tests)."""
    for spec in STAGE_SPECS:
        if spec.stage == stage:
            tree = ast.parse(source)
            return certify_stage(spec, tree, source, path)
    raise KeyError(f"unknown certification stage {stage!r}")
