"""Lint driver: file discovery, pragma filtering, baseline, reporting.

Public entry points:

* :func:`lint_paths` — library API, returns a :class:`LintResult`;
* :func:`main` — what ``repro lint`` dispatches to.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.analyzer import ModuleAnalysis, analyze_module, analyze_source
from repro.lint.baseline import (
    BASELINE_NAME,
    apply_baseline,
    discover_baseline,
    load_baseline,
    render_baseline,
    stale_entries,
)
from repro.lint.callgraph import CallGraph
from repro.lint.pragmas import ModulePragmas, parse_pragmas
from repro.lint.rules import Finding, explain_rule, make_finding

#: charging / verification layers the rules explicitly exempt (path suffixes
#: or directory fragments, posix-style, relative to the lint root)
DEFAULT_ALLOWLIST: tuple[str, ...] = (
    "repro/bsp/kernels.py",  # THE charged-compute layer
    "repro/util/validation.py",  # cost-free verification oracles
    "repro/lint/",  # the linter itself (fixtures in docstrings etc.)
)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0
    baseline_path: Path | None = None
    #: baseline entries whose quota exceeds the current finding count, as
    #: ``(path, rule, allowed, actual)`` — candidates for ratcheting down
    stale_baseline: list[tuple[str, str, int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def report(self) -> str:
        lines = [f.format() for f in self.findings]
        tail = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s) "
            f"({self.pragma_suppressed} pragma-waived, {self.baseline_suppressed} baselined)"
        )
        if self.stale_baseline:
            tail += f", {len(self.stale_baseline)} stale baseline entr{'y' if len(self.stale_baseline) == 1 else 'ies'}"
        return "\n".join(lines + [tail])

    def stale_report(self) -> str:
        """Human-readable listing of stale baseline entries."""
        lines = [
            f"stale baseline entry: {path} {rule} allows {quota}, only {actual} found"
            for path, rule, quota, actual in self.stale_baseline
        ]
        lines.append(
            "ratchet the baseline down with `repro lint --write-baseline` so fixed "
            "findings cannot silently regress"
        )
        return "\n".join(lines)


def _is_allowlisted(rel: str, allowlist: tuple[str, ...]) -> bool:
    return any(rel.endswith(entry) or f"/{entry}" in f"/{rel}" for entry in allowlist)


def iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"no such python file or directory: {path}")
    return files


def lint_file(path: Path, rel: str) -> tuple[list[Finding], int]:
    """Lint one file; returns (findings, pragma_suppressed_count)."""
    source = path.read_text()
    pragmas = parse_pragmas(source)
    raw = analyze_source(source, rel)
    kept: list[Finding] = []
    suppressed = 0
    for f in raw:
        if f.rule != "REPRO000" and pragmas.suppresses(f.line):
            suppressed += 1
        else:
            kept.append(f)
    for line, col, detail in pragmas.bad:
        kept.append(make_finding(rel, line, col, "REPRO005", detail))
    return sorted(kept), suppressed


def lint_paths(
    paths: list[Path],
    root: Path | None = None,
    baseline: Path | None = None,
    use_baseline: bool = True,
    allowlist: tuple[str, ...] = DEFAULT_ALLOWLIST,
    dataflow: bool = False,
) -> LintResult:
    """Lint every ``*.py`` under ``paths``.

    ``root`` anchors the relative paths used in diagnostics and the
    baseline (default: the directory holding the discovered baseline, else
    the current directory).  ``baseline=None`` auto-discovers
    ``lint_baseline.txt`` upward from the first path.

    With ``dataflow=True`` the whole file set is linked into one call
    graph: REPRO003/REPRO004 resolve helpers and callers across modules,
    the race/ownership rules REPRO006-009 and the cost certificates
    REPRO010/011 run, and allowlisted files still contribute call-graph
    context (their own findings stay suppressed).
    """
    if not paths:
        raise ValueError("lint_paths requires at least one path")
    if use_baseline and baseline is None:
        baseline = discover_baseline(paths[0])
    if root is None:
        root = baseline.parent if baseline is not None else Path.cwd()
    result = LintResult(baseline_path=baseline if use_baseline else None)
    records: list[tuple[str, ModuleAnalysis, ModulePragmas, bool]] = []
    for file in iter_python_files(paths):
        try:
            rel = file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file.as_posix()
        allowlisted = _is_allowlisted(rel, allowlist)
        if allowlisted and not dataflow:
            continue
        source = file.read_text()
        records.append((rel, analyze_module(source, rel), parse_pragmas(source), allowlisted))
    # interprocedural findings, grouped back onto their files
    by_path: dict[str, list[Finding]] = {}
    if dataflow:
        from repro.lint.certify import certify_findings
        from repro.lint.dataflow import charge_findings, race_findings

        summaries = [a.summary for _, a, _, _ in records if not a.parse_failed]
        graph = CallGraph(summaries)
        linked = charge_findings(graph) + race_findings(graph) + certify_findings(summaries)
        for f in linked:
            by_path.setdefault(f.path, []).append(f)
    else:
        from repro.lint.dataflow import charge_findings

        for rel, analysis, _, _ in records:
            if analysis.parse_failed:
                continue
            for f in charge_findings(CallGraph([analysis.summary])):
                by_path.setdefault(f.path, []).append(f)
    all_findings: list[Finding] = []
    for rel, analysis, pragmas, allowlisted in records:
        if allowlisted:
            continue
        raw = sorted(set(analysis.immediate + by_path.get(rel, [])))
        kept: list[Finding] = []
        for f in raw:
            if f.rule != "REPRO000" and pragmas.suppresses(f.line):
                result.pragma_suppressed += 1
            else:
                kept.append(f)
        for line, col, detail in pragmas.bad:
            kept.append(make_finding(rel, line, col, "REPRO005", detail))
        result.files_checked += 1
        all_findings.extend(kept)
    if use_baseline:
        allowed = load_baseline(baseline)
        reported, baselined = apply_baseline(sorted(all_findings), allowed)
        result.findings = reported
        result.baseline_suppressed = baselined
        result.stale_baseline = stale_entries(sorted(all_findings), allowed)
    else:
        result.findings = sorted(all_findings)
    return result


def default_lint_paths() -> list[Path]:
    """The installed ``repro`` package source tree."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="static cost-accounting lint for the repro source tree",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files/directories to lint (default: the repro package)")
    parser.add_argument("--baseline", type=Path, default=None, help=f"baseline file (default: discover {BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true", help="accept current findings into the baseline")
    parser.add_argument("--no-default-allowlist", action="store_true", help="also lint the charging/verification layers")
    parser.add_argument(
        "--fail-stale",
        action="store_true",
        help="error when a baseline entry allows more findings than currently exist, "
        "forcing the baseline to ratchet down as findings are fixed",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="link the whole file set into one call graph and run the "
        "interprocedural race/ownership rules (REPRO006-009) and the "
        "symbolic cost certificates (REPRO010/011)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print the long-form explanation for one rule (e.g. REPRO007) and exit",
    )
    parser.add_argument(
        "--sarif",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log (for CI code-scanning upload)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2


def _main(argv: list[str] | None) -> int:
    args = build_parser().parse_args(argv)
    if args.explain is not None:
        try:
            print(explain_rule(args.explain))
        except KeyError as exc:
            print(f"repro lint: error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    paths = args.paths or default_lint_paths()
    allowlist = () if args.no_default_allowlist else DEFAULT_ALLOWLIST
    if args.write_baseline:
        target = args.baseline or discover_baseline(paths[0]) or Path.cwd() / BASELINE_NAME
        result = lint_paths(
            paths, root=target.parent, baseline=None, use_baseline=False,
            allowlist=allowlist, dataflow=args.dataflow,
        )
        target.write_text(render_baseline(result.findings))
        print(f"wrote {len(result.findings)} finding(s) to {target}")
        return 0
    result = lint_paths(
        paths, baseline=args.baseline, use_baseline=not args.no_baseline,
        allowlist=allowlist, dataflow=args.dataflow,
    )
    if args.sarif is not None:
        from repro.lint.sarif import write_sarif

        write_sarif(result.findings, str(args.sarif))
    print(result.report())
    if args.fail_stale and result.stale_baseline:
        print(result.stale_report(), file=sys.stderr)
        return 1
    return 0 if result.ok else 1
