"""Cost-accounting lint and BSP discipline verification.

Two layers keep the measured (F, W, Q, S) honest:

* the **static** layer (:mod:`repro.lint.analyzer` + :mod:`repro.lint.runner`)
  flags dense math and data motion that bypass the charging APIs
  (``repro lint`` on the CLI); ``repro lint --dataflow`` additionally links
  the file set into a call graph (:mod:`repro.lint.callgraph`), runs the
  interprocedural race/ownership rules (:mod:`repro.lint.dataflow`) and
  checks the symbolic cost certificates (:mod:`repro.lint.certify`);
* the **dynamic** layer (:class:`VerifiedMachine`) re-checks conservation,
  monotonicity, the per-rank memory bound, and read provenance at every
  superstep (``repro run --verify`` / ``REPRO_VERIFY=1`` in tests).

See docs/static_analysis.md for the rules, pragma syntax, and baseline
workflow.
"""

from repro.lint.analyzer import analyze_source
from repro.lint.baseline import (
    BASELINE_NAME,
    apply_baseline,
    discover_baseline,
    load_baseline,
    parse_baseline,
    render_baseline,
)
from repro.lint.callgraph import CallGraph
from repro.lint.pragmas import ModulePragmas, parse_pragmas
from repro.lint.rules import DATAFLOW_RULES, RULES, Finding, explain_rule
from repro.lint.runner import DEFAULT_ALLOWLIST, LintResult, lint_file, lint_paths
from repro.lint.sarif import to_sarif, write_sarif
from repro.lint.verify import BSPDisciplineError, VerifiedMachine

__all__ = [
    "analyze_source",
    "apply_baseline",
    "discover_baseline",
    "load_baseline",
    "parse_baseline",
    "render_baseline",
    "parse_pragmas",
    "ModulePragmas",
    "Finding",
    "RULES",
    "DATAFLOW_RULES",
    "explain_rule",
    "CallGraph",
    "to_sarif",
    "write_sarif",
    "LintResult",
    "lint_file",
    "lint_paths",
    "DEFAULT_ALLOWLIST",
    "BASELINE_NAME",
    "BSPDisciplineError",
    "VerifiedMachine",
]
