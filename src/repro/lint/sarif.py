"""SARIF 2.1.0 export for lint findings (CI code-scanning upload)."""

from __future__ import annotations

import json

from repro.lint.rules import RULES, Finding

_SARIF_VERSION = "2.1.0"
_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def to_sarif(findings: list[Finding], tool_version: str = "0") -> dict[str, object]:
    """Render findings as a SARIF 2.1.0 log (one run, one result per finding)."""
    rules = [
        {
            "id": rule,
            "name": RULES[rule].split(":", 1)[0],
            "shortDescription": {"text": RULES[rule]},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(RULES)
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; ast columns 0-based
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in sorted(findings)
    ]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def write_sarif(findings: list[Finding], path: str, tool_version: str = "0") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, tool_version), fh, indent=2, sort_keys=True)
        fh.write("\n")
