"""AST cost-leak detector and per-function fact extractor.

Walks one module and produces two things:

* **immediate findings** — operations that are wrong wherever they appear:
  ``REPRO001`` (dense-math ops outside :mod:`repro.bsp.kernels`) and
  ``REPRO002`` (direct ``numpy.linalg`` / ``scipy.linalg`` calls);
* a :class:`~repro.lint.callgraph.ModuleSummary` — per-function facts
  (charging calls, ``.data`` copies, ``p2p`` sites, send/write/barrier flow
  events, rank-store reads/aliases, buffer escapes) that the
  interprocedural rules in :mod:`repro.lint.dataflow` evaluate over the
  project call graph.

:func:`analyze_source` is the historical entry point: immediate findings
plus the REPRO003/REPRO004 charge rules resolved against a *module-local*
call graph (a helper in the same module that charges or supersteps on the
caller's behalf is understood; cross-module helpers need ``--dataflow``).

The analyzer is purely syntactic (no imports are executed); pragma and
baseline filtering happen in :mod:`repro.lint.runner`.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import (
    BARRIER_CALLS,
    CHARGE_CALLS,
    COMM_CALLS,
    MEMORY_CALLS,
    CallGraph,
    CallSite,
    Escape,
    FunctionFacts,
    ModuleSummary,
    module_name_for,
)
from repro.lint.rules import Finding, make_finding

__all__ = [
    "analyze_source",
    "analyze_module",
    "CHARGE_CALLS",
    "FLOP_FUNCS",
    "ModuleAnalysis",
]

#: numpy top-level functions that perform O(size)+ dense arithmetic
FLOP_FUNCS = frozenset(
    {"dot", "matmul", "vdot", "inner", "outer", "einsum", "tensordot", "kron", "cross"}
)

#: numpy top-level functions whose result copies their array argument —
#: applied to a ``.data`` expression these are REPRO003 data copies
NUMPY_COPY_FUNCS = frozenset({"copy", "array", "asarray", "ascontiguousarray"})

#: numpy array allocators / combinators — names assigned from these are
#: tracked as array-like for the REPRO007 in-flight window
NUMPY_ALLOC_FUNCS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "eye",
        "arange",
        "linspace",
        "diag",
        "hstack",
        "vstack",
        "concatenate",
        "stack",
        "copy",
        "array",
        "asarray",
        "ascontiguousarray",
    }
)

#: view-preserving passthroughs: applied to a ``.data`` expression the
#: result still aliases rank-owned storage (escape analysis, REPRO009)
VIEW_FUNCS = frozenset({"asarray", "ascontiguousarray", "atleast_1d", "atleast_2d"})

#: attribute accesses that mark a name as array-like
ARRAYISH_ATTRS = frozenset(
    {"size", "shape", "T", "dtype", "ndim", "copy", "astype", "fill", "reshape", "ravel"}
)

#: builtins / pure readers whose arguments do not escape (REPRO009)
SAFE_ARG_CALLEES = frozenset(
    {
        "len",
        "float",
        "int",
        "bool",
        "str",
        "repr",
        "print",
        "min",
        "max",
        "sum",
        "abs",
        "round",
        "sorted",
        "list",
        "tuple",
        "set",
        "dict",
        "enumerate",
        "zip",
        "range",
        "isinstance",
        "hasattr",
        "getattr",
        "iter",
        "next",
        "id",
        "type",
        "format",
    }
)

#: range() bounds that look like a processor count (rank-loop detection)
RANK_COUNT_NAMES = frozenset({"p", "nranks", "n_ranks", "num_ranks", "world_size", "size"})


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None if the base is not a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _mentions_data_attr(node: ast.AST) -> bool:
    """Does the expression dereference a ``.data`` attribute anywhere?"""
    return any(isinstance(sub, ast.Attribute) and sub.attr == "data" for sub in ast.walk(node))


def _names_in(node: ast.AST) -> set[str]:
    """All plain names and ``x.data`` chains referenced in an expression."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute) and sub.attr == "data":
            chain = _attr_chain(sub)
            if chain:
                out.add(".".join(chain))
    return out


class _Imports:
    """Names under which numpy / scipy / their linalg submodules are visible."""

    def __init__(self) -> None:
        self.numpy: set[str] = set()
        self.scipy: set[str] = set()
        self.linalg_mods: set[str] = set()  # aliases of numpy.linalg / scipy.linalg
        self.linalg_names: set[str] = set()  # names imported *from* those modules
        self.aliases: dict[str, str] = {}  # any alias -> dotted target

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name, asname = alias.name, alias.asname or alias.name.split(".")[0]
                    self.aliases[asname] = name
                    if name == "numpy":
                        self.numpy.add(asname)
                    elif name == "scipy":
                        self.scipy.add(asname)
                    elif name in ("numpy.linalg", "scipy.linalg") and alias.asname:
                        self.linalg_mods.add(alias.asname)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
                if node.module in ("numpy", "scipy"):
                    for alias in node.names:
                        if alias.name == "linalg":
                            self.linalg_mods.add(alias.asname or "linalg")
                elif node.module in ("numpy.linalg", "scipy.linalg"):
                    for alias in node.names:
                        self.linalg_names.add(alias.asname or alias.name)


class _FnState:
    """Mutable per-function analysis state wrapped around FunctionFacts."""

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts
        self.data_buffers: set[str] = set()  # names aliasing .data storage
        self.arraylike: set[str] = set()  # names holding any ndarray
        self.rank_loop_stack: list[set[str]] = []
        self.rank_vars: set[str] = set()
        self.rank_stores: set[str] = set()  # names subscript-assigned by a rank var
        # candidates filtered against the final rank_stores at scope pop
        self.read_candidates: list[tuple[str, int, int, str]] = []
        self.alias_candidates: list[tuple[str, int, int, str]] = []


class CostLeakVisitor(ast.NodeVisitor):
    def __init__(self, path: str, imports: _Imports) -> None:
        self.path = path
        self.imports = imports
        self.findings: list[Finding] = []
        self._flagged: set[int] = set()  # id(node) de-duplication
        module_facts = FunctionFacts(qualname="<module>", name="<module>", cls=None, lineno=1)
        self.states: list[_FnState] = [_FnState(module_facts)]
        self.summary_functions: dict[str, FunctionFacts] = {"<module>": module_facts}
        self.classes: dict[str, list[str]] = {}
        self._class_stack: list[str] = []
        self._qual_stack: list[str] = []

    # -------------------------------------------------------------- #

    def _emit(self, node: ast.AST, rule: str, detail: str) -> None:
        if id(node) in self._flagged:
            return
        self._flagged.add(id(node))
        self.findings.append(
            make_finding(self.path, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), rule, detail)
        )

    @property
    def _state(self) -> _FnState:
        return self.states[-1]

    # -------------------------------------------------------------- #
    # scopes

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        name = ".".join(self._class_stack + [node.name]) if self._class_stack else node.name
        self._class_stack.append(node.name)
        self._qual_stack.append(node.name)
        self.classes.setdefault(name, [])
        self.generic_visit(node)
        self._qual_stack.pop()
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        parent_is_class = bool(self._class_stack) and len(self._qual_stack) == len(
            self._class_stack
        )
        if self._qual_stack and not parent_is_class:
            qualname = ".".join(self._qual_stack) + f".<locals>.{node.name}"
        elif self._qual_stack:
            qualname = ".".join(self._qual_stack) + f".{node.name}"
        else:
            qualname = node.name
        cls = ".".join(self._class_stack) if parent_is_class else None
        facts = FunctionFacts(qualname=qualname, name=node.name, cls=cls, lineno=node.lineno)
        self.summary_functions[qualname] = facts
        if cls is not None:
            self.classes.setdefault(cls, []).append(qualname)
        self.states.append(_FnState(facts))
        self._qual_stack.append(node.name)
        self.generic_visit(node)
        self._qual_stack.pop()
        self._finish_scope(self.states.pop())

    def _finish_scope(self, state: _FnState) -> None:
        """Filter store-order-sensitive candidates now that the scope is complete."""
        facts = state.facts
        for store, line, col, detail in state.read_candidates:
            if store in state.rank_stores:
                facts.cross_reads.append((line, col, detail))
        for store, line, col, detail in state.alias_candidates:
            if store in state.rank_stores:
                facts.alias_stores.append((line, col, detail))
        # restrict flow events to names known to hold arrays
        tracked = state.arraylike | state.data_buffers
        kept: list[tuple[str, int, int, object]] = []
        for kind, line, col, payload in facts.flow:
            if kind == "send":
                names = {
                    n for n in payload if n in tracked or "." in n  # type: ignore[union-attr]
                }
                if not names:
                    continue
                payload = frozenset(names)
            elif kind == "write" and payload not in tracked and "." not in str(payload):
                continue
            kept.append((kind, line, col, payload))
        facts.flow = kept

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        state = self._state
        params = {a.arg for a in node.args.args}
        captured = {
            n.id
            for n in ast.walk(node.body)
            if isinstance(n, ast.Name) and n.id in state.data_buffers and n.id not in params
        }
        for name in sorted(captured):
            state.facts.escapes.append(
                Escape("closure", node.lineno, node.col_offset,
                       f"buffer '{name}' captured by a lambda")
            )
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # rank loops (REPRO006/REPRO008 anchors)

    def _is_rank_iter(self, node: ast.AST) -> bool:
        chain = _attr_chain(node)
        if chain is not None:
            tail = chain[-1]
            return "group" in tail or tail == "ranks"
        if isinstance(node, ast.Call):
            cchain = _attr_chain(node.func)
            callee = cchain[-1] if cchain else None
            if callee == "group":
                return True
            if callee in ("enumerate", "sorted", "reversed", "list", "tuple") and node.args:
                return self._is_rank_iter(node.args[0])
            if callee == "range" and node.args:
                bound = node.args[-1] if len(node.args) >= 2 else node.args[0]
                bchain = _attr_chain(bound)
                if bchain is not None and bchain[-1] in RANK_COUNT_NAMES:
                    return True
                if isinstance(bound, ast.Call):
                    inner = _attr_chain(bound.func)
                    if inner == ["len"] and bound.args and self._is_rank_iter(bound.args[0]):
                        return True
        return False

    @staticmethod
    def _target_names(target: ast.AST) -> set[str]:
        return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}

    def visit_For(self, node: ast.For) -> None:
        state = self._state
        if self._is_rank_iter(node.iter):
            loop_vars = self._target_names(node.target)
            state.rank_loop_stack.append(loop_vars)
            state.rank_vars |= loop_vars
            self.generic_visit(node)
            state.rank_loop_stack.pop()
        else:
            self.generic_visit(node)

    # -------------------------------------------------------------- #
    # assignments: buffer tracking, writes, rank stores, aliasing

    def _is_data_derived(self, node: ast.AST) -> bool:
        """Does this expression alias rank-owned ``.data`` storage (no copy)?"""
        state = self._state
        if isinstance(node, ast.Name):
            return node.id in state.data_buffers
        if isinstance(node, ast.Attribute):
            if node.attr == "data":
                return True
            if node.attr in ("T", "real", "imag"):
                return self._is_data_derived(node.value)
            return False
        if isinstance(node, ast.Subscript):
            return self._is_data_derived(node.value)
        if isinstance(node, ast.Starred):
            return self._is_data_derived(node.value)
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and len(chain) == 2 and chain[0] in self.imports.numpy:
                if chain[1] in VIEW_FUNCS and node.args:
                    return self._is_data_derived(node.args[0])
                return False
            # method passthroughs that return views of the receiver
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("reshape", "view", "ravel", "transpose")
            ):
                return self._is_data_derived(node.func.value)
            return False
        return False

    def _is_arraylike_value(self, node: ast.AST) -> bool:
        state = self._state
        if self._is_data_derived(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in state.arraylike
        if isinstance(node, ast.Subscript) or isinstance(node, ast.Attribute):
            inner = node.value
            if isinstance(inner, ast.Name):
                return inner.id in state.arraylike
            return False
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            return bool(
                chain
                and len(chain) == 2
                and chain[0] in self.imports.numpy
                and chain[1] in NUMPY_ALLOC_FUNCS
            )
        if isinstance(node, ast.BinOp):
            return self._is_arraylike_value(node.left) or self._is_arraylike_value(node.right)
        return False

    def _record_write(self, target: ast.AST, node: ast.stmt) -> None:
        """Record in-place writes for the REPRO007 in-flight window."""
        state = self._state
        written: str | None = None
        if isinstance(target, ast.Subscript):
            base = target.value
            bchain = _attr_chain(base)
            if isinstance(base, ast.Name):
                written = base.id
            elif bchain and bchain[-1] == "data":
                written = ".".join(bchain)
        elif isinstance(target, ast.Name) and isinstance(node, ast.AugAssign):
            written = target.id  # ndarray += mutates in place
        if written is not None:
            state.facts.flow.append(("write", node.lineno, node.col_offset, written))

    def _record_rank_store(self, target: ast.AST, value: ast.AST | None, node: ast.stmt) -> None:
        state = self._state
        if not (isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name)):
            return
        idx_names = self._target_names(target.slice)
        if not (idx_names & state.rank_vars):
            return
        store = target.value.id
        state.rank_stores.add(store)
        if value is not None and not isinstance(node, ast.AugAssign):
            if self._is_data_derived(value) or (
                isinstance(value, ast.Subscript)
                and isinstance(value.value, ast.Name)
                and value.value.id in (state.rank_stores | {store})
            ):
                state.alias_candidates.append(
                    (
                        store,
                        node.lineno,
                        node.col_offset,
                        f"rank-indexed store '{store}[...]' aliases a live buffer "
                        "(stored without .copy())",
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        state = self._state
        for target in node.targets:
            self._record_write(target, node)
            self._record_rank_store(target, node.value, node)
            if isinstance(target, ast.Name):
                if self._is_data_derived(node.value):
                    state.data_buffers.add(target.id)
                elif target.id in state.data_buffers:
                    state.data_buffers.discard(target.id)  # rebound to something else
                if self._is_arraylike_value(node.value):
                    state.arraylike.add(target.id)
            elif isinstance(target, ast.Attribute) and self._is_data_derived(node.value):
                state.facts.escapes.append(
                    Escape(
                        "attribute",
                        node.lineno,
                        node.col_offset,
                        f"'.data' buffer stored on attribute "
                        f"'{'.'.join(_attr_chain(target) or ['?', target.attr])}'",
                    )
                )
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    self._record_write(elt, node)
                    self._record_rank_store(elt, None, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            state = self._state
            if self._is_data_derived(node.value):
                state.data_buffers.add(node.target.id)
            if self._is_arraylike_value(node.value):
                state.arraylike.add(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.MatMult):
            self._emit(node, "REPRO001", "in-place '@=' outside repro.bsp.kernels")
        self._record_write(node.target, node)
        self._record_rank_store(node.target, None, node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._is_data_derived(node.value):
            self._state.facts.escapes.append(
                Escape("return", node.lineno, node.col_offset, "'.data' buffer returned")
            )
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # loads: cross-rank reads, array-ish attribute marking

    def visit_Subscript(self, node: ast.Subscript) -> None:
        state = self._state
        if isinstance(node.ctx, ast.Load) and isinstance(node.value, ast.Name):
            store = node.value.id
            idx = node.slice
            idx_rank_names = self._target_names(idx) & state.rank_vars
            if idx_rank_names:
                innermost = state.rank_loop_stack[-1] if state.rank_loop_stack else set()
                bare = isinstance(idx, ast.Name)
                if not bare:
                    state.read_candidates.append(
                        (
                            store,
                            node.lineno,
                            node.col_offset,
                            f"'{store}[...]' read with derived rank index "
                            f"({', '.join(sorted(idx_rank_names))} arithmetic)",
                        )
                    )
                elif state.rank_loop_stack and idx.id not in innermost:
                    state.read_candidates.append(
                        (
                            store,
                            node.lineno,
                            node.col_offset,
                            f"'{store}[{idx.id}]' read inside a loop over a different rank",
                        )
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in ARRAYISH_ATTRS and isinstance(node.value, ast.Name):
            self._state.arraylike.add(node.value.id)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # closure capture: a nested function reading an outer scope's buffer
        if isinstance(node.ctx, ast.Load) and len(self.states) > 2:
            for outer in self.states[1:-1]:
                if node.id in outer.data_buffers and node.id not in self._state.data_buffers:
                    outer.facts.escapes.append(
                        Escape(
                            "closure",
                            node.lineno,
                            node.col_offset,
                            f"buffer '{node.id}' captured by nested function "
                            f"{self._state.facts.name}()",
                        )
                    )
                    break
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # dense-math operators

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult):
            self._emit(node, "REPRO001", "matrix-multiply operator '@' outside repro.bsp.kernels")
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # calls

    def visit_Call(self, node: ast.Call) -> None:
        state = self._state
        facts = state.facts
        func = node.func
        chain = _attr_chain(func)
        callee = chain[-1] if chain else (func.attr if isinstance(func, ast.Attribute) else None)
        site = (node.lineno, node.col_offset)
        if callee in CHARGE_CALLS:
            facts.charges = True
            if callee in COMM_CALLS:
                facts.comms = True
            if callee == "superstep":
                facts.has_superstep = True
            if callee == "p2p":
                facts.p2p_calls.append(site)
        if callee in MEMORY_CALLS:
            facts.notes_memory = True
        # ---- REPRO007 flow events ---------------------------------------
        if callee in BARRIER_CALLS:
            facts.flow.append(("barrier", site[0], site[1], None))
        elif callee == "p2p" or (
            callee in ("charge_comm", "charge_comm_matrix")
            and (node.args or any(kw.arg == "sends" for kw in node.keywords))
        ):
            referenced: set[str] = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                referenced |= _names_in(arg)
            facts.flow.append(("send", site[0], site[1], frozenset(referenced)))
        elif chain is not None and callee not in CHARGE_CALLS:
            facts.flow.append(("call", site[0], site[1], tuple(chain)))
        # ---- call-graph edge --------------------------------------------
        if chain is not None:
            facts.calls.append(CallSite(tuple(chain), site[0], site[1]))
        # ---- immediate rules --------------------------------------------
        self._check_numpy_call(node, func, chain)
        self._check_data_copy(node, func, chain, callee)
        self._check_arg_escape(node, chain, callee)
        self.generic_visit(node)

    def _check_data_copy(
        self, node: ast.Call, func: ast.AST, chain: list[str] | None, callee: str | None
    ) -> None:
        """REPRO003 copy forms: ``.data*.copy()``, a tracked buffer's
        ``.copy()``, and ``np.copy/array/asarray/ascontiguousarray(.data)``."""
        state = self._state
        is_copy = False
        if (
            chain
            and len(chain) == 2
            and chain[0] in self.imports.numpy
            and chain[1] in NUMPY_COPY_FUNCS
        ):
            # np.copy/array/asarray/ascontiguousarray(<.data expr>) — checked
            # before the method form so np.copy's terminal "copy" is not
            # mistaken for a '<name>.copy()' whose receiver is the module
            if any(
                _mentions_data_attr(arg) or self._is_data_derived(arg) for arg in node.args
            ):
                is_copy = True
        elif callee == "copy" and isinstance(func, ast.Attribute):
            base = func.value
            if _mentions_data_attr(base):
                is_copy = True
            elif isinstance(base, ast.Name) and base.id in state.data_buffers:
                is_copy = True
        if is_copy:
            state.facts.data_copies.append((node.lineno, node.col_offset))

    def _check_arg_escape(
        self, node: ast.Call, chain: list[str] | None, callee: str | None
    ) -> None:
        """REPRO009 candidate: a ``.data`` buffer passed to a callee."""
        if callee in CHARGE_CALLS or callee in MEMORY_CALLS:
            return
        if chain is not None:
            head = chain[0]
            if head in self.imports.numpy or head in self.imports.scipy:
                return
            if len(chain) == 1 and head in SAFE_ARG_CALLEES:
                return
        escaping = [
            arg
            for arg in list(node.args) + [kw.value for kw in node.keywords]
            if self._is_data_derived(arg)
        ]
        if not escaping:
            return
        self._state.facts.escapes.append(
            Escape(
                "arg",
                node.lineno,
                node.col_offset,
                f"'.data' buffer passed to {'.'.join(chain) if chain else '<expression>'}()",
                callee=tuple(chain) if chain else None,
            )
        )

    def _check_numpy_call(self, node: ast.Call, func: ast.AST, chain: list[str] | None) -> None:
        imp = self.imports
        if chain:
            head, rest = chain[0], chain[1:]
            if head in imp.numpy and rest and rest[0] == "linalg":
                if len(rest) > 1:
                    self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.scipy and rest and rest[0] == "linalg":
                if len(rest) > 1:
                    self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.linalg_mods and len(rest) == 1:
                self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.numpy and len(rest) == 1 and rest[0] in FLOP_FUNCS:
                self._emit(node, "REPRO001", f"{'.'.join(chain)}() outside repro.bsp.kernels")
                return
            if len(chain) == 1 and chain[0] in imp.linalg_names:
                self._emit(node, "REPRO002", f"direct {chain[0]}() (imported from numpy/scipy linalg) bypasses cost accounting")
                return
        if isinstance(func, ast.Attribute) and func.attr == "dot" and not isinstance(func.value, ast.Name | ast.Attribute):
            # e.g. (a.T).dot(b) — base is an expression; plain name/attr bases
            # were already classified above
            self._emit(node, "REPRO001", "ndarray .dot() outside repro.bsp.kernels")
        elif isinstance(func, ast.Attribute) and func.attr == "dot" and chain is not None:
            head = chain[0]
            if head not in imp.numpy and head not in imp.scipy and head not in imp.linalg_mods:
                self._emit(node, "REPRO001", "ndarray .dot() outside repro.bsp.kernels")


class ModuleAnalysis:
    """Result of :func:`analyze_module`: immediate findings + the summary."""

    def __init__(self, summary: ModuleSummary, immediate: list[Finding]) -> None:
        self.summary = summary
        self.immediate = immediate

    @property
    def parse_failed(self) -> bool:
        return any(f.rule == "REPRO000" for f in self.immediate)


def analyze_module(source: str, path: str) -> ModuleAnalysis:
    """Analyze one module: (REPRO001/002 findings, per-function fact summary)."""
    summary = ModuleSummary(path=path, module=module_name_for(path), source=source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ModuleAnalysis(
            summary,
            [make_finding(path, exc.lineno or 1, exc.offset or 0, "REPRO000", f"parse-error: {exc.msg}")],
        )
    imports = _Imports()
    imports.collect(tree)
    visitor = CostLeakVisitor(path, imports)
    visitor.visit(tree)
    visitor._finish_scope(visitor.states[0])  # close the module scope
    summary.tree = tree
    summary.functions = visitor.summary_functions
    summary.classes = visitor.classes
    summary.imports = imports.aliases
    # nested '@' chains produce one BinOp per operator, often at the same
    # line:col — collapse identical diagnostics
    return ModuleAnalysis(summary, sorted(set(visitor.findings)))


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one module's source; returns raw findings (pragmas not applied).

    REPRO003/REPRO004 are resolved against a module-local call graph: a
    same-module helper that charges (or supersteps) on the caller's behalf
    suppresses the finding.  Cross-module resolution needs ``--dataflow``.
    """
    from repro.lint.dataflow import charge_findings

    analysis = analyze_module(source, path)
    if analysis.parse_failed:
        return analysis.immediate
    graph = CallGraph([analysis.summary])
    findings = analysis.immediate + charge_findings(graph)
    return sorted(set(findings))
