"""AST cost-leak detector.

Walks one module and reports every operation that computes or moves data
without charging the simulated machine:

* ``REPRO001`` — dense-math ops (``@``, ``np.dot``, ``np.outer``, ``.dot``,
  ``np.einsum``, ...) anywhere outside :mod:`repro.bsp.kernels`;
* ``REPRO002`` — direct ``numpy.linalg`` / ``scipy.linalg`` calls;
* ``REPRO003`` — ``.copy()`` of a rank-owned ``.data`` buffer inside a
  function that performs no communication/traffic charge;
* ``REPRO004`` — a ``p2p`` send/recv pair with no ``superstep`` barrier in
  the same function.

The analyzer is purely syntactic (no imports are executed); pragma and
baseline filtering happen in :mod:`repro.lint.runner`.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Finding, make_finding

#: numpy top-level functions that perform O(size)+ dense arithmetic
FLOP_FUNCS = frozenset(
    {"dot", "matmul", "vdot", "inner", "outer", "einsum", "tensordot", "kron", "cross"}
)

#: calls that charge the machine — their presence marks a function as
#: "charging" for the REPRO003 heuristic
CHARGE_CALLS = frozenset(
    {
        "charge_comm",
        "charge_comm_batch",
        "charge_comm_matrix",
        "charge_flops",
        "charge_flops_batch",
        "superstep",
        "mem_stream",
        "mem_stream_group",
        "mem_read",
        "mem_write",
        "charge_store",
        "fetch_window",
        "store_window",
        "redistribute",
        "replicate",
        "bcast",
        "reduce",
        "allreduce",
        "reduce_scatter",
        "allgather",
        "gather",
        "scatter",
        "alltoall",
        "alltoall_matrix",
        "p2p",
    }
)


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None if the base is not a plain name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _mentions_data_attr(node: ast.AST) -> bool:
    """Does the expression dereference a ``.data`` attribute anywhere?"""
    return any(isinstance(sub, ast.Attribute) and sub.attr == "data" for sub in ast.walk(node))


class _Imports:
    """Names under which numpy / scipy / their linalg submodules are visible."""

    def __init__(self) -> None:
        self.numpy: set[str] = set()
        self.scipy: set[str] = set()
        self.linalg_mods: set[str] = set()  # aliases of numpy.linalg / scipy.linalg
        self.linalg_names: set[str] = set()  # names imported *from* those modules

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name, asname = alias.name, alias.asname or alias.name.split(".")[0]
                    if name == "numpy":
                        self.numpy.add(asname)
                    elif name == "scipy":
                        self.scipy.add(asname)
                    elif name in ("numpy.linalg", "scipy.linalg") and alias.asname:
                        self.linalg_mods.add(alias.asname)
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module in ("numpy", "scipy"):
                    for alias in node.names:
                        if alias.name == "linalg":
                            self.linalg_mods.add(alias.asname or "linalg")
                elif node.module in ("numpy.linalg", "scipy.linalg"):
                    for alias in node.names:
                        self.linalg_names.add(alias.asname or alias.name)


class _Scope:
    """Per-function facts needed by the REPRO003/REPRO004 heuristics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.data_copies: list[ast.Call] = []
        self.p2p_calls: list[ast.Call] = []
        self.charges = False
        self.has_superstep = False


class CostLeakVisitor(ast.NodeVisitor):
    def __init__(self, path: str, imports: _Imports) -> None:
        self.path = path
        self.imports = imports
        self.findings: list[Finding] = []
        self._flagged: set[int] = set()  # id(node) de-duplication
        self.scopes: list[_Scope] = [_Scope("<module>")]

    # -------------------------------------------------------------- #

    def _emit(self, node: ast.AST, rule: str, detail: str) -> None:
        if id(node) in self._flagged:
            return
        self._flagged.add(id(node))
        self.findings.append(
            make_finding(self.path, getattr(node, "lineno", 1), getattr(node, "col_offset", 0), rule, detail)
        )

    # -------------------------------------------------------------- #
    # scopes

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.scopes.append(_Scope(node.name))
        self.generic_visit(node)
        scope = self.scopes.pop()
        if scope.data_copies and not scope.charges:
            for call in scope.data_copies:
                self._emit(
                    call,
                    "REPRO003",
                    f"'.data' buffer copied in {scope.name}() which performs no "
                    "communication or traffic charge",
                )
        if scope.p2p_calls and not scope.has_superstep:
            for call in scope.p2p_calls:
                self._emit(
                    call,
                    "REPRO004",
                    f"p2p() in {scope.name}() is never closed by a superstep barrier",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -------------------------------------------------------------- #
    # dense-math operators

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult):
            self._emit(node, "REPRO001", "matrix-multiply operator '@' outside repro.bsp.kernels")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.MatMult):
            self._emit(node, "REPRO001", "in-place '@=' outside repro.bsp.kernels")
        self.generic_visit(node)

    # -------------------------------------------------------------- #
    # calls

    def visit_Call(self, node: ast.Call) -> None:
        scope = self.scopes[-1]
        func = node.func
        chain = _attr_chain(func)
        callee = chain[-1] if chain else (func.attr if isinstance(func, ast.Attribute) else None)
        if callee in CHARGE_CALLS:
            scope.charges = True
            if callee == "superstep":
                scope.has_superstep = True
            if callee == "p2p":
                scope.p2p_calls.append(node)
        self._check_numpy_call(node, func, chain)
        if callee == "copy" and isinstance(func, ast.Attribute) and _mentions_data_attr(func.value):
            scope.data_copies.append(node)
        self.generic_visit(node)

    def _check_numpy_call(self, node: ast.Call, func: ast.AST, chain: list[str] | None) -> None:
        imp = self.imports
        if chain:
            head, rest = chain[0], chain[1:]
            if head in imp.numpy and rest and rest[0] == "linalg":
                if len(rest) > 1:
                    self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.scipy and rest and rest[0] == "linalg":
                if len(rest) > 1:
                    self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.linalg_mods and len(rest) == 1:
                self._emit(node, "REPRO002", f"direct {'.'.join(chain)}() call bypasses cost accounting")
                return
            if head in imp.numpy and len(rest) == 1 and rest[0] in FLOP_FUNCS:
                self._emit(node, "REPRO001", f"{'.'.join(chain)}() outside repro.bsp.kernels")
                return
            if len(chain) == 1 and chain[0] in imp.linalg_names:
                self._emit(node, "REPRO002", f"direct {chain[0]}() (imported from numpy/scipy linalg) bypasses cost accounting")
                return
        if isinstance(func, ast.Attribute) and func.attr == "dot" and not isinstance(func.value, ast.Name | ast.Attribute):
            # e.g. (a.T).dot(b) — base is an expression; plain name/attr bases
            # were already classified above
            self._emit(node, "REPRO001", "ndarray .dot() outside repro.bsp.kernels")
        elif isinstance(func, ast.Attribute) and func.attr == "dot" and chain is not None:
            head = chain[0]
            if head not in imp.numpy and head not in imp.scipy and head not in imp.linalg_mods:
                self._emit(node, "REPRO001", "ndarray .dot() outside repro.bsp.kernels")


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one module's source; returns raw findings (pragmas not applied)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [make_finding(path, exc.lineno or 1, exc.offset or 0, "REPRO000", f"parse-error: {exc.msg}")]
    imports = _Imports()
    imports.collect(tree)
    visitor = CostLeakVisitor(path, imports)
    visitor.visit(tree)
    # module-level (outside any def) REPRO003/REPRO004
    module_scope = visitor.scopes[0]
    if module_scope.data_copies and not module_scope.charges:
        for call in module_scope.data_copies:
            visitor._emit(call, "REPRO003", "'.data' buffer copied at module level with no charge")
    if module_scope.p2p_calls and not module_scope.has_superstep:
        for call in module_scope.p2p_calls:
            visitor._emit(call, "REPRO004", "module-level p2p() never closed by a superstep barrier")
    # nested '@' chains produce one BinOp per operator, often at the same
    # line:col — collapse identical diagnostics
    return sorted(set(visitor.findings))
