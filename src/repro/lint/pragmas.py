"""``# cost:`` pragma parsing.

Two forms are recognised, both requiring a written reason:

* ``# cost: free(<reason>)`` — trailing (or own-line) comment; suppresses
  findings on any line the annotated statement spans;
* ``# cost: free-module(<reason>)`` — a whole-module waiver, used by the
  sequential-numerics layer (``repro/linalg``) whose flops are charged by
  its :mod:`repro.bsp.kernels` callers.

A ``# cost:`` comment that matches neither form, or has an empty reason,
is itself reported (rule REPRO005) so typos cannot silently disable the
linter.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

# the reason may itself contain parentheses — match greedily to the last ')'
_PRAGMA_RE = re.compile(r"#\s*cost:\s*(?P<kind>free-module|free)\s*\(\s*(?P<reason>.*)\)\s*$")
_PREFIX_RE = re.compile(r"#\s*cost:")


@dataclass
class ModulePragmas:
    """All cost pragmas of one module."""

    #: line number -> reason, for ``# cost: free(...)``
    free_lines: dict[int, str] = field(default_factory=dict)
    #: reason of a ``# cost: free-module(...)`` waiver, if any
    module_reason: str | None = None
    #: (line, col, detail) for malformed ``# cost:`` comments
    bad: list[tuple[int, int, str]] = field(default_factory=list)

    @property
    def module_free(self) -> bool:
        return self.module_reason is not None

    def suppresses(self, first_line: int, last_line: int | None = None) -> bool:
        """Is a finding spanning [first_line, last_line] waived by a pragma?"""
        if self.module_free:
            return True
        last_line = first_line if last_line is None else last_line
        return any(ln in self.free_lines for ln in range(first_line, last_line + 1))


def parse_pragmas(source: str) -> ModulePragmas:
    """Extract cost pragmas from ``source`` (tokenize-based, so strings
    containing ``# cost:`` are never misread as pragmas)."""
    out = ModulePragmas()
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out  # the analyzer reports the parse failure
    for tok in tokens:
        if tok.type != tokenize.COMMENT or not _PREFIX_RE.search(tok.string):
            continue
        line, col = tok.start
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            out.bad.append((line, col, f"unrecognised cost pragma {tok.string.strip()!r}"))
            continue
        reason = match.group("reason").strip()
        if not reason:
            out.bad.append((line, col, "cost pragma requires a written reason, e.g. # cost: free(verification only)"))
            continue
        if match.group("kind") == "free-module":
            out.module_reason = reason
        else:
            out.free_lines[line] = reason
    return out
