"""Lint rule registry and the :class:`Finding` record.

The rules encode the repo's cost-accounting discipline (DESIGN.md): every
local flop is charged through :mod:`repro.bsp.kernels` (or an explicit
``machine.charge_flops``) and every word moved between ranks through
:mod:`repro.bsp.collectives` / the dist layer.  Code that performs dense
math or data motion outside those channels silently under-counts the
measured (F, W, Q, S) and must either be re-routed or carry a
``# cost: free(<reason>)`` pragma / baseline entry.
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule id -> one-line description (kept in sync with docs/static_analysis.md)
RULES: dict[str, str] = {
    "REPRO000": "parse-error: file could not be parsed",
    "REPRO001": (
        "uncounted-flops: dense-math operation (matmul/@, dot, outer, einsum, ...) "
        "outside repro.bsp.kernels charges no F/Q"
    ),
    "REPRO002": (
        "uncounted-linalg: direct numpy.linalg / scipy.linalg call bypasses "
        "cost accounting (route through bsp.kernels or util.validation)"
    ),
    "REPRO003": (
        "uncounted-copy: rank-owned buffer (.data) copied in a function that "
        "performs no communication charge"
    ),
    "REPRO004": (
        "missing-barrier: p2p send/recv pair not closed by a superstep barrier "
        "in the enclosing function"
    ),
    "REPRO005": "bad-pragma: '# cost:' pragma is malformed or missing a reason",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, addressable as ``path:line:col``."""

    path: str  # posix path relative to the lint root
    line: int  # 1-based
    col: int  # 0-based, as in ast
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def make_finding(path: str, line: int, col: int, rule: str, detail: str = "") -> Finding:
    """Build a finding with the rule's canonical message plus optional detail."""
    if rule not in RULES:
        raise KeyError(f"unknown lint rule {rule!r}")
    message = RULES[rule] if not detail else f"{RULES[rule].split(':', 1)[0]}: {detail}"
    return Finding(path=path, line=line, col=col, rule=rule, message=message)
