"""Lint rule registry and the :class:`Finding` record.

The rules encode the repo's cost-accounting discipline (DESIGN.md): every
local flop is charged through :mod:`repro.bsp.kernels` (or an explicit
``machine.charge_flops``) and every word moved between ranks through
:mod:`repro.bsp.collectives` / the dist layer.  Code that performs dense
math or data motion outside those channels silently under-counts the
measured (F, W, Q, S) and must either be re-routed or carry a
``# cost: free(<reason>)`` pragma / baseline entry.

Rules REPRO000–005 are lexical (per-function AST heuristics, with a
module-local call graph refining REPRO003/REPRO004).  Rules REPRO006–011
belong to the interprocedural dataflow layer (``repro lint --dataflow``):
static race/ownership checking over the project call graph
(:mod:`repro.lint.dataflow`) and symbolic cost certificates against the
paper's lemmas (:mod:`repro.lint.certify`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule id -> one-line description (kept in sync with docs/static_analysis.md)
RULES: dict[str, str] = {
    "REPRO000": "parse-error: file could not be parsed",
    "REPRO001": (
        "uncounted-flops: dense-math operation (matmul/@, dot, outer, einsum, ...) "
        "outside repro.bsp.kernels charges no F/Q"
    ),
    "REPRO002": (
        "uncounted-linalg: direct numpy.linalg / scipy.linalg call bypasses "
        "cost accounting (route through bsp.kernels or util.validation)"
    ),
    "REPRO003": (
        "uncounted-copy: rank-owned buffer (.data) copied in a function that "
        "performs no communication charge"
    ),
    "REPRO004": (
        "missing-barrier: p2p send/recv pair not closed by a superstep barrier "
        "in the enclosing function"
    ),
    "REPRO005": "bad-pragma: '# cost:' pragma is malformed or missing a reason",
    "REPRO006": (
        "cross-rank-read: a rank reads another rank's buffer without a "
        "mediating collective / fetch_window anywhere in its call closure"
    ),
    "REPRO007": (
        "write-after-send: buffer handed to an unbarriered send (p2p / raw "
        "charge_comm) is written before the closing superstep barrier"
    ),
    "REPRO008": (
        "rank-alias: two ranks' buffers alias the same storage (stored "
        "without a .copy(), so one rank's write silently mutates another's)"
    ),
    "REPRO009": (
        "escaped-buffer: rank-owned .data buffer escapes (return / argument / "
        "attribute / closure) into a call context that never charges"
    ),
    "REPRO010": (
        "cost-certificate: a stage's extracted symbolic cost exceeds the "
        "leading term of its repro.model.costs lemma"
    ),
    "REPRO011": (
        "uncertifiable-stage: a stage registered for cost certification has "
        "loop/charge structure the certifier cannot extract"
    ),
}

#: dataflow-layer rules, reported only under ``repro lint --dataflow``
DATAFLOW_RULES: frozenset[str] = frozenset(
    {"REPRO006", "REPRO007", "REPRO008", "REPRO009", "REPRO010", "REPRO011"}
)

#: rule id -> long-form explanation for ``repro lint --explain RULE``
EXPLANATIONS: dict[str, str] = {
    "REPRO000": (
        "The file failed to parse, so none of its costs can be audited.  A\n"
        "parse error is always fatal and cannot be pragma-waived: fix the\n"
        "syntax first."
    ),
    "REPRO001": (
        "Dense arithmetic (the '@'/'@=' operators, np.dot, np.matmul,\n"
        "np.outer, np.einsum, ndarray .dot(), ...) performs O(size) or more\n"
        "flops.  Outside repro/bsp/kernels.py nothing charges the simulated\n"
        "machine for them, so the measured F and Q silently under-count.\n"
        "Route the product through a sharded kernel (local_matmul, ...) or\n"
        "charge it explicitly with machine.charge_flops."
    ),
    "REPRO002": (
        "numpy.linalg / scipy.linalg factorizations cost O(n^3) flops that\n"
        "the machine never sees.  Use the charged block algorithms\n"
        "(repro.blocks) or, for verification-only oracles, call through\n"
        "repro/util/validation.py, which is allowlisted by design."
    ),
    "REPRO003": (
        "Copying a rank-owned '.data' buffer moves words through the memory\n"
        "hierarchy.  In a function whose call closure performs no\n"
        "communication or traffic charge, that copy is unaccounted data\n"
        "motion.  Recognized copy forms: '<x>.data.copy()', slice copies\n"
        "like '<x>.data[...].copy()', and np.copy / np.array / np.asarray /\n"
        "np.ascontiguousarray applied to a '.data' expression.  Under\n"
        "--dataflow the charge may live in a helper or (for every caller) in\n"
        "the callers; the lexical mode resolves helpers within the module."
    ),
    "REPRO004": (
        "p2p() charges a point-to-point transfer but does NOT close the\n"
        "superstep: under BSP semantics the words are not delivered until a\n"
        "superstep barrier.  A p2p whose enclosing function (or, under\n"
        "--dataflow, its call closure / every caller) never reaches\n"
        "machine.superstep models a send that never completes."
    ),
    "REPRO005": (
        "A '# cost:' comment that matches neither 'free(<reason>)' nor\n"
        "'free-module(<reason>)', or that has an empty reason, is reported\n"
        "so a typo cannot silently disable the linter.  The reason is\n"
        "mandatory and should say WHY the cost is free."
    ),
    "REPRO006": (
        "A rank-indexed store (buffers[r] written inside a loop over ranks)\n"
        "models per-rank ownership.  Reading buffers[s] for a different rank\n"
        "expression (a neighbor offset, another loop's rank variable) is a\n"
        "cross-rank read: on a real machine that data is remote.  The read\n"
        "is clean only when the function's call closure performs a\n"
        "collective / fetch_window / p2p that could have moved it.  This is\n"
        "the static complement of VerifiedMachine's read-provenance check."
    ),
    "REPRO007": (
        "After a buffer is referenced by an unbarriered send (p2p, or a raw\n"
        "machine.charge_comm with sends=), BSP semantics say the transfer is\n"
        "in flight until the next superstep barrier.  Writing to the buffer\n"
        "before that barrier races with the delivery: the receiver may see\n"
        "either value.  Collectives are safe (they barrier internally);\n"
        "helpers that superstep also close the window (call-graph-aware)."
    ),
    "REPRO008": (
        "Storing a buffer reference (an ndarray, a '.data' attribute, or\n"
        "another rank's entry) into a rank-indexed store without .copy()\n"
        "makes two ranks alias one storage: a write through either handle\n"
        "mutates both ranks' state with no charged communication.  Copy the\n"
        "buffer (and charge the copy) or route through a collective."
    ),
    "REPRO009": (
        "A rank-owned '.data' buffer escaped its defining function — via\n"
        "return, an argument to an unknown/uncharging callee, an attribute\n"
        "store, or a closure capture — and neither the function nor its call\n"
        "closure charges anything, so the data left rank context without any\n"
        "accounted motion.  A charged escape (DistMatrix.gather, windowed\n"
        "fetch/store) is fine; so is one where every known caller charges."
    ),
    "REPRO010": (
        "Each registered stage carries a symbolic cost certificate: the\n"
        "certifier extracts the stage's loop/charge structure into a\n"
        "polynomial in (n, b, p, p^delta, ...) and compares the leading-term\n"
        "degree against the stage's repro.model.costs lemma at reference\n"
        "scalings.  This finding means a code path now charges asymptotically\n"
        "MORE than the lemma allows — e.g. un-aggregating full_to_band's\n"
        "trailing update turns W = O(n^2/p^delta) into O(n^3/(b p^delta)).\n"
        "Fix the algorithm, or update the lemma if the paper's bound changed."
    ),
    "REPRO011": (
        "A stage registered in repro.lint.certify could not be extracted:\n"
        "a loop whose trip count the certifier cannot infer, or a charge\n"
        "whose magnitude involves values it cannot resolve.  Add a\n"
        "'# certify: trips(<expr>)' hint on the loop line (or\n"
        "'# certify: count(<expr>)' on the charge) so the certificate stays\n"
        "checkable — an unextractable stage is an unchecked stage."
    ),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, addressable as ``path:line:col``."""

    path: str  # posix path relative to the lint root
    line: int  # 1-based
    col: int  # 0-based, as in ast
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def make_finding(path: str, line: int, col: int, rule: str, detail: str = "") -> Finding:
    """Build a finding with the rule's canonical message plus optional detail."""
    if rule not in RULES:
        raise KeyError(f"unknown lint rule {rule!r}")
    message = RULES[rule] if not detail else f"{RULES[rule].split(':', 1)[0]}: {detail}"
    return Finding(path=path, line=line, col=col, rule=rule, message=message)


def explain_rule(rule: str) -> str:
    """Long-form help text for ``repro lint --explain RULE``."""
    rule = rule.upper()
    if rule not in RULES:
        raise KeyError(f"unknown lint rule {rule!r} (known: {', '.join(sorted(RULES))})")
    header = f"{rule}: {RULES[rule]}"
    return header + "\n\n" + EXPLANATIONS[rule]
