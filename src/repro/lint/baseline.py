"""Checked-in lint baseline.

The baseline records *accepted* findings as ``path rule count`` triples so
intentional, documented exceptions (e.g. the cost-free test-matrix
generators) do not fail the build, while any **new** finding in the same
file does.  Counts, not line numbers, are stored so unrelated edits do not
churn the file.

Workflow::

    repro lint                          # fails on findings not in baseline
    repro lint --write-baseline         # accept current findings (review the diff!)
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.lint.rules import Finding

BASELINE_NAME = "lint_baseline.txt"

_HEADER = """\
# repro lint baseline — accepted findings as "<path> <rule> <count>".
# Regenerate with `repro lint --write-baseline`; new findings beyond these
# counts fail the build.  See docs/static_analysis.md.
"""


def parse_baseline(text: str) -> dict[tuple[str, str], int]:
    """Parse baseline text into ``{(path, rule): allowed_count}``."""
    allowed: dict[tuple[str, str], int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise ValueError(f"baseline line {lineno}: expected '<path> <rule> <count>', got {raw!r}")
        path, rule, count = parts
        try:
            allowed[(path, rule)] = allowed.get((path, rule), 0) + int(count)
        except ValueError as exc:
            raise ValueError(f"baseline line {lineno}: bad count {count!r}") from exc
    return allowed


def load_baseline(path: Path | None) -> dict[tuple[str, str], int]:
    if path is None or not path.is_file():
        return {}
    return parse_baseline(path.read_text())


def render_baseline(findings: list[Finding]) -> str:
    """Serialize current findings as baseline text."""
    counts = Counter((f.path, f.rule) for f in findings)
    lines = [f"{path} {rule} {count}" for (path, rule), count in sorted(counts.items())]
    return _HEADER + "\n".join(lines) + ("\n" if lines else "")


def apply_baseline(
    findings: list[Finding], allowed: dict[tuple[str, str], int]
) -> tuple[list[Finding], int]:
    """Split findings into (reported, n_suppressed).

    A (path, rule) group is suppressed entirely while its size stays within
    the baselined count; if the group *grows*, every finding in it is
    reported (the offending new line cannot be identified by count alone).
    """
    groups = Counter((f.path, f.rule) for f in findings)
    reported: list[Finding] = []
    suppressed = 0
    for f in findings:
        quota = allowed.get((f.path, f.rule), 0)
        if groups[(f.path, f.rule)] <= quota:
            suppressed += 1
        else:
            reported.append(f)
    return reported, suppressed


def stale_entries(
    findings: list[Finding], allowed: dict[tuple[str, str], int]
) -> list[tuple[str, str, int, int]]:
    """Baseline entries whose quota exceeds the current finding count.

    Returns ``(path, rule, allowed, actual)`` per stale entry.  A stale
    entry means a previously-accepted finding was fixed but the baseline
    still licenses it — the quota should be ratcheted down (regenerate with
    ``--write-baseline``) so the fix cannot silently regress.
    """
    groups = Counter((f.path, f.rule) for f in findings)
    return [
        (path, rule, quota, groups.get((path, rule), 0))
        for (path, rule), quota in sorted(allowed.items())
        if groups.get((path, rule), 0) < quota
    ]


def discover_baseline(start: Path) -> Path | None:
    """Walk up from ``start`` looking for the checked-in baseline file."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for parent in (node, *node.parents):
        candidate = parent / BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None
