"""Project call graph over :class:`ModuleSummary` facts.

The analyzer (:mod:`repro.lint.analyzer`) reduces every module to a
:class:`ModuleSummary`: per-function facts (which charging APIs are called
directly, where buffers are copied / sent / escaped) plus the outgoing
call sites.  This module links those summaries into a call graph with
conservative name resolution and answers the transitive questions the
interprocedural rules need:

* does this function's call closure charge / communicate / superstep?
* who calls this function, and do *all* known callers charge?

Resolution is deliberately over-approximate in the safe direction: an
``obj.m()`` call unifies with every known function or method named ``m``,
so a helper that might charge is assumed to charge — unresolvable calls
never silence a finding, and fuzzy ones only ever suppress, not create.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: calls that charge the machine — their presence marks a function as
#: "charging" for the REPRO003/REPRO009 heuristics
CHARGE_CALLS = frozenset(
    {
        "charge_comm",
        "charge_comm_batch",
        "charge_comm_matrix",
        "charge_flops",
        "charge_flops_batch",
        "superstep",
        "mem_stream",
        "mem_stream_group",
        "mem_read",
        "mem_write",
        "charge_store",
        "fetch_window",
        "store_window",
        "redistribute",
        "replicate",
        "bcast",
        "reduce",
        "allreduce",
        "reduce_scatter",
        "allgather",
        "gather",
        "scatter",
        "alltoall",
        "alltoall_matrix",
        "p2p",
    }
)

#: the subset of :data:`CHARGE_CALLS` that moves words between ranks —
#: a cross-rank read (REPRO006) is mediated only by one of these
COMM_CALLS = frozenset(
    {
        "charge_comm",
        "charge_comm_batch",
        "charge_comm_matrix",
        "charge_store",
        "fetch_window",
        "store_window",
        "redistribute",
        "replicate",
        "bcast",
        "reduce",
        "allreduce",
        "reduce_scatter",
        "allgather",
        "gather",
        "scatter",
        "alltoall",
        "alltoall_matrix",
        "p2p",
    }
)

#: calls that close the superstep internally (the collectives and the dist
#: window/redistribution layer all end in ``machine.superstep``) — for the
#: REPRO007 in-flight window these act as barriers even when the callee's
#: source is not part of the linted file set
BARRIER_CALLS = frozenset(
    {
        "superstep",
        "fetch_window",
        "store_window",
        "redistribute",
        "replicate",
        "charge_store",
        "bcast",
        "reduce",
        "allreduce",
        "reduce_scatter",
        "allgather",
        "gather",
        "scatter",
        "alltoall",
        "alltoall_matrix",
    }
)

#: memory-accounting calls: they do not move words, but a function that
#: notes its footprint is participating in cost accounting (REPRO009)
MEMORY_CALLS = frozenset({"note_memory", "add_memory", "release_memory"})


@dataclass(frozen=True)
class CallSite:
    """One outgoing call: the dotted name chain as written, e.g. ``("self", "gather")``."""

    chain: tuple[str, ...]
    lineno: int
    col: int


@dataclass(frozen=True)
class Escape:
    """A rank-owned buffer leaving its defining function (REPRO009)."""

    kind: str  # "return" | "arg" | "attribute" | "closure"
    lineno: int
    col: int
    detail: str
    callee: tuple[str, ...] | None = None  # set for kind == "arg"


#: ordered intra-function events replayed by the REPRO007 scan:
#: ("send", line, col, names) / ("write", line, col, name) /
#: ("barrier", line, col, None) / ("call", line, col, chain)
FlowEvent = tuple[str, int, int, object]


@dataclass
class FunctionFacts:
    """Everything the interprocedural rules need to know about one function."""

    qualname: str  # "f", "Cls.m", "f.<locals>.g"
    name: str
    cls: str | None
    lineno: int
    # direct facts (from the function's own statements)
    charges: bool = False
    has_superstep: bool = False
    comms: bool = False
    notes_memory: bool = False
    data_copies: list[tuple[int, int]] = field(default_factory=list)
    p2p_calls: list[tuple[int, int]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    # dataflow events (REPRO006-009)
    flow: list[FlowEvent] = field(default_factory=list)
    cross_reads: list[tuple[int, int, str]] = field(default_factory=list)
    alias_stores: list[tuple[int, int, str]] = field(default_factory=list)
    escapes: list[Escape] = field(default_factory=list)


@dataclass
class ModuleSummary:
    """One module's functions, classes, and import aliases."""

    path: str  # posix path, relative to the lint root
    module: str  # dotted module-name guess derived from the path
    functions: dict[str, FunctionFacts] = field(default_factory=dict)
    classes: dict[str, list[str]] = field(default_factory=dict)
    #: alias visible in the module -> dotted target ("repro.blocks.rect_qr"
    #: for ``import``, "repro.bsp.collectives.p2p" for ``from .. import``)
    imports: dict[str, str] = field(default_factory=dict)
    tree: ast.Module | None = None
    source: str = ""


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a posix-relative path (``src/`` prefix dropped)."""
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


#: unique key for a function across the project
FuncKey = tuple[str, str]  # (module path, qualname)


class CallGraph:
    """Link module summaries and answer transitive charge/barrier queries."""

    def __init__(self, summaries: list[ModuleSummary]) -> None:
        self.summaries = summaries
        self.facts: dict[FuncKey, FunctionFacts] = {}
        self._by_module: dict[str, list[ModuleSummary]] = {}
        self._by_name: dict[str, list[FuncKey]] = {}
        for summary in summaries:
            for dotted in {summary.module, summary.module.rsplit(".", 1)[-1]}:
                if dotted:
                    self._by_module.setdefault(dotted, []).append(summary)
            for qualname, facts in summary.functions.items():
                key = (summary.path, qualname)
                self.facts[key] = facts
                self._by_name.setdefault(facts.name, []).append(key)
        # resolved edges and reverse edges
        self.edges: dict[FuncKey, list[FuncKey]] = {}
        self.callers: dict[FuncKey, list[FuncKey]] = {}
        for summary in summaries:
            for qualname, facts in summary.functions.items():
                key = (summary.path, qualname)
                out: list[FuncKey] = []
                for site in facts.calls:
                    out.extend(self.resolve(summary, facts, site.chain))
                # a nested function's facts also flow into its parent: the
                # closure runs (if at all) inside the parent's dynamic extent
                prefix = qualname + ".<locals>."
                out.extend(
                    (summary.path, q) for q in summary.functions if q.startswith(prefix)
                )
                self.edges[key] = sorted(set(out))
                for callee in self.edges[key]:
                    self.callers.setdefault(callee, []).append(key)
        self._memo: dict[tuple[str, FuncKey], bool] = {}

    # ------------------------------------------------------------------ #
    # resolution

    def _module_functions(self, dotted: str, name: str) -> list[FuncKey]:
        """Functions/classes called ``name`` in modules matching ``dotted``."""
        out: list[FuncKey] = []
        for summary in self._by_module.get(dotted, []):
            out.extend(self._in_summary(summary, name))
        return out

    @staticmethod
    def _in_summary(summary: ModuleSummary, name: str) -> list[FuncKey]:
        out: list[FuncKey] = []
        if name in summary.functions:
            out.append((summary.path, name))
        if name in summary.classes:  # constructor call -> __init__
            init = f"{name}.__init__"
            if init in summary.functions:
                out.append((summary.path, init))
        return out

    def resolve(
        self, summary: ModuleSummary, caller: FunctionFacts, chain: tuple[str, ...]
    ) -> list[FuncKey]:
        """All functions a call through ``chain`` may reach (possibly empty)."""
        if not chain:
            return []
        if len(chain) == 1:
            name = chain[0]
            local = self._in_summary(summary, name)
            if local:
                return local
            target = summary.imports.get(name)
            if target:
                mod, _, obj = target.rpartition(".")
                if mod:
                    hits = self._module_functions(mod, obj)
                    if hits:
                        return hits
                # ``import pkg.mod`` bound bare: calling it is not a function
                return []
            return []
        head, tail = chain[0], chain[1:]
        if head == "self" and len(tail) == 1 and caller.cls is not None:
            method = f"{caller.cls}.{tail[0]}"
            if method in summary.functions:
                return [(summary.path, method)]
            return self._by_name.get(tail[0], [])
        target = summary.imports.get(head)
        if target is not None and len(tail) == 1:
            hits = self._module_functions(target, tail[0])
            if hits:
                return hits
            # imported module we did not index (numpy, scipy, stdlib):
            # resolving against same-named project functions would be wrong
            return []
        # ``obj.m(...)`` — unify with every known function/method named m
        return self._by_name.get(tail[-1], [])

    # ------------------------------------------------------------------ #
    # transitive queries

    def _transitive(self, attr: str, key: FuncKey, seen: set[FuncKey]) -> bool:
        memo_key = (attr, key)
        if memo_key in self._memo:
            return self._memo[memo_key]
        facts = self.facts.get(key)
        if facts is None:
            return False
        if getattr(facts, attr):
            self._memo[memo_key] = True
            return True
        seen.add(key)
        result = any(
            self._transitive(attr, callee, seen)
            for callee in self.edges.get(key, [])
            if callee not in seen
        )
        # only cache positive results: a False reached through a cycle guard
        # may be a True along a different traversal order
        if result:
            self._memo[memo_key] = True
        return result

    def transitively_charges(self, key: FuncKey) -> bool:
        return self._transitive("charges", key, set())

    def transitively_supersteps(self, key: FuncKey) -> bool:
        return self._transitive("has_superstep", key, set())

    def transitively_comms(self, key: FuncKey) -> bool:
        return self._transitive("comms", key, set())

    def transitively_accounts(self, key: FuncKey) -> bool:
        """Charges anything, including memory-footprint accounting."""
        return self._transitive("charges", key, set()) or self._transitive(
            "notes_memory", key, set()
        )

    def all_known_callers(self, key: FuncKey, predicate: str) -> bool:
        """True if the function has callers and every one satisfies ``predicate``
        (a ``transitively_*`` method name) — used to accept helpers that charge
        on their caller's behalf, or are barriered by every caller."""
        callers = [c for c in self.callers.get(key, []) if c != key]
        if not callers:
            return False
        check = getattr(self, predicate)
        return all(check(c) for c in callers)
