"""Interprocedural BSP ownership/race rules over the project call graph.

Evaluates the per-function facts collected by :mod:`repro.lint.analyzer`
against a :class:`~repro.lint.callgraph.CallGraph`:

* :func:`charge_findings` — REPRO003 (uncounted ``.data`` copies) and
  REPRO004 (unbarriered ``p2p``), call-graph-aware: a helper that charges
  or supersteps on the caller's behalf — or a caller that always closes
  the barrier — suppresses the finding.
* :func:`race_findings` — REPRO006 (cross-rank reads), REPRO007
  (write-after-send before the closing barrier), REPRO008 (two ranks'
  buffers aliasing one storage), REPRO009 (buffers escaping uncharged
  contexts).

Both are pure functions of the graph; pragma and baseline filtering stay
in :mod:`repro.lint.runner`.  The static race rules complement the dynamic
:class:`~repro.lint.verify.VerifiedMachine`: the verifier catches a race
the moment a run trips it, these rules catch it on code the test matrix
never executes.
"""

from __future__ import annotations

from repro.lint.callgraph import COMM_CALLS, CallGraph, FuncKey, FunctionFacts
from repro.lint.rules import Finding, make_finding


def charge_findings(graph: CallGraph) -> list[Finding]:
    """Call-graph-aware REPRO003/REPRO004."""
    findings: list[Finding] = []
    for key, facts in graph.facts.items():
        path, _ = key
        if facts.data_copies and not _charge_covered(graph, key):
            where = _describe(facts)
            for line, col in facts.data_copies:
                findings.append(
                    make_finding(
                        path, line, col, "REPRO003",
                        f"'.data' buffer copied in {where} which performs no "
                        "communication or traffic charge (nor do its callers)",
                    )
                )
        if facts.p2p_calls and not _barrier_covered(graph, key):
            where = _describe(facts)
            for line, col in facts.p2p_calls:
                findings.append(
                    make_finding(
                        path, line, col, "REPRO004",
                        f"p2p() in {where} is never closed by a superstep barrier "
                        "(here or in any caller)",
                    )
                )
    return findings


def race_findings(graph: CallGraph) -> list[Finding]:
    """REPRO006-009 over the whole linted file set."""
    findings: list[Finding] = []
    for key, facts in graph.facts.items():
        findings.extend(_cross_rank_reads(graph, key, facts))
        findings.extend(_write_after_send(graph, key, facts))
        findings.extend(_rank_aliases(graph, key, facts))
        findings.extend(_escapes(graph, key, facts))
    return findings


# --------------------------------------------------------------------- #
# helpers


def _describe(facts: FunctionFacts) -> str:
    return "module-level code" if facts.name == "<module>" else f"{facts.name}()"


def _charge_covered(graph: CallGraph, key: FuncKey) -> bool:
    return graph.transitively_charges(key) or graph.all_known_callers(
        key, "transitively_charges"
    )


def _barrier_covered(graph: CallGraph, key: FuncKey) -> bool:
    return graph.transitively_supersteps(key) or graph.all_known_callers(
        key, "transitively_supersteps"
    )


def _comm_covered(graph: CallGraph, key: FuncKey, facts: FunctionFacts) -> bool:
    # a function that *is* the communication layer mediates by definition
    if facts.name in COMM_CALLS:
        return True
    return graph.transitively_comms(key) or graph.all_known_callers(
        key, "transitively_comms"
    )


def _account_covered(graph: CallGraph, key: FuncKey) -> bool:
    return graph.transitively_accounts(key) or graph.all_known_callers(
        key, "transitively_accounts"
    )


# --------------------------------------------------------------------- #
# REPRO006 — cross-rank reads


def _cross_rank_reads(graph: CallGraph, key: FuncKey, facts: FunctionFacts) -> list[Finding]:
    if not facts.cross_reads or _comm_covered(graph, key, facts):
        return []
    path, _ = key
    return [
        make_finding(
            path, line, col, "REPRO006",
            f"{detail} in {_describe(facts)}, whose call closure performs no "
            "collective / fetch_window / p2p to mediate it",
        )
        for line, col, detail in facts.cross_reads
    ]


# --------------------------------------------------------------------- #
# REPRO007 — write after an unbarriered send


def _write_after_send(graph: CallGraph, key: FuncKey, facts: FunctionFacts) -> list[Finding]:
    findings: list[Finding] = []
    path, _ = key
    summary = next(s for s in graph.summaries if s.path == path)
    in_flight: dict[str, int] = {}  # buffer name -> send line
    for kind, line, col, payload in facts.flow:
        if kind == "send":
            for name in payload:  # type: ignore[union-attr]
                in_flight[str(name)] = line
        elif kind == "barrier":
            in_flight.clear()
        elif kind == "call":
            if in_flight and any(
                graph.transitively_supersteps(callee)
                for callee in graph.resolve(summary, facts, payload)  # type: ignore[arg-type]
            ):
                in_flight.clear()
        elif kind == "write":
            name = str(payload)
            if name in in_flight:
                findings.append(
                    make_finding(
                        path, line, col, "REPRO007",
                        f"'{name}' is written while in flight (sent on line "
                        f"{in_flight[name]}) before the closing superstep barrier",
                    )
                )
                del in_flight[name]
    return findings


# --------------------------------------------------------------------- #
# REPRO008 — rank-buffer aliasing


def _rank_aliases(graph: CallGraph, key: FuncKey, facts: FunctionFacts) -> list[Finding]:
    if not facts.alias_stores or _comm_covered(graph, key, facts):
        return []
    path, _ = key
    return [
        make_finding(
            path, line, col, "REPRO008",
            f"{detail} in {_describe(facts)} with no charged replication",
        )
        for line, col, detail in facts.alias_stores
    ]


# --------------------------------------------------------------------- #
# REPRO009 — buffer escapes from uncharged contexts


def _escapes(graph: CallGraph, key: FuncKey, facts: FunctionFacts) -> list[Finding]:
    if not facts.escapes or _account_covered(graph, key):
        return []
    path, _ = key
    summary = next(s for s in graph.summaries if s.path == path)
    findings: list[Finding] = []
    for esc in facts.escapes:
        if esc.kind == "arg" and esc.callee is not None:
            callees = graph.resolve(summary, facts, esc.callee)
            if callees and any(graph.transitively_accounts(c) for c in callees):
                continue  # the receiver accounts for the buffer
        findings.append(
            make_finding(
                path, esc.lineno, esc.col, "REPRO009",
                f"{esc.detail} from {_describe(facts)}, whose call closure "
                "never charges",
            )
        )
    return findings
