"""Dynamic BSP discipline verifier.

:class:`VerifiedMachine` is a drop-in :class:`~repro.bsp.machine.BSPMachine`
that re-checks the accounting invariants the whole cost methodology rests
on, at every superstep barrier and at every :meth:`cost` snapshot:

* **conservation** — globally, Σ words_sent == Σ words_received (every
  transfer books both sides);
* **monotone counters** — F, W, Q, S and the peak-memory high-water mark
  never decrease (nothing un-charges cost);
* **memory bound** — no rank's live footprint exceeds the configured
  per-rank budget, by default the paper's M = O(n²/p^{2(1−δ)}) from
  :func:`repro.model.bounds.memory_bound_words`;
* **read provenance** (``strict_reads=True``) — a rank may only
  ``mem_read`` a keyed dataset it previously wrote, read, or was granted
  via :meth:`grant`; i.e. no rank consumes data it was never sent.

Violations raise :class:`BSPDisciplineError` at the *first* barrier that
observes them, so the failing superstep is identifiable from the trace.
Enable in tests with ``REPRO_VERIFY=1`` (see ``tests/conftest.py``) and on
the CLI with ``repro solve --verify`` / ``repro run --verify``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from types import TracebackType

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.trace.spans import SpanHandle

#: counter quantities whose per-rank values must never decrease
_MONOTONE_FIELDS = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
)


class BSPDisciplineError(AssertionError):
    """A BSP cost-accounting invariant was violated."""


class _VerifiedSpan(SpanHandle):
    """Span handle that re-checks all invariants when the span closes, so
    a violation is pinned to the span that caused it, not just to the next
    superstep barrier."""

    __slots__ = ("_machine", "_inner", "_name")

    def __init__(self, machine: "VerifiedMachine", inner: SpanHandle, name: str):
        self._machine = machine
        self._inner = inner
        self._name = name

    def __enter__(self) -> "_VerifiedSpan":
        self._inner.__enter__()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._inner.__exit__(exc_type, exc, tb)
        if exc_type is None:
            self._machine.verify(f"span({self._name})")
        return False


class VerifiedMachine(BSPMachine):
    """A ``BSPMachine`` that asserts accounting invariants as it runs.

    Parameters beyond :class:`BSPMachine`'s:

    ``memory_bound_words``
        per-rank peak-memory budget; ``None`` disables the check.
    ``strict_reads``
        enforce read provenance on keyed ``mem_read`` calls.
    ``conservation_rtol``
        relative tolerance on global sent-vs-received words.  The repo's
        collectives balance exactly; the tolerance only absorbs float
        summation order.
    """

    def __init__(
        self,
        p: int,
        params: MachineParams | None = None,
        trace: bool = False,
        engine: str | None = None,
        spans: bool | None = None,
        metrics: bool | None = None,
        *,
        memory_bound_words: float | None = None,
        strict_reads: bool = False,
        conservation_rtol: float = 1e-6,
    ):
        super().__init__(p, params, trace, engine, spans, metrics)
        self.memory_bound_words = memory_bound_words
        self.strict_reads = strict_reads
        self.conservation_rtol = conservation_rtol
        self.checks_run = 0
        self._watermarks = self.counters.snapshot()
        self._known_keys: list[set[object]] = [set() for _ in range(self.p)]

    @classmethod
    def for_problem(
        cls,
        p: int,
        n: int,
        delta: float,
        params: MachineParams | None = None,
        slack: float = 8.0,
        **kwargs: object,
    ) -> "VerifiedMachine":
        """A verifier budgeted for one (n, p, δ) eigensolve: per-rank memory
        capped at ``slack`` × the Theorem IV.4 bound M = n²/p^{2(1−δ)}."""
        from repro.model.bounds import memory_bound_words

        return cls(
            p, params, memory_bound_words=memory_bound_words(n, p, delta, slack=slack), **kwargs
        )

    # -------------------------------------------------------------- #
    # checked primitives

    def superstep(self, group: RankGroup | Iterable[int] | None = None, count: int = 1) -> None:
        super().superstep(group, count)
        self.verify("superstep")

    def cost(self):  # noqa: ANN201 — see BSPMachine.cost
        self.verify("cost()")
        return super().cost()

    def span(self, name: str, group: RankGroup | None = None) -> SpanHandle:
        inner = super().span(name, group)
        if not self.spans.enabled:
            return inner
        return _VerifiedSpan(self, inner, name)

    def reset(self) -> None:
        super().reset()
        self._watermarks = self.counters.snapshot()
        self._known_keys = [set() for _ in range(self.p)]

    def mem_write(self, rank: int, key: object, words: float) -> None:
        self._known_keys[self._check_rank(rank)].add(key)
        super().mem_write(rank, key, words)

    def mem_read(self, rank: int, key: object, words: float) -> None:
        known = self._known_keys[self._check_rank(rank)]
        if self.strict_reads and key not in known:
            raise BSPDisciplineError(
                f"read-provenance violation: rank {rank} reads dataset {key!r} "
                "it never wrote, read, or was granted (data it was never sent)"
            )
        known.add(key)
        super().mem_read(rank, key, words)

    def grant(self, ranks: Iterable[int] | int, key: object) -> None:
        """Record that a dataset was delivered to ``ranks`` (e.g. by a
        broadcast the caller charged), licensing future strict reads."""
        if isinstance(ranks, int):
            ranks = (ranks,)
        for r in ranks:
            self._known_keys[self._check_rank(r)].add(key)

    # -------------------------------------------------------------- #
    # the invariants

    def verify(self, context: str = "explicit") -> None:
        """Check all invariants now; raises :class:`BSPDisciplineError`.

        All three checks are whole-array numpy comparisons against the
        previous watermark snapshot, so a verified run costs O(1) numpy ops
        per superstep instead of O(p) Python attribute reads — this is what
        keeps ``--verify`` close to the cost of an unverified run.
        """
        self.checks_run += 1
        self._check_conservation(context)
        self._check_monotone(context)
        self._check_memory_bound(context)
        self._watermarks = self.counters.snapshot()

    def _check_conservation(self, context: str) -> None:
        sent = float(np.sum(self.counters.field_array("words_sent")))
        recv = float(np.sum(self.counters.field_array("words_recv")))
        tol = self.conservation_rtol * max(1.0, sent, recv)
        if abs(sent - recv) > tol:
            raise BSPDisciplineError(
                f"conservation violation at {context}: words sent ({sent:.6g}) "
                f"!= words received ({recv:.6g}); some transfer books only one side"
            )

    def _check_monotone(self, context: str) -> None:
        for name in _MONOTONE_FIELDS:
            now = self.counters.field_array(name)
            mark = self._watermarks.field_array(name)
            decreased = now < mark
            if decreased.any():
                rank = int(np.argmax(decreased))
                raise BSPDisciplineError(
                    f"monotonicity violation at {context}: rank {rank} counter "
                    f"{name} decreased ({float(mark[rank]):.6g} -> {float(now[rank]):.6g})"
                )

    def _check_memory_bound(self, context: str) -> None:
        if self.memory_bound_words is None:
            return
        peak = self.counters.field_array("peak_memory_words")
        over = peak > self.memory_bound_words
        if over.any():
            rank = int(np.argmax(over))
            raise BSPDisciplineError(
                f"memory-bound violation at {context}: rank {rank} peak footprint "
                f"{float(peak[rank]):.6g} words exceeds the M budget "
                f"{self.memory_bound_words:.6g}"
            )

    def __repr__(self) -> str:
        return (
            f"VerifiedMachine(p={self.p}, params={self.params}, "
            f"memory_bound_words={self.memory_bound_words}, strict_reads={self.strict_reads})"
        )
