"""The batched eigensolver service: queue → plan → solve → schedule.

:class:`EigenService` is the serving pipeline the tentpole describes:

1. **Plan** — each request's ``(n, p_max, params)`` shape is routed through
   the persistent δ-autotuning cache (:mod:`repro.serve.cache`) and the
   regime planner (:mod:`repro.serve.planner`): how many ranks, which δ,
   replicated or grid.  Repeat shapes skip re-planning entirely.
2. **Solve** — every attempt runs the planned solver on a **fresh**
   :class:`~repro.bsp.machine.BSPMachine` of exactly its planned rank
   count, so its eigenvalues and cost report are byte-identical to a
   single-shot run of the same ``(matrix, p, δ)``.  Repeat attempts of
   the same plan (retries, hedges) hit a solve memo — one wall-clock
   solve per distinct plan, however many simulated trials charge it.
3. **Schedule** — the measured cost reports give each attempt its
   simulated service time T = γF + βW + νQ + αS; the resilient event loop
   (:mod:`repro.serve.resilience`) replays the workload's arrival trace
   against the machine pool under the service's
   :class:`~repro.serve.resilience.ResiliencePolicy` — deadlines/EDF,
   retry ladder, quarantine, hedging, admission control — and drives
   every job to a terminal disposition (``ok | degraded | shed | error``).

Failure handling is the resilience layer's escalation ladder and runs for
*any* typed error outcome, whether it came from configured fault
injection, a service-level chaos scenario, or a genuine solver bug:
same-plan retry → grid-shrink replan (δ through the cache's ``replan``
path) → replicated single-rank solve.  Only a job that exhausts its
retry budget surfaces as an error result; no code path returns a
spectrum that was not guarded.

With a :class:`~repro.serve.journal.JobJournal` attached, every
submission, attempt outcome, and terminal disposition is journaled
write-ahead (fsync'd JSONL), so a service process killed mid-workload
resumes by replaying completed solves from the journal — byte-identical
to the uninterrupted run, without recomputing finished eigensolves.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.eig import solve_by_name
from repro.metrics.attainment import attainment_ratios
from repro.obs.telemetry import NO_TELEMETRY, Telemetry
from repro.serve.cache import TuningCache, cached_replan_delta, model_fingerprint
from repro.serve.journal import JobJournal
from repro.serve.planner import DEFAULT_ALGORITHM, Plan, plan_job
from repro.serve.pool import MachinePool
from repro.serve.resilience import (
    DEFAULT_POLICY,
    SERVICE_SCENARIOS,
    AttemptOutcome,
    ResiliencePolicy,
    Rung,
    ServiceScenario,
    SimJob,
    run_resilient,
    slo_summary,
)
from repro.serve.scheduler import Schedule
from repro.serve.workload import JobSpec, Workload
from repro.util.matrices import random_symmetric


def _json_native(value: Any) -> Any:
    """Deep-coerce numpy scalars to native python numbers.

    Summary documents are persisted through ``json`` (benches, journals,
    telemetry), whose repr-float serialization round-trips IEEE doubles
    exactly — but only for *native* floats; a ``np.float64`` leaking in
    raises, and a lossy pre-conversion would silently break the journal's
    byte-identity guarantees.  Coercing at the summary boundary makes
    summary → JSON → summary exact by construction (regression-tested in
    ``tests/test_obs.py``).
    """
    if isinstance(value, dict):
        return {k: _json_native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_native(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


@dataclass
class JobResult:
    """Everything the service knows about one terminal (or failed) job."""

    job_id: int
    n: int
    seed: int
    plan: Plan
    status: str                    # "ok" | "error" | "shed"
    eigenvalues: np.ndarray | None
    service_time: float            # simulated T of the winning attempt
    sim_cost: dict[str, float]
    planned_from_cache: bool
    retries: int = 0
    degraded: bool = False         # settled on a grid-shrink/replicated rung
    hedged: bool = False           # a speculative duplicate was launched
    attempts: int = 1              # executed attempts (retries + hedges)
    slo: str = "batch"
    deadline_hit: bool = True
    error: str = ""
    error_type: str = ""
    attainment: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def disposition(self) -> str:
        """Terminal disposition (``ok | degraded | shed | error``)."""
        if self.status == "ok":
            return "degraded" if self.degraded else "ok"
        return self.status


@dataclass
class ServeReport:
    """Aggregate outcome of one workload pass through the service."""

    results: list[JobResult]
    schedule: Schedule
    wall_s: float
    plan_hits: int
    cache_stats: dict[str, Any]
    pool: dict[str, Any]
    resilience: dict[str, Any] = field(default_factory=dict)
    slo: dict[str, Any] = field(default_factory=dict)
    health: list[dict[str, Any]] = field(default_factory=list)

    @property
    def jobs(self) -> int:
        return len(self.results)

    @property
    def ok_jobs(self) -> int:
        return sum(r.ok for r in self.results)

    @property
    def error_jobs(self) -> int:
        return sum(r.status == "error" for r in self.results)

    @property
    def shed_jobs(self) -> int:
        return sum(r.status == "shed" for r in self.results)

    @property
    def jobs_per_s(self) -> float:
        return self.jobs / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def plan_hit_rate(self) -> float:
        return self.plan_hits / self.jobs if self.jobs else 0.0

    def regimes(self) -> dict[str, int]:
        """Histogram "p=<ranks>" -> job count of the planner's routing."""
        out: dict[str, int] = {}
        for r in self.results:
            key = f"p={r.plan.p}"
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items(), key=lambda kv: int(kv[0][2:])))

    def sim_totals(self) -> dict[str, float]:
        """Exact simulated cost of each job's *winning* attempt, summed.

        Error jobs contribute the partial cost their last attempt accrued
        before faulting (they consumed machine time; dropping them would
        flatter the totals).  The all-attempts total — including hedges,
        retries, and probes — lives in ``resilience["charged"]``; the gap
        between the two is the price of resilience, kept visible.
        """
        totals = {"flops": 0.0, "words": 0.0, "mem_traffic": 0.0, "supersteps": 0.0}
        for r in self.results:
            for k in totals:
                totals[k] += r.sim_cost.get(k, 0.0)
        totals["service_time"] = sum(r.service_time for r in self.results)
        return totals

    def summary(self) -> dict[str, Any]:
        return _json_native(
            {
                "jobs": self.jobs,
                "ok": self.ok_jobs,
                "errors": self.error_jobs,
                "shed": self.shed_jobs,
                "degraded": sum(r.degraded for r in self.results),
                "retries": sum(r.retries for r in self.results),
                "wall_s": self.wall_s,
                "jobs_per_s": self.jobs_per_s,
                "plan_hits": self.plan_hits,
                "plan_hit_rate": self.plan_hit_rate,
                "regimes": self.regimes(),
                "sim": self.schedule.summary(),
                "sim_totals": self.sim_totals(),
                "resilience": self.resilience,
                "slo": self.slo,
                "cache": self.cache_stats,
                "pool": self.pool,
            }
        )


# ------------------------------------------------------------------ #
# job execution (top-level so a multiprocessing pool can pickle it)


def _params_payload(params: MachineParams) -> dict[str, float]:
    return {
        "gamma": params.gamma, "beta": params.beta, "nu": params.nu,
        "alpha": params.alpha, "memory_words": params.memory_words,
        "cache_words": params.cache_words,
    }


def execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Solve one planned job; pure function of the payload (worker-safe).

    Returns a plain dict (arrays and floats only) so results cross a
    process boundary cheaply.  A typed fault error is *returned*, not
    raised — the parent decides the escalation policy.  The error dict
    carries the *partial* cost the machine accrued before faulting, so a
    failed attempt still has a simulated service time to charge.

    With ``payload["spans"]`` (set by a telemetry-enabled service) the
    solve runs with span recording on and the outcome carries the solver's
    :class:`~repro.trace.spans.SpanEvent` tree as plain dicts under
    ``solver_spans``.  Costs, spectra, and service time are byte-identical
    either way — span recording only observes (the batched chase engine
    falls back to its bit-equal per-step path); the flag is deliberately
    excluded from :func:`_memo_key`.
    """
    from repro.faults.errors import FaultError

    params = MachineParams(**payload["params"])
    n, seed = payload["n"], payload["seed"]
    p, delta = payload["p"], payload["delta"]
    algorithm = payload["algorithm"]
    want_spans = bool(payload.get("spans"))
    a = random_symmetric(n, seed=seed)
    if payload.get("faults"):
        from repro.faults import FaultPlan, FaultyMachine
        from repro.faults.plan import SCENARIOS

        machine: BSPMachine = FaultyMachine(
            p, params,
            plan=FaultPlan(SCENARIOS[payload["faults"]], payload["fault_seed"]),
            spans=True,
        )
    else:
        machine = BSPMachine(p, params, spans=want_spans)

    def solver_spans() -> dict[str, Any]:
        if not want_spans:
            return {}
        return {
            "solver_p": p,
            "solver_spans": [ev.as_dict() for ev in machine.spans.events],
        }

    try:
        result = solve_by_name(algorithm, machine, a, delta)
    except FaultError as exc:
        partial = machine.cost()
        return {
            "job_id": payload["job_id"],
            "status": "error",
            "error": str(exc),
            "error_type": type(exc).__name__,
            "sim_cost": {
                "flops": partial.flops,
                "words": partial.words,
                "mem_traffic": partial.mem_traffic,
                "supersteps": float(partial.supersteps),
                "peak_memory_words": partial.peak_memory_words,
            },
            "service_time": params.time(
                partial.flops, partial.words, partial.mem_traffic, partial.supersteps
            ),
            **solver_spans(),
        }
    cost = result.cost
    return {
        "job_id": payload["job_id"],
        "status": "ok",
        "eigenvalues": result.eigenvalues,
        "sim_cost": {
            "flops": cost.flops,
            "words": cost.words,
            "mem_traffic": cost.mem_traffic,
            "supersteps": float(cost.supersteps),
            "peak_memory_words": cost.peak_memory_words,
        },
        "service_time": params.time(
            cost.flops, cost.words, cost.mem_traffic, cost.supersteps
        ),
        "attainment": attainment_ratios(result.stages, result.stage_meta),
        **solver_spans(),
    }


def _memo_key(payload: dict[str, Any]) -> str:
    """Identity of one solve: every field that changes its outcome.

    ``repr`` on δ keeps the full double, so two plans differing in the
    last ulp never collide.
    """
    return (
        f"n={payload['n']};seed={payload['seed']};p={payload['p']};"
        f"delta={payload['delta']!r};alg={payload['algorithm']};"
        f"faults={payload.get('faults', '')};fseed={payload.get('fault_seed', 0)}"
    )


def _attempt_to_json(raw: dict[str, Any]) -> dict[str, Any]:
    """Journal form of a solve outcome (JSON floats round-trip doubles).

    Captured solver spans are telemetry, not recovery state: they are
    stripped here so journal bytes are identical with telemetry on or off
    (a resumed run simply re-attaches no spans for replayed attempts).
    """
    doc = dict(raw)
    doc.pop("solver_spans", None)
    doc.pop("solver_p", None)
    ev = doc.get("eigenvalues")
    if ev is not None:
        doc["eigenvalues"] = [float(x) for x in np.asarray(ev)]
    return doc


def _attempt_from_json(doc: dict[str, Any]) -> dict[str, Any]:
    raw = dict(doc)
    ev = raw.get("eigenvalues")
    if ev is not None:
        raw["eigenvalues"] = np.asarray(ev, dtype=np.float64)
    return raw


class EigenService:
    """Batched eigensolver front-end over a pool of simulated machines."""

    def __init__(
        self,
        pool: MachinePool,
        cache: TuningCache | None = None,
        algorithm: str = DEFAULT_ALGORITHM,
        workers: int = 0,
        faults: str | None = None,
        fault_seed0: int = 0,
        policy: ResiliencePolicy | None = None,
        scenario: str | ServiceScenario | None = None,
        journal: JobJournal | str | Path | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else TuningCache()
        self.algorithm = algorithm
        self.workers = workers
        self.faults = faults or None
        self.fault_seed0 = fault_seed0
        self.policy = policy if policy is not None else DEFAULT_POLICY
        #: observability sink; NO_TELEMETRY keeps every hook a no-op and
        #: (crucially) leaves solve payloads untouched — the telemetry-off
        #: service is byte-identical to the pre-telemetry one
        self.telemetry: Any = telemetry if telemetry is not None else NO_TELEMETRY
        if isinstance(scenario, str):
            if scenario not in SERVICE_SCENARIOS:
                raise ValueError(
                    f"unknown service scenario {scenario!r}; "
                    f"choose from {sorted(SERVICE_SCENARIOS)}"
                )
            self.scenario: ServiceScenario | None = SERVICE_SCENARIOS[scenario]
        else:
            self.scenario = scenario
        if journal is None or isinstance(journal, JobJournal):
            self.journal = journal
        else:
            self.journal = JobJournal(journal)

    # -------------------------------------------------------------- #

    def plan(self, n: int) -> tuple[Plan, bool]:
        """Plan one problem size against the pool's largest machine."""
        return plan_job(
            self.cache, n, self.pool.max_ranks, self.pool.params, self.algorithm
        )

    def journal_fingerprint(self, workload: Workload) -> str:
        """Digest binding a journal file to this exact run configuration."""
        doc = {
            "workload": workload.to_json(),
            "params": self.pool.params.fingerprint(),
            "pool": self.pool.as_dict(),
            "algorithm": self.algorithm,
            "policy": self.policy.as_dict(),
            "scenario": self.scenario.as_dict() if self.scenario else None,
            "faults": self.faults,
            "fault_seed0": self.fault_seed0,
            "model": model_fingerprint(),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def _attempt_payload(
        self, spec: JobSpec, rung: Rung, attempt: int
    ) -> dict[str, Any]:
        """The solve payload of one attempt of one job.

        With the service-wide ``faults`` scenario (the PR 7 chaos path),
        every attempt is faulted with a per-(job, attempt) seed — except
        replicated-rung retries, which model the "clean single-rank
        fallback" the degraded path has always promised.  Service
        :class:`ServiceScenario` failures (flaky machine, poison,
        straggler) are applied *outside* the solve, in ``outcome_for`` —
        they are service-level events, so the underlying spectrum stays a
        clean memoizable solve.
        """
        payload: dict[str, Any] = {
            "job_id": spec.job_id,
            "n": spec.n,
            "seed": spec.seed,
            "p": rung.p,
            "delta": rung.delta,
            "algorithm": self.algorithm,
            "params": _params_payload(self.pool.params),
        }
        if self.telemetry.capture_solver_spans:
            payload["spans"] = True
        if (
            self.scenario is None
            and self.faults
            and not (rung.kind == "replicated" and attempt > 0)
        ):
            payload["faults"] = self.faults
            payload["fault_seed"] = self.fault_seed0 + spec.job_id + 1_000_003 * attempt
        return payload

    def _rung_for(self, plan: Plan, spec: JobSpec, failures: int) -> Rung:
        """The escalation ladder: failure count → next attempt's plan."""
        if failures == 0:
            return Rung(plan.p, plan.delta, "primary")
        if failures == 1:
            return Rung(plan.p, plan.delta, "same-plan")
        if failures == 2 and plan.p > 1:
            p2 = max(1, plan.p // 2)
            delta = cached_replan_delta(
                self.cache, spec.n, p2, self.pool.params, self.algorithm
            )
            return Rung(p2, delta, "grid-shrink" if p2 > 1 else "replicated")
        delta = cached_replan_delta(
            self.cache, spec.n, 1, self.pool.params, self.algorithm
        )
        return Rung(1, delta, "replicated")

    def run_workload(self, workload: Workload) -> ServeReport:
        """Serve every job of a workload; returns the aggregate report.

        Wall-clock work (actual eigensolves) happens lazily inside the
        simulated event loop through a memo keyed on the solve identity,
        so retries and hedges of an identical plan cost nothing extra in
        wall time while still being fully charged in simulated time.
        """
        t0 = time.perf_counter()
        telemetry = self.telemetry
        specs = {spec.job_id: spec for spec in workload.jobs}
        plans: dict[int, tuple[Plan, bool]] = {}
        for spec in workload.jobs:
            plans[spec.job_id] = self.plan(spec.n)
            if telemetry.enabled:
                plan, hit = plans[spec.job_id]
                telemetry.emit(
                    "plan", spec.arrival, job=spec.job_id, n=spec.n,
                    p=plan.p, delta=plan.delta, cache_hit=bool(hit),
                )
                telemetry.counter("plans")
                if hit:
                    telemetry.counter("plan_cache_hits")

        memo: dict[str, dict[str, Any]] = {}
        journal = self.journal
        if journal is not None:
            journal.open(self.journal_fingerprint(workload), len(workload.jobs))
            for key, doc in journal.attempts.items():
                memo[key] = _attempt_from_json(doc)
            for spec in workload.jobs:
                journal.record_submitted(spec.job_id, spec.as_dict())

        def solve(payload: dict[str, Any]) -> dict[str, Any]:
            key = _memo_key(payload)
            raw = memo.get(key)
            if raw is None:
                raw = execute_payload(payload)
                memo[key] = raw
                if journal is not None:
                    journal.record_attempt(key, _attempt_to_json(raw))
            return raw

        # attempt-0 payloads are placement-independent: warm the memo in
        # parallel before the (serial) simulated loop
        if self.workers > 0:
            first = [
                self._attempt_payload(
                    spec, self._rung_for(plans[spec.job_id][0], spec, 0), 0
                )
                for spec in workload.jobs
            ]
            todo = [pl for pl in first if _memo_key(pl) not in memo]
            if todo:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(max_workers=self.workers) as workers:
                    for pl, raw in zip(todo, workers.map(execute_payload, todo)):
                        memo[_memo_key(pl)] = raw
                        if journal is not None:
                            journal.record_attempt(_memo_key(pl), _attempt_to_json(raw))

        def rung_for(job_id: int, failures: int) -> Rung:
            return self._rung_for(plans[job_id][0], specs[job_id], failures)

        def outcome_for(
            job_id: int, rung: Rung, attempt: int, machine_id: int
        ) -> AttemptOutcome:
            spec = specs[job_id]
            raw = solve(self._attempt_payload(spec, rung, attempt))
            if telemetry.capture_solver_spans and "solver_spans" in raw:
                telemetry.attach_solver_spans(
                    str(job_id), attempt, int(raw.get("solver_p", rung.p)),
                    raw["solver_spans"],
                )
            out = dict(raw)  # never mutate the memoized dict
            service = float(raw.get("service_time", 0.0))
            scen = self.scenario
            if scen is not None and out["status"] == "ok":
                if scen.is_flaky_attempt(machine_id, job_id, attempt):
                    out = {
                        "job_id": job_id,
                        "status": "error",
                        "error": f"machine {machine_id} flaked on job {job_id} "
                        f"attempt {attempt}",
                        "error_type": "MachineFlakeError",
                        "sim_cost": raw.get("sim_cost", {}),
                        "service_time": service,
                    }
                elif scen.is_poison(job_id):
                    out = {
                        "job_id": job_id,
                        "status": "error",
                        "error": f"poison job {job_id}: typed failure on every attempt",
                        "error_type": "PoisonJobError",
                        "sim_cost": raw.get("sim_cost", {}),
                        "service_time": service,
                    }
            if scen is not None and scen.is_straggler(job_id, attempt):
                service *= scen.straggler_factor
                out["service_time"] = service
            return AttemptOutcome(
                ok=out["status"] == "ok",
                service_time=service,
                sim_cost=out.get("sim_cost", {}),
                payload=out,
            )

        def on_terminal(v) -> None:
            if journal is not None:
                journal.record_terminal(
                    v.job_id,
                    {
                        "disposition": v.disposition,
                        "slo": v.slo,
                        "deadline_hit": v.deadline_hit,
                        "finish": v.finish,
                        "attempts": v.attempts,
                        "retries": v.retries,
                        "hedged": v.hedged,
                    },
                )

        sim_jobs = [
            SimJob(spec.job_id, spec.arrival, spec.slo) for spec in workload.jobs
        ]
        run = run_resilient(
            sim_jobs, self.pool, rung_for, outcome_for, self.policy, on_terminal,
            telemetry=telemetry,
        )
        wall = time.perf_counter() - t0

        results: list[JobResult] = []
        for spec in workload.jobs:
            v = run.verdicts[spec.job_id]
            plan, hit = plans[spec.job_id]
            used = plan
            if v.rung is not None and (
                v.rung.p != plan.p or v.rung.delta != plan.delta
            ):
                used = Plan(
                    n=spec.n, p=v.rung.p, delta=v.rung.delta,
                    predicted_time=float("inf"), algorithm=self.algorithm,
                )
            payload = v.outcome.payload if v.outcome is not None else {}
            common = dict(
                job_id=spec.job_id, n=spec.n, seed=spec.seed, plan=used,
                planned_from_cache=hit, retries=v.retries,
                degraded=v.disposition == "degraded", hedged=v.hedged,
                attempts=v.attempts, slo=spec.slo, deadline_hit=v.deadline_hit,
            )
            if v.disposition in ("ok", "degraded"):
                results.append(
                    JobResult(
                        status="ok",
                        eigenvalues=payload["eigenvalues"],
                        service_time=v.outcome.service_time if v.outcome else 0.0,
                        sim_cost=payload.get("sim_cost", {}),
                        attainment=payload.get("attainment", []),
                        **common,
                    )
                )
            elif v.disposition == "shed":
                results.append(
                    JobResult(
                        status="shed",
                        eigenvalues=None, service_time=0.0, sim_cost={},
                        error="shed by admission control (queue at limit)",
                        error_type="Shed",
                        **common,
                    )
                )
            else:
                results.append(
                    JobResult(
                        status="error",
                        eigenvalues=None,
                        service_time=v.outcome.service_time if v.outcome else 0.0,
                        sim_cost=payload.get("sim_cost", {}),
                        error=payload.get("error", ""),
                        error_type=payload.get("error_type", ""),
                        **common,
                    )
                )

        self.cache.save()
        if journal is not None:
            journal.close()
        return ServeReport(
            results=sorted(results, key=lambda r: r.job_id),
            schedule=run.schedule,
            wall_s=wall,
            plan_hits=sum(hit for _, hit in plans.values()),
            cache_stats=self.cache.stats.as_dict(),
            pool=self.pool.as_dict(),
            resilience=run.stats.as_dict(),
            slo=slo_summary(list(run.verdicts.values())),
            health=run.health,
        )


def single_shot_eigenvalues(
    n: int, seed: int, p: int, delta: float, params: MachineParams,
    algorithm: str = DEFAULT_ALGORITHM,
) -> np.ndarray:
    """The reference a served job must match byte-for-byte: one fresh
    machine, one solve — exactly what a user calling ``eigensolve`` gets."""
    a = random_symmetric(n, seed=seed)
    machine = BSPMachine(p, params)
    return solve_by_name(algorithm, machine, a, delta).eigenvalues


def verify_against_single_shot(
    results: Sequence[JobResult], params: MachineParams
) -> list[str]:
    """Byte-identity check of every ok job versus a single-shot solve.

    Returns human-readable mismatch descriptions ([] = all identical).
    Degraded/hedged/retried jobs are verified against their *winning*
    plan — that is the solve that actually produced their spectrum.
    """
    problems: list[str] = []
    for r in results:
        if not r.ok:
            continue
        ref = single_shot_eigenvalues(
            r.n, r.seed, r.plan.p, r.plan.delta, params, r.plan.algorithm
        )
        assert r.eigenvalues is not None
        if not (
            r.eigenvalues.shape == ref.shape
            and r.eigenvalues.dtype == ref.dtype
            and np.array_equal(r.eigenvalues, ref)
        ):
            problems.append(
                f"job {r.job_id} (n={r.n}, p={r.plan.p}, delta={r.plan.delta:.3f}): "
                "served eigenvalues differ from the single-shot solve"
            )
    return problems
