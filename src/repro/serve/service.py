"""The batched eigensolver service: queue → plan → solve → schedule.

:class:`EigenService` is the serving pipeline the tentpole describes:

1. **Plan** — each request's ``(n, p_max, params)`` shape is routed through
   the persistent δ-autotuning cache (:mod:`repro.serve.cache`) and the
   regime planner (:mod:`repro.serve.planner`): how many ranks, which δ,
   replicated or grid.  Repeat shapes skip re-planning entirely.
2. **Solve** — every job runs the planned solver on a **fresh**
   :class:`~repro.bsp.machine.BSPMachine` of exactly its planned rank
   count, so its eigenvalues and cost report are byte-identical to a
   single-shot run of the same ``(matrix, p, δ)``.  Batches can be
   dispatched to a multiprocessing worker pool (``workers > 0``) — the
   per-job results are order-independent and reassembled by job id.
3. **Schedule** — the measured cost reports give each job its simulated
   service time T = γF + βW + νQ + αS; the bin-packing scheduler
   (:mod:`repro.serve.scheduler`) replays the workload's arrival trace
   against the machine pool and yields per-job simulated latency and pool
   utilization.

Fault handling: with a fault scenario installed, every pool worker's
machine injects seeded faults.  The solver's internal recovery (checkpoint
/ retry / grid-shrink) absorbs most; a job whose typed
:class:`~repro.faults.errors.FaultError` still escapes is **degraded, not
dropped** — the service re-runs it as a replicated (single-rank) solve on
a healthy machine, re-planning δ through the cache's ``replan`` path.
Only a job that fails even the degraded retry surfaces as an error result;
no code path returns a spectrum that was not guarded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.eig import solve_by_name
from repro.metrics.attainment import attainment_ratios
from repro.serve.cache import TuningCache, cached_replan_delta
from repro.serve.planner import DEFAULT_ALGORITHM, Plan, plan_job
from repro.serve.pool import MachinePool
from repro.serve.scheduler import Schedule, schedule_jobs
from repro.serve.workload import JobSpec, Workload
from repro.util.matrices import random_symmetric


@dataclass
class JobResult:
    """Everything the service knows about one completed (or failed) job."""

    job_id: int
    n: int
    seed: int
    plan: Plan
    status: str                    # "ok" | "error"
    eigenvalues: np.ndarray | None
    service_time: float            # simulated T of the measured run
    sim_cost: dict[str, float]
    planned_from_cache: bool
    retries: int = 0
    degraded: bool = False         # fell back to the replicated solve
    error: str = ""
    error_type: str = ""
    attainment: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServeReport:
    """Aggregate outcome of one workload pass through the service."""

    results: list[JobResult]
    schedule: Schedule
    wall_s: float
    plan_hits: int
    cache_stats: dict[str, Any]
    pool: dict[str, Any]

    @property
    def jobs(self) -> int:
        return len(self.results)

    @property
    def ok_jobs(self) -> int:
        return sum(r.ok for r in self.results)

    @property
    def error_jobs(self) -> int:
        return self.jobs - self.ok_jobs

    @property
    def jobs_per_s(self) -> float:
        return self.jobs / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def plan_hit_rate(self) -> float:
        return self.plan_hits / self.jobs if self.jobs else 0.0

    def regimes(self) -> dict[str, int]:
        """Histogram "p=<ranks>" -> job count of the planner's routing."""
        out: dict[str, int] = {}
        for r in self.results:
            key = f"p={r.plan.p}"
            out[key] = out.get(key, 0) + 1
        return dict(sorted(out.items(), key=lambda kv: int(kv[0][2:])))

    def sim_totals(self) -> dict[str, float]:
        """Exact simulated cost summed over jobs (deterministic gate food)."""
        totals = {"flops": 0.0, "words": 0.0, "mem_traffic": 0.0, "supersteps": 0.0}
        for r in self.results:
            for k in totals:
                totals[k] += r.sim_cost.get(k, 0.0)
        totals["service_time"] = sum(r.service_time for r in self.results)
        return totals

    def summary(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "ok": self.ok_jobs,
            "errors": self.error_jobs,
            "degraded": sum(r.degraded for r in self.results),
            "retries": sum(r.retries for r in self.results),
            "wall_s": self.wall_s,
            "jobs_per_s": self.jobs_per_s,
            "plan_hits": self.plan_hits,
            "plan_hit_rate": self.plan_hit_rate,
            "regimes": self.regimes(),
            "sim": self.schedule.summary(),
            "sim_totals": self.sim_totals(),
            "cache": self.cache_stats,
            "pool": self.pool,
        }


# ------------------------------------------------------------------ #
# job execution (top-level so a multiprocessing pool can pickle it)


def _params_payload(params: MachineParams) -> dict[str, float]:
    return {
        "gamma": params.gamma, "beta": params.beta, "nu": params.nu,
        "alpha": params.alpha, "memory_words": params.memory_words,
        "cache_words": params.cache_words,
    }


def execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Solve one planned job; pure function of the payload (worker-safe).

    Returns a plain dict (arrays and floats only) so results cross a
    process boundary cheaply.  A typed fault error is *returned*, not
    raised — the parent decides the degradation policy.
    """
    from repro.faults.errors import FaultError

    params = MachineParams(**payload["params"])
    n, seed = payload["n"], payload["seed"]
    p, delta = payload["p"], payload["delta"]
    algorithm = payload["algorithm"]
    a = random_symmetric(n, seed=seed)
    if payload.get("faults"):
        from repro.faults import FaultPlan, FaultyMachine
        from repro.faults.plan import SCENARIOS

        machine: BSPMachine = FaultyMachine(
            p, params,
            plan=FaultPlan(SCENARIOS[payload["faults"]], payload["fault_seed"]),
            spans=True,
        )
    else:
        machine = BSPMachine(p, params)
    try:
        result = solve_by_name(algorithm, machine, a, delta)
    except FaultError as exc:
        return {
            "job_id": payload["job_id"],
            "status": "error",
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
    cost = result.cost
    return {
        "job_id": payload["job_id"],
        "status": "ok",
        "eigenvalues": result.eigenvalues,
        "sim_cost": {
            "flops": cost.flops,
            "words": cost.words,
            "mem_traffic": cost.mem_traffic,
            "supersteps": float(cost.supersteps),
            "peak_memory_words": cost.peak_memory_words,
        },
        "service_time": params.time(
            cost.flops, cost.words, cost.mem_traffic, cost.supersteps
        ),
        "attainment": attainment_ratios(result.stages, result.stage_meta),
    }


class EigenService:
    """Batched eigensolver front-end over a pool of simulated machines."""

    def __init__(
        self,
        pool: MachinePool,
        cache: TuningCache | None = None,
        algorithm: str = DEFAULT_ALGORITHM,
        workers: int = 0,
        faults: str | None = None,
        fault_seed0: int = 0,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else TuningCache()
        self.algorithm = algorithm
        self.workers = workers
        self.faults = faults or None
        self.fault_seed0 = fault_seed0

    # -------------------------------------------------------------- #

    def plan(self, n: int) -> tuple[Plan, bool]:
        """Plan one problem size against the pool's largest machine."""
        return plan_job(
            self.cache, n, self.pool.max_ranks, self.pool.params, self.algorithm
        )

    def _payload(self, spec: JobSpec, plan: Plan) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "job_id": spec.job_id,
            "n": spec.n,
            "seed": spec.seed,
            "p": plan.p,
            "delta": plan.delta,
            "algorithm": plan.algorithm,
            "params": _params_payload(self.pool.params),
        }
        if self.faults:
            payload["faults"] = self.faults
            payload["fault_seed"] = self.fault_seed0 + spec.job_id
        return payload

    def _degrade(self, spec: JobSpec, raw: dict[str, Any]) -> tuple[dict[str, Any], Plan, bool]:
        """Replicated-solve fallback for a job whose fault escaped recovery."""
        delta = cached_replan_delta(self.cache, spec.n, 1, self.pool.params, self.algorithm)
        fallback = Plan(
            n=spec.n, p=1, delta=delta,
            predicted_time=float("inf"), algorithm=self.algorithm,
        )
        payload = self._payload(spec, fallback)
        payload.pop("faults", None)  # degraded retry runs on a healthy machine
        payload.pop("fault_seed", None)
        return execute_payload(payload), fallback, True

    def run_workload(self, workload: Workload) -> ServeReport:
        """Serve every job of a workload; returns the aggregate report."""
        t0 = time.perf_counter()
        plans: dict[int, tuple[Plan, bool]] = {}
        payloads: list[dict[str, Any]] = []
        for spec in workload.jobs:
            plan, hit = self.plan(spec.n)
            plans[spec.job_id] = (plan, hit)
            payloads.append(self._payload(spec, plan))

        if self.workers > 0:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                raws = list(pool.map(execute_payload, payloads))
        else:
            raws = [execute_payload(p) for p in payloads]

        by_id = {raw["job_id"]: raw for raw in raws}
        results: list[JobResult] = []
        for spec in workload.jobs:
            raw = by_id[spec.job_id]
            plan, hit = plans[spec.job_id]
            retries, degraded = 0, False
            if raw["status"] != "ok" and self.faults:
                raw, plan, degraded = self._degrade(spec, raw)
                retries = 1
            if raw["status"] == "ok":
                results.append(
                    JobResult(
                        job_id=spec.job_id, n=spec.n, seed=spec.seed, plan=plan,
                        status="ok",
                        eigenvalues=raw["eigenvalues"],
                        service_time=raw["service_time"],
                        sim_cost=raw["sim_cost"],
                        planned_from_cache=hit,
                        retries=retries, degraded=degraded,
                        attainment=raw["attainment"],
                    )
                )
            else:
                results.append(
                    JobResult(
                        job_id=spec.job_id, n=spec.n, seed=spec.seed, plan=plan,
                        status="error",
                        eigenvalues=None, service_time=0.0, sim_cost={},
                        planned_from_cache=hit,
                        retries=retries, degraded=degraded,
                        error=raw.get("error", ""),
                        error_type=raw.get("error_type", ""),
                    )
                )
        wall = time.perf_counter() - t0

        arrivals = {spec.job_id: spec.arrival for spec in workload.jobs}
        requests = [
            (r.job_id, arrivals[r.job_id], r.plan.p, r.service_time)
            for r in results
            if r.ok
        ]
        schedule = schedule_jobs(requests, self.pool)
        self.cache.save()
        return ServeReport(
            results=sorted(results, key=lambda r: r.job_id),
            schedule=schedule,
            wall_s=wall,
            plan_hits=sum(hit for _, hit in plans.values()),
            cache_stats=self.cache.stats.as_dict(),
            pool=self.pool.as_dict(),
        )


def single_shot_eigenvalues(
    n: int, seed: int, p: int, delta: float, params: MachineParams,
    algorithm: str = DEFAULT_ALGORITHM,
) -> np.ndarray:
    """The reference a served job must match byte-for-byte: one fresh
    machine, one solve — exactly what a user calling ``eigensolve`` gets."""
    a = random_symmetric(n, seed=seed)
    machine = BSPMachine(p, params)
    return solve_by_name(algorithm, machine, a, delta).eigenvalues


def verify_against_single_shot(
    results: Sequence[JobResult], params: MachineParams
) -> list[str]:
    """Byte-identity check of every ok job versus a single-shot solve.

    Returns human-readable mismatch descriptions ([] = all identical).
    Degraded jobs are verified against their *fallback* plan — that is the
    solve that actually produced their spectrum.
    """
    problems: list[str] = []
    for r in results:
        if not r.ok:
            continue
        ref = single_shot_eigenvalues(
            r.n, r.seed, r.plan.p, r.plan.delta, params, r.plan.algorithm
        )
        assert r.eigenvalues is not None
        if not (
            r.eigenvalues.shape == ref.shape
            and r.eigenvalues.dtype == ref.dtype
            and np.array_equal(r.eigenvalues, ref)
        ):
            problems.append(
                f"job {r.job_id} (n={r.n}, p={r.plan.p}, delta={r.plan.delta:.3f}): "
                "served eigenvalues differ from the single-shot solve"
            )
    return problems
