"""Crash-safe write-ahead job journal for the eigensolver service.

A service process can die mid-workload — OOM-killed, preempted, crashed.
Without a journal the whole in-flight batch is lost and every completed
solve recomputes.  :class:`JobJournal` is an append-only JSONL write-ahead
log, fsync'd record by record, that a restarted service replays to resume
a workload **without recompute and without drift**: the resilient event
loop is a pure function of the workload + policy + seeds, so replaying
the journal's memoized attempt outcomes through the same loop reproduces
the uninterrupted run byte-for-byte.

Record stream (one JSON object per line)::

    {"kind": "header", "version": "repro.serve.journal/1", "fingerprint": ..., "jobs": N}
    {"kind": "submitted", "job_id": 0, "n": 24, "seed": 7000021, ...}
    {"kind": "attempt", "key": "<memo key>", "outcome": {..., "eigenvalues": [...]}}
    {"kind": "terminal", "job_id": 0, "disposition": "ok", ...}

* **header** binds the file to one run configuration: a sha256 over the
  workload trace, machine params, algorithm, resilience policy, scenario,
  and the model fingerprint (the same wholesale-invalidation trick as
  :class:`~repro.serve.cache.TuningCache`).  Opening a journal whose
  header fingerprint differs raises :class:`JournalMismatch` — resuming a
  *different* workload against old records must fail loudly, never blend.
* **submitted** records make the no-job-lost invariant checkable: after a
  completed run (or a crash + resume) every submitted ``job_id`` must own
  a **terminal** record with a disposition in ``ok|degraded|shed|error``.
* **attempt** records are the expensive part — one per executed solve,
  carrying the full outcome (eigenvalues serialize through JSON ``repr``
  floats, which round-trip IEEE doubles exactly, so a resumed spectrum is
  byte-identical to the original).  On resume they pre-seed the service's
  solve memo, so replay costs arithmetic, not eigensolves.

Durability: every append is ``write → flush → fsync`` of one complete
line, so a crash can only ever produce a *torn final line*, which replay
detects and drops (anything torn mid-file means external corruption and
counts as such).  The environment hook ``REPRO_SERVE_CRASH_AFTER=N``
hard-kills the process (``os._exit``) after N appends — the deterministic
"kill -9 mid-workload" used by the crash/resume tests and the chaos
harness's crash scenario.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: on-disk schema identifier; bump on any incompatible layout change
JOURNAL_VERSION = "repro.serve.journal/1"

#: env hook: hard-exit (os._exit) after this many appends, simulating a
#: crash that cuts the process mid-workload with no cleanup
CRASH_AFTER_ENV = "REPRO_SERVE_CRASH_AFTER"

#: the exit code of a simulated crash (distinct from argparse's 2 and the
#: gate failures' 1 so tests can assert the death was the injected one)
CRASH_EXIT_CODE = 70


class JournalError(ValueError):
    """A journal file that cannot be used at all (corrupt mid-file)."""


class JournalMismatch(JournalError):
    """An existing journal belongs to a different run configuration."""


def _parse_lines(text: str) -> tuple[list[dict[str, Any]], bool]:
    """Parse JSONL content; a torn *final* line is dropped (crash residue).

    Returns ``(records, torn_tail)``.  A malformed line anywhere else
    raises :class:`JournalError` — that is corruption, not a crash.
    """
    records: list[dict[str, Any]] = []
    lines = text.split("\n")
    # a file that ends mid-append has a non-empty last segment with no
    # trailing newline; everything before it must parse
    for pos, line in enumerate(lines):
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            if all(not later for later in lines[pos + 1 :]):
                return records, True  # the torn tail of a crashed append
            raise JournalError(
                f"journal line {pos + 1} is not valid JSON (mid-file corruption)"
            ) from None
        if not isinstance(doc, dict):
            raise JournalError(f"journal line {pos + 1} is not an object")
        records.append(doc)
    return records, False


class JobJournal:
    """Append-only, fsync'd, resumable record of one workload run."""

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.fingerprint: str | None = None
        self.submitted: dict[int, dict[str, Any]] = {}
        self.attempts: dict[str, dict[str, Any]] = {}
        self.terminals: dict[int, dict[str, Any]] = {}
        self.replayed_records = 0
        self.torn_tail = False
        self._fh: Any = None
        self._appends = 0
        self._crash_after = int(os.environ.get(CRASH_AFTER_ENV, "0") or "0")

    # -------------------------------------------------------------- #
    # open / replay

    def open(self, fingerprint: str, jobs: int) -> None:
        """Bind to ``fingerprint``, replaying an existing file if present.

        A fresh file gets a header record; an existing one must carry the
        same fingerprint (else :class:`JournalMismatch`).
        """
        if self._fh is not None:
            raise JournalError("journal is already open")
        self.fingerprint = fingerprint
        if self.path.exists() and self.path.stat().st_size > 0:
            self._replay(fingerprint)
            if self.torn_tail:
                # drop the torn final line so the file parses cleanly from
                # here on — the crashed append never happened
                data = self.path.read_bytes()
                keep = data.rfind(b"\n") + 1
                with open(self.path, "rb+") as fh:
                    fh.truncate(keep)
                    fh.flush()
                    os.fsync(fh.fileno())
            self._fh = open(self.path, "a", encoding="utf-8")
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._append(
            {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "jobs": jobs,
            }
        )

    def _replay(self, fingerprint: str) -> None:
        records, self.torn_tail = _parse_lines(self.path.read_text(encoding="utf-8"))
        if not records or records[0].get("kind") != "header":
            raise JournalError(f"journal {self.path} has no header record")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalMismatch(
                f"journal {self.path} has version {header.get('version')!r}, "
                f"expected {JOURNAL_VERSION!r}"
            )
        if header.get("fingerprint") != fingerprint:
            raise JournalMismatch(
                f"journal {self.path} was written by a different run "
                f"configuration (fingerprint {header.get('fingerprint')!r} != "
                f"{fingerprint!r}); refusing to resume against it"
            )
        for doc in records[1:]:
            kind = doc.get("kind")
            if kind == "submitted":
                self.submitted[int(doc["job_id"])] = doc
            elif kind == "attempt":
                self.attempts[str(doc["key"])] = doc["outcome"]
            elif kind == "terminal":
                self.terminals[int(doc["job_id"])] = doc
            # unknown kinds are skipped: forward-compatible replay
        self.replayed_records = len(records) - 1

    # -------------------------------------------------------------- #
    # appends (each one durable before the method returns)

    def _append(self, doc: dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError("journal is not open")
        self._fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._appends += 1
        if self._crash_after and self._appends >= self._crash_after:
            # simulate a hard crash: no cleanup, no atexit, no cache save
            os._exit(CRASH_EXIT_CODE)

    def record_submitted(self, job_id: int, doc: dict[str, Any]) -> None:
        """Journal a job's admission (idempotent across resumes)."""
        if job_id in self.submitted:
            return
        rec = {"kind": "submitted", "job_id": job_id, **doc}
        self.submitted[job_id] = rec
        self._append(rec)

    def record_attempt(self, key: str, outcome: dict[str, Any]) -> None:
        """Journal one executed attempt's outcome under its memo key."""
        if key in self.attempts:
            return
        self.attempts[key] = outcome
        self._append({"kind": "attempt", "key": key, "outcome": outcome})

    def record_terminal(self, job_id: int, doc: dict[str, Any]) -> None:
        """Journal a job's terminal disposition (idempotent across resumes)."""
        if job_id in self.terminals:
            return
        rec = {"kind": "terminal", "job_id": job_id, **doc}
        self.terminals[job_id] = rec
        self._append(rec)

    # -------------------------------------------------------------- #
    # invariants / teardown

    def missing_terminals(self) -> list[int]:
        """Submitted job ids without a terminal record ([] = no job lost)."""
        return sorted(j for j in self.submitted if j not in self.terminals)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_journal(path: str | Path) -> dict[str, Any]:
    """Summarize a journal file (for reports and the no-job-lost check)."""
    records, torn = _parse_lines(Path(path).read_text(encoding="utf-8"))
    header = records[0] if records and records[0].get("kind") == "header" else {}
    submitted = {int(d["job_id"]) for d in records if d.get("kind") == "submitted"}
    terminals = {
        int(d["job_id"]): d.get("disposition", "")
        for d in records
        if d.get("kind") == "terminal"
    }
    return {
        "path": str(path),
        "version": header.get("version"),
        "fingerprint": header.get("fingerprint"),
        "records": len(records),
        "torn_tail": torn,
        "submitted": len(submitted),
        "terminals": len(terminals),
        "attempts": sum(1 for d in records if d.get("kind") == "attempt"),
        "missing_terminals": sorted(submitted - set(terminals)),
        "dispositions": {
            d: sum(1 for v in terminals.values() if v == d)
            for d in sorted(set(terminals.values()))
        },
    }
