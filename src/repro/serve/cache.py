"""Persistent δ-autotuning cache: memoized ``best_delta`` / ``replan_delta``.

Planning a request — sweeping the feasible δ grid (and, one level up, the
candidate rank counts) through Theorem IV.4's cost expressions — is real
work that repeats exactly for repeat traffic: a DFT/SCF driver submits
thousands of eigenproblems drawn from a handful of ``(n, p)`` shapes.  The
:class:`TuningCache` memoizes those planning results in a versioned
on-disk JSON store so a warmed service never re-plans a shape it has seen,
in this process or any earlier one.

Keying and invalidation
-----------------------
Entries are keyed on ``(kind, algorithm, n, p, machine-params)`` where the
machine parameters enter via :meth:`repro.bsp.params.MachineParams.fingerprint`
— change any of γ, β, ν, α, M, H and every lookup misses, because the key
itself changes.  The *store* additionally carries a fingerprint of
:func:`repro.model.tuning.tuning_signature` (the δ grid and the lemma
registry's leading terms): if the cost model shipped with the repo drifts,
the whole file is silently discarded on load and rebuilt — a stale δ from
an old model is worse than a cold cache.

Durability
----------
Writes are atomic (temp file + ``os.replace`` in the destination
directory), so a reader never observes a half-written store.  Loads are
tolerant: a missing, truncated, corrupt, or wrong-version file degrades to
an empty cache (counted in :attr:`CacheStats.load_failures`), never an
exception — the cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bsp.params import MachineParams
from repro.model.tuning import best_delta, tuning_signature

#: on-disk schema identifier; bump on any incompatible layout change
CACHE_VERSION = "repro.serve.tuning-cache/1"


def model_fingerprint() -> str:
    """Hex digest of everything cached plans depend on besides their keys."""
    doc = {"version": CACHE_VERSION, "tuning": tuning_signature()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cache_key(kind: str, algorithm: str, n: int, p: int, params: MachineParams) -> str:
    """The store key of one memoized planning result."""
    return f"{kind}|{algorithm}|n={n}|p={p}|{params.fingerprint()}"


@dataclass
class CacheStats:
    """Counters describing one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    load_failures: int = 0  # corrupt/unreadable stores recovered from
    stale_drops: int = 0    # stores discarded for a fingerprint mismatch

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "load_failures": self.load_failures,
            "stale_drops": self.stale_drops,
        }


class TuningCache:
    """A (possibly persistent) memo table for planning results.

    ``path=None`` gives a purely in-memory cache.  With a path, the store
    is loaded eagerly on construction and written back by :meth:`save`
    (callers decide when — typically once per batch, not per entry).
    """

    def __init__(self, path: str | Path | None = None, fingerprint: str | None = None):
        self.path = Path(path) if path is not None else None
        self.fingerprint = fingerprint or model_fingerprint()
        self.entries: dict[str, Any] = {}
        self.stats = CacheStats()
        self.loaded_entries = 0
        if self.path is not None:
            self._load()

    # -------------------------------------------------------------- #
    # persistence

    def _load(self) -> None:
        assert self.path is not None
        try:
            doc = json.loads(self.path.read_text())
        except FileNotFoundError:
            return  # cold start: not an error
        except (OSError, ValueError):
            self.stats.load_failures += 1
            return
        if not isinstance(doc, dict) or doc.get("version") != CACHE_VERSION:
            self.stats.load_failures += 1
            return
        if doc.get("fingerprint") != self.fingerprint:
            # the cost model changed underneath the store: discard wholesale
            self.stats.stale_drops += 1
            return
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            self.stats.load_failures += 1
            return
        self.entries.update(entries)
        self.loaded_entries = len(entries)

    def save(self) -> Path | None:
        """Atomically persist the store (no-op for in-memory caches)."""
        if self.path is None:
            return None
        doc = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": self.entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return self.path

    # -------------------------------------------------------------- #
    # lookups

    def get(self, key: str) -> Any | None:
        value = self.entries.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> Any:
        self.entries[key] = value
        return value

    def __len__(self) -> int:
        return len(self.entries)


# ------------------------------------------------------------------ #
# memoized planning entry points


def cached_best_delta(
    cache: TuningCache, n: int, p: int, params: MachineParams, algorithm: str = "eig2p5d"
) -> tuple[float, float]:
    """Memoized :func:`repro.model.tuning.best_delta`.

    Infeasible shapes (the n²/p footprint exceeds memory even at δ = 1/2)
    are negatively cached, so repeat traffic of an impossible shape fails
    fast without re-sweeping the grid; the original ``ValueError`` message
    is replayed.
    """
    key = cache_key("best_delta", algorithm, n, p, params)
    value = cache.get(key)
    if value is None:
        try:
            delta, time = best_delta(n, p, params)
        except ValueError as exc:
            cache.put(key, {"infeasible": str(exc)})
            raise
        value = cache.put(key, {"delta": delta, "time": time})
    if "infeasible" in value:
        raise ValueError(value["infeasible"])
    return float(value["delta"]), float(value["time"])


def cached_replan_delta(
    cache: TuningCache, n: int, p: int, params: MachineParams, algorithm: str = "eig2p5d"
) -> float:
    """Memoized :func:`repro.model.tuning.replan_delta` (total: never raises).

    The degraded-machine re-plan runs on the fault-recovery path, where a
    grid has just shrunk and latency matters most — exactly where a warm
    cache pays.
    """
    key = cache_key("replan", algorithm, n, p, params)
    value = cache.get(key)
    if value is None:
        if p <= 1:
            delta = 0.5
        else:
            try:
                delta = cached_best_delta(cache, n, p, params, algorithm)[0]
            except ValueError:
                delta = 0.5
        value = cache.put(key, {"delta": delta})
    return float(value["delta"])
