"""Service-level resilience: deadlines, retries, quarantine, hedging, shedding.

PR 7's service was fragile in exactly the ways a production eigensolver
front-end cannot be: a faulted job got one hard-coded replicated retry
(and only when fault injection happened to be configured), flaky machines
kept receiving work, overload meant unbounded queueing, and nothing
survived a service crash.  This module supplies the missing mechanisms as
*policies* plus one simulated-time event loop that enforces them:

* **SLO classes / deadlines** — every :class:`~repro.serve.workload.JobSpec`
  carries an SLO class name; :data:`SLO_CLASSES` maps it to a relative
  deadline budget in simulated BSP time.  Deadlines are *measured* (the
  report carries per-class hit rates) and, under ``scheduling="edf"``,
  *enforced as priority*: the dispatch scan orders the ready queue by
  absolute deadline (earliest-deadline-first) instead of arrival.
* **Retry budget + escalation ladder** — a failed attempt is retried on a
  seeded exponential-backoff timer (deterministic jitter, never wall
  clock) up to ``RetryPolicy.budget`` extra attempts, escalating
  same-plan retry → grid-shrink replan (through the tuning cache) →
  replicated single-rank solve.  The ladder runs whether or not fault
  injection is configured: any typed error outcome triggers it.
* **Machine health / quarantine** — a per-machine circuit breaker fed by
  attempt outcomes.  ``failure_threshold`` consecutive failures open the
  breaker (the machine drains: running attempts finish, no new placements);
  after a simulated cooldown it goes half-open and re-admits exactly one
  *probe* attempt — success closes the breaker, failure re-opens it with a
  doubled cooldown.
* **Hedged dispatch** — an attempt whose simulated service time exceeds
  the running percentile of completed attempt times is shadowed by a
  speculative duplicate launched once the threshold elapses.  First
  result wins; the loser runs to completion and is charged (visible
  resilience overhead, never hidden).  Byte-identity is preserved by
  construction: the same ``(seed, p, δ)`` produces the same spectrum.
* **Admission control** — a bounded ready queue: an arrival that finds
  ``queue_limit`` jobs already waiting is *shed* with a typed terminal
  disposition instead of queueing without bound.

Every decision is a pure function of the simulated clock and seeded
draws, so two runs of the same workload + scenario produce identical
reports — which is what lets the chaos scenarios here
(:data:`SERVICE_SCENARIOS`: flaky-machine, straggler, poison-job) be CI
gates rather than flaky wall-clock tests.  The loop guarantees **no job
lost**: every submitted job reaches exactly one terminal disposition in
``ok | degraded | shed | error``.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Sequence

from repro.obs.telemetry import BREAKER_STATE_CODES, NO_TELEMETRY
from repro.serve.pool import MachinePool
from repro.serve.scheduler import Schedule, ScheduledJob

#: terminal dispositions a job can reach (the no-job-lost invariant says
#: every submitted job reaches exactly one of these)
DISPOSITIONS = ("ok", "degraded", "shed", "error")


# ------------------------------------------------------------------ #
# deterministic draws (no wall clock, no shared RNG state)


def _hash01(*keys: int) -> float:
    """A seeded uniform draw in [0, 1) from integer keys (FNV-1a).

    Pure integer arithmetic — identical on every host and independent of
    call order, unlike a shared RNG stream.
    """
    h = 0xCBF29CE484222325
    for k in keys:
        for byte in int(k).to_bytes(8, "little", signed=True):
            h = ((h ^ byte) * 0x100000001B3) % (2**64)
    return (h >> 11) / float(2**53)


# ------------------------------------------------------------------ #
# SLO classes


@dataclass(frozen=True)
class SLOClass:
    """One service-level objective: a relative deadline budget.

    ``deadline`` is in simulated BSP time units (the units of
    :meth:`repro.bsp.params.MachineParams.time`); a job's absolute
    deadline is ``arrival + deadline``.  ``inf`` means measured-only.
    """

    name: str
    deadline: float

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "deadline": self.deadline}


#: the shipped SLO menu.  Budgets are calibrated against the pinned
#: serve-bench profile (sim latency p50 ≈ 2e5, p99 ≈ 1e7): "interactive"
#: is hittable for the small-n bulk but missed by queued heavy tails,
#: "batch" only by pathological stragglers, "best-effort" never.
SLO_CLASSES: dict[str, SLOClass] = {
    "interactive": SLOClass("interactive", 1.5e6),
    "batch": SLOClass("batch", 3.0e7),
    "best-effort": SLOClass("best-effort", math.inf),
}

DEFAULT_SLO = "batch"


def deadline_for(slo: str, arrival: float) -> float:
    """Absolute deadline of a job with SLO class ``slo`` arriving at ``arrival``."""
    cls = SLO_CLASSES.get(slo, SLO_CLASSES[DEFAULT_SLO])
    return arrival + cls.deadline


# ------------------------------------------------------------------ #
# policies


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and seeded exponential backoff for failed attempts.

    ``budget`` extra attempts follow the escalation ladder (same plan →
    grid-shrink → replicated).  The k-th retry waits
    ``backoff_base * backoff_factor**(k-1)`` simulated time units, scaled
    by ``1 + jitter * u`` where u is a deterministic per-(job, attempt)
    draw — decorrelated like production backoff, reproducible like a test.
    """

    budget: int = 3
    backoff_base: float = 2.0e4
    backoff_factor: float = 2.0
    jitter: float = 0.25

    def delay(self, job_id: int, attempt: int) -> float:
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        return base * (1.0 + self.jitter * _hash01(job_id, attempt, 0xB0FF))


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative duplicates for straggling attempts.

    An attempt whose simulated service time exceeds the nearest-rank
    ``percentile`` of completed attempt times (once ``min_observations``
    have completed) gets a duplicate enqueued at ``start + threshold`` —
    the moment the service would *notice* the straggle.  ``max_hedges``
    bounds the speculative budget per workload.
    """

    enabled: bool = True
    percentile: float = 95.0
    min_observations: int = 32
    max_hedges: int = 16


@dataclass(frozen=True)
class QuarantinePolicy:
    """Per-machine circuit breaker: open after ``failure_threshold``
    consecutive failures, half-open after ``cooldown`` simulated time, and
    re-open with ``cooldown_factor``-scaled cooldown on a failed probe."""

    enabled: bool = True
    failure_threshold: int = 3
    cooldown: float = 5.0e5
    cooldown_factor: float = 2.0


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded admission: an arrival finding ``queue_limit`` jobs already
    queued is shed (typed ``shed`` disposition).  0 disables the bound."""

    queue_limit: int = 0


@dataclass(frozen=True)
class ResiliencePolicy:
    """The full resilience configuration of one service instance."""

    retry: RetryPolicy = RetryPolicy()
    hedge: HedgePolicy = HedgePolicy()
    quarantine: QuarantinePolicy = QuarantinePolicy()
    admission: AdmissionPolicy = AdmissionPolicy()
    scheduling: str = "fifo"  # "fifo" | "edf"

    def __post_init__(self) -> None:
        if self.scheduling not in ("fifo", "edf"):
            raise ValueError(
                f"scheduling must be 'fifo' or 'edf', got {self.scheduling!r}"
            )

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable digest for journal binding: resuming under a different
        policy must be rejected, not silently blended."""
        blob = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


DEFAULT_POLICY = ResiliencePolicy()


# ------------------------------------------------------------------ #
# service-level chaos scenarios


@dataclass(frozen=True)
class ServiceScenario:
    """A seeded service-level failure mode (distinct from the solver-level
    :data:`repro.faults.plan.SCENARIOS`, which corrupt a single solve).

    * ``flaky_machines`` — attempts placed on the lowest-id machines of
      the pool fail with a typed error with probability ``flaky_rate``
      (a bad node: thermal throttling, a sick NIC — the cause doesn't
      matter, the breaker only sees outcomes); healthy machines stay
      clean, so the same retry landing elsewhere succeeds.  This is what
      the quarantine breaker exists to drain.
    * ``straggler_rate`` / ``straggler_factor`` — a seeded fraction of
      attempts take ``factor`` times their modeled service time (slow
      node, contention); the spectrum is untouched.  This is what hedged
      dispatch exists to cut.
    * ``poison_rate`` — a seeded fraction of jobs fail *every* attempt
      with a typed error (a request that trips a bug wherever it runs);
      the retry ladder must exhaust and surface ``error``, never loop.
    """

    name: str
    flaky_machines: int = 0
    flaky_rate: float = 0.9
    straggler_rate: float = 0.0
    straggler_factor: float = 8.0
    poison_rate: float = 0.0
    seed: int = 0

    def is_poison(self, job_id: int) -> bool:
        return self.poison_rate > 0 and _hash01(self.seed, job_id, 0x101) < self.poison_rate

    def is_straggler(self, job_id: int, attempt: int) -> bool:
        return (
            self.straggler_rate > 0
            and _hash01(self.seed, job_id, attempt, 0x202) < self.straggler_rate
        )

    def is_flaky_attempt(self, machine_id: int, job_id: int, attempt: int) -> bool:
        if machine_id >= self.flaky_machines:
            return False
        return _hash01(self.seed, machine_id, job_id, attempt, 0x303) < self.flaky_rate

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


#: the chaos harness's service-level scenario menu (``repro serve-bench
#: --soak --faults <name>`` and the nightly matrix run these)
SERVICE_SCENARIOS: dict[str, ServiceScenario] = {
    "flaky-machine": ServiceScenario(name="flaky-machine", flaky_machines=1),
    "straggler": ServiceScenario(
        name="straggler", straggler_rate=0.15, straggler_factor=8.0
    ),
    "poison-job": ServiceScenario(name="poison-job", poison_rate=0.08),
}


# ------------------------------------------------------------------ #
# machine health (circuit breaker)


@dataclass
class MachineHealth:
    """Breaker state of one pool machine, fed by attempt outcomes."""

    machine_id: int
    cooldown: float
    state: str = "closed"  # "closed" | "open" | "half-open"
    consecutive_failures: int = 0
    probe_in_flight: bool = False
    quarantines: int = 0
    probes: int = 0
    failures: int = 0
    successes: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "machine_id": self.machine_id,
            "state": self.state,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "failures": self.failures,
            "successes": self.successes,
        }


# ------------------------------------------------------------------ #
# loop inputs and outputs


@dataclass(frozen=True)
class SimJob:
    """One job as the resilient loop sees it (matrix data stays outside)."""

    job_id: int
    arrival: float
    slo: str = DEFAULT_SLO

    @property
    def deadline(self) -> float:
        return deadline_for(self.slo, self.arrival)


@dataclass
class AttemptOutcome:
    """What one executed attempt produced, in simulated terms.

    ``payload`` carries whatever the caller needs to build its final
    result (eigenvalues, cost dict, error text) — the loop only reads
    ``ok``, ``service_time`` and ``sim_cost``.
    """

    ok: bool
    service_time: float
    sim_cost: dict[str, float] = field(default_factory=dict)
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Rung:
    """One step of the escalation ladder: the plan an attempt runs under."""

    p: int
    delta: float
    kind: str = "primary"  # "primary" | "same-plan" | "grid-shrink" | "replicated"


@dataclass
class Trial:
    """One executed attempt (primary, retry, hedge, or probe)."""

    job_id: int
    attempt: int
    kind: str  # "primary" | "retry" | "hedge"
    rung: Rung
    machine_id: int
    start: float
    finish: float
    ok: bool
    probe: bool = False
    winner: bool = False
    outcome: AttemptOutcome | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "attempt": self.attempt,
            "kind": self.kind,
            "rung": self.rung.kind,
            "p": self.rung.p,
            "machine_id": self.machine_id,
            "start": self.start,
            "finish": self.finish,
            "ok": self.ok,
            "probe": self.probe,
            "winner": self.winner,
        }


@dataclass
class JobVerdict:
    """Terminal state of one job: exactly one per submitted job."""

    job_id: int
    disposition: str  # see DISPOSITIONS
    arrival: float
    start: float
    finish: float
    slo: str
    deadline: float
    rung: Rung | None
    machine_id: int
    attempts: int
    retries: int
    hedged: bool
    outcome: AttemptOutcome | None

    @property
    def deadline_hit(self) -> bool:
        if self.disposition == "shed":
            return False
        return self.finish <= self.deadline


@dataclass
class ResilienceStats:
    """Deterministic counters of one resilient run (report/gate food)."""

    dispositions: dict[str, int] = field(
        default_factory=lambda: {d: 0 for d in DISPOSITIONS}
    )
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    shed: int = 0
    quarantines: int = 0
    probes: int = 0
    trials: int = 0
    charged: dict[str, float] = field(
        default_factory=lambda: {
            "flops": 0.0, "words": 0.0, "mem_traffic": 0.0,
            "supersteps": 0.0, "service_time": 0.0,
        }
    )

    def as_dict(self) -> dict[str, Any]:
        return {
            "dispositions": dict(self.dispositions),
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "shed": self.shed,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "trials": self.trials,
            "charged": dict(self.charged),
        }


def slo_summary(verdicts: Sequence[JobVerdict]) -> dict[str, Any]:
    """Per-SLO-class deadline hit rates over a run's terminal verdicts."""
    out: dict[str, Any] = {}
    for v in sorted(verdicts, key=lambda v: v.job_id):
        cls = SLO_CLASSES.get(v.slo, SLO_CLASSES[DEFAULT_SLO])
        entry = out.setdefault(
            v.slo, {"deadline": cls.deadline, "jobs": 0, "deadline_hits": 0}
        )
        entry["jobs"] += 1
        entry["deadline_hits"] += int(v.deadline_hit)
    for entry in out.values():
        entry["hit_rate"] = (
            entry["deadline_hits"] / entry["jobs"] if entry["jobs"] else 0.0
        )
    return dict(sorted(out.items()))


# ------------------------------------------------------------------ #
# the resilient event loop


@dataclass
class ResilientRun:
    """Everything the loop produced: verdicts, trials, schedule, stats."""

    verdicts: dict[int, JobVerdict]
    trials: list[Trial]
    schedule: Schedule
    stats: ResilienceStats
    health: list[dict[str, Any]]


class _JobState:
    __slots__ = (
        "job", "failures", "in_flight", "verdict", "hedge_launched",
        "first_start", "trial_count",
    )

    def __init__(self, job: SimJob):
        self.job = job
        self.failures = 0
        self.in_flight: set[int] = set()  # trial indices still running
        self.verdict: JobVerdict | None = None
        self.hedge_launched = False
        self.first_start = math.inf
        self.trial_count = 0


def run_resilient(
    jobs: Sequence[SimJob],
    pool: MachinePool,
    rung_for: Callable[[int, int], Rung | None],
    outcome_for: Callable[[int, Rung, int, int], AttemptOutcome],
    policy: ResiliencePolicy = DEFAULT_POLICY,
    on_terminal: Callable[[JobVerdict], None] | None = None,
    telemetry: Any = NO_TELEMETRY,
) -> ResilientRun:
    """Drive every job to a terminal disposition in exact simulated time.

    ``rung_for(job_id, failures)`` maps a job's failure count to the
    escalation-ladder plan of its next attempt (``None`` = budget
    exhausted → terminal ``error``).  ``outcome_for(job_id, rung,
    attempt, machine_id)`` executes one attempt — it may run a real
    (memoized) solve, so the *loop* is where wall-clock work happens, but
    no wall-clock value ever enters a decision.  ``on_terminal`` fires
    exactly once per job, in simulated-completion order — the journal's
    write-ahead hook.

    Dispatch preserves PR 7's semantics on the happy path: FIFO scan with
    backfill, best-fit placement (fewest free ranks that still fit, ties
    to the lowest machine id).  Under ``policy.scheduling == "edf"`` the
    scan order is (deadline, arrival, job_id) instead of (arrival,
    job_id).

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`, default the
    inert :data:`~repro.obs.telemetry.NO_TELEMETRY`) observes every
    lifecycle transition and samples the loop's gauges — strictly
    read-only: no decision in this function reads telemetry state, so the
    run is bit-identical with it on or off.
    """
    order = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
    states = {j.job_id: _JobState(j) for j in order}
    if len(states) != len(order):
        raise ValueError("duplicate job ids in resilient workload")

    free = {m.machine_id: m.p for m in pool}
    health = {
        m.machine_id: MachineHealth(m.machine_id, cooldown=policy.quarantine.cooldown)
        for m in pool
    }
    stats = ResilienceStats()
    trials: list[Trial] = []
    #: completed attempt service times, kept sorted for the hedge percentile
    completed_services: list[float] = []
    running: list[tuple[float, int, int]] = []  # (finish, seq, trial_idx)
    timers: list[tuple[float, int, str, int]] = []  # (time, seq, kind, job/machine)
    ready: list[tuple[int, int, str, Rung]] = []  # (seq, job_id, kind, rung)
    seq = 0
    i = 0  # next arrival
    now = order[0].arrival if order else 0.0

    def settle(job_id: int, verdict: JobVerdict) -> None:
        states[job_id].verdict = verdict
        stats.dispositions[verdict.disposition] += 1
        if telemetry.enabled:
            latency = verdict.finish - verdict.arrival
            telemetry.emit(
                "terminal", verdict.finish, job=job_id,
                disposition=verdict.disposition, slo=verdict.slo,
                latency=latency, deadline_hit=verdict.deadline_hit,
                attempts=verdict.attempts, retries=verdict.retries,
                hedged=verdict.hedged, machine=verdict.machine_id,
            )
            telemetry.counter(f"jobs_{verdict.disposition}")
            if verdict.disposition != "shed":
                telemetry.observe_latency(verdict.slo, latency)
        if on_terminal is not None:
            on_terminal(verdict)

    def hedge_threshold() -> float | None:
        if (
            not policy.hedge.enabled
            or len(completed_services) < policy.hedge.min_observations
        ):
            return None
        k = max(
            0,
            min(
                len(completed_services) - 1,
                math.ceil(policy.hedge.percentile / 100.0 * len(completed_services)) - 1,
            ),
        )
        return completed_services[k]

    def breaker_event(machine_id: int, prev: str, state: str) -> None:
        telemetry.emit("breaker", now, machine=machine_id, prev=prev, state=state)

    def feed_health(machine_id: int, ok: bool) -> None:
        nonlocal seq
        h = health[machine_id]
        if ok:
            h.successes += 1
            if h.state == "half-open":
                h.state = "closed"
                h.cooldown = policy.quarantine.cooldown
                breaker_event(machine_id, "half-open", "closed")
            h.consecutive_failures = 0
            return
        h.failures += 1
        if not policy.quarantine.enabled:
            return
        if h.state == "half-open":
            # the probe failed: re-open with a longer cooldown
            h.state = "open"
            h.cooldown *= policy.quarantine.cooldown_factor
            h.quarantines += 1
            stats.quarantines += 1
            breaker_event(machine_id, "half-open", "open")
            telemetry.counter("quarantines")
            seq += 1
            heapq.heappush(timers, (now + h.cooldown, seq, "probe-open", machine_id))
        elif h.state == "closed":
            h.consecutive_failures += 1
            if h.consecutive_failures >= policy.quarantine.failure_threshold:
                h.state = "open"
                h.quarantines += 1
                stats.quarantines += 1
                breaker_event(machine_id, "closed", "open")
                telemetry.counter("quarantines")
                seq += 1
                heapq.heappush(
                    timers, (now + h.cooldown, seq, "probe-open", machine_id)
                )

    def finish_trial(idx: int) -> None:
        nonlocal seq
        trial = trials[idx]
        free[trial.machine_id] += trial.rung.p
        st = states[trial.job_id]
        st.in_flight.discard(idx)
        if trial.probe:
            health[trial.machine_id].probe_in_flight = False
        if telemetry.enabled:
            telemetry.emit(
                "attempt_end", trial.finish, job=trial.job_id,
                attempt=trial.attempt, kind=trial.kind, machine=trial.machine_id,
                ok=trial.ok, winner=trial.ok and st.verdict is None,
                late=st.verdict is not None,
            )
        feed_health(trial.machine_id, trial.ok)
        assert trial.outcome is not None
        bisect.insort(completed_services, trial.outcome.service_time)
        if st.verdict is not None:
            return  # a duplicate finishing after the job settled
        if trial.ok:
            trial.winner = True
            if trial.kind == "hedge":
                stats.hedge_wins += 1
            disposition = "ok" if trial.rung.kind in ("primary", "same-plan") else "degraded"
            settle(
                trial.job_id,
                JobVerdict(
                    job_id=trial.job_id,
                    disposition=disposition,
                    arrival=st.job.arrival,
                    start=st.first_start,
                    finish=trial.finish,
                    slo=st.job.slo,
                    deadline=st.job.deadline,
                    rung=trial.rung,
                    machine_id=trial.machine_id,
                    attempts=st.trial_count,
                    retries=st.failures,
                    hedged=st.hedge_launched,
                    outcome=trial.outcome,
                ),
            )
            return
        st.failures += 1
        if st.in_flight:
            return  # a duplicate is still running; let it race the ladder
        rung = (
            rung_for(trial.job_id, st.failures)
            if st.failures <= policy.retry.budget
            else None
        )
        if rung is None:
            settle(
                trial.job_id,
                JobVerdict(
                    job_id=trial.job_id,
                    disposition="error",
                    arrival=st.job.arrival,
                    start=st.first_start,
                    finish=trial.finish,
                    slo=st.job.slo,
                    deadline=st.job.deadline,
                    rung=trial.rung,
                    machine_id=trial.machine_id,
                    attempts=st.trial_count,
                    retries=st.failures - 1,
                    hedged=st.hedge_launched,
                    outcome=trial.outcome,
                ),
            )
            return
        fire_at = now + policy.retry.delay(trial.job_id, st.failures)
        if telemetry.enabled:
            telemetry.emit(
                "retry_scheduled", now, job=trial.job_id,
                failures=st.failures, fire_at=fire_at,
            )
        seq += 1
        heapq.heappush(timers, (fire_at, seq, "retry", trial.job_id))

    def handle_timer(kind: str, key: int) -> None:
        nonlocal seq
        if kind == "probe-open":
            if health[key].state == "open":
                health[key].state = "half-open"
                breaker_event(key, "open", "half-open")
            return
        st = states[key]
        if st.verdict is not None:
            return
        if kind == "retry":
            rung = rung_for(key, st.failures)
            if rung is None:  # ladder dried up between scheduling and firing
                return
            stats.retries += 1
            if telemetry.enabled:
                telemetry.emit("retry_fire", now, job=key, rung=rung.kind)
                telemetry.counter("retries")
            seq += 1
            ready.append((seq, key, "retry", rung))
        elif kind == "hedge":
            if not st.in_flight or st.hedge_launched:
                return  # already finished, or already hedged
            if stats.hedges >= policy.hedge.max_hedges:
                return
            running_trial = trials[min(st.in_flight)]
            st.hedge_launched = True
            stats.hedges += 1
            if telemetry.enabled:
                telemetry.emit("hedge_fire", now, job=key)
                telemetry.counter("hedges")
            seq += 1
            ready.append((seq, key, "hedge", running_trial.rung))

    def admit(job: SimJob) -> None:
        nonlocal seq
        limit = policy.admission.queue_limit
        if telemetry.enabled:
            telemetry.emit(
                "submit", job.arrival, job=job.job_id, slo=job.slo,
                deadline=job.deadline if math.isfinite(job.deadline) else None,
            )
        if limit > 0 and len(ready) >= limit:
            stats.shed += 1
            if telemetry.enabled:
                telemetry.emit("shed", job.arrival, job=job.job_id, slo=job.slo)
                telemetry.counter("sheds")
            settle(
                job.job_id,
                JobVerdict(
                    job_id=job.job_id,
                    disposition="shed",
                    arrival=job.arrival,
                    start=job.arrival,
                    finish=job.arrival,
                    slo=job.slo,
                    deadline=job.deadline,
                    rung=None,
                    machine_id=-1,
                    attempts=0,
                    retries=0,
                    hedged=False,
                    outcome=None,
                ),
            )
            return
        rung = rung_for(job.job_id, 0)
        if rung is None:
            raise ValueError(f"job {job.job_id}: no primary plan")
        seq += 1
        ready.append((seq, job.job_id, "primary", rung))

    def queue_key(entry: tuple[int, int, str, Rung]) -> tuple:
        entry_seq, job_id, _, _ = entry
        job = states[job_id].job
        if policy.scheduling == "edf":
            return (job.deadline, job.arrival, job_id, entry_seq)
        return (job.arrival, job_id, entry_seq)

    def eligible_machine(p: int, exclude: set[int]) -> tuple[int | None, bool]:
        """Best-fit machine for ``p`` ranks honoring breaker state.

        Returns ``(machine_id, is_probe)``; half-open machines take one
        probe attempt at a time and only when no closed machine fits.
        """
        best: int | None = None
        for m in pool:
            h = health[m.machine_id]
            if h.state != "closed" or m.machine_id in exclude:
                continue
            f = free[m.machine_id]
            if f >= p and (best is None or f < free[best]):
                best = m.machine_id
        if best is not None:
            return best, False
        for m in pool:
            h = health[m.machine_id]
            if h.state != "half-open" or h.probe_in_flight or m.machine_id in exclude:
                continue
            f = free[m.machine_id]
            if f >= p and (best is None or f < free[best]):
                best = m.machine_id
        return best, best is not None

    def dispatch() -> None:
        nonlocal seq, ready
        remaining: list[tuple[int, int, str, Rung]] = []
        for entry in sorted(ready, key=queue_key):
            entry_seq, job_id, kind, rung = entry
            st = states[job_id]
            if st.verdict is not None:
                continue  # e.g. a hedge whose job already settled
            exclude = {trials[t].machine_id for t in st.in_flight}
            machine_id, probe = eligible_machine(rung.p, exclude)
            if machine_id is None and exclude:
                # a duplicate may share the straggler's machine rather than wait
                machine_id, probe = eligible_machine(rung.p, set())
            if machine_id is None:
                remaining.append(entry)
                continue
            attempt = st.trial_count
            st.trial_count += 1
            outcome = outcome_for(job_id, rung, attempt, machine_id)
            free[machine_id] -= rung.p
            finish = now + outcome.service_time
            idx = len(trials)
            trials.append(
                Trial(
                    job_id=job_id,
                    attempt=attempt,
                    kind=kind,
                    rung=rung,
                    machine_id=machine_id,
                    start=now,
                    finish=finish,
                    ok=outcome.ok,
                    probe=probe,
                    outcome=outcome,
                )
            )
            st.in_flight.add(idx)
            st.first_start = min(st.first_start, now)
            stats.trials += 1
            for fld in ("flops", "words", "mem_traffic", "supersteps"):
                stats.charged[fld] += outcome.sim_cost.get(fld, 0.0)
            stats.charged["service_time"] += outcome.service_time
            if probe:
                h = health[machine_id]
                h.probe_in_flight = True
                h.probes += 1
                stats.probes += 1
            if telemetry.enabled:
                telemetry.emit(
                    "dispatch", now, job=job_id, attempt=attempt, kind=kind,
                    rung=rung.kind, p=rung.p, machine=machine_id, probe=probe,
                    ok=outcome.ok, finish=finish,
                )
                telemetry.counter("dispatches")
                if probe:
                    telemetry.counter("probes")
            seq += 1
            heapq.heappush(running, (finish, seq, idx))
            if kind != "hedge" and not st.hedge_launched:
                tau = hedge_threshold()
                if tau is not None and outcome.service_time > tau:
                    if telemetry.enabled:
                        telemetry.emit(
                            "hedge_scheduled", now, job=job_id, fire_at=now + tau
                        )
                    seq += 1
                    heapq.heappush(timers, (now + tau, seq, "hedge", job_id))
        ready = remaining

    def sample_series() -> None:
        """Change-only gauge sampling at the current loop step (read-only)."""
        telemetry.gauge("queue_depth", now, float(len(ready)))
        for m in pool:
            mid = m.machine_id
            telemetry.gauge(
                f"machine{mid}/busy_ranks", now, float(m.p - free[mid])
            )
            telemetry.gauge(
                f"machine{mid}/breaker", now,
                float(BREAKER_STATE_CODES[health[mid].state]),
            )

    while i < len(order) or ready or running or timers:
        next_arrival = order[i].arrival if i < len(order) else math.inf
        next_finish = running[0][0] if running else math.inf
        next_timer = timers[0][0] if timers else math.inf
        now = min(next_arrival, next_finish, next_timer)
        if math.isinf(now):
            stuck = [e[1] for e in ready]
            raise RuntimeError(
                f"resilient loop stalled with jobs {stuck} queued and no "
                "running work, arrivals, or timers (planner/pool mismatch?)"
            )
        while running and running[0][0] <= now:
            _, _, idx = heapq.heappop(running)
            finish_trial(idx)
        while timers and timers[0][0] <= now:
            _, _, kind, key = heapq.heappop(timers)
            handle_timer(kind, key)
        while i < len(order) and order[i].arrival <= now:
            admit(order[i])
            i += 1
        dispatch()
        if telemetry.enabled:
            sample_series()

    verdicts = {job_id: st.verdict for job_id, st in states.items()}
    missing = [job_id for job_id, v in verdicts.items() if v is None]
    if missing:  # the no-job-lost invariant, enforced structurally
        raise RuntimeError(f"jobs {sorted(missing)} never reached a terminal disposition")

    rows = [
        ScheduledJob(
            job_id=v.job_id,
            machine_id=v.machine_id,
            p=v.rung.p if v.rung is not None else 0,
            arrival=v.arrival,
            start=v.start if math.isfinite(v.start) else v.arrival,
            finish=v.finish,
            disposition=v.disposition,
            attempts=v.attempts,
            hedged=v.hedged,
        )
        for v in sorted(
            (v for v in verdicts.values() if v is not None), key=lambda v: v.job_id
        )
    ]
    busy = sum(t.rung.p * (t.finish - t.start) for t in trials)
    if rows:
        t0 = min(r.arrival for r in rows)
        t1 = max([r.finish for r in rows] + [t.finish for t in trials])
        makespan = t1 - t0
    else:
        makespan = 0.0
    util = busy / (pool.total_ranks * makespan) if makespan > 0 else 0.0
    schedule = Schedule(
        jobs=rows, makespan=makespan, utilization=util, busy_rank_time=busy
    )
    return ResilientRun(
        verdicts={j: v for j, v in verdicts.items() if v is not None},
        trials=trials,
        schedule=schedule,
        stats=stats,
        health=[health[m.machine_id].as_dict() for m in pool],
    )
