"""Per-request planning: how many ranks, and which δ, for one eigenproblem.

The paper's tunable is δ (replication c = p^{2δ−1}); the serving layer adds
one more knob the small-n/large-p literature (Katagiri et al.,
arXiv:2405.00326) shows is decisive: *how many ranks to use at all*.  For a
tiny matrix on a big machine the α·S synchronization term swamps the
parallel flop win, and the modeled optimum walks down from the full grid
through small sub-grids to a single rank — the gather-and-solve-replicated
corner.  :func:`plan_job` sweeps the power-of-two rank counts a pool
machine can offer, picks ``best_delta`` for each via the memoized cache,
and minimizes the modeled Theorem IV.4 time — so regime routing is a
genuine, per-shape scheduling decision, and a cached one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.bsp.params import MachineParams
from repro.serve.cache import TuningCache, cache_key, cached_best_delta

#: the solver the plans below are computed for (see repro.eig.SOLVERS)
DEFAULT_ALGORITHM = "eig2p5d"


@dataclass(frozen=True)
class Plan:
    """A planned solve: rank count, δ, and the modeled time they achieve."""

    n: int
    p: int
    delta: float
    predicted_time: float
    algorithm: str = DEFAULT_ALGORITHM

    @property
    def regime(self) -> str:
        """``replicated`` (sequential solve on one rank) or ``grid``."""
        return "replicated" if self.p == 1 else "grid"

    def as_dict(self) -> dict[str, Any]:
        return {
            "n": self.n,
            "p": self.p,
            "delta": self.delta,
            "predicted_time": self.predicted_time,
            "algorithm": self.algorithm,
            "regime": self.regime,
        }


def candidate_ranks(n: int, p_max: int) -> list[int]:
    """Power-of-two rank counts usable for an n×n problem on ≤ p_max ranks.

    Powers of two always admit the q²·c factorization the 2.5D grids need,
    and the driver requires n ≥ p.
    """
    if p_max < 1:
        raise ValueError(f"p_max must be >= 1, got {p_max}")
    out = []
    p = 1
    while p <= min(p_max, n):
        out.append(p)
        p *= 2
    return out


def plan_job(
    cache: TuningCache,
    n: int,
    p_max: int,
    params: MachineParams,
    algorithm: str = DEFAULT_ALGORITHM,
) -> tuple[Plan, bool]:
    """Return ``(plan, was_cache_hit)`` for one (n, p_max, params) shape.

    The composite plan is itself memoized (kind ``plan``) on top of the
    per-(n, p) ``best_delta`` entries, so a warmed cache answers a repeat
    request with a single lookup.  Ties in modeled time break toward fewer
    ranks — a freed rank can serve another queued job.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    key = cache_key("plan", algorithm, n, p_max, params)
    value = cache.get(key)
    if value is not None:
        return (
            Plan(
                n=n,
                p=int(value["p"]),
                delta=float(value["delta"]),
                predicted_time=float(value["predicted_time"]),
                algorithm=algorithm,
            ),
            True,
        )
    best: tuple[float, int, float] | None = None
    for p in candidate_ranks(n, p_max):
        try:
            delta, time = cached_best_delta(cache, n, p, params, algorithm)
        except ValueError:
            continue  # does not fit this machine's memory at any δ
        if best is None or (time, p) < (best[0], best[1]):
            best = (time, p, delta)
    if best is None:
        raise ValueError(
            f"no candidate rank count fits n={n} on p_max={p_max} "
            f"(memory_words={params.memory_words:.3g})"
        )
    time, p, delta = best
    plan = Plan(n=n, p=p, delta=delta, predicted_time=time, algorithm=algorithm)
    cache.put(key, {"p": p, "delta": delta, "predicted_time": time})
    return plan, False
