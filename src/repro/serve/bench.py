"""The ``repro serve-bench`` throughput benchmark and its CI gate.

Two passes of the pinned seeded workload run through the service:

* **cold** — the persistent tuning cache starts absent: every distinct
  shape plans from scratch (in-pass repeats already hit);
* **warm** — a *fresh* service instance reloads the cache file the cold
  pass persisted, demonstrating cross-process reuse: the plan hit rate
  must reach :data:`HIT_RATE_FLOOR` (the acceptance gate is ≥ 80%; with a
  correct store it is 100%).

The document written to ``benchmarks/results/BENCH_serve.json`` (and
committed at the repo root as the baseline) carries, per pass: wall-clock
throughput (jobs/s), simulated-latency percentiles (p50/p99 in BSP time
units), pool utilization, the regime histogram of the planner's routing,
exact simulated cost totals, and cache statistics; plus the byte-identity
verification of every served spectrum against a single-shot solve, and
the per-job bound-attainment roll-up.

``check_serve`` gates a fresh run against the committed baseline with the
same split as ``repro bench``: **simulated quantities compare exactly**
(they are deterministic — drift means the accounting or the scheduler
changed and the baseline must be recommitted deliberately), while
**wall-clock throughput** is compared after host calibration (a pinned
single-shot solve timed on both hosts) with the shared
``REPRO_BENCH_ENVELOPE`` tolerance, and wall-only failures are retried by
:func:`repro.bench.check_with_retries` (the failure text says
"wall-clock regression", which is the retry trigger).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench import WALL_TOLERANCE, BenchError
from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.eig import solve_by_name
from repro.metrics.attainment import attainment_rollup
from repro.serve.cache import TuningCache
from repro.serve.pool import MachinePool
from repro.serve.service import (
    EigenService,
    ServeReport,
    verify_against_single_shot,
)
from repro.serve.workload import Workload, mixed_workload
from repro.util.matrices import random_symmetric
from repro.util.validation import reference_spectrum_error

#: default fresh-results location (the committed baseline lives at the
#: repo root as BENCH_serve.json, mirroring BENCH_engine.json)
DEFAULT_RESULT_PATH = Path("benchmarks") / "results" / "BENCH_serve.json"
DEFAULT_TRACE_PATH = Path("benchmarks") / "results" / "serve_trace.json"
DEFAULT_CACHE_PATH = Path("benchmarks") / "results" / "serve_tuning_cache.json"
DEFAULT_SOAK_PATH = Path("benchmarks") / "results" / "serve_soak.json"

#: the serve-bench machine profile: a latency-heavy commodity cluster
#: (α/γ = 3000) chosen so the planner's regime routing is *exercised* —
#: over the pinned size menu the modeled optimum walks from a replicated
#: single-rank solve (n = 8) through 2-, 4- and 8-rank sub-grids up to the
#: dedicated 16-rank grid (n ≥ 96), with δ varying between 1/2 and 2/3.
SERVE_PARAMS = MachineParams(
    gamma=1.0, beta=20.0, nu=2.0, alpha=3000.0, memory_words=float(2**20)
)

#: pinned suite inputs; changing any of these invalidates a baseline
PINNED: dict[str, Any] = {
    "pool": {"machines": 4, "p": 16},
    "workload": {
        "total_jobs": 200,
        "seed": 7,
        "scf_iterations": 6,
        "kpoint_sizes": [24, 32, 32, 48],
        "zipf_mean_gap": 2.0e4,
    },
    "profile": {
        "gamma": 1.0, "beta": 20.0, "nu": 2.0, "alpha": 3000.0,
        "memory_words": float(2**20), "cache_words": None,  # None = inf
    },
    "algorithm": "eig2p5d",
    "calibration": {"n": 32, "p": 2, "delta": 0.5, "seed": 123, "repeats": 3},
}

#: minimum plan hit rate of the warm pass (the acceptance floor; a correct
#: persistent store achieves 1.0)
HIT_RATE_FLOOR = 0.8

#: per-pass summary fields gated by exact equality (deterministic)
EXACT_PASS_FIELDS = ("jobs", "ok", "errors", "degraded", "regimes", "sim", "sim_totals")


def pinned_workload(pinned: dict[str, Any] | None = None) -> Workload:
    cfg = (pinned or PINNED)["workload"]
    return mixed_workload(
        total_jobs=cfg["total_jobs"],
        seed=cfg["seed"],
        scf_iterations=cfg["scf_iterations"],
        kpoint_sizes=cfg["kpoint_sizes"],
        zipf_mean_gap=cfg["zipf_mean_gap"],
    )


def _profile_params(pinned: dict[str, Any]) -> MachineParams:
    prof = dict(pinned["profile"])
    if prof.get("cache_words") is None:
        prof["cache_words"] = float("inf")
    return MachineParams(**prof)


def calibration_wall(pinned: dict[str, Any] | None = None) -> float:
    """Median wall of a pinned single-shot solve — the host speed probe.

    Scaling the committed throughput by the ratio of this number across
    hosts makes the gate measure *service* regressions, not runner
    hardware (the same trick ``repro bench`` plays with its scalar
    oracle).
    """
    cfg = (pinned or PINNED)["calibration"]
    params = _profile_params(pinned or PINNED)
    a = random_symmetric(cfg["n"], seed=cfg["seed"])
    walls = []
    for _ in range(cfg["repeats"]):
        machine = BSPMachine(cfg["p"], params)
        t0 = time.perf_counter()
        solve_by_name((pinned or PINNED)["algorithm"], machine, a, cfg["delta"])
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def _pass_doc(report: ServeReport) -> dict[str, Any]:
    return report.summary()


def run_serve_suite(
    cache_path: Path | str | None = None,
    trace_path: Path | str | None = None,
    workers: int = 0,
    pinned: dict[str, Any] | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Run the two-pass pinned suite; return the results document.

    Raises :class:`~repro.bench.BenchError` if any job errors on a clean
    machine, or any served spectrum is not byte-identical to its
    single-shot reference.
    """
    pinned = pinned or PINNED
    params = _profile_params(pinned)
    cache_path = Path(cache_path) if cache_path is not None else DEFAULT_CACHE_PATH
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    if cache_path.exists():
        cache_path.unlink()  # the cold pass must actually be cold

    workload = pinned_workload(pinned)
    if trace_path is not None:
        workload.write(trace_path)

    pool_cfg = pinned["pool"]
    doc: dict[str, Any] = {
        "version": 1,
        "pinned": pinned,
        "workload_sizes": {str(k): v for k, v in workload.sizes().items()},
        "passes": {},
    }

    reports: dict[str, ServeReport] = {}
    for label in ("cold", "warm"):
        pool = MachinePool(pool_cfg["machines"], pool_cfg["p"], params)
        cache = TuningCache(cache_path)  # warm pass reloads the cold store
        service = EigenService(
            pool, cache, algorithm=pinned["algorithm"], workers=workers
        )
        report = service.run_workload(workload)
        reports[label] = report
        doc["passes"][label] = _pass_doc(report)
        bad = [r for r in report.results if not r.ok]
        if bad:
            raise BenchError(
                f"{label} pass: {len(bad)} job(s) errored on a clean machine: "
                + "; ".join(f"job {r.job_id}: {r.error_type}: {r.error}" for r in bad[:3])
            )
        log(
            f"{label}: {report.jobs} jobs, {report.jobs_per_s:.1f} jobs/s, "
            f"plan hit rate {report.plan_hit_rate:.1%}, "
            f"sim p50={report.schedule.percentile(50):.3g} "
            f"p99={report.schedule.percentile(99):.3g}, "
            f"util={report.schedule.utilization:.1%}"
        )

    log("verifying byte-identity of every served spectrum vs single-shot runs...")
    mismatches = verify_against_single_shot(reports["cold"].results, params)
    warm_identical = all(
        a.ok and b.ok
        and a.eigenvalues is not None and b.eigenvalues is not None
        and np.array_equal(a.eigenvalues, b.eigenvalues)
        for a, b in zip(reports["cold"].results, reports["warm"].results)
    )
    doc["verify"] = {
        "checked": reports["cold"].ok_jobs,
        "mismatches": mismatches,
        "warm_identical": warm_identical,
    }
    if mismatches:
        raise BenchError(
            "served eigenvalues diverged from single-shot solves:\n  "
            + "\n  ".join(mismatches[:5])
        )
    if not warm_identical:
        raise BenchError("warm-pass eigenvalues differ from the cold pass")

    doc["attainment"] = attainment_rollup(
        r.attainment for r in reports["cold"].results
    )
    doc["calibration_wall_s"] = calibration_wall(pinned)
    return doc


# ------------------------------------------------------------------ #
# gate


def check_serve(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    wall_tolerance: float = WALL_TOLERANCE,
) -> list[str]:
    """Gate failures of a fresh serve suite vs the baseline ([] = pass)."""
    failures: list[str] = []
    if fresh.get("pinned") != baseline.get("pinned"):
        return [
            "pinned suite inputs differ from the baseline — regenerate it with "
            "`repro serve-bench --out BENCH_serve.json`"
        ]
    verify = fresh.get("verify", {})
    if verify.get("mismatches"):
        failures.append(
            f"{len(verify['mismatches'])} served spectrum(s) not byte-identical "
            "to single-shot solves"
        )
    if not verify.get("warm_identical", False):
        failures.append("warm-pass eigenvalues differ from the cold pass")

    warm = fresh.get("passes", {}).get("warm", {})
    hit_rate = warm.get("plan_hit_rate", 0.0)
    if hit_rate < HIT_RATE_FLOOR:
        failures.append(
            f"warm-pass plan cache hit rate {hit_rate:.1%} is below the "
            f"{HIT_RATE_FLOOR:.0%} floor"
        )

    cal_fresh = fresh.get("calibration_wall_s") or 0.0
    cal_base = baseline.get("calibration_wall_s") or 0.0
    scale = (cal_fresh / cal_base) if cal_fresh > 0 and cal_base > 0 else 1.0

    for label, entry in fresh.get("passes", {}).items():
        base = baseline.get("passes", {}).get(label)
        if base is None:
            failures.append(f"pass {label}: missing from baseline")
            continue
        for fld in EXACT_PASS_FIELDS:
            if entry.get(fld) != base.get(fld):
                failures.append(
                    f"pass {label}: simulated-result drift in {fld}: "
                    f"baseline {base.get(fld)!r} != fresh {entry.get(fld)!r}"
                )
        # throughput: fresh jobs/s may not fall below baseline / (tol × host
        # scale); phrased as a wall-clock regression so the shared retry
        # loop re-times a loaded host instead of failing the build
        base_jps = base.get("jobs_per_s", 0.0)
        floor = base_jps / (wall_tolerance * scale) if base_jps else 0.0
        if entry.get("jobs_per_s", 0.0) < floor:
            failures.append(
                f"pass {label}: throughput wall-clock regression: "
                f"{entry.get('jobs_per_s', 0.0):.2f} jobs/s is below "
                f"{floor:.2f} (= baseline {base_jps:.2f} / {wall_tolerance:.2f} "
                f"/ host-scale {scale:.2f})"
            )
    if fresh.get("attainment") != baseline.get("attainment"):
        failures.append(
            "per-job attainment roll-up drifted from the baseline "
            "(stage cost accounting changed — recommit deliberately)"
        )
    return failures


# ------------------------------------------------------------------ #
# soak (nightly): faults injected into pool workers


def run_soak(
    jobs: int = 48,
    machines: int = 2,
    machine_p: int = 16,
    seed: int = 11,
    scenario: str = "chaos",
    fault_seed0: int = 0,
    tol: float = 1e-6,
    workers: int = 0,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Serve a workload with faults injected into every pool worker.

    The soak invariant extends the chaos invariant to the service: every
    job either (a) returns a spectrum matching the numpy reference within
    ``tol`` — via internal recovery or the service's degraded replicated
    retry — or (b) surfaces a typed error result.  A job that returns a
    *wrong* spectrum ("silent-wrong") fails the soak.
    """
    params = SERVE_PARAMS
    workload = mixed_workload(total_jobs=jobs, seed=seed, scf_iterations=2)
    pool = MachinePool(machines, machine_p, params)
    service = EigenService(
        pool, TuningCache(), workers=workers,
        faults=scenario, fault_seed0=fault_seed0,
    )
    report = service.run_workload(workload)
    silent_wrong: list[dict[str, Any]] = []
    for r in report.results:
        if not r.ok:
            continue
        a = random_symmetric(r.n, seed=r.seed)
        err = reference_spectrum_error(a, r.eigenvalues)
        if not err < tol:
            silent_wrong.append(
                {"job_id": r.job_id, "n": r.n, "error": float(err), "degraded": r.degraded}
            )
    doc = {
        "version": 1,
        "scenario": scenario,
        "fault_seed0": fault_seed0,
        "tol": tol,
        "jobs": report.jobs,
        "ok": report.ok_jobs,
        "typed_errors": report.error_jobs,
        "degraded": sum(r.degraded for r in report.results),
        "error_types": sorted(
            {r.error_type for r in report.results if not r.ok}
        ),
        "silent_wrong": silent_wrong,
    }
    log(
        f"soak[{scenario}]: {doc['ok']}/{doc['jobs']} ok "
        f"({doc['degraded']} degraded to replicated), "
        f"{doc['typed_errors']} typed errors, {len(silent_wrong)} silently wrong"
    )
    return doc


# ------------------------------------------------------------------ #
# document I/O (mirrors repro.bench)


def render_serve(doc: dict[str, Any]) -> str:
    from repro.report.tables import format_table

    rows = []
    for label, entry in doc.get("passes", {}).items():
        sim = entry.get("sim", {})
        rows.append(
            [
                label,
                entry.get("jobs", 0),
                f"{entry.get('jobs_per_s', 0.0):.1f}",
                f"{entry.get('plan_hit_rate', 0.0):.1%}",
                f"{sim.get('latency_p50', 0.0):.4g}",
                f"{sim.get('latency_p99', 0.0):.4g}",
                f"{sim.get('utilization', 0.0):.1%}",
                " ".join(f"{k}:{v}" for k, v in entry.get("regimes", {}).items()),
            ]
        )
    table = format_table(
        ["pass", "jobs", "jobs/s", "plan hits", "sim p50", "sim p99", "util", "regimes"],
        rows,
        title="eigensolver service benchmark (latency in simulated BSP time)",
    )
    verify = doc.get("verify", {})
    tail = (
        f"\nbyte-identity: {verify.get('checked', 0)} spectra verified against "
        f"single-shot solves, {len(verify.get('mismatches', []))} mismatches; "
        f"warm pass identical: {verify.get('warm_identical')}"
    )
    return table + tail


def write_serve_results(doc: dict[str, Any], path: Path | str) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out


def load_serve_baseline(path: Path | str) -> dict[str, Any]:
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no serve baseline at {path}; create one with `repro serve-bench --out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BenchError(f"serve baseline {path} is unreadable: {exc}") from exc
