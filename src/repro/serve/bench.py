"""The ``repro serve-bench`` throughput benchmark and its CI gate.

Three passes of the pinned seeded workload run through the service:

* **cold** — the persistent tuning cache starts absent: every distinct
  shape plans from scratch (in-pass repeats already hit);
* **warm** — a *fresh* service instance reloads the cache file the cold
  pass persisted, demonstrating cross-process reuse: the plan hit rate
  must reach :data:`HIT_RATE_FLOOR` (the acceptance gate is ≥ 80%; with a
  correct store it is 100%);
* **edf** — the warm workload re-served under earliest-deadline-first
  dispatch (``ResiliencePolicy(scheduling="edf")``): same plans, same
  spectra, only the simulated queue order may differ — the SLO section
  shows what deadline-aware dispatch buys the interactive class.

The document written to ``benchmarks/results/BENCH_serve.json`` (and
committed at the repo root as the baseline) carries, per pass: wall-clock
throughput (jobs/s), simulated-latency percentiles (p50/p99 in BSP time
units), pool utilization, the regime histogram of the planner's routing,
exact simulated cost totals, and cache statistics; plus the byte-identity
verification of every served spectrum against a single-shot solve, and
the per-job bound-attainment roll-up.

``check_serve`` gates a fresh run against the committed baseline with the
same split as ``repro bench``: **simulated quantities compare exactly**
(they are deterministic — drift means the accounting or the scheduler
changed and the baseline must be recommitted deliberately), while
**wall-clock throughput** is compared after host calibration (a pinned
single-shot solve timed on both hosts) with the shared
``REPRO_BENCH_ENVELOPE`` tolerance, and wall-only failures are retried by
:func:`repro.bench.check_with_retries` (the failure text says
"wall-clock regression", which is the retry trigger).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench import WALL_TOLERANCE, BenchError
from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.eig import solve_by_name
from repro.metrics.attainment import attainment_rollup
from repro.obs.dash import write_dash
from repro.obs.perfetto import write_merged_trace
from repro.obs.report import build_telemetry_doc
from repro.obs.telemetry import Telemetry
from repro.serve.cache import TuningCache
from repro.serve.journal import CRASH_AFTER_ENV, CRASH_EXIT_CODE, read_journal
from repro.serve.pool import MachinePool
from repro.serve.resilience import SERVICE_SCENARIOS, ResiliencePolicy
from repro.serve.service import (
    EigenService,
    ServeReport,
    verify_against_single_shot,
)
from repro.serve.workload import Workload, mixed_workload
from repro.util.matrices import random_symmetric
from repro.util.validation import reference_spectrum_error

#: default fresh-results location (the committed baseline lives at the
#: repo root as BENCH_serve.json, mirroring BENCH_engine.json)
DEFAULT_RESULT_PATH = Path("benchmarks") / "results" / "BENCH_serve.json"
DEFAULT_TRACE_PATH = Path("benchmarks") / "results" / "serve_trace.json"
DEFAULT_CACHE_PATH = Path("benchmarks") / "results" / "serve_tuning_cache.json"
DEFAULT_SOAK_PATH = Path("benchmarks") / "results" / "serve_soak.json"
DEFAULT_MERGED_TRACE_PATH = (
    Path("benchmarks") / "results" / "serve_merged_trace.json"
)
DEFAULT_DASH_PATH = Path("benchmarks") / "results" / "serve_dash.html"

#: the serve-bench machine profile: a latency-heavy commodity cluster
#: (α/γ = 3000) chosen so the planner's regime routing is *exercised* —
#: over the pinned size menu the modeled optimum walks from a replicated
#: single-rank solve (n = 8) through 2-, 4- and 8-rank sub-grids up to the
#: dedicated 16-rank grid (n ≥ 96), with δ varying between 1/2 and 2/3.
SERVE_PARAMS = MachineParams(
    gamma=1.0, beta=20.0, nu=2.0, alpha=3000.0, memory_words=float(2**20)
)

#: pinned suite inputs; changing any of these invalidates a baseline
PINNED: dict[str, Any] = {
    "pool": {"machines": 4, "p": 16},
    "workload": {
        "total_jobs": 200,
        "seed": 7,
        "scf_iterations": 6,
        "kpoint_sizes": [24, 32, 32, 48],
        "zipf_mean_gap": 2.0e4,
    },
    "profile": {
        "gamma": 1.0, "beta": 20.0, "nu": 2.0, "alpha": 3000.0,
        "memory_words": float(2**20), "cache_words": None,  # None = inf
    },
    "algorithm": "eig2p5d",
    "calibration": {"n": 32, "p": 2, "delta": 0.5, "seed": 123, "repeats": 3},
}

#: minimum plan hit rate of the warm pass (the acceptance floor; a correct
#: persistent store achieves 1.0)
HIT_RATE_FLOOR = 0.8

#: per-pass summary fields gated by exact equality (deterministic).  The
#: resilience and SLO sections are gate food too: retry/hedge/shed counts
#: and per-class deadline hit rates are pure functions of the seeded
#: workload, so any drift means the resilience layer changed behavior.
EXACT_PASS_FIELDS = (
    "jobs", "ok", "errors", "shed", "degraded", "regimes",
    "sim", "sim_totals", "resilience", "slo",
)

#: summary fields that are wall-clock (the only non-deterministic ones)
WALL_SUMMARY_FIELDS = ("wall_s", "jobs_per_s")


def deterministic_summary(summary: dict[str, Any]) -> dict[str, Any]:
    """A ServeReport summary with its wall-clock fields stripped — two
    same-seed runs must agree on this dict *exactly* (the determinism
    acceptance gate)."""
    return {k: v for k, v in summary.items() if k not in WALL_SUMMARY_FIELDS}


def pinned_workload(pinned: dict[str, Any] | None = None) -> Workload:
    cfg = (pinned or PINNED)["workload"]
    return mixed_workload(
        total_jobs=cfg["total_jobs"],
        seed=cfg["seed"],
        scf_iterations=cfg["scf_iterations"],
        kpoint_sizes=cfg["kpoint_sizes"],
        zipf_mean_gap=cfg["zipf_mean_gap"],
    )


def _profile_params(pinned: dict[str, Any]) -> MachineParams:
    prof = dict(pinned["profile"])
    if prof.get("cache_words") is None:
        prof["cache_words"] = float("inf")
    return MachineParams(**prof)


def calibration_wall(pinned: dict[str, Any] | None = None) -> float:
    """Median wall of a pinned single-shot solve — the host speed probe.

    Scaling the committed throughput by the ratio of this number across
    hosts makes the gate measure *service* regressions, not runner
    hardware (the same trick ``repro bench`` plays with its scalar
    oracle).
    """
    cfg = (pinned or PINNED)["calibration"]
    params = _profile_params(pinned or PINNED)
    a = random_symmetric(cfg["n"], seed=cfg["seed"])
    walls = []
    for _ in range(cfg["repeats"]):
        machine = BSPMachine(cfg["p"], params)
        t0 = time.perf_counter()
        solve_by_name((pinned or PINNED)["algorithm"], machine, a, cfg["delta"])
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls)


def _pass_doc(report: ServeReport) -> dict[str, Any]:
    return report.summary()


def run_serve_suite(
    cache_path: Path | str | None = None,
    trace_path: Path | str | None = None,
    workers: int = 0,
    pinned: dict[str, Any] | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Run the two-pass pinned suite; return the results document.

    Raises :class:`~repro.bench.BenchError` if any job errors on a clean
    machine, or any served spectrum is not byte-identical to its
    single-shot reference.
    """
    pinned = pinned or PINNED
    params = _profile_params(pinned)
    cache_path = Path(cache_path) if cache_path is not None else DEFAULT_CACHE_PATH
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    if cache_path.exists():
        cache_path.unlink()  # the cold pass must actually be cold

    workload = pinned_workload(pinned)
    if trace_path is not None:
        workload.write(trace_path)

    pool_cfg = pinned["pool"]
    doc: dict[str, Any] = {
        "version": 1,
        "pinned": pinned,
        "workload_sizes": {str(k): v for k, v in workload.sizes().items()},
        "passes": {},
    }

    #: pass → scheduling policy: "edf" re-serves the warm workload under
    #: earliest-deadline-first dispatch (same plans, same spectra — only
    #: the simulated queue order may differ)
    reports: dict[str, ServeReport] = {}
    for label in ("cold", "warm", "edf"):
        pool = MachinePool(pool_cfg["machines"], pool_cfg["p"], params)
        cache = TuningCache(cache_path)  # warm/edf passes reload the cold store
        service = EigenService(
            pool, cache, algorithm=pinned["algorithm"], workers=workers,
            policy=ResiliencePolicy(scheduling="edf") if label == "edf" else None,
        )
        report = service.run_workload(workload)
        reports[label] = report
        doc["passes"][label] = _pass_doc(report)
        bad = [r for r in report.results if not r.ok]
        if bad:
            raise BenchError(
                f"{label} pass: {len(bad)} job(s) errored on a clean machine: "
                + "; ".join(f"job {r.job_id}: {r.error_type}: {r.error}" for r in bad[:3])
            )
        log(
            f"{label}: {report.jobs} jobs, {report.jobs_per_s:.1f} jobs/s, "
            f"plan hit rate {report.plan_hit_rate:.1%}, "
            f"sim p50={report.schedule.percentile(50):.3g} "
            f"p99={report.schedule.percentile(99):.3g}, "
            f"util={report.schedule.utilization:.1%}"
        )

    log("verifying byte-identity of every served spectrum vs single-shot runs...")
    mismatches = verify_against_single_shot(reports["cold"].results, params)
    identical = {
        label: all(
            a.ok and b.ok
            and a.eigenvalues is not None and b.eigenvalues is not None
            and np.array_equal(a.eigenvalues, b.eigenvalues)
            for a, b in zip(reports["cold"].results, reports[label].results)
        )
        for label in ("warm", "edf")
    }
    doc["verify"] = {
        "checked": reports["cold"].ok_jobs,
        "mismatches": mismatches,
        "warm_identical": identical["warm"],
        "identical": identical,
    }
    if mismatches:
        raise BenchError(
            "served eigenvalues diverged from single-shot solves:\n  "
            + "\n  ".join(mismatches[:5])
        )
    for label, same in identical.items():
        if not same:
            raise BenchError(f"{label}-pass eigenvalues differ from the cold pass")

    doc["attainment"] = attainment_rollup(
        r.attainment for r in reports["cold"].results
    )
    doc["calibration_wall_s"] = calibration_wall(pinned)
    return doc


# ------------------------------------------------------------------ #
# gate


def check_serve(
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    wall_tolerance: float = WALL_TOLERANCE,
) -> list[str]:
    """Gate failures of a fresh serve suite vs the baseline ([] = pass)."""
    failures: list[str] = []
    if fresh.get("pinned") != baseline.get("pinned"):
        return [
            "pinned suite inputs differ from the baseline — regenerate it with "
            "`repro serve-bench --out BENCH_serve.json`"
        ]
    verify = fresh.get("verify", {})
    if verify.get("mismatches"):
        failures.append(
            f"{len(verify['mismatches'])} served spectrum(s) not byte-identical "
            "to single-shot solves"
        )
    if not verify.get("warm_identical", False):
        failures.append("warm-pass eigenvalues differ from the cold pass")
    for label, same in verify.get("identical", {}).items():
        if label != "warm" and not same:
            failures.append(f"{label}-pass eigenvalues differ from the cold pass")

    warm = fresh.get("passes", {}).get("warm", {})
    hit_rate = warm.get("plan_hit_rate", 0.0)
    if hit_rate < HIT_RATE_FLOOR:
        failures.append(
            f"warm-pass plan cache hit rate {hit_rate:.1%} is below the "
            f"{HIT_RATE_FLOOR:.0%} floor"
        )

    cal_fresh = fresh.get("calibration_wall_s") or 0.0
    cal_base = baseline.get("calibration_wall_s") or 0.0
    scale = (cal_fresh / cal_base) if cal_fresh > 0 and cal_base > 0 else 1.0

    for label, entry in fresh.get("passes", {}).items():
        base = baseline.get("passes", {}).get(label)
        if base is None:
            failures.append(f"pass {label}: missing from baseline")
            continue
        for fld in EXACT_PASS_FIELDS:
            if entry.get(fld) != base.get(fld):
                failures.append(
                    f"pass {label}: simulated-result drift in {fld}: "
                    f"baseline {base.get(fld)!r} != fresh {entry.get(fld)!r}"
                )
        # throughput: fresh jobs/s may not fall below baseline / (tol × host
        # scale); phrased as a wall-clock regression so the shared retry
        # loop re-times a loaded host instead of failing the build
        base_jps = base.get("jobs_per_s", 0.0)
        floor = base_jps / (wall_tolerance * scale) if base_jps else 0.0
        if entry.get("jobs_per_s", 0.0) < floor:
            failures.append(
                f"pass {label}: throughput wall-clock regression: "
                f"{entry.get('jobs_per_s', 0.0):.2f} jobs/s is below "
                f"{floor:.2f} (= baseline {base_jps:.2f} / {wall_tolerance:.2f} "
                f"/ host-scale {scale:.2f})"
            )
    if fresh.get("attainment") != baseline.get("attainment"):
        failures.append(
            "per-job attainment roll-up drifted from the baseline "
            "(stage cost accounting changed — recommit deliberately)"
        )
    return failures


# ------------------------------------------------------------------ #
# telemetry (PR 10): the observed pass and its gated document


def run_telemetry_suite(
    pinned: dict[str, Any] | None = None,
    workers: int = 0,
    capture_solver_spans: bool = True,
    trace_path: Path | str | None = None,
    dash_path: Path | str | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """One telemetry-on pass of the pinned workload → the gated document.

    Runs the pinned workload twice on fresh pools with in-memory tuning
    caches: once unobserved, once with a :class:`~repro.obs.telemetry.
    Telemetry` attached (and solver-span capture threaded into every
    solve).  The two deterministic summaries must agree *exactly* — that
    is the strict-no-op acceptance gate in its strongest form: observing
    the service does not change a single simulated quantity.  The
    telemetry document it returns is itself fully deterministic and is
    gated against ``benchmarks/results/telemetry.json`` the same way the
    simulated sections of ``BENCH_serve.json`` are.

    This pass is deliberately **separate** from the three gated
    wall-clock passes of :func:`run_serve_suite`: span capture slows the
    solver's wall clock (never its simulated results), so it must not
    contaminate the throughput numbers.
    """
    pinned = pinned or PINNED
    params = _profile_params(pinned)
    pool_cfg = pinned["pool"]
    workload = pinned_workload(pinned)

    def one_pass(telemetry: Telemetry | None) -> tuple[ServeReport, MachinePool]:
        pool = MachinePool(pool_cfg["machines"], pool_cfg["p"], params)
        service = EigenService(
            pool, TuningCache(), algorithm=pinned["algorithm"],
            workers=workers, telemetry=telemetry,
        )
        return service.run_workload(workload), pool

    unobserved, _ = one_pass(None)
    telemetry = Telemetry(capture_solver_spans=capture_solver_spans)
    observed, pool = one_pass(telemetry)
    if deterministic_summary(observed.summary()) != deterministic_summary(
        unobserved.summary()
    ):
        raise BenchError(
            "telemetry is not a strict no-op: the observed pass's "
            "deterministic summary differs from the unobserved pass"
        )

    doc = build_telemetry_doc(
        telemetry,
        config={
            "pool": dict(pool_cfg),
            "workload": dict(pinned["workload"]),
            "algorithm": pinned["algorithm"],
            "capture_solver_spans": bool(capture_solver_spans),
        },
    )
    if trace_path is not None:
        write_merged_trace(
            telemetry, trace_path, pool=pool,
            label="serve-bench pinned workload",
        )
    if dash_path is not None:
        write_dash(doc, dash_path, title="repro serve-bench flight recorder")
    ev = doc["events"]
    log(
        f"telemetry: {ev['count']} lifecycle events, "
        f"{doc['solver']['span_events']} solver span events across "
        f"{doc['solver']['attempts_with_spans']} attempts; "
        "observed pass byte-identical to unobserved (strict no-op holds)"
    )
    return doc


# ------------------------------------------------------------------ #
# soak (nightly): solver- and service-level chaos scenarios

DEFAULT_JOURNAL_PATH = Path("benchmarks") / "results" / "serve_journal.jsonl"


def _soak_workload(jobs: int, seed: int):
    return mixed_workload(total_jobs=jobs, seed=seed, scf_iterations=2)


def _soak_service(
    scenario: str | None,
    journal: Path | None,
    workers: int = 0,
    fault_seed0: int = 0,
    telemetry: Telemetry | None = None,
) -> EigenService:
    """One soak service instance on the pinned 2×16 pool.

    ``scenario`` routes to the right injection layer: a service-level name
    (:data:`~repro.serve.resilience.SERVICE_SCENARIOS`) configures the
    resilient loop's chaos hooks; anything else is a solver-level fault
    scenario installed on every pool worker (the PR 7 path); ``None`` runs
    clean (the crash scenario — the only failure is the kill itself).
    """
    pool = MachinePool(2, 16, SERVE_PARAMS)
    if scenario is not None and scenario in SERVICE_SCENARIOS:
        return EigenService(
            pool, TuningCache(), workers=workers,
            scenario=scenario, fault_seed0=fault_seed0, journal=journal,
            telemetry=telemetry,
        )
    return EigenService(
        pool, TuningCache(), workers=workers,
        faults=scenario, fault_seed0=fault_seed0, journal=journal,
        telemetry=telemetry,
    )


def _silent_wrong(report: ServeReport, tol: float) -> list[dict[str, Any]]:
    """Ok-status jobs whose spectrum misses the numpy reference — the
    never-silently-wrong invariant's violation list (must be empty)."""
    out: list[dict[str, Any]] = []
    for r in report.results:
        if not r.ok:
            continue
        a = random_symmetric(r.n, seed=r.seed)
        err = reference_spectrum_error(a, r.eigenvalues)
        if not err < tol:
            out.append(
                {"job_id": r.job_id, "n": r.n, "error": float(err), "degraded": r.degraded}
            )
    return out


def crash_driver(
    jobs: int, seed: int, journal_path: str, workers: int = 0
) -> None:
    """Subprocess entry point of the crash scenario: serve the pinned soak
    workload against a journal with ``REPRO_SERVE_CRASH_AFTER`` armed, so
    the process hard-exits mid-workload (``os._exit(70)``)."""
    service = _soak_service(None, Path(journal_path), workers=workers)
    service.run_workload(_soak_workload(jobs, seed))


def run_crash_resume(
    jobs: int = 48,
    seed: int = 11,
    journal_path: Path | str = DEFAULT_JOURNAL_PATH,
    crash_after: int | None = None,
    tol: float = 1e-6,
    dash_path: Path | str | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """The mid-run-crash scenario: kill a serving subprocess, resume, compare.

    1. Serve the workload uninterrupted (no journal) — the reference.
    2. Spawn a subprocess serving the same workload against a journal with
       the crash hook armed; it must die with :data:`CRASH_EXIT_CODE`.
    3. Resume in this process against the journal; the resumed report must
       be byte-identical to the reference (summary and spectra), and the
       journal must show every submitted job with a terminal disposition.
    """
    journal_path = Path(journal_path)
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    if journal_path.exists():
        journal_path.unlink()
    if crash_after is None:
        # past the header + submit records and a handful of attempts:
        # solidly mid-workload, well before the last terminal
        crash_after = 1 + jobs + max(3, jobs // 4)

    workload = _soak_workload(jobs, seed)
    reference = _soak_service(None, None).run_workload(workload)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    env[CRASH_AFTER_ENV] = str(crash_after)
    code = (
        "from repro.serve.bench import crash_driver; "
        f"crash_driver(jobs={jobs}, seed={seed}, journal_path={str(journal_path)!r})"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    if proc.returncode != CRASH_EXIT_CODE:
        raise BenchError(
            f"crash subprocess exited {proc.returncode}, expected "
            f"{CRASH_EXIT_CODE} (the injected crash): {proc.stderr[-500:]}"
        )
    interrupted = read_journal(journal_path)

    # the flight recorder observes the *resumed* run (telemetry is a
    # strict no-op, so the byte-identity compare below still holds)
    telemetry = (
        Telemetry(capture_solver_spans=False) if dash_path is not None else None
    )
    resumed = _soak_service(
        None, journal_path, telemetry=telemetry
    ).run_workload(workload)
    summary_identical = deterministic_summary(
        resumed.summary()
    ) == deterministic_summary(reference.summary())
    spectra_identical = all(
        (a.eigenvalues is None) == (b.eigenvalues is None)
        and (a.eigenvalues is None or np.array_equal(a.eigenvalues, b.eigenvalues))
        for a, b in zip(reference.results, resumed.results)
    )
    jsum = read_journal(journal_path)
    doc = {
        "version": 2,
        "scenario": "crash",
        "jobs": resumed.jobs,
        "ok": resumed.ok_jobs,
        "typed_errors": resumed.error_jobs,
        "degraded": sum(r.degraded for r in resumed.results),
        "error_types": sorted({r.error_type for r in resumed.results if not r.ok}),
        "crash_after_appends": crash_after,
        "crash_exit": proc.returncode,
        "journal_at_crash": interrupted,
        "journal": jsum,
        "resumed_summary_identical": summary_identical,
        "resumed_spectra_identical": spectra_identical,
        "deterministic": summary_identical and spectra_identical,
        "no_job_lost": (
            jsum["submitted"] == resumed.jobs and not jsum["missing_terminals"]
        ),
        "silent_wrong": _silent_wrong(resumed, tol),
        "dispositions": resumed.schedule.dispositions(),
        "resilience": resumed.resilience,
        "slo": resumed.slo,
    }
    if telemetry is not None and dash_path is not None:
        tdoc = build_telemetry_doc(
            telemetry,
            config={"scenario": "crash", "jobs": jobs, "seed": seed,
                    "crash_after": crash_after},
        )
        write_dash(
            tdoc, dash_path, title="repro soak flight recorder — crash resume"
        )
        doc["dash"] = {
            "path": str(dash_path),
            "events": tdoc["events"]["count"],
            "event_digest": tdoc["events"]["digest"],
        }
    log(
        f"soak[crash]: killed after {crash_after} journal appends "
        f"({interrupted['attempts']} attempts journaled), resumed "
        f"{doc['ok']}/{doc['jobs']} ok; summary identical: {summary_identical}, "
        f"spectra identical: {spectra_identical}, no job lost: {doc['no_job_lost']}"
    )
    return doc


def run_soak(
    jobs: int = 48,
    machines: int = 2,
    machine_p: int = 16,
    seed: int = 11,
    scenario: str = "chaos",
    fault_seed0: int = 0,
    tol: float = 1e-6,
    workers: int = 0,
    journal_path: Path | str = DEFAULT_JOURNAL_PATH,
    dash_path: Path | str | None = None,
    log: Callable[[str], None] = print,
) -> dict[str, Any]:
    """Serve a workload under a chaos scenario and check the invariants.

    ``scenario`` is a solver-level fault scenario (``chaos``,
    ``rank-failure``, ...: every pool worker injects faults), a
    service-level scenario (``flaky-machine``, ``straggler``,
    ``poison-job``: the resilient loop's chaos hooks), or ``crash``
    (delegates to :func:`run_crash_resume`).  Three invariants gate:

    * **never silently wrong** — every ok-status spectrum matches the
      numpy reference within ``tol``;
    * **no job lost** — every submitted job owns a journal terminal
      record with a disposition in ``ok | degraded | shed | error``;
    * **deterministic** — a second run of the same seeded config produces
      an identical summary (wall-clock fields excluded).
    """
    if scenario == "crash":
        return run_crash_resume(
            jobs=jobs, seed=seed, journal_path=journal_path, tol=tol,
            dash_path=dash_path, log=log,
        )
    if scenario not in SERVICE_SCENARIOS:
        from repro.faults.plan import SCENARIOS

        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown soak scenario {scenario!r}; choose a solver scenario "
                f"{sorted(SCENARIOS)} or a service scenario "
                f"{sorted(SERVICE_SCENARIOS) + ['crash']}"
            )
    del machines, machine_p  # pinned by _soak_service (kept for API compat)

    journal_path = Path(journal_path)
    journal_path.parent.mkdir(parents=True, exist_ok=True)
    if journal_path.exists():
        journal_path.unlink()  # each soak run journals from scratch

    workload = _soak_workload(jobs, seed)
    # the flight recorder rides the journaled run; telemetry is a strict
    # no-op so the determinism compare against the untelemetried rerun
    # still holds (solver-span capture stays off to keep soak wall cheap)
    telemetry = (
        Telemetry(capture_solver_spans=False) if dash_path is not None else None
    )
    report = _soak_service(
        scenario, journal_path, workers=workers, fault_seed0=fault_seed0,
        telemetry=telemetry,
    ).run_workload(workload)
    rerun = _soak_service(
        scenario, None, workers=workers, fault_seed0=fault_seed0
    ).run_workload(workload)
    deterministic = deterministic_summary(report.summary()) == deterministic_summary(
        rerun.summary()
    )
    silent_wrong = _silent_wrong(report, tol)
    jsum = read_journal(journal_path)
    doc = {
        "version": 2,
        "scenario": scenario,
        "fault_seed0": fault_seed0,
        "tol": tol,
        "jobs": report.jobs,
        "ok": report.ok_jobs,
        "typed_errors": report.error_jobs,
        "shed": report.shed_jobs,
        "degraded": sum(r.degraded for r in report.results),
        "error_types": sorted(
            {r.error_type for r in report.results if not r.ok}
        ),
        "silent_wrong": silent_wrong,
        "dispositions": report.schedule.dispositions(),
        "resilience": report.resilience,
        "slo": report.slo,
        "health": report.health,
        "journal": jsum,
        "no_job_lost": (
            jsum["submitted"] == report.jobs and not jsum["missing_terminals"]
        ),
        "deterministic": deterministic,
    }
    if telemetry is not None and dash_path is not None:
        tdoc = build_telemetry_doc(
            telemetry,
            config={"scenario": scenario, "jobs": jobs, "seed": seed,
                    "fault_seed0": fault_seed0},
        )
        write_dash(
            tdoc, dash_path, title=f"repro soak flight recorder — {scenario}"
        )
        doc["dash"] = {
            "path": str(dash_path),
            "events": tdoc["events"]["count"],
            "event_digest": tdoc["events"]["digest"],
        }
    log(
        f"soak[{scenario}]: {doc['ok']}/{doc['jobs']} ok "
        f"({doc['degraded']} degraded, {doc['shed']} shed), "
        f"{doc['typed_errors']} typed errors, {len(silent_wrong)} silently wrong; "
        f"no job lost: {doc['no_job_lost']}, deterministic: {deterministic}"
    )
    return doc


# ------------------------------------------------------------------ #
# document I/O (mirrors repro.bench)


def render_serve(doc: dict[str, Any]) -> str:
    from repro.report.tables import format_table

    rows = []
    for label, entry in doc.get("passes", {}).items():
        sim = entry.get("sim", {})
        rows.append(
            [
                label,
                entry.get("jobs", 0),
                f"{entry.get('jobs_per_s', 0.0):.1f}",
                f"{entry.get('plan_hit_rate', 0.0):.1%}",
                f"{sim.get('latency_p50', 0.0):.4g}",
                f"{sim.get('latency_p99', 0.0):.4g}",
                f"{sim.get('utilization', 0.0):.1%}",
                " ".join(f"{k}:{v}" for k, v in entry.get("regimes", {}).items()),
            ]
        )
    table = format_table(
        ["pass", "jobs", "jobs/s", "plan hits", "sim p50", "sim p99", "util", "regimes"],
        rows,
        title="eigensolver service benchmark (latency in simulated BSP time)",
    )
    verify = doc.get("verify", {})
    tail = (
        f"\nbyte-identity: {verify.get('checked', 0)} spectra verified against "
        f"single-shot solves, {len(verify.get('mismatches', []))} mismatches; "
        f"warm pass identical: {verify.get('warm_identical')}"
    )
    return table + tail


def write_serve_results(doc: dict[str, Any], path: Path | str) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out


def load_serve_baseline(path: Path | str) -> dict[str, Any]:
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no serve baseline at {path}; create one with `repro serve-bench --out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BenchError(f"serve baseline {path} is unreadable: {exc}") from exc
