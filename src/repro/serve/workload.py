"""Deterministic, seeded workload generation for the eigensolver service.

Three generators model the production mix the ROADMAP targets:

* :func:`scf_trace` — a gpaw-style self-consistent-field loop: every SCF
  iteration diagonalizes one matrix per k-point, the *shapes* repeating
  identically across iterations (only the matrix entries evolve).  Jobs
  arrive in bursts at iteration boundaries.  This is the cache's best
  case: after iteration one, every plan is a repeat.
* :func:`zipf_stream` — open traffic with Zipf-distributed sizes (small
  problems dominate, big ones are rare but expensive) and Poisson
  arrivals (seeded exponential inter-arrival gaps).
* :func:`mixed_workload` — both merged in arrival order; the pinned
  ``repro serve-bench`` input.

Every generator is a pure function of its seed: the same call produces the
same :class:`Workload` byte-for-byte, on any host, forever.  Arrival times
are in *simulated BSP time units* (the same units as
``MachineParams.time``), not wall-clock.  Traces serialize to JSON so CI
can archive the exact workload a benchmark number came from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

#: size menu of the Zipf stream: "nice" n values small→large.  Snapping to
#: a short menu is what makes traffic *repeat* — real SCF/k-point codes do
#: the same (basis-set sizes are quantized by symmetry and cutoffs).
ZIPF_SIZES: tuple[int, ...] = (8, 12, 16, 24, 32, 48, 64, 96)

#: Zipf exponent: weight of size rank r is r^-ZIPF_EXPONENT
ZIPF_EXPONENT = 1.6


@dataclass(frozen=True)
class JobSpec:
    """One eigenproblem request: an n×n symmetric matrix drawn from ``seed``
    arriving at simulated time ``arrival``.

    ``slo`` names the request's service-level class (a key of
    :data:`repro.serve.resilience.SLO_CLASSES`); it sets the job's
    simulated-time deadline and its priority under EDF scheduling.
    """

    job_id: int
    n: int
    seed: int
    arrival: float
    tag: str = ""
    slo: str = "batch"

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "n": self.n,
            "seed": self.seed,
            "arrival": self.arrival,
            "tag": self.tag,
            "slo": self.slo,
        }


@dataclass
class Workload:
    """An ordered stream of job specs plus the recipe that generated it."""

    jobs: list[JobSpec]
    descriptor: dict[str, Any]

    def __len__(self) -> int:
        return len(self.jobs)

    def sizes(self) -> dict[int, int]:
        """Histogram n -> job count (sorted by n)."""
        out: dict[int, int] = {}
        for job in self.jobs:
            out[job.n] = out.get(job.n, 0) + 1
        return dict(sorted(out.items()))

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "descriptor": self.descriptor,
            "jobs": [job.as_dict() for job in self.jobs],
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Workload":
        jobs = [
            JobSpec(
                job_id=int(j["job_id"]),
                n=int(j["n"]),
                seed=int(j["seed"]),
                arrival=float(j["arrival"]),
                tag=str(j.get("tag", "")),
                slo=str(j.get("slo", "batch")),
            )
            for j in doc["jobs"]
        ]
        return cls(jobs=jobs, descriptor=dict(doc.get("descriptor", {})))

    def write(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n")
        return out

    @classmethod
    def load(cls, path: str | Path) -> "Workload":
        return cls.from_json(json.loads(Path(path).read_text()))


def _finalize(
    raw: list[tuple[float, int, str, str]], seed: int, descriptor: dict
) -> Workload:
    """Sort by arrival (stable), assign ids, derive per-job matrix seeds.

    Matrix seeds are drawn from the workload seed and the job's position so
    two workloads with the same seed agree entry-for-entry, while distinct
    jobs get distinct (but reproducible) matrices.
    """
    raw.sort(key=lambda item: item[0])
    jobs = [
        JobSpec(
            job_id=i,
            n=n,
            seed=(seed * 1_000_003 + i * 7919) % (2**31 - 1),
            arrival=float(arrival),
            tag=tag,
            slo=slo,
        )
        for i, (arrival, n, tag, slo) in enumerate(raw)
    ]
    return Workload(jobs=jobs, descriptor=descriptor)


def scf_trace(
    iterations: int = 6,
    kpoint_sizes: Sequence[int] = (24, 32, 32, 48),
    iteration_gap: float = 2.0e5,
    burst_jitter: float = 5.0e3,
    seed: int = 0,
    t0: float = 0.0,
    slo: str = "batch",
) -> Workload:
    """A gpaw-style SCF trace: per iteration, one job per k-point.

    The k-point size list repeats identically every iteration; arrivals
    cluster in a burst at each iteration boundary with a small seeded
    jitter (the host code dispatches k-points one after another).  An SCF
    loop is throughput-bound, so its jobs default to the "batch" SLO.
    """
    rng = np.random.default_rng(seed)
    raw: list[tuple[float, int, str, str]] = []
    for it in range(iterations):
        base = t0 + it * iteration_gap
        for k, n in enumerate(kpoint_sizes):
            jitter = float(rng.uniform(0.0, burst_jitter))
            raw.append((base + jitter, int(n), f"scf[it={it},k={k}]", slo))
    descriptor = {
        "kind": "scf",
        "iterations": iterations,
        "kpoint_sizes": list(map(int, kpoint_sizes)),
        "iteration_gap": iteration_gap,
        "burst_jitter": burst_jitter,
        "seed": seed,
        "t0": t0,
    }
    return _finalize(raw, seed, descriptor)


def zipf_stream(
    jobs: int = 128,
    mean_gap: float = 2.0e4,
    sizes: Sequence[int] = ZIPF_SIZES,
    exponent: float = ZIPF_EXPONENT,
    seed: int = 0,
    t0: float = 0.0,
    slo: str = "interactive",
) -> Workload:
    """Open Poisson traffic with Zipf-distributed problem sizes.

    Size rank r (1 = smallest n) has probability ∝ r^-exponent, so small
    problems dominate and the occasional large one stresses the
    dedicated-grid path of the scheduler.  Inter-arrival gaps are
    exponential with mean ``mean_gap`` simulated time units.  Open traffic
    is latency-sensitive, so its jobs default to the "interactive" SLO.
    """
    rng = np.random.default_rng(seed)
    weights = np.array([1.0 / (r + 1) ** exponent for r in range(len(sizes))])
    weights /= weights.sum()
    raw: list[tuple[float, int, str, str]] = []
    t = t0
    for i in range(jobs):
        t += float(rng.exponential(mean_gap))
        n = int(rng.choice(np.asarray(sizes), p=weights))
        raw.append((t, n, f"zipf[{i}]", slo))
    descriptor = {
        "kind": "zipf",
        "jobs": jobs,
        "mean_gap": mean_gap,
        "sizes": list(map(int, sizes)),
        "exponent": exponent,
        "seed": seed,
        "t0": t0,
    }
    return _finalize(raw, seed, descriptor)


def mixed_workload(
    total_jobs: int = 200,
    seed: int = 7,
    scf_iterations: int = 6,
    kpoint_sizes: Sequence[int] = (24, 32, 32, 48),
    zipf_mean_gap: float = 2.0e4,
    zipf_sizes: Sequence[int] = ZIPF_SIZES,
) -> Workload:
    """The pinned serve-bench mix: an SCF trace plus a Zipf/Poisson stream.

    The SCF trace contributes ``iterations × len(kpoint_sizes)`` jobs; the
    Zipf stream fills up to ``total_jobs``.  Both draw from independent
    sub-seeds of ``seed`` and are merged in arrival order.
    """
    scf = scf_trace(
        iterations=scf_iterations, kpoint_sizes=kpoint_sizes, seed=seed * 2 + 1
    )
    n_zipf = total_jobs - len(scf.jobs)
    if n_zipf < 0:
        raise ValueError(
            f"total_jobs={total_jobs} is smaller than the SCF trace ({len(scf.jobs)} jobs)"
        )
    zipf = zipf_stream(
        jobs=n_zipf, mean_gap=zipf_mean_gap, sizes=zipf_sizes, seed=seed * 2 + 2
    )
    raw = [(j.arrival, j.n, j.tag, j.slo) for j in scf.jobs + zipf.jobs]
    descriptor = {
        "kind": "mixed",
        "total_jobs": total_jobs,
        "seed": seed,
        "scf": scf.descriptor,
        "zipf": zipf.descriptor,
    }
    return _finalize(raw, seed, descriptor)
