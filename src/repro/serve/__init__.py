"""repro.serve — the batched eigensolver service.

Real consumers (DFT/SCF codes, per-k-point diagonalization) submit
*streams* of moderate eigenproblems, not one matrix per process.  This
package turns the repo's single-shot solver into a served system:

==================  ====================================================
:mod:`~repro.serve.workload`   seeded SCF / Zipf / Poisson workload traces
:mod:`~repro.serve.cache`      persistent δ-autotuning cache (versioned
                               on-disk JSON, fingerprint invalidation)
:mod:`~repro.serve.planner`    per-shape regime routing: rank count + δ
:mod:`~repro.serve.pool`       the fleet of simulated BSP machines
:mod:`~repro.serve.scheduler`  simulated-time bin-packing dispatch
:mod:`~repro.serve.resilience` SLO deadlines/EDF, retry ladder, machine
                               quarantine, hedged dispatch, admission
                               control — one deterministic event loop
:mod:`~repro.serve.journal`    crash-safe write-ahead job journal
                               (fsync'd JSONL, resume without recompute)
:mod:`~repro.serve.service`    the request pipeline (plan → solve →
                               schedule), optional multiprocessing
:mod:`~repro.serve.bench`      ``repro serve-bench`` + the CI gate
==================  ====================================================

Quickstart::

    from repro.serve import EigenService, MachinePool, TuningCache, mixed_workload

    pool = MachinePool(machines=4, p=16)
    service = EigenService(pool, TuningCache("tuning_cache.json"))
    report = service.run_workload(mixed_workload(total_jobs=50, seed=1))
    print(report.summary())

See ``docs/serving.md`` for the architecture and the benchmark format.
"""

from repro.serve.cache import (
    TuningCache,
    cache_key,
    cached_best_delta,
    cached_replan_delta,
    model_fingerprint,
)
from repro.serve.journal import JobJournal, read_journal
from repro.serve.planner import Plan, candidate_ranks, plan_job
from repro.serve.pool import MachinePool, PoolMachine
from repro.serve.resilience import (
    DISPOSITIONS,
    SERVICE_SCENARIOS,
    SLO_CLASSES,
    AdmissionPolicy,
    HedgePolicy,
    QuarantinePolicy,
    ResiliencePolicy,
    RetryPolicy,
    ServiceScenario,
    run_resilient,
)
from repro.serve.scheduler import Schedule, ScheduledJob, schedule_jobs
from repro.serve.service import (
    EigenService,
    JobResult,
    ServeReport,
    single_shot_eigenvalues,
    verify_against_single_shot,
)
from repro.serve.workload import (
    JobSpec,
    Workload,
    mixed_workload,
    scf_trace,
    zipf_stream,
)

__all__ = [
    "TuningCache",
    "cache_key",
    "cached_best_delta",
    "cached_replan_delta",
    "model_fingerprint",
    "JobJournal",
    "read_journal",
    "DISPOSITIONS",
    "SERVICE_SCENARIOS",
    "SLO_CLASSES",
    "AdmissionPolicy",
    "HedgePolicy",
    "QuarantinePolicy",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServiceScenario",
    "run_resilient",
    "Plan",
    "candidate_ranks",
    "plan_job",
    "MachinePool",
    "PoolMachine",
    "Schedule",
    "ScheduledJob",
    "schedule_jobs",
    "EigenService",
    "JobResult",
    "ServeReport",
    "single_shot_eigenvalues",
    "verify_against_single_shot",
    "JobSpec",
    "Workload",
    "mixed_workload",
    "scf_trace",
    "zipf_stream",
]
