"""Simulated-time bin-packing of planned jobs onto the machine pool.

The scheduler answers "when does each job run, and where" in *simulated
BSP time*: a job's service time is the modeled T = γF + βW + νQ + αS of
its measured cost report, and arrivals come from the workload trace.  The
event loop is exact and deterministic — no sampling, no wall clock.

Policy (FIFO with backfill, best-fit placement):

* queued jobs are scanned in arrival order; the first job whose planned
  rank count fits some machine's free ranks starts immediately — small
  jobs therefore *backfill* around a head-of-line grid-sized job instead
  of idling the pool;
* placement is best-fit: the machine with the fewest free ranks that
  still fit is chosen (ties toward the lowest machine id), which packs
  small jobs together and keeps whole machines free for jobs that need a
  dedicated grid;
* a job whose plan wants every rank of a machine gets the machine to
  itself — the "dedicated grid" case is just best-fit at p = machine.p.

Starvation cannot persist: a job that fits an *empty* machine is started
no later than the first instant one of them drains, and every queue scan
considers the oldest job first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.serve.pool import MachinePool


@dataclass
class ScheduledJob:
    """Placement decision for one job, all times simulated."""

    job_id: int
    machine_id: int
    p: int
    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queue wait + service)."""
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "p": self.p,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
        }


@dataclass
class Schedule:
    """The full placement of a workload onto a pool."""

    jobs: list[ScheduledJob]
    makespan: float       # last finish − first arrival
    utilization: float    # busy rank-time / (total ranks × makespan)
    busy_rank_time: float

    def latencies(self) -> list[float]:
        return [j.latency for j in self.jobs]

    def percentile(self, q: float) -> float:
        """Exact latency percentile (nearest-rank on the sorted list)."""
        lats = sorted(self.latencies())
        if not lats:
            return 0.0
        idx = min(len(lats) - 1, max(0, math.ceil(q / 100.0 * len(lats)) - 1))
        return lats[idx]

    def summary(self) -> dict[str, Any]:
        lats = self.latencies()
        return {
            "jobs": len(self.jobs),
            "makespan": self.makespan,
            "utilization": self.utilization,
            "latency_p50": self.percentile(50.0),
            "latency_p99": self.percentile(99.0),
            "latency_mean": sum(lats) / len(lats) if lats else 0.0,
            "latency_max": max(lats) if lats else 0.0,
        }


def schedule_jobs(
    requests: Sequence[tuple[int, float, int, float]], pool: MachinePool
) -> Schedule:
    """Place ``(job_id, arrival, p, service_time)`` requests onto ``pool``.

    Raises ``ValueError`` if any request wants more ranks than the largest
    machine offers (the planner caps p at ``pool.max_ranks``, so this
    indicates a planner/pool mismatch, not load).
    """
    for job_id, _, p, _ in requests:
        if p > pool.max_ranks:
            raise ValueError(
                f"job {job_id} wants {p} ranks but the largest pool machine "
                f"has {pool.max_ranks}"
            )
        if p < 1:
            raise ValueError(f"job {job_id} wants {p} ranks")

    pending = sorted(requests, key=lambda r: (r[1], r[0]))  # arrival, then id
    free = {m.machine_id: m.p for m in pool}
    #: running jobs as (finish, machine_id, p, job_id), kept sorted by finish
    running: list[tuple[float, int, int, int]] = []
    placed: list[ScheduledJob] = []
    queue: list[tuple[int, float, int, float]] = []
    i = 0  # next arrival index
    now = pending[0][1] if pending else 0.0

    def try_dispatch() -> None:
        """Start every queued job that fits, FIFO scan with backfill."""
        nonlocal queue
        remaining: list[tuple[int, float, int, float]] = []
        for job_id, arrival, p, service in queue:
            # best-fit: fewest free ranks that still fit, lowest id on ties
            best_m: int | None = None
            for m in pool:
                f = free[m.machine_id]
                if f >= p and (best_m is None or f < free[best_m]):
                    best_m = m.machine_id
            if best_m is None:
                remaining.append((job_id, arrival, p, service))
                continue
            free[best_m] -= p
            finish = now + service
            running.append((finish, best_m, p, job_id))
            running.sort()
            placed.append(
                ScheduledJob(
                    job_id=job_id,
                    machine_id=best_m,
                    p=p,
                    arrival=arrival,
                    start=now,
                    finish=finish,
                )
            )
        queue = remaining

    while i < len(pending) or queue or running:
        # advance the clock to the next event: an arrival or a completion
        next_arrival = pending[i][1] if i < len(pending) else math.inf
        next_finish = running[0][0] if running else math.inf
        now = min(next_arrival, next_finish)
        if math.isinf(now):
            break  # queue non-empty but nothing running/arriving: impossible
        while running and running[0][0] <= now:
            _, m_id, p, _ = running.pop(0)
            free[m_id] += p
        while i < len(pending) and pending[i][1] <= now:
            queue.append(pending[i])
            i += 1
        try_dispatch()

    placed.sort(key=lambda j: j.job_id)
    if placed:
        t0 = min(j.arrival for j in placed)
        t1 = max(j.finish for j in placed)
        makespan = t1 - t0
    else:
        makespan = 0.0
    busy = sum(j.p * (j.finish - j.start) for j in placed)
    util = busy / (pool.total_ranks * makespan) if makespan > 0 else 0.0
    return Schedule(
        jobs=placed, makespan=makespan, utilization=util, busy_rank_time=busy
    )
