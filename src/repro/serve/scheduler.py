"""Simulated-time bin-packing of planned jobs onto the machine pool.

The scheduler answers "when does each job run, and where" in *simulated
BSP time*: a job's service time is the modeled T = γF + βW + νQ + αS of
its measured cost report, and arrivals come from the workload trace.  The
event loop is exact and deterministic — no sampling, no wall clock.

Policy (FIFO with backfill, best-fit placement):

* queued jobs are scanned in arrival order; the first job whose planned
  rank count fits some machine's free ranks starts immediately — small
  jobs therefore *backfill* around a head-of-line grid-sized job instead
  of idling the pool;
* placement is best-fit: the machine with the fewest free ranks that
  still fit is chosen (ties toward the lowest machine id), which packs
  small jobs together and keeps whole machines free for jobs that need a
  dedicated grid;
* a job whose plan wants every rank of a machine gets the machine to
  itself — the "dedicated grid" case is just best-fit at p = machine.p.

Starvation cannot persist: a job that fits an *empty* machine is started
no later than the first instant one of them drains, and every queue scan
considers the oldest job first.

Beside FIFO, ``policy="edf"`` orders every queue scan by absolute
deadline (earliest-deadline-first) instead of arrival — the deadline is
an optional fifth element of each request tuple (default: none, which
sorts last).  The richer resilient event loop
(:mod:`repro.serve.resilience`) reuses this module's :class:`Schedule` /
:class:`ScheduledJob` types, so rows carry a terminal ``disposition``
(``ok | degraded | shed | error``): *every* job the service accepted gets
a row here, not just the successes — failed jobs consumed machine time
and count in the latency percentiles (shed jobs, which never ran, are
tallied but excluded from latency statistics).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.telemetry import NO_TELEMETRY
from repro.serve.pool import MachinePool


@dataclass
class ScheduledJob:
    """Placement decision for one job, all times simulated."""

    job_id: int
    machine_id: int
    p: int
    arrival: float
    start: float
    finish: float
    disposition: str = "ok"   # terminal disposition: ok|degraded|shed|error
    attempts: int = 1         # executed attempts (retries + hedges included)
    hedged: bool = False      # a speculative duplicate was launched

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queue wait + service)."""
        return self.finish - self.arrival

    @property
    def queue_wait(self) -> float:
        return self.start - self.arrival

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "machine_id": self.machine_id,
            "p": self.p,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "disposition": self.disposition,
            "attempts": self.attempts,
            "hedged": self.hedged,
        }


@dataclass
class Schedule:
    """The full placement of a workload onto a pool."""

    jobs: list[ScheduledJob]
    makespan: float       # last finish − first arrival
    utilization: float    # busy rank-time / (total ranks × makespan)
    busy_rank_time: float

    def latencies(self) -> list[float]:
        """Latencies of every job that actually ran (shed jobs never did —
        counting their zero wait would flatter the percentiles, the exact
        inverse of the old bug where *error* jobs were dropped)."""
        return [j.latency for j in self.jobs if j.disposition != "shed"]

    def percentile(self, q: float) -> float:
        """Exact latency percentile (nearest-rank on the sorted list)."""
        lats = sorted(self.latencies())
        if not lats:
            return 0.0
        idx = min(len(lats) - 1, max(0, math.ceil(q / 100.0 * len(lats)) - 1))
        return lats[idx]

    def dispositions(self) -> dict[str, int]:
        """Histogram disposition -> job count (sorted by name)."""
        out: dict[str, int] = {}
        for j in self.jobs:
            out[j.disposition] = out.get(j.disposition, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> dict[str, Any]:
        lats = self.latencies()
        return {
            "jobs": len(self.jobs),
            "makespan": self.makespan,
            "utilization": self.utilization,
            "latency_p50": self.percentile(50.0),
            "latency_p99": self.percentile(99.0),
            "latency_mean": sum(lats) / len(lats) if lats else 0.0,
            "latency_max": max(lats) if lats else 0.0,
            "dispositions": self.dispositions(),
        }


def schedule_jobs(
    requests: Sequence[tuple],
    pool: MachinePool,
    policy: str = "fifo",
    telemetry: Any = NO_TELEMETRY,
) -> Schedule:
    """Place ``(job_id, arrival, p, service_time[, deadline])`` requests.

    The optional fifth element is the job's absolute deadline in simulated
    time; it matters only under ``policy="edf"``, where each dispatch scan
    considers earliest-deadline-first (deadline, then arrival, then id)
    instead of pure arrival order.  Backfill and best-fit placement are
    identical under both policies.

    ``telemetry`` observes the loop (``sched_dispatch`` events plus a
    ``sched/queue_depth`` gauge) without influencing any placement — the
    default :data:`~repro.obs.telemetry.NO_TELEMETRY` is a strict no-op.

    Raises ``ValueError`` if any request wants more ranks than the largest
    machine offers (the planner caps p at ``pool.max_ranks``, so this
    indicates a planner/pool mismatch, not load).
    """
    if policy not in ("fifo", "edf"):
        raise ValueError(f"policy must be 'fifo' or 'edf', got {policy!r}")
    reqs = [
        (r[0], r[1], r[2], r[3], r[4] if len(r) > 4 else math.inf) for r in requests
    ]
    for job_id, _, p, _, _ in reqs:
        if p > pool.max_ranks:
            raise ValueError(
                f"job {job_id} wants {p} ranks but the largest pool machine "
                f"has {pool.max_ranks}"
            )
        if p < 1:
            raise ValueError(f"job {job_id} wants {p} ranks")

    pending = sorted(reqs, key=lambda r: (r[1], r[0]))  # arrival, then id
    free = {m.machine_id: m.p for m in pool}
    #: running jobs as a (finish, machine_id, p, job_id) min-heap — the
    #: loop only ever needs the earliest finish, so a heap replaces the
    #: old re-sort-on-every-dispatch list with identical pop order
    running: list[tuple[float, int, int, int]] = []
    placed: list[ScheduledJob] = []
    queue: list[tuple[int, float, int, float, float]] = []
    i = 0  # next arrival index
    now = pending[0][1] if pending else 0.0

    def scan_order(entry: tuple[int, float, int, float, float]) -> tuple:
        job_id, arrival, _, _, deadline = entry
        if policy == "edf":
            return (deadline, arrival, job_id)
        return (arrival, job_id)

    def try_dispatch() -> None:
        """Start every queued job that fits, priority scan with backfill."""
        nonlocal queue
        remaining: list[tuple[int, float, int, float, float]] = []
        for entry in sorted(queue, key=scan_order):
            job_id, arrival, p, service, _ = entry
            # best-fit: fewest free ranks that still fit, lowest id on ties
            best_m: int | None = None
            for m in pool:
                f = free[m.machine_id]
                if f >= p and (best_m is None or f < free[best_m]):
                    best_m = m.machine_id
            if best_m is None:
                remaining.append(entry)
                continue
            free[best_m] -= p
            finish = now + service
            if telemetry.enabled:
                telemetry.emit(
                    "sched_dispatch", now, job=job_id, p=p,
                    machine=best_m, finish=finish,
                )
            heapq.heappush(running, (finish, best_m, p, job_id))
            placed.append(
                ScheduledJob(
                    job_id=job_id,
                    machine_id=best_m,
                    p=p,
                    arrival=arrival,
                    start=now,
                    finish=finish,
                )
            )
        queue = remaining

    while i < len(pending) or queue or running:
        # advance the clock to the next event: an arrival or a completion
        next_arrival = pending[i][1] if i < len(pending) else math.inf
        next_finish = running[0][0] if running else math.inf
        now = min(next_arrival, next_finish)
        if math.isinf(now):
            break  # queue non-empty but nothing running/arriving: impossible
        while running and running[0][0] <= now:
            _, m_id, p, _ = heapq.heappop(running)
            free[m_id] += p
        while i < len(pending) and pending[i][1] <= now:
            queue.append(pending[i])
            i += 1
        try_dispatch()
        if telemetry.enabled:
            telemetry.gauge("sched/queue_depth", now, float(len(queue)))

    placed.sort(key=lambda j: j.job_id)
    if placed:
        t0 = min(j.arrival for j in placed)
        t1 = max(j.finish for j in placed)
        makespan = t1 - t0
    else:
        makespan = 0.0
    busy = sum(j.p * (j.finish - j.start) for j in placed)
    util = busy / (pool.total_ranks * makespan) if makespan > 0 else 0.0
    return Schedule(
        jobs=placed, makespan=makespan, utilization=util, busy_rank_time=busy
    )
