"""The pool of simulated BSP machines jobs are dispatched onto.

A :class:`MachinePool` is a fixed fleet of identical (or heterogeneous)
simulated machines.  Each pool machine owns ``p`` ranks; the scheduler may
*share* a machine between several small jobs (each job's planned sub-grid
claims disjoint ranks) or *dedicate* it to one grid-sized job.  Pool
machines are descriptors, not live :class:`~repro.bsp.machine.BSPMachine`
instances — the service constructs a fresh accounting machine per job (of
the job's planned rank count), which is what keeps per-job eigenvalues and
cost reports byte-identical to single-shot runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.bsp.params import MachineParams


@dataclass(frozen=True)
class PoolMachine:
    """One simulated machine in the pool: ``p`` ranks with cost ``params``."""

    machine_id: int
    p: int
    params: MachineParams

    def as_dict(self) -> dict[str, Any]:
        return {"machine_id": self.machine_id, "p": self.p}


class MachinePool:
    """A fleet of simulated machines with a shared parameter profile.

    ``ranks`` overrides the uniform ``p`` with an explicit per-machine
    rank count — a heterogeneous fleet, which the resilience layer's
    quarantine tests use to pin work onto (or away from) one machine.
    """

    def __init__(
        self,
        machines: int,
        p: int,
        params: MachineParams | None = None,
        ranks: Sequence[int] | None = None,
    ):
        if machines < 1:
            raise ValueError(f"pool needs >= 1 machine, got {machines}")
        per_machine = list(ranks) if ranks is not None else [p] * machines
        if len(per_machine) != machines:
            raise ValueError(
                f"ranks lists {len(per_machine)} machines, expected {machines}"
            )
        if any(r < 1 for r in per_machine):
            raise ValueError(f"pool machines need >= 1 rank, got {min(per_machine)}")
        self.params = params or MachineParams()
        self.machines = [
            PoolMachine(i, r, self.params) for i, r in enumerate(per_machine)
        ]

    def machine(self, machine_id: int) -> PoolMachine:
        """Look up one machine by id (ids are dense, 0-based)."""
        return self.machines[machine_id]

    def track_label(self, machine_id: int) -> str:
        """Display name of one machine's telemetry track (Perfetto/dash)."""
        m = self.machines[machine_id]
        return f"machine {m.machine_id} (p={m.p})"

    @property
    def total_ranks(self) -> int:
        return sum(m.p for m in self.machines)

    @property
    def max_ranks(self) -> int:
        """Ranks of the largest machine — the planner's p_max ceiling."""
        return max(m.p for m in self.machines)

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "machines": len(self.machines),
            "p": self.max_ranks,
            "total_ranks": self.total_ranks,
            "ranks": [m.p for m in self.machines],
        }
