"""The pool of simulated BSP machines jobs are dispatched onto.

A :class:`MachinePool` is a fixed fleet of identical (or heterogeneous)
simulated machines.  Each pool machine owns ``p`` ranks; the scheduler may
*share* a machine between several small jobs (each job's planned sub-grid
claims disjoint ranks) or *dedicate* it to one grid-sized job.  Pool
machines are descriptors, not live :class:`~repro.bsp.machine.BSPMachine`
instances — the service constructs a fresh accounting machine per job (of
the job's planned rank count), which is what keeps per-job eigenvalues and
cost reports byte-identical to single-shot runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.bsp.params import MachineParams


@dataclass(frozen=True)
class PoolMachine:
    """One simulated machine in the pool: ``p`` ranks with cost ``params``."""

    machine_id: int
    p: int
    params: MachineParams

    def as_dict(self) -> dict[str, Any]:
        return {"machine_id": self.machine_id, "p": self.p}


class MachinePool:
    """A fleet of simulated machines with a shared parameter profile."""

    def __init__(self, machines: int, p: int, params: MachineParams | None = None):
        if machines < 1:
            raise ValueError(f"pool needs >= 1 machine, got {machines}")
        if p < 1:
            raise ValueError(f"pool machines need >= 1 rank, got {p}")
        self.params = params or MachineParams()
        self.machines = [PoolMachine(i, p, self.params) for i in range(machines)]

    @property
    def total_ranks(self) -> int:
        return sum(m.p for m in self.machines)

    @property
    def max_ranks(self) -> int:
        """Ranks of the largest machine — the planner's p_max ceiling."""
        return max(m.p for m in self.machines)

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "machines": len(self.machines),
            "p": self.max_ranks,
            "total_ranks": self.total_ranks,
        }
