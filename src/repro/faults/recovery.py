"""Checkpoint/restart, invariant guards, and the per-stage retry loop.

The eigensolver driver wraps each pipeline stage (full-to-band, every
band-to-band halving, CA-SBR, the sequential finish) in :func:`run_stage`:

* a :class:`Checkpoint` snapshots the stage's live arrays before the first
  attempt (charged as streamed words + one barrier, visible as a
  ``checkpoint`` span);
* a detected fault (:class:`~repro.faults.errors.FaultDetected`) restores
  the checkpoint, reconfigures after a rank loss via the stage's
  ``on_rank_loss`` callback (shrink the group, re-plan δ), charges an
  exponential backoff in supersteps, and retries — bounded by
  :class:`~repro.faults.machine.RecoveryPolicy.max_retries`;
* exhausted retries, a stage that cannot reconfigure, or zero survivors
  raise :class:`~repro.faults.errors.UnrecoverableFault` naming the span.

Counters never roll back — the machine is monotone by design — so the cost
of every failed attempt, restore, and re-execution stays in the report:
``CostReport.by_span()`` is exactly the resilience overhead, bit-for-bit.

The guards (:func:`guard_band`, :func:`guard_tridiagonal`) turn silent
corruption into typed errors: NaN/Inf screens first (NaN compares False
against any tolerance, so the screens must be explicit), then symmetry and
band-width via the validation oracles, then Frobenius-norm drift — every
stage of the pipeline is an orthogonal similarity, which preserves ‖A‖_F.
"""

from __future__ import annotations

from typing import Callable, Mapping, TypeVar

import numpy as np

from repro.bsp import collectives
from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.faults.errors import (
    CorruptData,
    FaultDetected,
    RankFailure,
    UnrecoverableFault,
    current_span,
)
from repro.util.validation import check_banded, check_symmetric, frobenius_norm

T = TypeVar("T")

#: relative tolerance of the Frobenius-norm-preservation guard; numerical
#: drift of the n≲10³ pipelines is ~1e-12, injected flips are ≳2^20
NORM_DRIFT_RTOL = 1e-6


class Checkpoint:
    """A stage-boundary snapshot of live arrays, restorable in place.

    ``arrays`` maps labels to the ndarrays the stage mutates; the snapshot
    copies them and :meth:`restore` writes the copies back *into the same
    objects*, so closures holding the arrays see clean data again.  Both
    directions charge one streamed pass over the data split across
    ``group`` plus a barrier, inside ``checkpoint``/``restore`` spans.
    """

    def __init__(self, machine: BSPMachine, name: str,
                 arrays: Mapping[str, np.ndarray], group: RankGroup):
        self.machine = machine
        self.name = name
        self.group = group
        self._live = dict(arrays)
        with machine.faults.quiesce():
            # cost: free(snapshot traffic charged as streamed words below)
            self._saved = {k: np.array(v, copy=True) for k, v in self._live.items()}
            self.words = float(sum(v.size for v in self._saved.values()))
            if self.words:
                with machine.span("checkpoint", group=group):
                    machine.mem_stream_group(group, self.words / group.size)
                    machine.superstep(group, 1)

    def restore(self) -> None:
        """Write the snapshot back into the live arrays (charged)."""
        for key, live in self._live.items():
            live[...] = self._saved[key]
        if self.words:
            with self.machine.span("restore", group=self.group):
                self.machine.mem_stream_group(self.group, self.words / self.group.size)
                self.machine.superstep(self.group, 1)


# ---------------------------------------------------------------------- #
# invariant guards

def guard_band(machine: BSPMachine, data: np.ndarray, bandwidth: int,
               norm0: float, stage: str, group: RankGroup,
               rtol: float = NORM_DRIFT_RTOL) -> None:
    """Post-stage guard: NaN/Inf, symmetry, band-width, ‖·‖_F drift.

    Charges one sharded sweep over the band plus a one-word agreement
    allreduce, inside a ``guard`` span.
    """
    with machine.span("guard", group=group):
        machine.charge_flops(group, 3.0 * data.size / group.size)
        machine.mem_stream_group(group, float(data.size) / group.size)
        collectives.allreduce(machine, group, 1.0, tag=f"guard:{stage}")
        span = current_span(machine)
        if not np.isfinite(data).all():
            raise CorruptData(f"{stage}: non-finite entries in the band",
                              span=span, site=stage)
        try:
            check_symmetric(data, f"{stage} output")
            check_banded(data, bandwidth, f"{stage} output")
        except ValueError as exc:
            raise CorruptData(f"{stage}: {exc}", span=span, site=stage) from exc
        drift = abs(frobenius_norm(data) - norm0)
        if drift > rtol * max(1.0, norm0):
            raise CorruptData(
                f"{stage}: Frobenius norm drifted by {drift:.3g} "
                f"(similarity transforms preserve it)",
                span=span, site=stage,
            )


def guard_tridiagonal(machine: BSPMachine, d: np.ndarray, e: np.ndarray,
                      norm0: float, root: int,
                      rtol: float = NORM_DRIFT_RTOL) -> None:
    """Guard the sequential finish: the tridiagonal (d, e) must be finite
    and carry the band's Frobenius norm (√(Σd² + 2Σe²) = ‖B‖_F)."""
    machine.charge_flops(root, 4.0 * (d.size + e.size))
    machine.mem_stream(root, float(d.size + e.size))
    span = current_span(machine)
    if not (np.isfinite(d).all() and np.isfinite(e).all()):
        raise CorruptData("finish: non-finite tridiagonal entries",
                          span=span, site="finish")
    tri_norm = float(np.sqrt(np.sum(d * d) + 2.0 * np.sum(e * e)))  # cost: free(charged above)
    drift = abs(tri_norm - norm0)
    if drift > rtol * max(1.0, norm0):
        raise CorruptData(
            f"finish: tridiagonal Frobenius norm drifted by {drift:.3g}",
            span=span, site="finish",
        )


def guard_spectrum(machine: BSPMachine, evals: np.ndarray, n: int,
                   root: int) -> None:
    """Final guard: n finite, ascending eigenvalues."""
    machine.charge_flops(root, 2.0 * evals.size)
    span = current_span(machine)
    if evals.shape != (n,) or not np.isfinite(evals).all():
        raise CorruptData("finish: spectrum is incomplete or non-finite",
                          span=span, site="finish")
    if evals.size > 1 and float(np.diff(evals).min()) < -1e-9 * max(1.0, float(np.abs(evals).max())):
        raise CorruptData("finish: spectrum is not ascending",
                          span=span, site="finish")


# ---------------------------------------------------------------------- #
# the retry loop

def run_stage(
    machine: BSPMachine,
    name: str,
    run: Callable[[], T],
    *,
    checkpoint: Checkpoint | None = None,
    guard: Callable[[T], None] | None = None,
    on_rank_loss: Callable[[RankGroup], None] | None = None,
) -> T:
    """Execute one pipeline stage with bounded detect–restore–retry.

    Only ever called on a fault-enabled machine; the driver bypasses it
    entirely otherwise.  See the module docstring for the semantics.
    """
    faults = machine.faults
    attempt = 0
    while True:
        try:
            out = run()
            if guard is not None:
                guard(out)
            return out
        except FaultDetected as exc:
            faults.note_recovery(name, exc)
            survivors = faults.live_group(machine.world)
            if survivors is None:
                raise UnrecoverableFault(
                    f"stage {name!r}: no surviving ranks", span=exc.span
                ) from exc
            if attempt >= faults.policy.max_retries:
                raise UnrecoverableFault(
                    f"stage {name!r}: {faults.policy.max_retries} retries "
                    f"exhausted; last fault: {exc}",
                    span=exc.span,
                ) from exc
            if isinstance(exc, RankFailure) and on_rank_loss is None:
                raise UnrecoverableFault(
                    f"stage {name!r}: cannot reconfigure after rank "
                    f"{exc.rank} failed",
                    span=exc.span,
                ) from exc
            with faults.quiesce():
                with machine.span("recovery", group=survivors):
                    if checkpoint is not None:
                        checkpoint.restore()
                    if isinstance(exc, RankFailure) and on_rank_loss is not None:
                        on_rank_loss(survivors)
                    faults.backoff(attempt, survivors)
            attempt += 1
