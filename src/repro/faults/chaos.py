"""Chaos harness: seeded fault-scenario sweeps over the pinned eigensolve.

Each seed selects a scenario (cycling :data:`~repro.faults.plan.SCENARIOS`)
and runs the full 2.5D pipeline on a :class:`~repro.faults.FaultyMachine`.
The **chaos invariant** classifies every run:

* ``recovered``    — the spectrum matches the numpy reference within the
                     clean-run tolerance (faults absorbed or never fired);
* ``typed-error``  — a :class:`~repro.faults.errors.FaultDetected` /
                     :class:`~repro.faults.errors.UnrecoverableFault`
                     escaped, naming the failing span;
* ``silent-wrong`` — the run "succeeded" with a wrong spectrum.  This must
                     never happen; ``repro chaos`` exits nonzero on any.

Runs are exactly reproducible from ``(scenario, seed)`` — the plan draws at
algorithm-determined sites in a deterministic order (same on both counter
engines), and nothing in the harness touches the wall clock.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.faults.errors import FaultError
from repro.faults.machine import FaultPlan, FaultyMachine, RecoveryPolicy
from repro.faults.plan import SCENARIOS, FaultSpec
from repro.report.tables import format_table
from repro.util.matrices import random_symmetric
from repro.util.validation import reference_spectrum_error

#: seed -> scenario cycle order (index = seed mod len)
SCENARIO_ORDER: tuple[str, ...] = (
    "clean", "rank-failure", "message-drop",
    "message-corrupt", "kernel-corrupt", "chaos",
)

#: spectrum tolerance of the recovered verdict — the clean-run gate that
#: ``repro solve`` applies
DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of one seeded chaos run."""

    seed: int
    scenario: str
    outcome: str  # "recovered" | "typed-error" | "silent-wrong"
    spectrum_error: float | None
    error_type: str | None
    error: str | None
    span: str | None
    events: int
    recoveries: int
    failed_ranks: tuple[int, ...]
    draws: int
    cost: str

    @property
    def ok(self) -> bool:
        return self.outcome != "silent-wrong"

    def as_dict(self) -> dict:
        doc = asdict(self)
        doc["failed_ranks"] = list(self.failed_ranks)
        return doc


def run_scenario(
    seed: int,
    spec: FaultSpec | None = None,
    *,
    n: int = 96,
    p: int = 16,
    delta: float = 2.0 / 3.0,
    tol: float = DEFAULT_TOL,
    matrix_seed: int = 3,
    policy: RecoveryPolicy | None = None,
) -> ScenarioOutcome:
    """One seeded fault run of the pinned eigensolve; never raises on
    injected faults — the typed error becomes part of the outcome."""
    from repro.eig.driver import eigensolve_2p5d  # late import: avoid cycle

    if spec is None:
        spec = SCENARIOS[SCENARIO_ORDER[seed % len(SCENARIO_ORDER)]]
    a = random_symmetric(n, seed=matrix_seed)
    machine = FaultyMachine(p, plan=FaultPlan(spec, seed), spans=True, policy=policy)
    error_type = error = span = None
    spectrum_error: float | None = None
    try:
        result = eigensolve_2p5d(machine, a, delta=delta)
    except FaultError as exc:
        outcome = "typed-error"
        error_type = type(exc).__name__
        error = str(exc)
        span = getattr(exc, "span", None)
    else:
        spectrum_error = reference_spectrum_error(a, result.eigenvalues)
        outcome = "recovered" if spectrum_error <= tol else "silent-wrong"
    injector = machine.faults
    return ScenarioOutcome(
        seed=seed,
        scenario=spec.name,
        outcome=outcome,
        spectrum_error=spectrum_error,
        error_type=error_type,
        error=error,
        span=span,
        events=len(machine.plan.events),
        recoveries=len(injector.recoveries),
        failed_ranks=tuple(sorted(injector.failed_ranks)),
        draws=machine.plan.draws,
        cost=machine.cost().summary(),
    )


def run_chaos(
    seeds: Iterable[int] = range(8),
    *,
    n: int = 96,
    p: int = 16,
    delta: float = 2.0 / 3.0,
    tol: float = DEFAULT_TOL,
    matrix_seed: int = 3,
) -> list[ScenarioOutcome]:
    """Sweep the seeded scenarios; one outcome per seed."""
    return [
        run_scenario(seed, n=n, p=p, delta=delta, tol=tol, matrix_seed=matrix_seed)
        for seed in seeds
    ]


def render_report(outcomes: Sequence[ScenarioOutcome], *, n: int, p: int) -> str:
    """ASCII summary table of a chaos sweep."""
    rows = []
    for o in outcomes:
        detail = (
            f"err={o.spectrum_error:.2e}" if o.spectrum_error is not None
            else f"{o.error_type}: span {o.span}"
        )
        rows.append([o.seed, o.scenario, o.outcome, o.events, o.recoveries,
                     len(o.failed_ranks), detail])
    return format_table(
        ["seed", "scenario", "outcome", "faults", "retries", "lost", "detail"],
        rows,
        title=f"chaos sweep (n={n}, p={p}): every run must recover or fail typed",
    )


def write_report(
    outcomes: Sequence[ScenarioOutcome], path: Path | str, *, n: int, p: int
) -> Path:
    """Write the per-scenario outcome report as JSON (the CI artifact)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "n": n,
        "p": p,
        "invariant_holds": all(o.ok for o in outcomes),
        "outcomes": [o.as_dict() for o in outcomes],
    }
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path
