"""Algorithm-based fault tolerance (ABFT) checksums for charged matmuls.

Huang–Abraham row/column checksums: for C = A·B,

    colsum(C) = colsum(A)·B        (1×k, from the left)
    rowsum(C) = A·rowsum(B)        (m×1, from the right)

so a single corrupted entry of C perturbs exactly one column checksum and
one row checksum — O((m+k)·n) verification flops against the O(m·n·k)
product, the classic ABFT ratio.  The check runs *inside* the matmul's
span, so a mismatch raises :class:`~repro.faults.errors.CorruptData`
attributed to the block that produced the bad data, and its flops, streamed
words, and the one-word agreement allreduce are charged to the machine:
``CostReport.by_span()`` shows detection as an ``abft`` child of each
protected matmul.

Only consulted when ``machine.faults.enabled`` — the fault-free path never
pays for (or sees) any of this.
"""

from __future__ import annotations

import numpy as np

from repro.bsp import collectives
from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.faults.errors import CorruptData, current_span

#: relative tolerance of the checksum comparison; the two summation orders
#: (sum-then-multiply vs multiply-then-sum) differ only by roundoff, orders
#: of magnitude below any injected flip
ABFT_RTOL = 1e-8


def abft_check(
    machine: BSPMachine,
    group: RankGroup,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    site: str,
    rtol: float = ABFT_RTOL,
) -> None:
    """Verify C = A·B by row/column checksums; raises CorruptData on mismatch.

    Charges each of ``group``'s ranks its share of the checksum flops and
    streaming traffic, plus a one-word allreduce to agree on the verdict.
    """
    m, n = a.shape
    k = b.shape[1]
    with machine.span("abft", group=group):
        g = group.size
        # colsum(A)·B + A·rowsum(B): ~3(mn + nk) + 2mk flops; one pass over
        # the three operands: mn + nk + 2mk streamed words.
        machine.charge_flops(group, (3.0 * (m * n + n * k) + 2.0 * m * k) / g)
        machine.mem_stream_group(group, (m * n + n * k + 2.0 * m * k) / g)
        collectives.allreduce(machine, group, 1.0, tag=f"abft:{site}")

        span = current_span(machine)
        if not np.isfinite(c).all():
            raise CorruptData(
                f"ABFT: non-finite entries in the output of {site}",
                span=span, site=site,
            )
        col_ref = a.sum(axis=0) @ b  # cost: free(checksum flops charged above)
        col_got = c.sum(axis=0)
        row_ref = a @ b.sum(axis=1)  # cost: free(checksum flops charged above)
        row_got = c.sum(axis=1)
        scale = max(
            1.0,
            float(np.abs(col_ref).max(initial=0.0)),
            float(np.abs(row_ref).max(initial=0.0)),
        )
        col_err = float(np.abs(col_got - col_ref).max(initial=0.0))
        row_err = float(np.abs(row_got - row_ref).max(initial=0.0))
        if col_err > rtol * scale or row_err > rtol * scale:
            raise CorruptData(
                f"ABFT checksum mismatch in {site}: "
                f"col err {col_err:.3g}, row err {row_err:.3g} "
                f"(tolerance {rtol:.1g} x {scale:.3g})",
                span=span, site=site,
            )
