"""The fault-injecting machine wrapper.

:class:`FaultyMachine` mirrors :class:`repro.lint.verify.VerifiedMachine`:
a drop-in :class:`~repro.bsp.machine.BSPMachine` subclass that any algorithm
in the repo accepts unchanged.  It installs a live :class:`FaultInjector` as
``machine.faults`` (replacing the shared :data:`~repro.bsp.machine.NO_FAULTS`
no-op) and consults the seeded :class:`~repro.faults.plan.FaultPlan` at

* **superstep barriers** — fail-stop rank failures (the rank dies at the
  barrier; a typed :class:`~repro.faults.errors.RankFailure` propagates to
  the driver's recovery loop);
* **collectives** — message drops, healed transparently by a charged
  retransmission (the recovery traffic lands in the surrounding span);
* **data movement and kernel outputs** — single-entry bit-flips/NaNs,
  caught downstream by ABFT checksums or the driver's invariant guards.

Opt-in is explicit: construct a ``FaultyMachine``, or set ``REPRO_FAULTS``
(``"<scenario>[:<seed>]"`` or a bare seed, which selects the ``chaos``
scenario) and build machines via :func:`machine_from_env`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine
from repro.bsp.params import MachineParams
from repro.faults.errors import RankFailure, current_span
from repro.faults.plan import SCENARIOS, FaultPlan, FaultSpec


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the driver responds to detected faults."""

    #: retries per stage before giving up with UnrecoverableFault
    max_retries: int = 2
    #: supersteps charged per recovery, doubling each attempt (backoff)
    backoff_supersteps: int = 1
    #: snapshot stage inputs so a retry restarts from clean data
    checkpoints: bool = True


class FaultInjector:
    """Live fault layer of a :class:`FaultyMachine` (``machine.faults``)."""

    enabled = True

    def __init__(self, machine: BSPMachine, plan: FaultPlan, policy: RecoveryPolicy):
        self.machine = machine
        self.plan = plan
        self.policy = policy
        self.failed_ranks: set[int] = set()
        self.recoveries: list[tuple[str, str]] = []
        self._paused = 0

    # ------------------------------------------------------------------ #

    @property
    def paused(self) -> bool:
        return self._paused > 0

    @contextmanager
    def quiesce(self) -> Iterator[None]:
        """Suspend injection while recovery actions (checkpoint restore,
        redistribution, backoff) run — recovery itself does not fault."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    def live_group(self, group: RankGroup) -> RankGroup | None:
        """The surviving members of ``group`` (None if nobody survived)."""
        if not self.failed_ranks:
            return group
        alive = tuple(r for r in group if r not in self.failed_ranks)
        return RankGroup(alive) if alive else None

    # ------------------------------------------------------------------ #
    # injection sites

    def at_barrier(self, ranks: Sequence[int]) -> None:
        """Superstep barrier: maybe fail-stop one participating rank."""
        if self._paused:
            return
        span = current_span(self.machine)
        victim = self.plan.draw_rank_failure(ranks, "superstep", span)
        if victim is not None:
            self.failed_ranks.add(victim)
            raise RankFailure(
                f"rank {victim} failed at a superstep barrier",
                rank=victim, span=span, site="superstep",
            )

    def on_collective(self, site: str, group: RankGroup,
                      recharge: Callable[[], None]) -> None:
        """Collective boundary: a dropped payload is retransmitted —
        ``recharge`` re-issues the collective's charges so the recovery
        words and supersteps are accounted in the surrounding span."""
        if self._paused:
            return
        if self.plan.draw_message_drop(site, current_span(self.machine)):
            recharge()

    def corrupt_window(self, array: np.ndarray, site: str) -> np.ndarray:
        """Data-movement boundary (fetched windows, gathers): maybe flip
        one entry in place."""
        if not self._paused:
            self.plan.corrupt(array, site, current_span(self.machine),
                              self.plan.spec.message_corrupt_prob)
        return array

    def corrupt_output(self, array: np.ndarray, site: str) -> np.ndarray:
        """Kernel output boundary: maybe flip one entry in place."""
        if not self._paused:
            self.plan.corrupt(array, site, current_span(self.machine),
                              self.plan.spec.kernel_corrupt_prob)
        return array

    # ------------------------------------------------------------------ #
    # recovery accounting

    def backoff(self, attempt: int, group: RankGroup) -> None:
        """Charge the backoff barrier wait of recovery ``attempt``."""
        self.machine.superstep(group, self.policy.backoff_supersteps << attempt)

    def note_recovery(self, stage: str, exc: BaseException) -> None:
        self.recoveries.append((stage, f"{type(exc).__name__}: {exc}"))


class FaultyMachine(BSPMachine):
    """A :class:`BSPMachine` that injects faults from a seeded plan.

    Drop-in: every algorithm in the repo runs on it unchanged.  The fault
    layer draws from ``plan`` at the injection sites described in the
    module docstring; ``policy`` shapes the driver's recovery behavior.
    """

    def __init__(
        self,
        p: int,
        params: MachineParams | None = None,
        trace: bool = False,
        engine: str | None = None,
        spans: bool | None = None,
        metrics: bool | None = None,
        *,
        plan: FaultPlan,
        policy: RecoveryPolicy | None = None,
    ):
        super().__init__(p, params, trace=trace, engine=engine, spans=spans, metrics=metrics)
        self.plan = plan
        self.policy = policy or RecoveryPolicy()
        self.faults = FaultInjector(self, plan, self.policy)

    def superstep(self, group: RankGroup | Iterable[int] | None = None, count: int = 1) -> None:
        if group is not None and not isinstance(group, (RankGroup, int, np.integer)):
            group = tuple(group)  # materialize: charged once, then drawn on
        super().superstep(group, count)
        if group is None:
            members: Sequence[int] = self.world.ranks
        elif isinstance(group, RankGroup):
            members = group.ranks
        elif isinstance(group, (int, np.integer)):
            members = (int(group),)
        else:
            members = group
        self.faults.at_barrier(members)

    def __repr__(self) -> str:
        return (f"FaultyMachine(p={self.p}, plan={self.plan.spec.name!r}, "
                f"seed={self.plan.seed}, engine={self.engine!r})")


# ---------------------------------------------------------------------- #
# environment opt-in

def parse_faults(value: str) -> tuple[FaultSpec, int]:
    """Parse a ``REPRO_FAULTS`` value: ``<scenario>[:<seed>]`` or a bare
    integer seed (which selects the ``chaos`` scenario)."""
    name, _, seed_text = value.partition(":")
    if not seed_text and name.lstrip("-").isdigit():
        return SCENARIOS["chaos"], int(name)
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown fault scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        )
    seed = int(seed_text) if seed_text else 0
    return SCENARIOS[name], seed


def machine_from_env(p: int, **kwargs) -> BSPMachine:
    """A machine honoring ``REPRO_FAULTS`` (plain BSPMachine when unset)."""
    value = os.environ.get("REPRO_FAULTS", "")
    if value in ("", "0"):
        return BSPMachine(p, **kwargs)
    spec, seed = parse_faults(value)
    return FaultyMachine(p, plan=FaultPlan(spec, seed), **kwargs)
