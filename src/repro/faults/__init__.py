"""Deterministic fault injection and fault tolerance (see docs/robustness.md).

Four pieces:

* **injector** — :class:`FaultPlan` (seeded, never wall-clock) consulted by
  a :class:`FaultyMachine` at superstep/collective/kernel boundaries
  (:mod:`repro.faults.plan`, :mod:`repro.faults.machine`);
* **detection** — ABFT checksums on the charged matmuls and post-stage
  invariant guards, raising typed, span-attributed errors
  (:mod:`repro.faults.abft`, :mod:`repro.faults.recovery`,
  :mod:`repro.faults.errors`);
* **recovery** — stage-boundary checkpoint/restart with bounded retries and
  grid-shrinking degradation (:mod:`repro.faults.recovery`);
* **chaos harness** — ``repro chaos``, sweeping seeded scenarios over the
  pinned eigensolve (:mod:`repro.faults.chaos`; imported lazily here since
  it pulls in the eigensolver).

With faults off every instrumented site is a single attribute read against
the shared :data:`repro.bsp.machine.NO_FAULTS` no-op: costs, bench walls,
and the pinned trace are byte-identical to a build without this package.
"""

from repro.faults.errors import (
    CorruptData,
    FaultDetected,
    FaultError,
    RankFailure,
    UnrecoverableFault,
)
from repro.faults.machine import (
    FaultInjector,
    FaultyMachine,
    RecoveryPolicy,
    machine_from_env,
    parse_faults,
)
from repro.faults.plan import SCENARIOS, FaultEvent, FaultPlan, FaultSpec

__all__ = [
    "FaultError",
    "FaultDetected",
    "CorruptData",
    "RankFailure",
    "UnrecoverableFault",
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "SCENARIOS",
    "FaultInjector",
    "FaultyMachine",
    "RecoveryPolicy",
    "machine_from_env",
    "parse_faults",
]
