"""Typed fault-layer exceptions.

Every error the fault subsystem raises is one of these, and every one names
the innermost open cost-attribution span at the moment of detection (or
``"(untraced)"`` when span tracing is off).  The chaos invariant — a faulty
run either recovers or fails with a *typed, span-attributed* error — leans
on this hierarchy: anything else escaping the pipeline is a bug.
"""

from __future__ import annotations

from repro.trace.spans import UNTRACED


def current_span(machine) -> str:
    """The innermost open span path of ``machine``, for error attribution."""
    spans = getattr(machine, "spans", None)
    if spans is not None and spans.enabled and spans.depth:
        return spans.open_paths()[-1]
    return UNTRACED


class FaultError(RuntimeError):
    """Base class of every fault-layer error."""


class FaultDetected(FaultError):
    """A fault was *detected* — by ABFT, an invariant guard, or the runtime.

    Recoverable in principle: the driver's retry loop catches these,
    restores the stage checkpoint, and re-executes.
    """

    def __init__(self, message: str, *, span: str = UNTRACED, site: str = ""):
        super().__init__(f"{message} [span: {span}]")
        self.span = span
        self.site = site


class CorruptData(FaultDetected):
    """Data failed a checksum or invariant check (silent corruption caught)."""


class RankFailure(FaultDetected):
    """A rank died at a superstep barrier (fail-stop model)."""

    def __init__(self, message: str, *, rank: int, span: str = UNTRACED, site: str = ""):
        super().__init__(message, span=span, site=site)
        self.rank = rank


class UnrecoverableFault(FaultError):
    """Recovery could not restore forward progress (retries exhausted, no
    surviving ranks, or a stage that cannot reconfigure)."""

    def __init__(self, message: str, *, span: str = UNTRACED):
        super().__init__(f"{message} [span: {span}]")
        self.span = span
