"""Deterministic, seeded fault plans.

A :class:`FaultPlan` owns a ``np.random.Generator`` seeded explicitly —
never from the wall clock — and is consulted by the machine's injector at
well-defined sites: superstep barriers (rank failures), collectives
(message drops), and data-movement / kernel boundaries (corruption).  The
sites are visited in the order the *algorithm* dictates, which is identical
on both counter engines, so the same seed produces the same fault sequence
everywhere: a chaos run is exactly reproducible from ``(scenario, seed)``.

Draw accounting: every consultation advances ``draws`` whether or not it
fires, so two runs of the same plan can be compared draw-for-draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: corruption magnitude for the non-NaN branch — an *additive* bump, so a
#: flipped entry changes even when it was exactly zero (e.g. outside-band
#: fill), which a multiplicative flip would silently miss.
BIT_FLIP_SCALE = 2.0**20


def _check_prob(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultSpec:
    """What kinds of faults to inject, and how often.

    ``site_filter`` restricts corruption to sites whose name contains one of
    the given substrings (targeted tests, e.g. ``("finish",)``); an empty
    tuple means every site is eligible.  ``max_rank_failures`` /
    ``max_corruptions`` cap the totals so a scenario stays recoverable
    (``None`` = unlimited).
    """

    name: str = "custom"
    rank_failure_prob: float = 0.0
    message_drop_prob: float = 0.0
    message_corrupt_prob: float = 0.0
    kernel_corrupt_prob: float = 0.0
    nan_fraction: float = 0.5
    max_rank_failures: int | None = 1
    max_corruptions: int | None = None
    site_filter: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for label in ("rank_failure_prob", "message_drop_prob",
                      "message_corrupt_prob", "kernel_corrupt_prob", "nan_fraction"):
            _check_prob(getattr(self, label), label)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for reports and determinism checks."""

    kind: str  # "rank_failure" | "message_drop" | "corruption"
    site: str
    span: str
    draw: int  # value of FaultPlan.draws when the event fired
    rank: int | None = None
    detail: str = ""


#: named scenarios for the chaos harness (``repro chaos`` cycles these).
SCENARIOS: dict[str, FaultSpec] = {
    "clean": FaultSpec(name="clean"),
    "rank-failure": FaultSpec(name="rank-failure", rank_failure_prob=0.004),
    "message-drop": FaultSpec(name="message-drop", message_drop_prob=0.05,
                              max_rank_failures=0),
    "message-corrupt": FaultSpec(name="message-corrupt", message_corrupt_prob=0.02,
                                 max_rank_failures=0, max_corruptions=2),
    "kernel-corrupt": FaultSpec(name="kernel-corrupt", kernel_corrupt_prob=0.05,
                                max_rank_failures=0, max_corruptions=2),
    "chaos": FaultSpec(name="chaos", rank_failure_prob=0.002, message_drop_prob=0.02,
                       message_corrupt_prob=0.01, kernel_corrupt_prob=0.02,
                       max_rank_failures=1, max_corruptions=3),
}


class FaultPlan:
    """A seeded stream of fault decisions (see module docstring)."""

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self.draws = 0
        self.events: list[FaultEvent] = []
        self._rank_failures = 0
        self._corruptions = 0

    # ------------------------------------------------------------------ #

    def _chance(self, prob: float) -> bool:
        """One Bernoulli draw; always advances the stream when prob > 0."""
        if prob <= 0.0:
            return False
        self.draws += 1
        return bool(self._rng.random() < prob)

    def _site_allowed(self, site: str) -> bool:
        flt = self.spec.site_filter
        return not flt or any(s in site for s in flt)

    def _record(self, kind: str, site: str, span: str, rank: int | None = None,
                detail: str = "") -> None:
        self.events.append(FaultEvent(kind, site, span, self.draws, rank, detail))

    # ------------------------------------------------------------------ #
    # draw entry points (called by the injector)

    def draw_rank_failure(self, ranks: Sequence[int], site: str, span: str) -> int | None:
        """Maybe kill one member of ``ranks``; returns the victim or None."""
        cap = self.spec.max_rank_failures
        if cap is not None and self._rank_failures >= cap:
            return None
        if not ranks or not self._site_allowed(site):
            return None
        if not self._chance(self.spec.rank_failure_prob):
            return None
        self.draws += 1
        victim = int(ranks[int(self._rng.integers(len(ranks)))])
        self._rank_failures += 1
        self._record("rank_failure", site, span, rank=victim)
        return victim

    def draw_message_drop(self, site: str, span: str) -> bool:
        """Maybe drop a collective's payload (transport retransmits)."""
        if not self._site_allowed(site):
            return False
        if not self._chance(self.spec.message_drop_prob):
            return False
        self._record("message_drop", site, span)
        return True

    def corrupt(self, array: np.ndarray, site: str, span: str, prob: float) -> bool:
        """Maybe flip one entry of ``array`` *in place* (NaN or a large
        additive bump, per ``nan_fraction``); returns True if it fired."""
        cap = self.spec.max_corruptions
        if cap is not None and self._corruptions >= cap:
            return False
        if array.size == 0 or not self._site_allowed(site):
            return False
        if not self._chance(prob):
            return False
        self.draws += 2
        index = int(self._rng.integers(array.size))
        if self._rng.random() < self.spec.nan_fraction:
            array.flat[index] = np.nan
            detail = f"entry {index} -> NaN"
        else:
            bump = BIT_FLIP_SCALE * (1.0 + float(np.abs(array).max()))
            array.flat[index] = float(array.flat[index]) + bump
            detail = f"entry {index} += {bump:.3g}"
        self._corruptions += 1
        self._record("corruption", site, span, detail=detail)
        return True

    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        parts = [f"{k}={v}" for k, v in sorted(kinds.items())]
        return (f"FaultPlan({self.spec.name!r}, seed={self.seed}): "
                f"{self.draws} draws, {len(self.events)} events"
                + (f" ({', '.join(parts)})" if parts else ""))

    def __repr__(self) -> str:
        return self.summary()
