"""Span tracing, critical-path breakdowns and Chrome trace export.

See docs/observability.md.  Enable on any machine with
``BSPMachine(p, spans=True)`` (or ``REPRO_SPANS=1``), read the result with
``machine.cost().by_span()``, and export with
:func:`repro.trace.chrome.write_chrome_trace` or ``repro trace``.
"""

from repro.trace.chrome import (
    chrome_trace,
    chrome_trace_per_rank,
    write_chrome_trace,
    write_chrome_trace_per_rank,
)
from repro.trace.report import SpanBreakdown, SpanCost
from repro.trace.spans import NULL_SPAN, SPAN_FIELDS, UNTRACED, SpanEvent, SpanHandle, SpanRecorder

__all__ = [
    "NULL_SPAN",
    "SPAN_FIELDS",
    "UNTRACED",
    "SpanBreakdown",
    "SpanCost",
    "SpanEvent",
    "SpanHandle",
    "SpanRecorder",
    "chrome_trace",
    "chrome_trace_per_rank",
    "write_chrome_trace",
    "write_chrome_trace_per_rank",
]
