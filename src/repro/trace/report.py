"""Per-span cost breakdown: the critical-path view of a traced run.

:func:`build_breakdown` turns a :class:`~repro.trace.spans.SpanRecorder`'s
exclusive per-path buckets into :class:`SpanCost` rows — one per span path
plus an ``"(untraced)"`` remainder — whose per-rank counter arrays sum to
the machine's global counters **bit-exactly** (checked by
:meth:`SpanBreakdown.verify_exact`).  Each row carries the max-over-ranks
F/W/Q/S of the span's exclusive deltas (the BSP critical-path convention)
and the modeled time γF + βW + νQ + αS, so sorting rows by time *is* the
critical-path breakdown.

Reports are attached to :class:`~repro.bsp.counters.CostReport` snapshots
taken on a span-enabled machine; read them with ``report.by_span()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.bsp.counters import gini_of, imbalance_of
from repro.bsp.params import MachineParams
from repro.trace.spans import SPAN_FIELDS, UNTRACED

if TYPE_CHECKING:
    from repro.trace.spans import SpanRecorder


@dataclass(frozen=True)
class SpanCost:
    """Exclusive cost of one span path (aggregated over all its calls).

    ``flops``/``words``/``mem_traffic``/``supersteps`` are maxima over
    ranks of the exclusive deltas; ``total_*`` are sums over ranks;
    ``time`` is the modeled γF + βW + νQ + αS and ``share`` its fraction
    of the breakdown's total modeled time.
    """

    path: str
    calls: int
    flops: float
    words: float
    mem_traffic: float
    supersteps: int
    total_flops: float
    total_words: float
    total_mem_traffic: float
    time: float
    share: float

    @property
    def depth(self) -> int:
        return self.path.count("/")

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class SpanBreakdown:
    """All span rows of one run, plus the exactness machinery.

    ``rows`` are in first-open order with ``"(untraced)"`` last; the
    untraced row is defined as *global minus the attributed rows* (in that
    same order), which is what makes the row sums telescope back to the
    global counters exactly.
    """

    p: int
    rows: tuple[SpanCost, ...]
    #: span paths still open when the snapshot was taken (their rows hold
    #: the exclusive cost attributed so far)
    open_paths: tuple[str, ...] = ()
    #: per-path per-field per-rank exclusive arrays, in row order
    per_rank: dict = field(repr=False, compare=False, default_factory=dict)
    #: global per-rank counter arrays at snapshot time
    global_arrays: dict = field(repr=False, compare=False, default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(r.time for r in self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, path: str) -> SpanCost:
        for r in self.rows:
            if r.path == path:
                return r
        raise KeyError(f"no span with path {path!r}")

    def paths(self) -> list[str]:
        return [r.path for r in self.rows]

    def by_time(self) -> list[SpanCost]:
        """Rows sorted by modeled time, descending — the critical path."""
        return sorted(self.rows, key=lambda r: r.time, reverse=True)

    def rank_values(self, path: str, fld: str = "flops") -> np.ndarray:
        """Per-rank exclusive values of one span path (``"words"`` derives
        sent + received)."""
        arrays = self.per_rank[path]
        if fld == "words":
            return arrays["words_sent"] + arrays["words_recv"]
        if fld not in SPAN_FIELDS:
            raise ValueError(f"unknown span field {fld!r}; expected one of {SPAN_FIELDS}")
        return arrays[fld]

    def active_ranks(self, path: str) -> np.ndarray:
        """Mask of ranks that this span path actually charged."""
        arrays = self.per_rank[path]
        mask = np.zeros(self.p, dtype=bool)
        for f in SPAN_FIELDS:
            mask |= arrays[f] != 0
        return mask

    def imbalance(self, path: str, fld: str = "flops") -> float:
        """max/mean of one span's per-rank quantity over the ranks it
        charged (1.0 = balanced) — same convention as
        :meth:`repro.bsp.counters.CostReport.imbalance`, so small-group
        spans on a big machine report their own skew, not the idle ranks."""
        return imbalance_of(self.rank_values(path, fld), self.active_ranks(path))

    def gini(self, path: str, fld: str = "flops") -> float:
        """Gini coefficient of one span's per-rank quantity over the ranks
        it charged (0 = perfectly equal)."""
        return gini_of(self.rank_values(path, fld), self.active_ranks(path))

    def verify_exact(self) -> list[str]:
        """Fields whose per-rank row sums are not bit-identical to the
        global counters ([] = the breakdown tiles the totals exactly)."""
        bad = []
        order = [r.path for r in self.rows if r.path != UNTRACED] + [UNTRACED]
        for f in SPAN_FIELDS:
            acc = np.zeros_like(self.global_arrays[f])
            for path in order:
                acc = acc + self.per_rank[path][f]
            if not np.array_equal(acc, self.global_arrays[f]):
                bad.append(f)
        return bad

    def render(self, title: str | None = None, min_share: float = 1e-12) -> str:
        """Fixed-width table of the breakdown, most expensive span first.

        Rows below ``min_share`` of the total modeled time (e.g. a
        float-residue untraced row on a fully instrumented run) are folded
        away.
        """
        from repro.report.tables import format_table  # late: avoid cycle

        total = self.total_time
        rows = []
        for r in self.by_time():
            if total > 0 and abs(r.time) < min_share * total:
                continue
            rows.append(
                [
                    r.path + (" *" if r.path in self.open_paths else ""),
                    r.calls,
                    f"{r.flops:.4g}",
                    f"{r.words:.4g}",
                    f"{r.mem_traffic:.4g}",
                    r.supersteps,
                    f"{r.time:.4g}",
                    f"{100.0 * r.share:.1f}%",
                ]
            )
        return format_table(
            ["span", "calls", "F", "W", "Q", "S", "time", "share"],
            rows,
            title=title or f"per-span cost breakdown (p={self.p}, exclusive deltas)",
        )


def build_breakdown(recorder: "SpanRecorder") -> SpanBreakdown:
    """Assemble a :class:`SpanBreakdown` from a (flushed) recorder."""
    params: MachineParams = recorder._params
    global_arrays = {f: recorder._mark[f].copy() for f in SPAN_FIELDS}

    order = [p for p in recorder._buckets if p != UNTRACED]
    per_rank: dict[str, dict[str, np.ndarray]] = {}
    attributed = {f: np.zeros_like(global_arrays[f]) for f in SPAN_FIELDS}
    for path in order:
        arrays = {f: recorder._buckets[path][f].copy() for f in SPAN_FIELDS}
        per_rank[path] = arrays
        for f in SPAN_FIELDS:
            attributed[f] = attributed[f] + arrays[f]
    # The untraced remainder is defined by subtraction so the row sums
    # telescope back to the global counters bit-exactly; it holds any
    # charges issued outside all spans (plus at most ulp-scale residue).
    per_rank[UNTRACED] = {f: global_arrays[f] - attributed[f] for f in SPAN_FIELDS}
    order.append(UNTRACED)

    times = {}
    for path in order:
        arrays = per_rank[path]
        words = arrays["words_sent"] + arrays["words_recv"]
        times[path] = params.time(
            float(arrays["flops"].max()),
            float(words.max()),
            float(arrays["mem_traffic"].max()),
            float(arrays["supersteps"].max()),
        )
    total_time = sum(times.values())

    rows = []
    for path in order:
        arrays = per_rank[path]
        words = arrays["words_sent"] + arrays["words_recv"]
        rows.append(
            SpanCost(
                path=path,
                calls=recorder._calls.get(path, 0),
                flops=float(arrays["flops"].max()),
                words=float(words.max()),
                mem_traffic=float(arrays["mem_traffic"].max()),
                supersteps=int(arrays["supersteps"].max()),
                total_flops=float(arrays["flops"].sum()),
                total_words=float(words.sum()),
                total_mem_traffic=float(arrays["mem_traffic"].sum()),
                time=times[path],
                share=times[path] / total_time if total_time > 0 else 0.0,
            )
        )
    return SpanBreakdown(
        p=recorder.p,
        rows=tuple(rows),
        open_paths=tuple(recorder.open_paths()),
        per_rank=per_rank,
        global_arrays=global_arrays,
    )
