"""Chrome ``trace_event`` exporter: open traced runs in Perfetto.

Converts a :class:`~repro.trace.spans.SpanRecorder`'s completed span events
into the Chrome Trace Event JSON format (the "JSON Array / Object" flavour
with ``traceEvents``), loadable at https://ui.perfetto.dev or
``chrome://tracing``.

Timeline semantics: the x-axis is **modeled BSP time** (γF + βW + νQ + αS
of the global critical path), not wall-clock — one trace microsecond is one
model time unit (γ-normalized flop-times by default).  All spans render on
a single track because the simulator charges the critical path; concurrency
across disjoint rank groups is already folded into the max-over-ranks
counters, exactly as in the paper's cost statements.  Since model time is
monotone in the counters, nesting is always well-formed.

Each span becomes one complete ("ph": "X") event carrying its exclusive
max-over-ranks F/W/Q/S and the executing group size in ``args``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.trace.spans import SpanRecorder


def chrome_trace(recorder: "SpanRecorder", label: str = "repro BSP model") -> dict[str, Any]:
    """Build the trace_event document for a recorder's completed spans."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": label},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "critical path (1 us = 1 model time unit)"},
        },
    ]
    for ev in recorder.events:
        events.append(
            {
                "name": ev.name,
                "cat": "bsp",
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": ev.ts,
                "dur": ev.dur,
                "args": {
                    "path": ev.path,
                    "depth": ev.depth,
                    "group_size": ev.group_size,
                    "F": ev.flops,
                    "W": ev.words,
                    "Q": ev.mem_traffic,
                    "S": ev.supersteps,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "p": recorder.p,
            "spans": len(recorder.events),
            "open_spans": recorder.open_paths(),
            "time_unit": "modeled BSP time (gamma*F + beta*W + nu*Q + alpha*S)",
        },
    }


def write_chrome_trace(
    recorder: "SpanRecorder", path: Path | str, label: str = "repro BSP model"
) -> Path:
    """Write the trace JSON to ``path`` (parents created) and return it."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(recorder, label=label), indent=1) + "\n")
    return out
