"""Chrome ``trace_event`` exporter: open traced runs in Perfetto.

Converts a :class:`~repro.trace.spans.SpanRecorder`'s completed span events
into the Chrome Trace Event JSON format (the "JSON Array / Object" flavour
with ``traceEvents``), loadable at https://ui.perfetto.dev or
``chrome://tracing``.

Timeline semantics: the x-axis is **modeled BSP time** (γF + βW + νQ + αS
of the global critical path), not wall-clock — one trace microsecond is one
model time unit (γ-normalized flop-times by default).  All spans render on
a single track because the simulator charges the critical path; concurrency
across disjoint rank groups is already folded into the max-over-ranks
counters, exactly as in the paper's cost statements.  Since model time is
monotone in the counters, nesting is always well-formed.

Each span becomes one complete ("ph": "X") event carrying its exclusive
max-over-ranks F/W/Q/S and the executing group size in ``args``.

:func:`chrome_trace_per_rank` is the multi-track upgrade: one Perfetto
track (thread) per rank, each span event duplicated onto the tracks of the
ranks that executed it, plus per-rank counter tracks (memory footprint and
cumulative words sent) sampled from a metrics-enabled machine's superstep
series, and the rank-to-rank heatmap matrices embedded in ``otherData``.
The single-track exporter is deliberately untouched so its pinned output
stays byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.trace.spans import SpanRecorder


def span_event_args(ev: Any) -> dict[str, Any]:
    """The ``args`` payload of one span slice, in the canonical key order
    (path, depth, group_size, F, W, Q, S).  Shared by both exporters here
    and by the merged service trace in :mod:`repro.obs.perfetto`; the order
    is load-bearing — the pinned single-track trace is gated byte-for-byte.
    """
    return {
        "path": ev.path,
        "depth": ev.depth,
        "group_size": ev.group_size,
        "F": ev.flops,
        "W": ev.words,
        "Q": ev.mem_traffic,
        "S": ev.supersteps,
    }


def chrome_trace(recorder: "SpanRecorder", label: str = "repro BSP model") -> dict[str, Any]:
    """Build the trace_event document for a recorder's completed spans."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": label},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "critical path (1 us = 1 model time unit)"},
        },
    ]
    for ev in recorder.events:
        events.append(
            {
                "name": ev.name,
                "cat": "bsp",
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": ev.ts,
                "dur": ev.dur,
                "args": span_event_args(ev),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "p": recorder.p,
            "spans": len(recorder.events),
            "open_spans": recorder.open_paths(),
            "time_unit": "modeled BSP time (gamma*F + beta*W + nu*Q + alpha*S)",
        },
    }


def write_chrome_trace(
    recorder: "SpanRecorder", path: Path | str, label: str = "repro BSP model"
) -> Path:
    """Write the trace JSON to ``path`` (parents created) and return it."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(recorder, label=label), indent=1) + "\n")
    return out


def chrome_trace_per_rank(
    recorder: "SpanRecorder",
    metrics: Any = None,
    label: str = "repro BSP model (per rank)",
) -> dict[str, Any]:
    """Build the multi-track trace_event document: one track per rank.

    Span events land on the tracks of the ranks recorded in each
    :class:`~repro.trace.spans.SpanEvent` (all ranks when the span carried
    no group).  ``metrics``, when given, is a
    :class:`~repro.metrics.MetricsSnapshot` whose superstep series becomes
    per-rank ``memory_words`` / ``words_sent`` counter tracks and whose
    rank-to-rank matrices are embedded under ``otherData["heatmap"]``.
    """
    p = recorder.p
    events: list[dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0, "args": {"name": label}},
    ]
    for r in range(p):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": r,
                "args": {"name": f"rank {r} (1 us = 1 model time unit)"},
            }
        )
        events.append(
            {"ph": "M", "name": "thread_sort_index", "pid": 0, "tid": r, "args": {"sort_index": r}}
        )
    for ev in recorder.events:
        ranks = ev.ranks if ev.ranks is not None else tuple(range(p))
        args = span_event_args(ev)
        for r in ranks:
            events.append(
                {
                    "name": ev.name,
                    "cat": "bsp",
                    "ph": "X",
                    "pid": 0,
                    "tid": int(r),
                    "ts": ev.ts,
                    "dur": ev.dur,
                    "args": args,
                }
            )
    other: dict[str, Any] = {
        "p": p,
        "spans": len(recorder.events),
        "open_spans": recorder.open_paths(),
        "time_unit": "modeled BSP time (gamma*F + beta*W + nu*Q + alpha*S)",
    }
    if metrics is not None:
        for t, memory, sent in metrics.series:
            events.append(
                {
                    "ph": "C",
                    "name": "memory_words",
                    "pid": 0,
                    "tid": 0,
                    "ts": float(t),
                    "args": {f"rank{r}": float(memory[r]) for r in range(p)},
                }
            )
            events.append(
                {
                    "ph": "C",
                    "name": "words_sent",
                    "pid": 0,
                    "tid": 0,
                    "ts": float(t),
                    "args": {f"rank{r}": float(sent[r]) for r in range(p)},
                }
            )
        other["heatmap"] = {
            "words_matrix": metrics.words_matrix.tolist(),
            "messages_matrix": metrics.messages_matrix.tolist(),
            "unpaired_sent": metrics.unpaired_sent.tolist(),
            "unpaired_recv": metrics.unpaired_recv.tolist(),
        }
        other["memory"] = {
            "watermark_words": metrics.watermark_words.tolist(),
            "watermark_superstep": metrics.watermark_superstep.tolist(),
        }
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": other}


def write_chrome_trace_per_rank(
    recorder: "SpanRecorder",
    path: Path | str,
    metrics: Any = None,
    label: str = "repro BSP model (per rank)",
) -> Path:
    """Write the multi-track trace JSON to ``path`` and return it."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(chrome_trace_per_rank(recorder, metrics=metrics, label=label), indent=1) + "\n"
    )
    return out
