"""Span-based cost tracing over the BSP counter engines.

A *span* is a named, nested region of a simulated run — a collective, a
sharded kernel, a block algorithm, an eig pipeline stage — opened with
:meth:`repro.bsp.machine.BSPMachine.span` as a context manager::

    with machine.span("full_to_band/panel_qr", group=qr_group):
        ...charges...

Counter deltas (F, words sent/received, Q, S — per rank) are attributed to
the **innermost open span**: at every span open and close the recorder
diffs the live counter store against its previous watermark and adds the
delta to the span that was active during that segment.  Charges issued
while no span is open land in the ``"(untraced)"`` bucket.

Exactness
---------
Attribution is *telescoped*: each segment delta is ``now − mark`` against
the store's own arrays, and the chronological accumulator re-adds those
deltas in segment order.  Because the accumulator always equals the
previous watermark bit-for-bit, ``acc + (now − mark)`` reproduces ``now``
exactly (the subtraction of two nearby accumulated sums is exact, and
adding it back telescopes) — so per-span deltas sum to the global counters
with **zero** float error, on both the vectorized and the scalar engine.
:meth:`SpanRecorder.verify_attribution` asserts this with
``np.array_equal``, and :meth:`repro.trace.report.SpanBreakdown.verify_exact`
asserts the same for the rendered per-span rows.

The recorder is engine-agnostic: it only uses the counter stores'
``field_array`` accessor, which both :class:`~repro.bsp.counters.CounterArray`
and :class:`~repro.bsp.scalar.ScalarCounterStore` implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import TracebackType
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.bsp.params import MachineParams

if TYPE_CHECKING:
    from repro.trace.report import SpanBreakdown

#: additive per-rank counter quantities attributed to spans, in canonical
#: order (peak/current memory are high-water marks, not additive — excluded)
SPAN_FIELDS: tuple[str, ...] = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
)

#: bucket receiving charges issued while no span is open
UNTRACED = "(untraced)"


@dataclass(frozen=True)
class SpanEvent:
    """One completed span instance (the unit of the Chrome trace export).

    ``ts``/``dur`` are modeled BSP times (γF + βW + νQ + αS of the global
    critical path) at open and close; ``flops``/``words``/``mem_traffic``/
    ``supersteps`` are the max-over-ranks of the span's *exclusive* counter
    deltas (child spans' charges are not included).
    """

    path: str
    name: str
    depth: int
    group_size: int | None
    ts: float
    dur: float
    flops: float
    words: float
    mem_traffic: float
    supersteps: int
    #: the executing group's absolute ranks (None when the span was opened
    #: without a group); drives the per-rank track placement in the
    #: multi-track Chrome export
    ranks: tuple | None = None

    def as_dict(self) -> dict:
        """JSON-serializable form (floats round-trip IEEE doubles exactly,
        so a span event shipped across a process boundary — e.g. from a
        service worker solving one job — reconstructs bit-identically)."""
        return {
            "path": self.path,
            "name": self.name,
            "depth": self.depth,
            "group_size": self.group_size,
            "ts": self.ts,
            "dur": self.dur,
            "flops": self.flops,
            "words": self.words,
            "mem_traffic": self.mem_traffic,
            "supersteps": self.supersteps,
            "ranks": list(self.ranks) if self.ranks is not None else None,
        }


def span_event_from_dict(doc: dict) -> "SpanEvent":
    """Inverse of :meth:`SpanEvent.as_dict`."""
    ranks = doc.get("ranks")
    return SpanEvent(
        path=str(doc["path"]),
        name=str(doc["name"]),
        depth=int(doc["depth"]),
        group_size=doc["group_size"] if doc.get("group_size") is None else int(doc["group_size"]),
        ts=float(doc["ts"]),
        dur=float(doc["dur"]),
        flops=float(doc["flops"]),
        words=float(doc["words"]),
        mem_traffic=float(doc["mem_traffic"]),
        supersteps=int(doc["supersteps"]),
        ranks=tuple(ranks) if ranks is not None else None,
    )


class SpanHandle:
    """Context-manager base for spans; the disabled path is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: shared no-op handle returned when span tracing is disabled, so the
#: instrumented hot paths (collectives, kernels) cost two trivial calls
NULL_SPAN = SpanHandle()


class _Span(SpanHandle):
    """Live span handle bound to a recorder."""

    __slots__ = ("_recorder", "_name", "_group_size", "_ranks")

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        group_size: int | None,
        ranks: tuple | None = None,
    ):
        self._recorder = recorder
        self._name = name
        self._group_size = group_size
        self._ranks = ranks

    def __enter__(self) -> "_Span":
        self._recorder.open(self._name, self._group_size, self._ranks)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._recorder.close()
        return False


class _OpenSpan:
    """Stack entry for one open span."""

    __slots__ = ("path", "name", "depth", "group_size", "ranks", "ts_open", "excl")

    def __init__(
        self,
        path: str,
        name: str,
        depth: int,
        group_size: int | None,
        ts_open: float,
        p: int,
        ranks: tuple | None = None,
    ):
        self.path = path
        self.name = name
        self.depth = depth
        self.group_size = group_size
        self.ranks = ranks
        self.ts_open = ts_open
        self.excl = _zero_arrays(p)


def _zero_arrays(p: int) -> dict[str, np.ndarray]:
    return {
        f: np.zeros(p, dtype=np.int64 if f == "supersteps" else np.float64)
        for f in SPAN_FIELDS
    }


class SpanRecorder:
    """Watermark-diffing span attribution over a counter store.

    One recorder lives on every :class:`~repro.bsp.machine.BSPMachine` as
    ``machine.spans``; it is inert (``enabled=False``) unless the machine
    was built with ``spans=True`` or ``REPRO_SPANS=1``.
    """

    def __init__(self, store: object, params: MachineParams, enabled: bool = False):
        self._store = store
        self._params = params
        self.enabled = enabled
        self.p = len(store)  # type: ignore[arg-type]
        self.events: list[SpanEvent] = []
        self._stack: list[_OpenSpan] = []
        #: per-path per-field per-rank exclusive sums, in first-open order
        self._buckets: dict[str, dict[str, np.ndarray]] = {}
        self._calls: dict[str, int] = {}
        #: chronological re-accumulation of every attributed segment delta;
        #: bit-equality with the live store is the no-orphan guarantee
        self._chron = _zero_arrays(self.p)
        self._mark = self._snapshot()

    # -------------------------------------------------------------- #
    # store access

    def _field_now(self, name: str) -> np.ndarray:
        return np.asarray(self._store.field_array(name))  # type: ignore[attr-defined]

    def _snapshot(self) -> dict[str, np.ndarray]:
        return {f: self._field_now(f).copy() for f in SPAN_FIELDS}

    def _model_time(self, arrays: dict[str, np.ndarray]) -> float:
        """Modeled critical-path time of a counter state (monotone in it)."""
        words = arrays["words_sent"] + arrays["words_recv"]
        return self._params.time(
            float(arrays["flops"].max()),
            float(words.max()),
            float(arrays["mem_traffic"].max()),
            float(arrays["supersteps"].max()),
        )

    def _bucket(self, path: str) -> dict[str, np.ndarray]:
        bucket = self._buckets.get(path)
        if bucket is None:
            bucket = self._buckets[path] = _zero_arrays(self.p)
            self._calls.setdefault(path, 0)
        return bucket

    # -------------------------------------------------------------- #
    # attribution core

    def flush(self) -> dict[str, np.ndarray]:
        """Attribute the counters-since-mark segment to the innermost open
        span (or the untraced bucket) and advance the watermark.  Returns
        the current counter arrays (copies)."""
        target = self._stack[-1] if self._stack else None
        bucket = self._bucket(target.path if target else UNTRACED)
        now: dict[str, np.ndarray] = {}
        for f in SPAN_FIELDS:
            cur = self._field_now(f).copy()
            d = cur - self._mark[f]
            self._chron[f] += d
            bucket[f] += d
            if target is not None:
                target.excl[f] += d
            self._mark[f] = cur
            now[f] = cur
        return now

    def open(
        self, name: str, group_size: int | None = None, ranks: tuple | None = None
    ) -> None:
        """Open a span; subsequent charges attribute to it until a child
        opens or it closes."""
        now = self.flush()
        parent = self._stack[-1].path if self._stack else ""
        path = f"{parent}/{name}" if parent else name
        self._bucket(path)  # register in first-open order for stable reports
        self._stack.append(
            _OpenSpan(
                path, name, len(self._stack), group_size, self._model_time(now), self.p, ranks
            )
        )

    def close(self) -> None:
        """Close the innermost span and emit its :class:`SpanEvent`."""
        if not self._stack:
            raise RuntimeError("span close without a matching open")
        now = self.flush()
        span = self._stack.pop()
        self._calls[span.path] = self._calls.get(span.path, 0) + 1
        words = span.excl["words_sent"] + span.excl["words_recv"]
        self.events.append(
            SpanEvent(
                path=span.path,
                name=span.name,
                depth=span.depth,
                group_size=span.group_size,
                ts=span.ts_open,
                dur=self._model_time(now) - span.ts_open,
                flops=float(span.excl["flops"].max()),
                words=float(words.max()),
                mem_traffic=float(span.excl["mem_traffic"].max()),
                supersteps=int(span.excl["supersteps"].max()),
                ranks=span.ranks,
            )
        )

    def handle(self, name: str, group: object = None) -> SpanHandle:
        """A context-manager handle for one span instance."""
        size = getattr(group, "size", None)
        ranks = getattr(group, "ranks", None)
        return _Span(
            self,
            name,
            int(size) if size is not None else None,
            tuple(ranks) if ranks is not None else None,
        )

    # -------------------------------------------------------------- #
    # lifecycle and checks

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def open_paths(self) -> list[str]:
        return [s.path for s in self._stack]

    def reset(self) -> None:
        """Drop all spans, events and buckets; re-mark from the (freshly
        reset) store.  Called by :meth:`BSPMachine.reset`."""
        self.events.clear()
        self._stack.clear()
        self._buckets.clear()
        self._calls.clear()
        self._chron = _zero_arrays(self.p)
        self._mark = self._snapshot()

    def verify_attribution(self) -> list[str]:
        """Fields where the chronologically re-accumulated span deltas are
        not bit-identical to the live counters ([] = exact attribution:
        nothing double-charged, nothing orphaned)."""
        self.flush()
        return [
            f for f in SPAN_FIELDS if not np.array_equal(self._chron[f], self._field_now(f))
        ]

    def breakdown(self) -> "SpanBreakdown":
        """Build the per-span cost breakdown (see :mod:`repro.trace.report`)."""
        from repro.trace.report import build_breakdown  # late: avoid cycle

        self.flush()
        return build_breakdown(self)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder(p={self.p}, enabled={self.enabled}, "
            f"open={self.depth}, paths={len(self._buckets)})"
        )
