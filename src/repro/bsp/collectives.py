"""BSP collective communication primitives (cost-charging layer).

Algorithms in this repo execute with plain numpy data (orchestrated SPMD) and
*declare* their communication through these primitives, which charge each
participating rank the words it would send/receive and end the appropriate
number of supersteps.  Word counts are measured by the caller from the actual
arrays being moved, so the totals are measured, not modeled.

Cost conventions (g = group size, w = payload words):

* all collectives are O(1) supersteps, matching the paper's BSP assumption
  that an all-to-all completes in one superstep;
* bandwidth-optimal two-phase implementations are assumed for broadcast,
  reduction, and allreduce (scatter+allgather / reduce-scatter+gather), so
  every rank moves O(w) words rather than the root moving O(g·w);
* a reduction charges the combining flops (one add per reduced word) to the
  ranks that perform them.

Charging is vectorized: each collective computes its per-rank word counts
once (a scalar for the uniform case, a g-vector when the root differs) and
charges the whole group through the machine's batched entry points
(:meth:`~repro.bsp.machine.BSPMachine.charge_comm_batch`,
:meth:`~repro.bsp.machine.BSPMachine.charge_comm_matrix`), so a collective
costs O(1) numpy ops regardless of group size.

Every primitive accepts ``tag`` for the machine trace.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine


def _check(machine: BSPMachine, group: RankGroup, words: float) -> None:
    machine.check_group(group)
    if words < 0:
        raise ValueError("words must be nonnegative")


def _retransmit_on_drop(machine: BSPMachine, site: str, group: RankGroup, charge) -> None:
    """Fault-layer hook: a dropped payload is healed by retransmission.

    ``charge`` re-issues the collective's own charges, so the recovery
    words and barriers land in the surrounding span.  With faults off this
    is one attribute read (see :data:`repro.bsp.machine.NO_FAULTS`).
    """
    if machine.faults.enabled:
        machine.faults.on_collective(site, group, charge)


def _root_index(group: RankGroup, root: int | None) -> tuple[int, int]:
    """Resolve the root rank and its position within the group."""
    root = group.root if root is None else root
    if root not in group:
        raise ValueError(f"root {root} not in group")
    return root, group.index_of(root)


def bcast(machine: BSPMachine, group: RankGroup, words: float, root: int | None = None, tag: str = "") -> None:
    """Broadcast ``words`` from ``root`` to the group (two-phase optimal)."""
    _check(machine, group, words)
    root, ri = _root_index(group, root)
    g = group.size
    if g == 1 or words == 0:
        return
    share = words / g
    # Phase 1: root scatters g-1 shares; phase 2: allgather of shares.
    sends = np.full(g, (g - 1) * share)
    recvs = np.full(g, share + (g - 1) * share)
    sends[ri] = (2 * (g - 1)) * share
    recvs[ri] = (g - 1) * share
    pairs = None
    if machine.metrics.enabled:
        # Exact pairwise pattern of the two phases: the root sends one share
        # to every other rank (scatter), then every rank sends its share to
        # every other rank (allgather).
        pairs = share * (np.ones((g, g)) - np.eye(g))
        pairs[ri, :] += share
        pairs[ri, ri] = 0.0
    def _charge() -> None:
        machine.charge_comm_batch(group, sends, recvs, pairs=pairs)
        machine.superstep(group, 2)

    with machine.span("bcast", group=group):
        _charge()
        _retransmit_on_drop(machine, "bcast", group, _charge)
    machine.trace.record("bcast", group.ranks, words=words, tag=tag, root=root)


def reduce(machine: BSPMachine, group: RankGroup, words: float, root: int | None = None, tag: str = "") -> None:
    """Reduce ``words`` contributions from every rank onto ``root``."""
    _check(machine, group, words)
    root, ri = _root_index(group, root)
    g = group.size
    if g == 1 or words == 0:
        return
    share = words / g
    # Phase 1: reduce-scatter; phase 2: gather shares onto root.
    base = (g - 1) * share
    sends = np.full(g, base + share)
    recvs = np.full(g, base)
    sends[ri] = base
    recvs[ri] = base + base
    pairs = None
    if machine.metrics.enabled:
        # Exact pairwise pattern of the two phases: every rank sends one
        # share to every other rank (reduce-scatter), then every non-root
        # rank sends its reduced share to the root (gather).
        pairs = share * (np.ones((g, g)) - np.eye(g))
        pairs[:, ri] += share
        pairs[ri, ri] = 0.0
    def _charge() -> None:
        machine.charge_comm_batch(group, sends, recvs, pairs=pairs)
        machine.charge_flops(group, base)
        machine.superstep(group, 2)

    with machine.span("reduce", group=group):
        _charge()
        _retransmit_on_drop(machine, "reduce", group, _charge)
    machine.trace.record("reduce", group.ranks, words=words, tag=tag, root=root)


def allreduce(machine: BSPMachine, group: RankGroup, words: float, tag: str = "") -> None:
    """Reduce ``words`` contributions and leave the result on every rank."""
    _check(machine, group, words)
    g = group.size
    if g == 1 or words == 0:
        return
    share = words / g
    per_rank = 2 * (g - 1) * share
    def _charge() -> None:
        machine.charge_comm_batch(group, per_rank, per_rank)
        machine.charge_flops(group, (g - 1) * share)
        machine.superstep(group, 2)

    with machine.span("allreduce", group=group):
        _charge()
        _retransmit_on_drop(machine, "allreduce", group, _charge)
    machine.trace.record("allreduce", group.ranks, words=words, tag=tag)


def reduce_scatter(machine: BSPMachine, group: RankGroup, words_total: float, tag: str = "") -> None:
    """Each rank contributes ``words_total``; each ends with its 1/g share summed."""
    _check(machine, group, words_total)
    g = group.size
    if g == 1 or words_total == 0:
        return
    share = words_total / g
    per_rank = (g - 1) * share
    def _charge() -> None:
        machine.charge_comm_batch(group, per_rank, per_rank)
        machine.charge_flops(group, per_rank)
        machine.superstep(group, 1)

    with machine.span("reduce_scatter", group=group):
        _charge()
        _retransmit_on_drop(machine, "reduce_scatter", group, _charge)
    machine.trace.record("reduce_scatter", group.ranks, words=words_total, tag=tag)


def allgather(machine: BSPMachine, group: RankGroup, words_each: float, tag: str = "") -> None:
    """Each rank contributes ``words_each``; everyone ends with all g blocks."""
    _check(machine, group, words_each)
    g = group.size
    if g == 1 or words_each == 0:
        return
    per_rank = (g - 1) * words_each
    def _charge() -> None:
        machine.charge_comm_batch(group, per_rank, per_rank)
        machine.superstep(group, 1)

    with machine.span("allgather", group=group):
        _charge()
        _retransmit_on_drop(machine, "allgather", group, _charge)
    machine.trace.record("allgather", group.ranks, words=g * words_each, tag=tag)


def gather(machine: BSPMachine, group: RankGroup, words_each: float, root: int | None = None, tag: str = "") -> None:
    """Each non-root rank sends its ``words_each`` block to ``root``."""
    _check(machine, group, words_each)
    root, ri = _root_index(group, root)
    g = group.size
    if g == 1 or words_each == 0:
        return
    sends = np.full(g, words_each)
    recvs = np.zeros(g)
    sends[ri] = 0.0
    recvs[ri] = (g - 1) * words_each
    def _charge() -> None:
        machine.charge_comm_batch(group, sends, recvs)
        machine.superstep(group, 1)

    with machine.span("gather", group=group):
        _charge()
        _retransmit_on_drop(machine, "gather", group, _charge)
    machine.trace.record("gather", group.ranks, words=g * words_each, tag=tag, root=root)


def scatter(machine: BSPMachine, group: RankGroup, words_each: float, root: int | None = None, tag: str = "") -> None:
    """``root`` sends a distinct ``words_each`` block to each other rank."""
    _check(machine, group, words_each)
    root, ri = _root_index(group, root)
    g = group.size
    if g == 1 or words_each == 0:
        return
    sends = np.zeros(g)
    recvs = np.full(g, words_each)
    sends[ri] = (g - 1) * words_each
    recvs[ri] = 0.0
    def _charge() -> None:
        machine.charge_comm_batch(group, sends, recvs)
        machine.superstep(group, 1)

    with machine.span("scatter", group=group):
        _charge()
        _retransmit_on_drop(machine, "scatter", group, _charge)
    machine.trace.record("scatter", group.ranks, words=g * words_each, tag=tag, root=root)


def alltoall(machine: BSPMachine, group: RankGroup, transfers: dict[tuple[int, int], float], tag: str = "") -> None:
    """Arbitrary point-to-point exchange completed in one superstep.

    ``transfers[(src, dst)]`` is the word count moved from src to dst;
    src == dst entries are local and free.  For dense exchange patterns,
    :func:`alltoall_matrix` charges a whole g×g transfer matrix in O(1)
    numpy ops instead of a Python dict walk.
    """
    machine.check_group(group)
    sends: dict[int, float] = {}
    recvs: dict[int, float] = {}
    pairs: list[tuple[int, int, float]] | None = [] if machine.metrics.enabled else None
    total = 0.0
    for (src, dst), w in transfers.items():
        if w < 0:
            raise ValueError("transfer words must be nonnegative")
        if src not in group or dst not in group:
            raise ValueError(f"transfer ({src}->{dst}) outside group")
        if src == dst or w == 0:
            continue
        sends[src] = sends.get(src, 0.0) + w
        recvs[dst] = recvs.get(dst, 0.0) + w
        if pairs is not None:
            pairs.append((src, dst, float(w)))
        total += w
    def _charge() -> None:
        machine.charge_comm(sends=sends, recvs=recvs, pairs=pairs)
        machine.superstep(group, 1)

    with machine.span("alltoall", group=group):
        _charge()
        _retransmit_on_drop(machine, "alltoall", group, _charge)
    machine.trace.record("alltoall", group.ranks, words=total, tag=tag)


def alltoall_matrix(machine: BSPMachine, group: RankGroup, matrix, tag: str = "") -> None:
    """All-to-all from a dense g×g transfer matrix, one superstep.

    ``matrix[i, j]`` words move from ``group[i]`` to ``group[j]``; diagonal
    entries are local and free.  Row/column sums are charged in one
    vectorized op via :meth:`~repro.bsp.machine.BSPMachine.charge_comm_matrix`.
    """
    machine.check_group(group)
    mat = np.asarray(matrix, dtype=np.float64)
    def _charge() -> None:
        machine.charge_comm_matrix(group, mat)
        machine.superstep(group, 1)

    with machine.span("alltoall", group=group):
        _charge()
        _retransmit_on_drop(machine, "alltoall", group, _charge)
    if machine.trace.enabled:
        off = mat.copy()
        np.fill_diagonal(off, 0.0)
        machine.trace.record("alltoall", group.ranks, words=float(off.sum()), tag=tag)


def p2p(machine: BSPMachine, src: int, dst: int, words: float, tag: str = "") -> None:
    """Point-to-point transfer; does NOT end a superstep (caller batches)."""
    if words < 0:
        raise ValueError("words must be nonnegative")
    if src == dst or words == 0:
        return
    pairs = ((src, dst, float(words)),) if machine.metrics.enabled else None
    machine.charge_comm(sends={src: words}, recvs={dst: words}, pairs=pairs)
    machine.trace.record("p2p", (src, dst), words=words, tag=tag)
