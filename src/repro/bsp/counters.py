"""Per-rank cost counters and aggregated cost reports.

Each virtual rank accumulates F (flops), words sent, words received,
Q (memory↔cache traffic) and S (supersteps it participated in).  A
:class:`CostReport` snapshots the machine-wide aggregates used everywhere in
tests and benchmarks.

Two counter stores implement the same accumulation interface:

* :class:`CounterArray` — the default engine: one numpy ``float64`` (or
  ``int64`` for S) array per quantity, one slot per rank, so charging a
  whole :class:`~repro.bsp.group.RankGroup` is a single fancy-indexed slice
  op.  ``machine.counters[r]`` hands back a :class:`RankSlot` view, keeping
  the historical per-rank attribute API (``counters[r].flops`` readable and
  writable) without per-rank Python objects.
* :class:`repro.bsp.scalar.ScalarCounterStore` — the pre-vectorization
  oracle: a list of :class:`RankCounters` updated by Python loops, kept as
  the reference the equivalence suite and ``repro bench`` compare against.

All *values* charged are computed by the machine/collective layer before
they reach a store; stores only accumulate.  Per-rank accumulation therefore
performs the identical sequence of IEEE-754 additions in both stores, which
is what makes the engines bit-identical, not merely close.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.bsp.params import MachineParams

#: per-rank quantities accepted by :meth:`CostReport.imbalance` /
#: :meth:`CostReport.gini`: the raw counter fields plus the derived
#: ``"words"`` (sent + received) and ``"memory"`` (peak footprint)
IMBALANCE_FIELDS: tuple[str, ...] = (
    "flops",
    "words",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
    "memory",
)

#: additive quantities whose activity marks a rank as part of the
#: executing group (idle ranks are excluded from imbalance statistics)
_ACTIVITY_FIELDS: tuple[str, ...] = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
)


def imbalance_of(values: np.ndarray, active: np.ndarray | None = None) -> float:
    """max/mean of ``values`` over the ``active`` mask (1.0 = balanced).

    The shared implementation behind :meth:`CostReport.imbalance`,
    :meth:`repro.trace.report.SpanBreakdown.imbalance` and the profiler's
    section table, so all three agree by construction.
    """
    vals = np.asarray(values, dtype=np.float64)
    if active is not None:
        vals = vals[np.asarray(active, dtype=bool)]
    if vals.size == 0:
        return 1.0
    mean = float(vals.mean())
    if mean == 0.0:
        return 1.0
    return float(vals.max()) / mean


def gini_of(values: np.ndarray, active: np.ndarray | None = None) -> float:
    """Gini coefficient of ``values`` over the ``active`` mask (0 = equal)."""
    vals = np.asarray(values, dtype=np.float64)
    if active is not None:
        vals = vals[np.asarray(active, dtype=bool)]
    if vals.size == 0:
        return 0.0
    mean = float(vals.mean())
    if mean <= 0.0:
        return 0.0
    diffs = float(np.abs(vals[:, None] - vals[None, :]).sum())
    return diffs / (2.0 * vals.size * vals.size * mean)


def rank_field_values(per_rank: object, name: str) -> np.ndarray:
    """Materialize one per-rank quantity from either engine's snapshot.

    ``per_rank`` is a :class:`CounterArray` (vectorized engine) or a
    sequence of :class:`RankCounters` (scalar engine); ``name`` is one of
    :data:`IMBALANCE_FIELDS`.
    """
    if name == "words":
        return rank_field_values(per_rank, "words_sent") + rank_field_values(
            per_rank, "words_recv"
        )
    field_name = "peak_memory_words" if name == "memory" else name
    if field_name not in COUNTER_FIELDS:
        raise ValueError(f"unknown per-rank field {name!r}; expected one of {IMBALANCE_FIELDS}")
    getter = getattr(per_rank, "field_array", None)
    if getter is not None:
        return np.asarray(getter(field_name), dtype=np.float64)
    return np.array([getattr(c, field_name) for c in per_rank], dtype=np.float64)  # type: ignore[union-attr]


def active_rank_mask(per_rank: object) -> np.ndarray:
    """Boolean mask of ranks with any nonzero additive counter."""
    mask: np.ndarray | None = None
    for name in _ACTIVITY_FIELDS:
        nz = rank_field_values(per_rank, name) != 0.0
        mask = nz if mask is None else (mask | nz)
    assert mask is not None
    return mask


@dataclass
class RankCounters:
    """Running cost totals for one virtual processor."""

    flops: float = 0.0
    words_sent: float = 0.0
    words_recv: float = 0.0
    mem_traffic: float = 0.0
    supersteps: int = 0
    peak_memory_words: float = 0.0
    current_memory_words: float = 0.0

    @property
    def words(self) -> float:
        """Total interprocessor words moved by this rank (sent + received)."""
        return self.words_sent + self.words_recv

    def copy(self) -> "RankCounters":
        return RankCounters(
            flops=self.flops,
            words_sent=self.words_sent,
            words_recv=self.words_recv,
            mem_traffic=self.mem_traffic,
            supersteps=self.supersteps,
            peak_memory_words=self.peak_memory_words,
            current_memory_words=self.current_memory_words,
        )


@dataclass(frozen=True)
class CostReport:
    """Aggregated BSP cost of an algorithm run.

    ``flops``/``words``/``mem_traffic``/``supersteps`` are maxima over ranks
    (the critical-path convention of Section II); ``total_*`` fields are sums
    over ranks, useful for checking work efficiency and load balance.
    """

    p: int
    flops: float
    words: float
    mem_traffic: float
    supersteps: int
    total_flops: float
    total_words: float
    total_mem_traffic: float
    peak_memory_words: float
    #: per-rank snapshot backing ``__sub__``: a tuple of :class:`RankCounters`
    #: (scalar engine) or a :class:`CounterArray` (vectorized engine).
    #: Excluded from equality so reports from either engine compare by cost.
    per_rank: object = field(repr=False, compare=False, default=())
    #: per-span breakdown (:class:`repro.trace.report.SpanBreakdown`) when
    #: the machine ran with span tracing enabled; ``None`` otherwise.
    #: Excluded from equality so traced and untraced runs compare by cost.
    span_breakdown: object = field(repr=False, compare=False, default=None)
    #: per-rank telemetry (:class:`repro.metrics.MetricsSnapshot`) when the
    #: machine ran with metrics enabled; ``None`` otherwise.  Excluded from
    #: equality so instrumented and plain runs compare by cost.
    metrics_data: object = field(repr=False, compare=False, default=None)

    @property
    def F(self) -> float:  # noqa: N802 — paper notation
        return self.flops

    @property
    def W(self) -> float:  # noqa: N802
        return self.words

    @property
    def Q(self) -> float:  # noqa: N802
        return self.mem_traffic

    @property
    def S(self) -> int:  # noqa: N802
        return self.supersteps

    @property
    def M(self) -> float:  # noqa: N802
        return self.peak_memory_words

    def time(self, params: MachineParams) -> float:
        """Modeled execution time on a machine with the given parameters."""
        return params.time(self.flops, self.words, self.mem_traffic, self.supersteps)

    def with_spans(self, breakdown: object) -> "CostReport":
        """Copy of this report carrying a per-span breakdown."""
        return replace(self, span_breakdown=breakdown)

    def by_span(self):  # noqa: ANN201 — SpanBreakdown (import cycle)
        """The per-span cost breakdown of the traced run.

        Raises ``ValueError`` if the machine did not run with span tracing
        (``BSPMachine(p, spans=True)`` or ``REPRO_SPANS=1``).
        """
        if self.span_breakdown is None:
            raise ValueError(
                "this report carries no span breakdown; run on a machine with "
                "span tracing enabled (BSPMachine(p, spans=True) or REPRO_SPANS=1)"
            )
        return self.span_breakdown

    def with_metrics(self, snapshot: object) -> "CostReport":
        """Copy of this report carrying a per-rank metrics snapshot."""
        return replace(self, metrics_data=snapshot)

    def metrics(self):  # noqa: ANN201 — MetricsSnapshot (import cycle)
        """The per-rank telemetry snapshot of the instrumented run.

        Raises ``ValueError`` if the machine did not run with metrics
        (``BSPMachine(p, metrics=True)`` or ``REPRO_METRICS=1``).
        """
        if self.metrics_data is None:
            raise ValueError(
                "this report carries no per-rank metrics; run on a machine with "
                "metrics enabled (BSPMachine(p, metrics=True) or REPRO_METRICS=1)"
            )
        return self.metrics_data

    def rank_values(self, fld: str = "flops") -> np.ndarray:
        """Per-rank values of one :data:`IMBALANCE_FIELDS` quantity."""
        return rank_field_values(self.per_rank, fld)

    def active_ranks(self) -> np.ndarray:
        """Mask of ranks that participated in the measured interval.

        Ranks outside the executing group (no flops, no words, no memory
        traffic, no supersteps) are excluded from imbalance statistics so
        small-group spans on a large machine don't report spurious skew.
        """
        return active_rank_mask(self.per_rank)

    def _has_per_rank(self) -> bool:
        try:
            return len(self.per_rank) > 0  # type: ignore[arg-type]
        except TypeError:
            return False

    def imbalance(self, fld: str = "flops") -> float:
        """max/mean of one per-rank quantity over the executing group.

        ``fld`` is one of :data:`IMBALANCE_FIELDS` (e.g. ``"flops"``,
        ``"words"``, ``"mem_traffic"``, ``"memory"``).  1.0 means perfectly
        balanced; idle ranks are excluded via :meth:`active_ranks`.
        """
        if not self._has_per_rank():
            # legacy fallback for hand-built reports without per-rank data
            if fld == "flops" and self.total_flops != 0:
                return self.flops / (self.total_flops / self.p)
            return 1.0
        return imbalance_of(self.rank_values(fld), self.active_ranks())

    def gini(self, fld: str = "flops") -> float:
        """Gini coefficient of one per-rank quantity over the executing group."""
        if not self._has_per_rank():
            return 0.0
        return gini_of(self.rank_values(fld), self.active_ranks())

    @property
    def flop_imbalance(self) -> float:
        """max/mean flop ratio across executing ranks (1.0 = balanced).

        Thin alias for ``imbalance("flops")``, kept for callers that predate
        the general per-field form.
        """
        return self.imbalance("flops")

    def __sub__(self, other: "CostReport") -> "CostReport":
        """Cost delta between two snapshots of the *same* machine.

        Per-rank deltas are computed first, then re-aggregated, so the max
        over ranks refers to the interval, not to the absolute totals.
        """
        if self.p != other.p:
            raise ValueError("cannot subtract cost reports from different machines")
        if isinstance(self.per_rank, CounterArray) and isinstance(other.per_rank, CounterArray):
            return self.per_rank.delta_report(other.per_rank)
        deltas = [
            RankCounters(
                flops=a.flops - b.flops,
                words_sent=a.words_sent - b.words_sent,
                words_recv=a.words_recv - b.words_recv,
                mem_traffic=a.mem_traffic - b.mem_traffic,
                supersteps=a.supersteps - b.supersteps,
                peak_memory_words=a.peak_memory_words,
            )
            for a, b in zip(self.per_rank, other.per_rank)
        ]
        return aggregate(deltas)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"p={self.p}  F={self.flops:.3g}  W={self.words:.3g}  "
            f"Q={self.mem_traffic:.3g}  S={self.supersteps}  "
            f"balance={self.flop_imbalance:.2f}"
        )


#: counter quantities tracked per rank, in canonical order
COUNTER_FIELDS: tuple[str, ...] = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
    "peak_memory_words",
    "current_memory_words",
)


class RankSlot:
    """Mutable view of one rank's slot in a :class:`CounterArray`.

    Supports the same attribute API as :class:`RankCounters` (including
    assignment, which tests use to fault-inject counter decreases), writing
    through to the backing arrays.
    """

    __slots__ = ("_store", "_i")

    def __init__(self, store: "CounterArray", i: int):
        self._store = store
        self._i = i

    @property
    def flops(self) -> float:
        return float(self._store.flops[self._i])

    @flops.setter
    def flops(self, v: float) -> None:
        self._store.flops[self._i] = v

    @property
    def words_sent(self) -> float:
        return float(self._store.words_sent[self._i])

    @words_sent.setter
    def words_sent(self, v: float) -> None:
        self._store.words_sent[self._i] = v

    @property
    def words_recv(self) -> float:
        return float(self._store.words_recv[self._i])

    @words_recv.setter
    def words_recv(self, v: float) -> None:
        self._store.words_recv[self._i] = v

    @property
    def mem_traffic(self) -> float:
        return float(self._store.mem_traffic[self._i])

    @mem_traffic.setter
    def mem_traffic(self, v: float) -> None:
        self._store.mem_traffic[self._i] = v

    @property
    def supersteps(self) -> int:
        return int(self._store.supersteps[self._i])

    @supersteps.setter
    def supersteps(self, v: int) -> None:
        self._store.supersteps[self._i] = v

    @property
    def peak_memory_words(self) -> float:
        return float(self._store.peak_memory_words[self._i])

    @peak_memory_words.setter
    def peak_memory_words(self, v: float) -> None:
        self._store.peak_memory_words[self._i] = v

    @property
    def current_memory_words(self) -> float:
        return float(self._store.current_memory_words[self._i])

    @current_memory_words.setter
    def current_memory_words(self, v: float) -> None:
        self._store.current_memory_words[self._i] = v

    @property
    def words(self) -> float:
        return self.words_sent + self.words_recv

    def copy(self) -> RankCounters:
        """Detach into a plain :class:`RankCounters` value."""
        return RankCounters(
            flops=self.flops,
            words_sent=self.words_sent,
            words_recv=self.words_recv,
            mem_traffic=self.mem_traffic,
            supersteps=self.supersteps,
            peak_memory_words=self.peak_memory_words,
            current_memory_words=self.current_memory_words,
        )

    def __repr__(self) -> str:
        return f"RankSlot({self.copy()!r})"


class CounterArray:
    """Vectorized per-rank counter store: one array slot per rank.

    Accumulation entry points take either a single ``int`` rank or an
    ``int64`` index array (a cached :meth:`RankGroup.indices
    <repro.bsp.group.RankGroup.indices>` array); either way each update is
    O(1) numpy work rather than an O(ranks) Python loop.  ``unique=False``
    routes through :func:`numpy.add.at` so duplicate indices accumulate,
    matching the historical loop semantics for arbitrary iterables.
    """

    __slots__ = (
        "p",
        "flops",
        "words_sent",
        "words_recv",
        "mem_traffic",
        "supersteps",
        "peak_memory_words",
        "current_memory_words",
    )

    def __init__(self, p: int):
        self.p = p
        self.flops = np.zeros(p)
        self.words_sent = np.zeros(p)
        self.words_recv = np.zeros(p)
        self.mem_traffic = np.zeros(p)
        self.supersteps = np.zeros(p, dtype=np.int64)
        self.peak_memory_words = np.zeros(p)
        self.current_memory_words = np.zeros(p)

    # -- sequence protocol (per-rank views) ----------------------------- #

    def __len__(self) -> int:
        return self.p

    def __getitem__(self, rank: int) -> RankSlot:
        if not -self.p <= rank < self.p:
            raise IndexError(f"rank {rank} out of range for p={self.p}")
        return RankSlot(self, rank % self.p)

    def __iter__(self):
        return (RankSlot(self, i) for i in range(self.p))

    # -- accumulation primitives ---------------------------------------- #
    # ``idx`` is an int or an int64 ndarray; ``amount`` a float or an
    # aligned float array.  Values are computed by the caller — stores only
    # add, so scalar and vectorized engines perform identical IEEE ops.

    def add_flops(self, idx, amount, unique: bool = True) -> None:
        if unique:
            self.flops[idx] += amount
        else:
            np.add.at(self.flops, idx, amount)

    def add_comm(self, send_idx=None, sent=None, recv_idx=None, recvd=None,
                 unique: bool = True) -> None:
        if unique:
            if send_idx is not None:
                self.words_sent[send_idx] += sent
            if recv_idx is not None:
                self.words_recv[recv_idx] += recvd
        else:
            if send_idx is not None:
                np.add.at(self.words_sent, send_idx, sent)
            if recv_idx is not None:
                np.add.at(self.words_recv, recv_idx, recvd)

    def add_supersteps(self, idx, count: int, unique: bool = True) -> None:
        if unique:
            self.supersteps[idx] += count
        else:
            np.add.at(self.supersteps, idx, count)

    def add_mem_traffic(self, idx, words, unique: bool = True) -> None:
        if unique:
            self.mem_traffic[idx] += words
        else:
            np.add.at(self.mem_traffic, idx, words)

    def note_memory(self, idx, words_each, unique: bool = True) -> None:
        cur = self.current_memory_words
        if isinstance(idx, np.ndarray):
            if unique:
                cur[idx] = np.maximum(cur[idx], words_each)
                self.peak_memory_words[idx] = np.maximum(self.peak_memory_words[idx], cur[idx])
            else:
                # duplicate indices: running max is order-insensitive, so
                # element-wise maximum.at gives the loop-exact result
                np.maximum.at(cur, idx, words_each)
                np.maximum.at(self.peak_memory_words, idx, cur[idx])
        else:
            cur[idx] = max(cur[idx], words_each)
            self.peak_memory_words[idx] = max(self.peak_memory_words[idx], cur[idx])

    def add_memory(self, idx, words_each, unique: bool = True) -> None:
        cur = self.current_memory_words
        if unique:
            cur[idx] += words_each
        else:
            # duplicate indices with non-negative grants: the footprint only
            # grows across the occurrences, so the final value is the running
            # maximum and one end-of-batch peak update is loop-exact.  (The
            # machine layer falls back to a loop for negative grants.)
            np.add.at(cur, idx, words_each)
        if isinstance(idx, np.ndarray):
            self.peak_memory_words[idx] = np.maximum(self.peak_memory_words[idx], cur[idx])
        else:
            self.peak_memory_words[idx] = max(self.peak_memory_words[idx], cur[idx])

    def release_memory(self, idx, words_each, unique: bool = True) -> None:
        cur = self.current_memory_words
        if isinstance(idx, np.ndarray):
            if unique:
                cur[idx] = np.maximum(0.0, cur[idx] - words_each)
            else:
                # non-negative releases: once clamped to zero a slot stays
                # clamped under further releases, so subtract-then-clamp at
                # the end matches the per-occurrence loop exactly
                np.subtract.at(cur, idx, words_each)
                np.maximum.at(cur, idx, 0.0)
        else:
            cur[idx] = max(0.0, cur[idx] - words_each)

    # -- snapshots and reports ------------------------------------------ #

    def field_array(self, name: str) -> np.ndarray:
        """The backing array for one counter quantity (no copy)."""
        if name not in COUNTER_FIELDS:
            raise ValueError(f"unknown counter field {name!r}")
        return getattr(self, name)

    def snapshot(self) -> "CounterArray":
        """O(p) array copy of all counters (watermarks, report backing)."""
        out = CounterArray.__new__(CounterArray)
        out.p = self.p
        for name in COUNTER_FIELDS:
            setattr(out, name, getattr(self, name).copy())
        return out

    def reset(self) -> None:
        for name in COUNTER_FIELDS:
            getattr(self, name).fill(0)

    def report(self) -> CostReport:
        """Vectorized equivalent of :func:`aggregate` over this store."""
        words = self.words_sent + self.words_recv
        return CostReport(
            p=self.p,
            flops=float(self.flops.max()),
            words=float(words.max()),
            mem_traffic=float(self.mem_traffic.max()),
            supersteps=int(self.supersteps.max()),
            total_flops=float(self.flops.sum()),
            total_words=float(words.sum()),
            total_mem_traffic=float(self.mem_traffic.sum()),
            peak_memory_words=float(self.peak_memory_words.max()),
            per_rank=self.snapshot(),
        )

    def delta_report(self, older: "CounterArray") -> CostReport:
        """Re-aggregated per-rank delta against an older snapshot.

        Matches the scalar ``CostReport.__sub__`` convention: additive
        counters are differenced per rank before aggregation, while the
        peak-memory high-water mark is taken from the newer snapshot.
        """
        if self.p != older.p:
            raise ValueError("cannot subtract counter stores of different sizes")
        d = CounterArray.__new__(CounterArray)
        d.p = self.p
        d.flops = self.flops - older.flops
        d.words_sent = self.words_sent - older.words_sent
        d.words_recv = self.words_recv - older.words_recv
        d.mem_traffic = self.mem_traffic - older.mem_traffic
        d.supersteps = self.supersteps - older.supersteps
        d.peak_memory_words = self.peak_memory_words.copy()
        d.current_memory_words = np.zeros(self.p)
        return d.report()

    def __repr__(self) -> str:
        return f"CounterArray(p={self.p})"


def aggregate(per_rank: list[RankCounters]) -> CostReport:
    """Build a :class:`CostReport` from per-rank counters."""
    if not per_rank:
        raise ValueError("aggregate requires at least one rank")
    flops = np.array([r.flops for r in per_rank])
    sent = np.array([r.words_sent for r in per_rank])
    recv = np.array([r.words_recv for r in per_rank])
    mem = np.array([r.mem_traffic for r in per_rank])
    steps = np.array([r.supersteps for r in per_rank])
    peak = np.array([r.peak_memory_words for r in per_rank])
    words = sent + recv
    return CostReport(
        p=len(per_rank),
        flops=float(flops.max()),
        words=float(words.max()),
        mem_traffic=float(mem.max()),
        supersteps=int(steps.max()),
        total_flops=float(flops.sum()),
        total_words=float(words.sum()),
        total_mem_traffic=float(mem.sum()),
        peak_memory_words=float(peak.max()),
        per_rank=tuple(r.copy() for r in per_rank),
    )
