"""Per-rank cost counters and aggregated cost reports.

Each virtual rank accumulates F (flops), words sent, words received,
Q (memory↔cache traffic) and S (supersteps it participated in).  A
:class:`CostReport` snapshots the machine-wide aggregates used everywhere in
tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsp.params import MachineParams


@dataclass
class RankCounters:
    """Running cost totals for one virtual processor."""

    flops: float = 0.0
    words_sent: float = 0.0
    words_recv: float = 0.0
    mem_traffic: float = 0.0
    supersteps: int = 0
    peak_memory_words: float = 0.0
    current_memory_words: float = 0.0

    @property
    def words(self) -> float:
        """Total interprocessor words moved by this rank (sent + received)."""
        return self.words_sent + self.words_recv

    def copy(self) -> "RankCounters":
        return RankCounters(
            flops=self.flops,
            words_sent=self.words_sent,
            words_recv=self.words_recv,
            mem_traffic=self.mem_traffic,
            supersteps=self.supersteps,
            peak_memory_words=self.peak_memory_words,
            current_memory_words=self.current_memory_words,
        )


@dataclass(frozen=True)
class CostReport:
    """Aggregated BSP cost of an algorithm run.

    ``flops``/``words``/``mem_traffic``/``supersteps`` are maxima over ranks
    (the critical-path convention of Section II); ``total_*`` fields are sums
    over ranks, useful for checking work efficiency and load balance.
    """

    p: int
    flops: float
    words: float
    mem_traffic: float
    supersteps: int
    total_flops: float
    total_words: float
    total_mem_traffic: float
    peak_memory_words: float
    per_rank: tuple = field(repr=False, default=())

    @property
    def F(self) -> float:  # noqa: N802 — paper notation
        return self.flops

    @property
    def W(self) -> float:  # noqa: N802
        return self.words

    @property
    def Q(self) -> float:  # noqa: N802
        return self.mem_traffic

    @property
    def S(self) -> int:  # noqa: N802
        return self.supersteps

    @property
    def M(self) -> float:  # noqa: N802
        return self.peak_memory_words

    def time(self, params: MachineParams) -> float:
        """Modeled execution time on a machine with the given parameters."""
        return params.time(self.flops, self.words, self.mem_traffic, self.supersteps)

    @property
    def flop_imbalance(self) -> float:
        """max/mean flop ratio across ranks (1.0 = perfectly balanced)."""
        if self.total_flops == 0:
            return 1.0
        return self.flops / (self.total_flops / self.p)

    def __sub__(self, other: "CostReport") -> "CostReport":
        """Cost delta between two snapshots of the *same* machine.

        Per-rank deltas are computed first, then re-aggregated, so the max
        over ranks refers to the interval, not to the absolute totals.
        """
        if self.p != other.p:
            raise ValueError("cannot subtract cost reports from different machines")
        deltas = [
            RankCounters(
                flops=a.flops - b.flops,
                words_sent=a.words_sent - b.words_sent,
                words_recv=a.words_recv - b.words_recv,
                mem_traffic=a.mem_traffic - b.mem_traffic,
                supersteps=a.supersteps - b.supersteps,
                peak_memory_words=a.peak_memory_words,
            )
            for a, b in zip(self.per_rank, other.per_rank)
        ]
        return aggregate(deltas)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"p={self.p}  F={self.flops:.3g}  W={self.words:.3g}  "
            f"Q={self.mem_traffic:.3g}  S={self.supersteps}  "
            f"balance={self.flop_imbalance:.2f}"
        )


def aggregate(per_rank: list[RankCounters]) -> CostReport:
    """Build a :class:`CostReport` from per-rank counters."""
    if not per_rank:
        raise ValueError("aggregate requires at least one rank")
    flops = np.array([r.flops for r in per_rank])
    sent = np.array([r.words_sent for r in per_rank])
    recv = np.array([r.words_recv for r in per_rank])
    mem = np.array([r.mem_traffic for r in per_rank])
    steps = np.array([r.supersteps for r in per_rank])
    peak = np.array([r.peak_memory_words for r in per_rank])
    words = sent + recv
    return CostReport(
        p=len(per_rank),
        flops=float(flops.max()),
        words=float(words.max()),
        mem_traffic=float(mem.max()),
        supersteps=int(steps.max()),
        total_flops=float(flops.sum()),
        total_words=float(words.sum()),
        total_mem_traffic=float(mem.sum()),
        peak_memory_words=float(peak.max()),
        per_rank=tuple(r.copy() for r in per_rank),
    )
