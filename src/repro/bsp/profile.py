"""Per-section cost profiling for simulated runs.

Answering "where do the words go?" requires attributing the machine's
counters to phases of an algorithm.  :class:`Profiler` does this with
nestable sections::

    prof = Profiler(machine)
    with prof.section("panel-qr"):
        rect_qr(machine, group, panel)
    with prof.section("updates"):
        ...
    print(prof.report())

Sections may repeat (costs accumulate) and nest (children are attributed to
their own label *and* counted inside the parent, like any profiler).  The
report ranks sections by the cost component you care about.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.bsp.counters import (
    CostReport,
    gini_of,
    imbalance_of,
    rank_field_values,
)
from repro.bsp.machine import BSPMachine
from repro.report.tables import format_table

#: per-rank quantities a section accumulates (the additive counter fields)
SECTION_RANK_FIELDS: tuple[str, ...] = (
    "flops",
    "words_sent",
    "words_recv",
    "mem_traffic",
    "supersteps",
)


@dataclass
class SectionCost:
    """Accumulated cost of one (possibly repeated) section.

    Values are critical-path (max-over-ranks) deltas per call, summed over
    calls — the same convention as :class:`~repro.bsp.counters.CostReport`.
    ``per_rank`` holds the same deltas *before* the max, one array per
    :data:`SECTION_RANK_FIELDS` entry, so the section table computes the
    exact imbalance statistics the metrics layer reports.
    """

    label: str
    calls: int = 0
    flops: float = 0.0
    words: float = 0.0
    mem_traffic: float = 0.0
    supersteps: int = 0
    depth: int = 0
    per_rank: dict = field(default_factory=dict, repr=False)

    def add(self, delta: CostReport) -> None:
        self.calls += 1
        self.flops += delta.flops
        self.words += delta.words
        self.mem_traffic += delta.mem_traffic
        self.supersteps += delta.supersteps
        try:
            empty = len(delta.per_rank) == 0  # type: ignore[arg-type]
        except TypeError:
            empty = True
        if empty:
            return
        for f in SECTION_RANK_FIELDS:
            vals = rank_field_values(delta.per_rank, f)
            if f in self.per_rank:
                self.per_rank[f] += vals
            else:
                self.per_rank[f] = vals.copy()

    def rank_values(self, fld: str = "flops") -> np.ndarray:
        """Per-rank accumulated values (``"words"`` derives sent + recv)."""
        if not self.per_rank:
            raise ValueError(f"section {self.label!r} has no per-rank data")
        if fld == "words":
            return self.per_rank["words_sent"] + self.per_rank["words_recv"]
        if fld not in SECTION_RANK_FIELDS:
            raise ValueError(
                f"unknown section field {fld!r}; expected one of {SECTION_RANK_FIELDS}"
            )
        return self.per_rank[fld]

    def active_ranks(self) -> np.ndarray:
        """Mask of ranks this section actually charged."""
        mask: np.ndarray | None = None
        for f in SECTION_RANK_FIELDS:
            nz = self.per_rank[f] != 0
            mask = nz if mask is None else (mask | nz)
        assert mask is not None
        return mask

    def imbalance(self, fld: str = "flops") -> float:
        """max/mean over the ranks this section charged (1.0 = balanced) —
        the same statistic as :meth:`CostReport.imbalance`, so the section
        table and the metrics layer agree on one shared run."""
        if not self.per_rank:
            return 1.0
        return imbalance_of(self.rank_values(fld), self.active_ranks())

    def gini(self, fld: str = "flops") -> float:
        """Gini coefficient over the ranks this section charged."""
        if not self.per_rank:
            return 0.0
        return gini_of(self.rank_values(fld), self.active_ranks())


class Profiler:
    """Attribute a machine's cost counters to labelled sections."""

    def __init__(self, machine: BSPMachine):
        self.machine = machine
        self.sections: dict[str, SectionCost] = {}
        self._stack: list[str] = []

    @contextmanager
    def section(self, label: str):
        """Measure everything charged to the machine inside the block."""
        depth = len(self._stack)
        self._stack.append(label)
        before = self.machine.cost()
        try:
            yield self
        finally:
            self._stack.pop()
            delta = self.machine.cost() - before
            sec = self.sections.setdefault(label, SectionCost(label, depth=depth))
            sec.add(delta)

    def report(self, sort_by: str = "words") -> str:
        """Fixed-width table of sections, descending by ``sort_by``
        ('words', 'flops', 'mem_traffic', or 'supersteps')."""
        if sort_by not in ("words", "flops", "mem_traffic", "supersteps"):
            raise ValueError(f"cannot sort by {sort_by!r}")
        # Only rank top-level sections against the total; nested sections are
        # shown indented under their accumulated place.
        secs = sorted(self.sections.values(), key=lambda s: getattr(s, sort_by), reverse=True)
        total = sum(getattr(s, sort_by) for s in secs if s.depth == 0) or 1.0
        rows = []
        for s in secs:
            share = getattr(s, sort_by) / total if s.depth == 0 else float("nan")
            rows.append(
                [
                    ("  " * s.depth) + s.label,
                    s.calls,
                    s.flops,
                    s.words,
                    s.mem_traffic,
                    s.supersteps,
                    f"{s.imbalance(sort_by):.2f}",
                    f"{s.gini(sort_by):.2f}",
                    f"{share:.1%}" if s.depth == 0 else "-",
                ]
            )
        return format_table(
            ["section", "calls", "F", "W", "Q", "S", "bal", "gini", f"{sort_by} share"],
            rows,
            title=f"cost profile (sorted by {sort_by})",
        )

    def top(self, sort_by: str = "words") -> str:
        """Label of the costliest top-level section."""
        tops = [s for s in self.sections.values() if s.depth == 0]
        if not tops:
            raise ValueError("no sections recorded")
        return max(tops, key=lambda s: getattr(s, sort_by)).label
