"""The simulated BSP machine.

A :class:`BSPMachine` owns per-rank cost counters and cache models and is
threaded through every parallel algorithm in this repo.  Algorithms execute
sequentially in Python ("orchestrated SPMD"); the machine records what each
*virtual* rank computed, sent, received, and synchronized on, so the final
:class:`~repro.bsp.counters.CostReport` is the BSP cost the same program
would have on a real machine (max over ranks per quantity).

Disjoint groups that the paper runs concurrently are simply charged on their
own ranks; the max-over-ranks aggregation then reflects the concurrency.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.bsp.cache import CacheModel
from repro.bsp.counters import CostReport, RankCounters, aggregate
from repro.bsp.group import RankGroup
from repro.bsp.params import MachineParams
from repro.bsp.trace import Trace
from repro.util.validation import check_positive_int


class BSPMachine:
    """A ``p``-processor simulated BSP machine with cost accounting."""

    def __init__(self, p: int, params: MachineParams | None = None, trace: bool = False):
        self.p = check_positive_int(p, "p")
        self.params = params or MachineParams()
        self.counters: list[RankCounters] = [RankCounters() for _ in range(self.p)]
        self.caches: list[CacheModel] = [CacheModel(self.params.cache_words) for _ in range(self.p)]
        self.trace = Trace(enabled=trace)
        self.world = RankGroup(tuple(range(self.p)))

    # ------------------------------------------------------------------ #
    # validation helpers

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range [0, {self.p})")
        return rank

    def check_group(self, group: RankGroup) -> RankGroup:
        for r in group:
            self._check_rank(r)
        return group

    # ------------------------------------------------------------------ #
    # charging primitives

    def charge_flops(self, ranks: Iterable[int] | int, flops_each: float) -> None:
        """Charge ``flops_each`` local operations to each listed rank."""
        if flops_each < 0:
            raise ValueError("flops must be nonnegative")
        if isinstance(ranks, int):
            ranks = (ranks,)
        for r in ranks:
            self.counters[self._check_rank(r)].flops += flops_each

    def charge_comm(
        self,
        sends: Mapping[int, float] | None = None,
        recvs: Mapping[int, float] | None = None,
    ) -> None:
        """Charge horizontal word counts: ``sends[r]`` words sent by rank r, etc."""
        for r, w in (sends or {}).items():
            if w < 0:
                raise ValueError("sent words must be nonnegative")
            self.counters[self._check_rank(r)].words_sent += w
        for r, w in (recvs or {}).items():
            if w < 0:
                raise ValueError("received words must be nonnegative")
            self.counters[self._check_rank(r)].words_recv += w

    def superstep(self, group: RankGroup | Iterable[int] | None = None, count: int = 1) -> None:
        """End ``count`` supersteps for the given group (default: all ranks)."""
        if count < 0:
            raise ValueError("superstep count must be nonnegative")
        ranks = self.world if group is None else group
        for r in ranks:
            self.counters[self._check_rank(r)].supersteps += count
        self.trace.record("superstep", ranks if not isinstance(ranks, RankGroup) else ranks.ranks)

    # ------------------------------------------------------------------ #
    # vertical (memory <-> cache) traffic

    def mem_read(self, rank: int, key: object, words: float) -> None:
        """Rank reads a dataset from memory; charges Q only on a cache miss."""
        moved = self.caches[self._check_rank(rank)].access(key, words)
        self.counters[rank].mem_traffic += moved

    def mem_write(self, rank: int, key: object, words: float) -> None:
        """Rank produces a dataset; charges its write-back to memory."""
        moved = self.caches[self._check_rank(rank)].write(key, words)
        self.counters[rank].mem_traffic += moved

    def mem_stream(self, rank: int, words: float) -> None:
        """Charge uncacheable streaming traffic (always moves)."""
        if words < 0:
            raise ValueError("words must be nonnegative")
        self.counters[self._check_rank(rank)].mem_traffic += words

    def cache_resident(self, rank: int, key: object) -> bool:
        """True iff the dataset is currently in the rank's cache."""
        return self.caches[self._check_rank(rank)].contains(key)

    # ------------------------------------------------------------------ #
    # memory-footprint tracking (high-water mark per rank)

    def note_memory(self, ranks: Iterable[int] | int, words_each: float) -> None:
        """Record that each listed rank currently holds ``words_each`` words.

        The distribution layer calls this when matrices are created or
        replicated; only the peak matters for the M claims.
        """
        if isinstance(ranks, int):
            ranks = (ranks,)
        for r in ranks:
            c = self.counters[self._check_rank(r)]
            c.current_memory_words = max(c.current_memory_words, words_each)
            c.peak_memory_words = max(c.peak_memory_words, c.current_memory_words)

    def add_memory(self, ranks: Iterable[int] | int, words_each: float) -> None:
        """Increase each rank's live footprint by ``words_each`` words."""
        if isinstance(ranks, int):
            ranks = (ranks,)
        for r in ranks:
            c = self.counters[self._check_rank(r)]
            c.current_memory_words += words_each
            c.peak_memory_words = max(c.peak_memory_words, c.current_memory_words)

    def release_memory(self, ranks: Iterable[int] | int, words_each: float) -> None:
        """Decrease each rank's live footprint (never below zero)."""
        if isinstance(ranks, int):
            ranks = (ranks,)
        for r in ranks:
            c = self.counters[self._check_rank(r)]
            c.current_memory_words = max(0.0, c.current_memory_words - words_each)

    # ------------------------------------------------------------------ #
    # reporting

    def cost(self) -> CostReport:
        """Snapshot the aggregated cost so far."""
        return aggregate(self.counters)

    def reset(self) -> None:
        """Zero all counters and caches (parameters are kept)."""
        self.counters = [RankCounters() for _ in range(self.p)]
        self.caches = [CacheModel(self.params.cache_words) for _ in range(self.p)]
        self.trace.clear()

    def __repr__(self) -> str:
        return f"BSPMachine(p={self.p}, params={self.params})"
