"""The simulated BSP machine.

A :class:`BSPMachine` owns per-rank cost counters and cache models and is
threaded through every parallel algorithm in this repo.  Algorithms execute
sequentially in Python ("orchestrated SPMD"); the machine records what each
*virtual* rank computed, sent, received, and synchronized on, so the final
:class:`~repro.bsp.counters.CostReport` is the BSP cost the same program
would have on a real machine (max over ranks per quantity).

Disjoint groups that the paper runs concurrently are simply charged on their
own ranks; the max-over-ranks aggregation then reflects the concurrency.

Accounting engines
------------------
Counters live in a pluggable *store*.  The default ``engine="array"`` is a
:class:`~repro.bsp.counters.CounterArray`: numpy arrays with one slot per
rank, so charging a :class:`~repro.bsp.group.RankGroup` is one fancy-indexed
slice op against the group's cached index array — O(1) numpy calls instead
of O(|group|) Python iterations.  ``engine="scalar"`` (also selectable
machine-wide with the ``REPRO_ENGINE`` environment variable) is the
pre-vectorization Python-loop oracle used by the equivalence suite and
``repro bench``; both engines produce bit-identical cost reports.

Batched entry points (:meth:`charge_flops_batch`, :meth:`charge_comm_batch`,
:meth:`charge_comm_matrix`, :meth:`mem_stream_group`) let collectives and
sharded kernels charge a whole group — uniformly, per-rank weighted, or from
a g×g transfer matrix — without building Python dicts in inner loops.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Union

import numpy as np

from repro.bsp.cache import CacheModel
from repro.bsp.counters import CostReport, CounterArray
from repro.bsp.group import RankGroup
from repro.bsp.params import MachineParams
from repro.bsp.trace import Trace
from repro.trace.spans import NULL_SPAN, SpanHandle, SpanRecorder
from repro.util.validation import check_positive_int

if TYPE_CHECKING:
    from repro.bsp.scalar import ScalarCounterStore

#: valid accounting engines (see module docstring)
ENGINES = ("array", "scalar")


class NoFaults:
    """Inert fault layer installed on every machine by default.

    :class:`repro.faults.FaultyMachine` replaces it with a live injector;
    instrumented sites gate on ``machine.faults.enabled``, so the default
    path costs a single attribute read and charges nothing (the bench wall
    and all cost reports are unchanged with faults off).
    """

    __slots__ = ()

    enabled: bool = False
    failed_ranks: frozenset = frozenset()

    def live_group(self, group: "RankGroup") -> "RankGroup":
        return group


#: shared no-op fault layer (cf. NULL_SPAN)
NO_FAULTS = NoFaults()


class NoMetrics:
    """Inert per-rank metrics layer installed on every machine by default.

    A metrics-enabled machine (``BSPMachine(p, metrics=True)`` or
    ``REPRO_METRICS=1``) replaces it with a live
    :class:`repro.metrics.collector.MetricsCollector`; the charging
    primitives gate on ``machine.metrics.enabled``, so the default path
    costs a single attribute read and the pinned trace/cost outputs are
    byte-identical with metrics off.
    """

    __slots__ = ()

    enabled: bool = False

    def reset(self) -> None:
        """No telemetry to clear."""


#: shared no-op metrics layer (cf. NO_FAULTS, NULL_SPAN)
NO_METRICS = NoMetrics()

#: either counter store; both implement the same accumulation interface
CounterStore = Union[CounterArray, "ScalarCounterStore"]


def _make_store(engine: str, p: int):
    if engine == "array":
        return CounterArray(p)
    if engine == "scalar":
        from repro.bsp.scalar import ScalarCounterStore  # late import: avoid cycle

        return ScalarCounterStore(p)
    raise ValueError(f"unknown accounting engine {engine!r}; expected one of {ENGINES}")


class BSPMachine:
    """A ``p``-processor simulated BSP machine with cost accounting."""

    def __init__(
        self,
        p: int,
        params: MachineParams | None = None,
        trace: bool = False,
        engine: str | None = None,
        spans: bool | None = None,
        metrics: bool | None = None,
    ):
        self.p = check_positive_int(p, "p")
        self.params = params or MachineParams()
        self.engine = engine or os.environ.get("REPRO_ENGINE") or "array"
        self.counters = _make_store(self.engine, self.p)
        self.caches: list[CacheModel] = [CacheModel(self.params.cache_words) for _ in range(self.p)]
        self.trace = Trace(enabled=trace)
        if spans is None:
            spans = os.environ.get("REPRO_SPANS", "") not in ("", "0")
        self.spans = SpanRecorder(self.counters, self.params, enabled=spans)
        self.world = RankGroup(tuple(range(self.p)))
        # Fault layer: a shared no-op here; FaultyMachine installs a live
        # injector.  Typed Any because the injector lives in repro.faults,
        # which imports this module.
        self.faults: Any = NO_FAULTS
        # Per-rank metrics layer: same pattern (the collector lives in
        # repro.metrics, which imports this module — hence the late import).
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "") not in ("", "0")
        if metrics:
            from repro.metrics.collector import MetricsCollector

            self.metrics: Any = MetricsCollector(self.p, self.params)
        else:
            self.metrics = NO_METRICS

    # ------------------------------------------------------------------ #
    # validation helpers

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.p:
            raise ValueError(f"rank {rank} out of range [0, {self.p})")
        return rank

    def check_group(self, group: RankGroup) -> RankGroup:
        group.indices()  # build the cache (and cache min/max) once
        if group.min_rank < 0 or group.max_rank >= self.p:
            bad = group.min_rank if group.min_rank < 0 else group.max_rank
            raise ValueError(f"rank {bad} out of range [0, {self.p})")
        return group

    def _resolve(self, ranks: RankGroup | Iterable[int] | int):
        """Normalize a rank spec to ``(idx, unique)``.

        ``idx`` is an int (single rank) or an int64 index array — for a
        :class:`RankGroup` the group's cached array, bounds-checked in O(1).
        ``unique`` is False only for arbitrary iterables, whose possible
        duplicate entries must still accumulate (loop semantics).
        """
        if isinstance(ranks, RankGroup):
            self.check_group(ranks)
            return ranks.indices(), True
        if isinstance(ranks, (int, np.integer)):
            return self._check_rank(int(ranks)), True
        idx = np.fromiter((int(r) for r in ranks), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.p):
            bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
            raise ValueError(f"rank {bad} out of range [0, {self.p})")
        # Arbitrary iterables may repeat a rank; flag so additive charges
        # accumulate per occurrence (np.add.at) as the old loops did.
        unique = idx.size == len(set(idx.tolist()))
        return idx, unique

    # ------------------------------------------------------------------ #
    # charging primitives

    def charge_flops(self, ranks: RankGroup | Iterable[int] | int, flops_each: float) -> None:
        """Charge ``flops_each`` local operations to each listed rank."""
        if flops_each < 0:
            raise ValueError("flops must be nonnegative")
        idx, unique = self._resolve(ranks)
        self.counters.add_flops(idx, flops_each, unique=unique)

    def charge_flops_batch(self, ranks: RankGroup | Iterable[int], flops_per_rank) -> None:
        """Charge rank ``ranks[i]`` exactly ``flops_per_rank[i]`` flops.

        The vector-valued sibling of :meth:`charge_flops`: one numpy op for a
        whole group with heterogeneous (e.g. load-imbalanced) charges.
        """
        idx, unique = self._resolve(ranks)
        amounts = np.asarray(flops_per_rank, dtype=np.float64)
        size = 1 if isinstance(idx, int) else idx.size
        if amounts.ndim != 1 or amounts.size != size:
            raise ValueError(
                f"flops_per_rank must be a 1-D array of length {size}, got shape {amounts.shape}"
            )
        if amounts.size and amounts.min() < 0:
            raise ValueError("flops must be nonnegative")
        self.counters.add_flops(idx, float(amounts[0]) if isinstance(idx, int) else amounts, unique=unique)

    def charge_comm(
        self,
        sends: Mapping[int, float] | None = None,
        recvs: Mapping[int, float] | None = None,
        pairs: Iterable[tuple[int, int, float]] | None = None,
    ) -> None:
        """Charge horizontal word counts: ``sends[r]`` words sent by rank r, etc.

        ``pairs`` optionally carries the exact (src, dst, words) wire
        pattern behind the marginals for the metrics heatmap; it charges
        nothing and is ignored unless metrics are enabled.
        """
        s_idx = s_w = r_idx = r_w = None
        if sends:
            s_idx = np.fromiter(sends.keys(), dtype=np.int64, count=len(sends))
            s_w = np.fromiter(sends.values(), dtype=np.float64, count=len(sends))
            if s_w.min() < 0:
                raise ValueError("sent words must be nonnegative")
            if s_idx.min() < 0 or s_idx.max() >= self.p:
                self._check_rank(int(s_idx.min() if s_idx.min() < 0 else s_idx.max()))
        if recvs:
            r_idx = np.fromiter(recvs.keys(), dtype=np.int64, count=len(recvs))
            r_w = np.fromiter(recvs.values(), dtype=np.float64, count=len(recvs))
            if r_w.min() < 0:
                raise ValueError("received words must be nonnegative")
            if r_idx.min() < 0 or r_idx.max() >= self.p:
                self._check_rank(int(r_idx.min() if r_idx.min() < 0 else r_idx.max()))
        if s_idx is not None or r_idx is not None:
            self.counters.add_comm(s_idx, s_w, r_idx, r_w)
            if self.metrics.enabled:
                self.metrics.on_comm(s_idx, s_w, r_idx, r_w, pairs=pairs)

    def charge_comm_batch(
        self,
        group: RankGroup | Iterable[int],
        sent_each=None,
        recv_each=None,
        pairs=None,
    ) -> None:
        """Charge send/recv words across ``group`` in one vector op.

        ``sent_each``/``recv_each`` are either scalars (the uniform per-rank
        word count — the common collective case) or 1-D arrays aligned with
        the group's rank order.  ``None`` skips that direction.  ``pairs``
        optionally carries the exact zero-diagonal g×g wire pattern (group
        positions) for the metrics heatmap; it charges nothing and is
        ignored unless metrics are enabled.
        """
        if sent_each is None and recv_each is None:
            return
        idx, unique = self._resolve(group)
        if not unique:
            raise ValueError("charge_comm_batch requires distinct ranks (use a RankGroup)")

        def _prep(words, label):
            if words is None:
                return None
            arr_or_scalar = words
            if np.ndim(words) == 0:
                if float(words) < 0:
                    raise ValueError(f"{label} words must be nonnegative")
                return float(words)
            arr = np.asarray(words, dtype=np.float64)
            size = 1 if isinstance(idx, int) else idx.size
            if arr.ndim != 1 or arr.size != size:
                raise ValueError(f"{label} words must be a 1-D array aligned with the group")
            if arr.size and arr.min() < 0:
                raise ValueError(f"{label} words must be nonnegative")
            return arr

        sent = _prep(sent_each, "sent")
        recvd = _prep(recv_each, "received")
        self.counters.add_comm(
            idx if sent is not None else None,
            sent,
            idx if recvd is not None else None,
            recvd,
        )
        if self.metrics.enabled:
            self.metrics.on_comm_batch(idx, sent, recvd, pairs=pairs)

    def charge_comm_matrix(self, group: RankGroup, matrix) -> None:
        """Charge a g×g transfer matrix over ``group`` in one vector op.

        ``matrix[i, j]`` is the word count moved from ``group[i]`` to
        ``group[j]``; diagonal entries are local copies and free.  Row sums
        are charged as sends, column sums as receives — the batched
        equivalent of an ``alltoall`` transfer dict.  Does not end a
        superstep (callers batch, as with :func:`~repro.bsp.collectives.p2p`).
        """
        idx, unique = self._resolve(group)
        if isinstance(idx, int):
            return  # single-rank group: all transfers are local
        if not unique:
            raise ValueError("charge_comm_matrix requires distinct ranks (use a RankGroup)")
        g = idx.size
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.shape != (g, g):
            raise ValueError(f"transfer matrix must be {g}x{g} for this group, got {mat.shape}")
        if mat.size and mat.min() < 0:
            raise ValueError("transfer words must be nonnegative")
        off = mat.copy()
        np.fill_diagonal(off, 0.0)
        sends = off.sum(axis=1)
        recvs = off.sum(axis=0)
        self.counters.add_comm(idx, sends, idx, recvs)
        if self.metrics.enabled:
            self.metrics.on_comm_matrix(idx, off, sends, recvs)

    def superstep(self, group: RankGroup | Iterable[int] | None = None, count: int = 1) -> None:
        """End ``count`` supersteps for the given group (default: all ranks)."""
        if count < 0:
            raise ValueError("superstep count must be nonnegative")
        ranks = self.world if group is None else group
        idx, unique = self._resolve(ranks)
        self.counters.add_supersteps(idx, count, unique=unique)
        if self.metrics.enabled:
            self.metrics.on_superstep(self.counters)
        if self.trace.enabled:
            self.trace.record("superstep", ranks if not isinstance(ranks, RankGroup) else ranks.ranks)

    # ------------------------------------------------------------------ #
    # vertical (memory <-> cache) traffic

    def mem_read(self, rank: int, key: object, words: float) -> None:
        """Rank reads a dataset from memory; charges Q only on a cache miss."""
        moved = self.caches[self._check_rank(rank)].access(key, words)
        self.counters.add_mem_traffic(rank, moved)

    def mem_write(self, rank: int, key: object, words: float) -> None:
        """Rank produces a dataset; charges its write-back to memory."""
        moved = self.caches[self._check_rank(rank)].write(key, words)
        self.counters.add_mem_traffic(rank, moved)

    def mem_stream(self, rank: int, words: float) -> None:
        """Charge uncacheable streaming traffic (always moves)."""
        if words < 0:
            raise ValueError("words must be nonnegative")
        self.counters.add_mem_traffic(self._check_rank(rank), words)

    def mem_stream_group(self, ranks: RankGroup | Iterable[int], words_each: float) -> None:
        """Charge ``words_each`` streamed words to every rank in the group.

        The batched sibling of :meth:`mem_stream` used by sharded kernels.
        """
        if words_each < 0:
            raise ValueError("words must be nonnegative")
        idx, unique = self._resolve(ranks)
        self.counters.add_mem_traffic(idx, words_each, unique=unique)

    def cache_resident(self, rank: int, key: object) -> bool:
        """True iff the dataset is currently in the rank's cache."""
        return self.caches[self._check_rank(rank)].contains(key)

    # ------------------------------------------------------------------ #
    # memory-footprint tracking (high-water mark per rank)

    def note_memory(
        self, ranks: RankGroup | Iterable[int] | int, words_each: float | np.ndarray
    ) -> None:
        """Record that each listed rank currently holds ``words_each`` words.

        ``words_each`` is a scalar or a 1-D array aligned with the rank
        order.  The distribution layer calls this when matrices are created
        or replicated; only the peak matters for the M claims.
        """
        idx, unique = self._resolve(ranks)
        # max-based: duplicates are order-insensitive either way
        self.counters.note_memory(idx, words_each, unique=unique)

    def add_memory(
        self, ranks: RankGroup | Iterable[int] | int, words_each: float | np.ndarray
    ) -> None:
        """Increase each rank's live footprint by ``words_each`` words."""
        idx, unique = self._resolve(ranks)
        if not unique and np.min(words_each) < 0:
            # negative grants: per-occurrence peak order matters, keep the loop
            each = np.broadcast_to(np.asarray(words_each, dtype=np.float64), idx.shape)
            for r, w in zip(idx.tolist(), each.tolist()):
                self.counters.add_memory(r, w)
            return
        self.counters.add_memory(idx, words_each, unique=unique)

    def release_memory(
        self, ranks: RankGroup | Iterable[int] | int, words_each: float | np.ndarray
    ) -> None:
        """Decrease each rank's live footprint (never below zero)."""
        idx, unique = self._resolve(ranks)
        if not unique and np.min(words_each) < 0:
            # negative releases: per-occurrence clamp order matters, keep the loop
            each = np.broadcast_to(np.asarray(words_each, dtype=np.float64), idx.shape)
            for r, w in zip(idx.tolist(), each.tolist()):
                self.counters.release_memory(r, w)
            return
        self.counters.release_memory(idx, words_each, unique=unique)

    # ------------------------------------------------------------------ #
    # span tracing (see repro.trace)

    def span(self, name: str, group: RankGroup | None = None) -> SpanHandle:
        """Open a named cost-attribution span as a context manager.

        Counter deltas charged while the span is innermost are attributed
        to it (see :mod:`repro.trace.spans`).  When span tracing is
        disabled (the default) this returns a shared no-op handle, so
        instrumented hot paths cost two trivial calls.
        """
        if not self.spans.enabled:
            return NULL_SPAN
        return self.spans.handle(name, group)

    # ------------------------------------------------------------------ #
    # reporting

    def cost(self) -> CostReport:
        """Snapshot the aggregated cost so far.

        On a span-enabled machine the report carries the per-span
        breakdown, readable with :meth:`CostReport.by_span`; on a
        metrics-enabled machine it carries the per-rank telemetry
        snapshot, readable with :meth:`CostReport.metrics`.
        """
        report = self.counters.report()
        if self.spans.enabled:
            report = report.with_spans(self.spans.breakdown())
        if self.metrics.enabled:
            report = report.with_metrics(self.metrics.snapshot(self.counters))
        return report

    def reset(self) -> None:
        """Zero all engine state: counters, caches, traces, open spans.

        Both engines reset their stores *in place* (held per-rank views
        stay live), so a reset machine is indistinguishable from a fresh
        one on either engine — see the reset regression tests.
        """
        self.counters.reset()
        self.caches = [CacheModel(self.params.cache_words) for _ in range(self.p)]
        self.trace.clear()
        self.spans.reset()
        self.metrics.reset()

    def __repr__(self) -> str:
        return f"BSPMachine(p={self.p}, params={self.params}, engine={self.engine!r})"
