"""Machine parameters for the BSP(+cache) cost model of Section II.

Parameters mirror the paper's architectural model:

* ``p``      — processors on a fully-connected network (held by the machine),
* ``memory_words``  (M) — words of main memory per processor,
* ``cache_words``   (H) — words of cache per processor,
* ``gamma``  (γ) — time per floating point operation,
* ``beta``   (β) — time to send or receive a word,
* ``nu``     (ν) — time to move a word between cache and memory,
* ``alpha``  (α) — time per (global) synchronization.

The paper's simplifying assumptions are ``γ ≤ β``, ``ν ≤ β`` and
``ν ≤ γ·√H``; :meth:`MachineParams.validate_paper_assumptions` checks them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineParams:
    """Cost-model parameters of a simulated BSP machine.

    The defaults model a commodity cluster in units of one flop
    (γ = 1): network word transfer ~100× a flop, memory word transfer ~10×,
    global synchronization ~10⁵ flops.  Memory and cache default to
    "effectively unbounded" so pure algorithm-counting experiments are not
    perturbed by capacity effects unless a test asks for them.
    """

    gamma: float = 1.0
    beta: float = 100.0
    nu: float = 10.0
    alpha: float = 1.0e5
    memory_words: float = math.inf
    cache_words: float = math.inf

    def __post_init__(self) -> None:
        for name in ("gamma", "beta", "nu", "alpha"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be nonnegative")
        if self.memory_words <= 0 or self.cache_words <= 0:
            raise ValueError("memory_words and cache_words must be positive")

    def validate_paper_assumptions(self) -> None:
        """Raise ValueError if the Section II assumptions do not hold."""
        if self.gamma > self.beta:
            raise ValueError(f"paper assumes gamma <= beta (got {self.gamma} > {self.beta})")
        if self.nu > self.beta:
            raise ValueError(f"paper assumes nu <= beta (got {self.nu} > {self.beta})")
        if math.isfinite(self.cache_words) and self.nu > self.gamma * math.sqrt(self.cache_words):
            raise ValueError("paper assumes nu <= gamma * sqrt(H)")

    def with_cache(self, cache_words: float) -> "MachineParams":
        """Return a copy with a different cache size (for H sweeps)."""
        return replace(self, cache_words=cache_words)

    def with_memory(self, memory_words: float) -> "MachineParams":
        """Return a copy with a different memory size (for M sweeps)."""
        return replace(self, memory_words=memory_words)

    def fingerprint(self) -> str:
        """Stable text form of every cost parameter, for cache keys.

        Uses ``repr`` of the floats so any change — however small — in any
        parameter produces a different key (``repr`` round-trips doubles
        exactly; ``inf`` is its own token).  Two params with equal
        fingerprints are equal dataclasses.
        """
        return (
            f"g={self.gamma!r};b={self.beta!r};nu={self.nu!r};"
            f"a={self.alpha!r};M={self.memory_words!r};H={self.cache_words!r}"
        )

    def time(self, flops: float, words: float, mem_traffic: float, supersteps: float) -> float:
        """Modeled BSP time T = γF + βW + νQ + αS."""
        return (
            self.gamma * flops
            + self.beta * words
            + self.nu * mem_traffic
            + self.alpha * supersteps
        )


#: A machine where only horizontal communication matters (β dominant):
#: useful for isolating the W claims of Table I.
BANDWIDTH_BOUND = MachineParams(gamma=0.0, beta=1.0, nu=0.0, alpha=0.0)

#: A machine where only synchronization matters (α dominant).
LATENCY_BOUND = MachineParams(gamma=0.0, beta=0.0, nu=0.0, alpha=1.0)

#: Rough "massively parallel architecture" regime the paper targets:
#: network bandwidth scarce relative to flops, synchronization very costly.
MASSIVELY_PARALLEL = MachineParams(gamma=1.0, beta=500.0, nu=20.0, alpha=5.0e6)
