"""Order-preserving batched charging: ChargeLog and kernel charge tapes.

The batched chase engines (:mod:`repro.eig.chase_batch`, the CA-SBR batched
path) eliminate per-step Python charging overhead without changing a single
accumulated bit.  Two pieces make that possible:

:class:`ChargeLog`
    An append-only event log bound to a machine.  Callers append the *same*
    (rank-index, amount) charges the per-step code would have issued, in the
    same order; :meth:`ChargeLog.flush` replays each counter field with one
    ``np.add.at`` call.  ``np.add.at`` is unbuffered and applies additions
    in index-array order, so every rank receives the identical sequence of
    IEEE-754 additions the per-step path performs — the flushed cost report
    is byte-identical, on both counter engines (the scalar store loops over
    the same event arrays in the same order).

:class:`KernelTape`
    A memo of the charge sequences emitted by the parallel kernels
    (``rect_qr``, ``carma_matmul``) whose costs depend only on operand
    shapes and the executing group — never on operand values (their leaves
    charge ``mem_stream``/``note_memory``/``charge_comm_batch`` computed
    from shapes; no cache keys are involved).  The first occurrence of a
    (kernel, shape, group) key runs the real kernel once on dummy operands
    against a scratch machine with a recording store; later occurrences
    replay the recorded events into a :class:`ChargeLog` in original order.

Superstep counts are integers (commutative, exact) and memory notes are
running maxima (order-insensitive), so batching those is trivially exact;
the float fields rely on the ordered-replay argument above.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bsp.machine import BSPMachine


def batched_charging_ok(machine: BSPMachine) -> bool:
    """True iff order-preserving batched charging may replace per-step calls.

    Batched paths bypass the machine's per-charge hooks, so they are only
    sound on a plain :class:`BSPMachine` (no verifying subclass) with every
    observer — event trace, span attribution, per-rank metrics, fault
    injection — disabled.  Observed runs fall back to the per-step path,
    which keeps their artifacts byte-identical by construction.
    """
    return (
        type(machine) is BSPMachine
        and not machine.trace.enabled
        and not machine.spans.enabled
        and not machine.metrics.enabled
        and not machine.faults.enabled
    )


def _as_idx(idx) -> np.ndarray:
    if isinstance(idx, (int, np.integer)):
        return np.array([int(idx)], dtype=np.int64)
    return np.asarray(idx, dtype=np.int64)


def _as_amounts(idx: np.ndarray, amount) -> np.ndarray:
    if np.ndim(amount) == 0:
        return np.full(idx.size, float(amount), dtype=np.float64)
    return np.asarray(amount, dtype=np.float64)


class ChargeLog:
    """Append-only charge event log flushed with order-preserving batch adds.

    Method names mirror the :class:`BSPMachine` charging primitives (and are
    recognized as charging calls by the lint callgraph).  ``idx`` arguments
    are resolved rank indices: an ``int`` or an ``int64`` array (e.g. a
    cached :meth:`RankGroup.indices` array).  Bounds are the caller's
    responsibility — the batched engines only charge groups the machine has
    already validated.
    """

    __slots__ = ("machine", "_flops", "_sent", "_recv", "_mem", "_ss", "_note")

    def __init__(self, machine: BSPMachine):
        self.machine = machine
        self._flops: list[tuple[np.ndarray, np.ndarray]] = []
        self._sent: list[tuple[np.ndarray, np.ndarray]] = []
        self._recv: list[tuple[np.ndarray, np.ndarray]] = []
        self._mem: list[tuple[np.ndarray, np.ndarray]] = []
        self._ss: list[tuple[np.ndarray, int]] = []
        self._note: list[tuple[np.ndarray, np.ndarray]] = []

    # -- event append (same call sites/order as the per-step path) ------- #

    def charge_flops(self, idx, amount) -> None:
        i = _as_idx(idx)
        self._flops.append((i, _as_amounts(i, amount)))

    def charge_comm(self, send_idx=None, sent=None, recv_idx=None, recvd=None) -> None:
        if send_idx is not None:
            i = _as_idx(send_idx)
            self._sent.append((i, _as_amounts(i, sent)))
        if recv_idx is not None:
            i = _as_idx(recv_idx)
            self._recv.append((i, _as_amounts(i, recvd)))

    def mem_stream(self, idx, words) -> None:
        i = _as_idx(idx)
        self._mem.append((i, _as_amounts(i, words)))

    def superstep(self, idx, count: int = 1) -> None:
        self._ss.append((_as_idx(idx), int(count)))

    def note_memory(self, idx, words) -> None:
        i = _as_idx(idx)
        self._note.append((i, _as_amounts(i, words)))

    def extend_tape(self, tape: "FlatTape") -> None:
        """Append a pre-flattened kernel tape's per-field event arrays."""
        if tape.flops is not None:
            self._flops.append(tape.flops)
        if tape.sent is not None:
            self._sent.append(tape.sent)
        if tape.recv is not None:
            self._recv.append(tape.recv)
        if tape.mem is not None:
            self._mem.append(tape.mem)
        if tape.ss is not None:
            self._ss.append(tape.ss)
        if tape.note is not None:
            self._note.append(tape.note)

    # -- replay ---------------------------------------------------------- #

    @staticmethod
    def _concat(events: list[tuple[np.ndarray, np.ndarray]]):
        if not events:
            return None, None
        if len(events) == 1:
            return events[0]
        return (
            np.concatenate([e[0] for e in events]),
            np.concatenate([e[1] for e in events]),
        )

    def flush(self) -> None:
        """Apply all pending events and clear the log.

        One ``np.add.at`` per counter field; per-rank addition order equals
        event-append order, which the engines keep equal to per-step order.
        """
        counters = self.machine.counters
        idx, amt = self._concat(self._flops)
        if idx is not None:
            if amt.size and amt.min() < 0:
                raise ValueError("flops must be nonnegative")
            counters.add_flops(idx, amt, unique=False)
        s_idx, s_amt = self._concat(self._sent)
        r_idx, r_amt = self._concat(self._recv)
        if s_idx is not None or r_idx is not None:
            for label, arr in (("sent", s_amt), ("received", r_amt)):
                if arr is not None and arr.size and arr.min() < 0:
                    raise ValueError(f"{label} words must be nonnegative")
            counters.add_comm(s_idx, s_amt, r_idx, r_amt, unique=False)
        idx, amt = self._concat(self._mem)
        if idx is not None:
            if amt.size and amt.min() < 0:
                raise ValueError("words must be nonnegative")
            counters.add_mem_traffic(idx, amt, unique=False)
        if self._ss:
            # integer superstep increments commute: concatenate and add
            idx = np.concatenate([i for i, _ in self._ss])
            cnt = np.concatenate(
                [c if isinstance(c, np.ndarray) else np.full(i.size, c, dtype=np.int64)
                 for i, c in self._ss]
            )
            counters.add_supersteps(idx, cnt, unique=False)
        idx, amt = self._concat(self._note)
        if idx is not None:
            counters.note_memory(idx, amt, unique=False)
        self._flops.clear()
        self._sent.clear()
        self._recv.clear()
        self._mem.clear()
        self._ss.clear()
        self._note.clear()


class _RecordingStore:
    """Counter-store stand-in capturing (field, idx, amount) event sequences."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def add_flops(self, idx, amount, unique: bool = True) -> None:
        self.events.append(("flops", idx, amount))

    def add_comm(self, send_idx=None, sent=None, recv_idx=None, recvd=None,
                 unique: bool = True) -> None:
        self.events.append(("comm", send_idx, sent, recv_idx, recvd))

    def add_supersteps(self, idx, count, unique: bool = True) -> None:
        self.events.append(("ss", idx, int(count)))

    def add_mem_traffic(self, idx, words, unique: bool = True) -> None:
        self.events.append(("mem", idx, words))

    def note_memory(self, idx, words_each, unique: bool = True) -> None:
        self.events.append(("note", idx, words_each))

    def add_memory(self, idx, words_each, unique: bool = True) -> None:
        raise RuntimeError("taped kernels must not call add_memory")

    def release_memory(self, idx, words_each, unique: bool = True) -> None:
        raise RuntimeError("taped kernels must not call release_memory")


class FlatTape:
    """A kernel's charge events flattened to one array pair per field.

    Within one kernel call, per-field event order is preserved by the
    flattening concatenation; cross-field interleaving carries no
    information (each counter field accumulates independently, and taped
    kernels never touch the order-sensitive add/release memory pair), so
    appending a FlatTape to a ChargeLog reproduces the kernel's per-rank
    additions exactly.
    """

    __slots__ = ("flops", "sent", "recv", "mem", "ss", "note")

    def __init__(self, events: list[tuple]):
        log = ChargeLog.__new__(ChargeLog)
        ChargeLog.__init__(log, machine=None)  # type: ignore[arg-type]
        for ev in events:
            kind = ev[0]
            if kind == "flops":
                log.charge_flops(ev[1], ev[2])
            elif kind == "comm":
                log.charge_comm(ev[1], ev[2], ev[3], ev[4])
            elif kind == "ss":
                log.superstep(ev[1], ev[2])
            elif kind == "mem":
                log.mem_stream(ev[1], ev[2])
            else:  # "note"
                log.note_memory(ev[1], ev[2])
        self.flops = ChargeLog._concat(log._flops) if log._flops else None
        self.sent = ChargeLog._concat(log._sent) if log._sent else None
        self.recv = ChargeLog._concat(log._recv) if log._recv else None
        self.mem = ChargeLog._concat(log._mem) if log._mem else None
        self.note = ChargeLog._concat(log._note) if log._note else None
        if log._ss:
            idx = np.concatenate([i for i, _ in log._ss])
            cnt = np.concatenate(
                [np.full(i.size, c, dtype=np.int64) for i, c in log._ss]
            )
            self.ss = (idx, cnt)
        else:
            self.ss = None


# Recorded tapes are reusable across KernelTape instances (and hence across
# band-to-band stages and bench repeats): the key pins everything a kernel's
# charge sequence depends on — machine size, machine parameters, kernel,
# operand shapes, and the executing group's exact rank tuple.
_TAPE_CACHE: dict[tuple, FlatTape] = {}


class KernelTape:
    """Shape-keyed memo of kernel charge sequences, replayed into ChargeLogs."""

    def __init__(self, machine: BSPMachine):
        self.machine = machine
        self._scratch: BSPMachine | None = None
        self._rng = np.random.default_rng(0x5EED)
        self._params_key = repr(machine.params)

    def _record(self, run) -> FlatTape:
        """Run ``run(scratch_machine)`` with a recording store installed."""
        if self._scratch is None:
            self._scratch = BSPMachine(
                self.machine.p, params=self.machine.params,
                trace=False, engine="array", spans=False, metrics=False,
            )
        recorder = _RecordingStore()
        saved = self._scratch.counters
        self._scratch.counters = recorder  # type: ignore[assignment]
        try:
            run(self._scratch)
        finally:
            self._scratch.counters = saved
        return FlatTape(recorder.events)

    def rect_qr(self, log: ChargeLog, m: int, n: int, group: Any) -> None:
        """Replay the charges of ``rect_qr`` on an m×n block over ``group``."""
        key = (self.machine.p, self._params_key, "rect_qr", m, n, group.ranks)
        tape = _TAPE_CACHE.get(key)
        if tape is None:
            from repro.blocks.rect_qr import rect_qr  # late import: avoid cycle

            dummy = self._rng.standard_normal((m, n))
            tape = self._record(
                lambda sm: rect_qr(sm, group, dummy, charge_redistribution=False,
                                   tag="tape")
            )
            _TAPE_CACHE[key] = tape
        log.extend_tape(tape)

    def carma(self, log: ChargeLog, m: int, n: int, k: int, group: Any) -> None:
        """Replay the charges of ``carma_matmul`` (m×n @ n×k) over ``group``."""
        key = (self.machine.p, self._params_key, "carma", m, n, k, group.ranks)
        tape = _TAPE_CACHE.get(key)
        if tape is None:
            from repro.blocks.matmul import carma_matmul  # late import

            a = self._rng.standard_normal((m, n))
            b = self._rng.standard_normal((n, k))
            tape = self._record(
                lambda sm: carma_matmul(sm, group, a, b,
                                        charge_redistribution=False, tag="tape")
            )
            _TAPE_CACHE[key] = tape
        log.extend_tape(tape)
