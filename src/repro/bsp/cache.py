"""Per-rank cache model for vertical (memory↔cache) traffic accounting.

The paper charges vertical communication ``Q`` for data moved between a
rank's main memory and its cache of ``H`` words.  Two situations matter for
the algorithms in this repo:

1. **Streaming kernels** (Lemma III.1 / III.4): a local matmul or QR reads
   its operands from memory once and writes its output once, charging
   ``Q = O(sum of operand sizes)`` (the ``mnk/√H`` term is dropped under the
   paper's assumption ``ν ≤ γ·√H``).
2. **Resident operands** (Lemma III.3, Lemma IV.1): if a replicated operand
   fits in cache (``H`` large enough), repeated multiplications against it
   charge nothing for that operand — this is exactly the mechanism that
   removes the ``ν·(n/b)·n²/p^{2(1−δ)}`` term when ``H > 3n²/p^{2(1−δ)}``.

We model the cache at whole-dataset granularity (the same granularity the
lemmas reason at): an LRU over named datasets with capacity ``H`` words.
``access(key, words)`` returns the number of words that had to be moved in
from memory (0 on a hit) and charges evictions are free (write-back of clean
data is not modeled; dirty write-backs are charged by ``write``).
"""

from __future__ import annotations

import math
from collections import OrderedDict


class CacheModel:
    """LRU cache over named datasets, capacity in words.

    An infinite capacity cache still charges compulsory (first-touch) misses,
    matching the paper's convention that every operand must be read from
    memory at least once.
    """

    def __init__(self, capacity_words: float = math.inf):
        if capacity_words <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = float(capacity_words)
        self._entries: OrderedDict[object, float] = OrderedDict()
        self._used = 0.0

    # -- internal helpers -------------------------------------------------

    def _evict_to_fit(self, words: float) -> None:
        while self._used + words > self.capacity and self._entries:
            _, sz = self._entries.popitem(last=False)
            self._used -= sz

    def _insert(self, key: object, words: float) -> None:
        if words > self.capacity:
            # Dataset larger than cache: streamed through, never resident.
            return
        self._evict_to_fit(words)
        self._entries[key] = words
        self._used += words

    # -- public API --------------------------------------------------------

    def contains(self, key: object) -> bool:
        """True iff the dataset is currently resident."""
        return key in self._entries

    @property
    def used_words(self) -> float:
        return self._used

    def access(self, key: object, words: float) -> float:
        """Read a dataset into cache; return words moved from memory.

        A hit refreshes LRU order and costs 0.  A miss costs ``words`` (and
        may evict older datasets).  A dataset larger than the whole cache is
        streamed: it costs ``words`` on *every* access.

        Re-accessing a key at a *smaller* size is a subset read — a free hit
        (the entry shrinks, releasing capacity).  Re-accessing at a *larger*
        size charges only the grown part (the old prefix is resident) —
        this models the shrinking trailing matrix and the growing U/V
        aggregates of Algorithm IV.1 at the granularity its analysis uses.
        """
        if words < 0:
            raise ValueError("words must be nonnegative")
        if key in self._entries:
            old = self._entries[key]
            if words <= old:
                self._entries[key] = words
                self._used -= old - words
                self._entries.move_to_end(key)
                return 0.0
            # Growth: charge the delta; the whole (new) entry must now fit.
            delta = words - old
            self._used -= self._entries.pop(key)
            if words > self.capacity:
                return delta
            self._insert(key, words)
            return delta
        self._insert(key, words)
        return words

    def write(self, key: object, words: float) -> float:
        """Produce/overwrite a dataset; return words written back to memory.

        We charge the write-back immediately (write-through at dataset
        granularity), and the produced data is left resident so an immediate
        re-read is free.
        """
        if words < 0:
            raise ValueError("words must be nonnegative")
        if key in self._entries:
            self._used -= self._entries.pop(key)
        self._insert(key, words)
        return words

    def invalidate(self, key: object) -> None:
        """Drop a dataset from the cache (e.g. its owner freed it)."""
        if key in self._entries:
            self._used -= self._entries.pop(key)

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0
