"""Optional event trace of a BSP run.

When enabled on a machine, every communication primitive and kernel records
an event; tests use the trace to assert on communication *patterns* (not
just totals), and the Figure 1 / Figure 2 reproductions use it to recover
the structure diagrams of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded operation."""

    kind: str  # e.g. "bcast", "matmul", "qr", "superstep"
    group: tuple[int, ...]  # participating ranks
    words: float = 0.0
    flops: float = 0.0
    tag: str = ""  # free-form label supplied by the algorithm
    meta: dict[str, Any] = field(default_factory=dict, compare=False)


class Trace:
    """Append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self,
        kind: str,
        group: Iterable[int],
        words: float = 0.0,
        flops: float = 0.0,
        tag: str = "",
        **meta: Any,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(kind=kind, group=tuple(group), words=words, flops=flops, tag=tag, meta=dict(meta))
        )

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def with_tag(self, tag: str) -> list[TraceEvent]:
        return [e for e in self.events if e.tag == tag]

    def tags(self) -> list[str]:
        """Distinct non-empty tags in recording order."""
        seen: dict[str, None] = {}
        for e in self.events:
            if e.tag and e.tag not in seen:
                seen[e.tag] = None
        return list(seen)

    def clear(self) -> None:
        self.events.clear()
