"""Simulated Bulk Synchronous Parallel (BSP) machine with cost accounting.

This package substitutes for the paper's abstract machine (Section II): a
fully-connected network of ``p`` processors, each with a main memory of ``M``
words and a cache of ``H`` words.  Algorithms built on top of it execute with
real numpy data while the machine *measures* the four quantities the paper
bounds:

* ``F`` — local floating point operations,
* ``W`` — words moved between processors (sent + received, per rank),
* ``Q`` — words moved between main memory and cache,
* ``S`` — supersteps (synchronizations).

The modeled BSP execution time is ``T = γ·F + β·W + ν·Q + α·S`` where the
aggregates take the per-superstep maximum over ranks; because all algorithms
in this repo are load balanced up to constant factors, we track per-rank
running totals and report the max over ranks (identical asymptotics, far
cheaper to collect).
"""

from repro.bsp.params import MachineParams
from repro.bsp.counters import CostReport, CounterArray, RankCounters, RankSlot
from repro.bsp.cache import CacheModel
from repro.bsp.machine import BSPMachine, ENGINES
from repro.bsp.group import RankGroup
from repro.bsp.profile import Profiler
from repro.bsp.scalar import ScalarCounterStore
from repro.bsp import collectives

__all__ = [
    "MachineParams",
    "CostReport",
    "CounterArray",
    "RankCounters",
    "RankSlot",
    "ScalarCounterStore",
    "CacheModel",
    "BSPMachine",
    "ENGINES",
    "RankGroup",
    "Profiler",
    "collectives",
]
