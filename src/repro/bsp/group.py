"""Processor groups: ordered subsets of a machine's ranks.

The paper repeatedly hands disjoint subsets of processors to concurrent
sub-computations (e.g. the ``r`` recursive QR calls in Algorithm III.2, or
the bulge-chasing groups ``Π̂_j`` of Algorithm IV.2).  A :class:`RankGroup`
is an immutable ordered tuple of global rank ids with splitting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.intlog import split_evenly, chunk_offsets


@dataclass(frozen=True)
class RankGroup:
    """An ordered subset of machine ranks.

    Groups memoize their numpy index array (:meth:`indices`) and their
    rank→position map, so the vectorized accounting engine can charge a whole
    group as one O(1) numpy slice op instead of an O(|group|) Python loop.
    Both caches are lazily built once per group object and never invalidated
    (the dataclass is frozen, so the rank tuple cannot change).
    """

    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError("RankGroup must be non-empty")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("RankGroup ranks must be distinct")

    def indices(self) -> np.ndarray:
        """Cached, read-only ``int64`` index array of the group's ranks.

        The same array object is returned on every call; the accounting
        engine uses it for fancy-indexed charges without re-materializing
        the tuple.  ``min_rank``/``max_rank`` are cached alongside so bounds
        checks against a machine's ``p`` are O(1).
        """
        idx = self.__dict__.get("_indices")
        if idx is None:
            idx = np.asarray(self.ranks, dtype=np.int64)
            idx.setflags(write=False)
            object.__setattr__(self, "_indices", idx)
            object.__setattr__(self, "_min_rank", int(idx.min()))
            object.__setattr__(self, "_max_rank", int(idx.max()))
        return idx

    @property
    def min_rank(self) -> int:
        """Smallest rank id in the group (cached with :meth:`indices`)."""
        if "_min_rank" not in self.__dict__:
            self.indices()
        return self.__dict__["_min_rank"]

    @property
    def max_rank(self) -> int:
        """Largest rank id in the group (cached with :meth:`indices`)."""
        if "_max_rank" not in self.__dict__:
            self.indices()
        return self.__dict__["_max_rank"]

    def _positions(self) -> dict[int, int]:
        pos = self.__dict__.get("_pos")
        if pos is None:
            pos = {r: i for i, r in enumerate(self.ranks)}
            object.__setattr__(self, "_pos", pos)
        return pos

    @staticmethod
    def contiguous(start: int, count: int) -> "RankGroup":
        """Group of ranks ``start, start+1, ..., start+count-1``."""
        if count <= 0:
            raise ValueError("count must be positive")
        return RankGroup(tuple(range(start, start + count)))

    @property
    def size(self) -> int:
        return len(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)

    def __iter__(self):
        return iter(self.ranks)

    def __contains__(self, rank: int) -> bool:
        return rank in self._positions()

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return RankGroup(self.ranks[idx])
        return self.ranks[idx]

    @property
    def root(self) -> int:
        """Conventional root rank of the group (first member)."""
        return self.ranks[0]

    def split(self, parts: int) -> list["RankGroup"]:
        """Partition into ``parts`` contiguous subgroups of near-equal size.

        Raises if the group is smaller than ``parts`` (every subgroup must be
        non-empty — the paper's algorithms guarantee this by construction).
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        if parts > self.size:
            raise ValueError(f"cannot split group of {self.size} into {parts} non-empty parts")
        sizes = split_evenly(self.size, parts)
        offs = chunk_offsets(sizes)
        return [RankGroup(self.ranks[o : o + s]) for o, s in zip(offs, sizes)]

    def take(self, count: int) -> "RankGroup":
        """First ``count`` ranks of the group (``Π[1 : count]`` in the paper)."""
        if not 1 <= count <= self.size:
            raise ValueError(f"take count must be in [1, {self.size}], got {count}")
        return RankGroup(self.ranks[:count])

    def index_of(self, rank: int) -> int:
        """Position of a global rank within this group."""
        try:
            return self._positions()[rank]
        except KeyError:
            raise ValueError(f"rank {rank} is not in group") from None
