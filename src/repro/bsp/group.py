"""Processor groups: ordered subsets of a machine's ranks.

The paper repeatedly hands disjoint subsets of processors to concurrent
sub-computations (e.g. the ``r`` recursive QR calls in Algorithm III.2, or
the bulge-chasing groups ``Π̂_j`` of Algorithm IV.2).  A :class:`RankGroup`
is an immutable ordered tuple of global rank ids with splitting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.intlog import split_evenly, chunk_offsets


@dataclass(frozen=True)
class RankGroup:
    """An ordered subset of machine ranks."""

    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError("RankGroup must be non-empty")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("RankGroup ranks must be distinct")

    @staticmethod
    def contiguous(start: int, count: int) -> "RankGroup":
        """Group of ranks ``start, start+1, ..., start+count-1``."""
        if count <= 0:
            raise ValueError("count must be positive")
        return RankGroup(tuple(range(start, start + count)))

    @property
    def size(self) -> int:
        return len(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)

    def __iter__(self):
        return iter(self.ranks)

    def __contains__(self, rank: int) -> bool:
        return rank in self.ranks

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return RankGroup(self.ranks[idx])
        return self.ranks[idx]

    @property
    def root(self) -> int:
        """Conventional root rank of the group (first member)."""
        return self.ranks[0]

    def split(self, parts: int) -> list["RankGroup"]:
        """Partition into ``parts`` contiguous subgroups of near-equal size.

        Raises if the group is smaller than ``parts`` (every subgroup must be
        non-empty — the paper's algorithms guarantee this by construction).
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        if parts > self.size:
            raise ValueError(f"cannot split group of {self.size} into {parts} non-empty parts")
        sizes = split_evenly(self.size, parts)
        offs = chunk_offsets(sizes)
        return [RankGroup(self.ranks[o : o + s]) for o, s in zip(offs, sizes)]

    def take(self, count: int) -> "RankGroup":
        """First ``count`` ranks of the group (``Π[1 : count]`` in the paper)."""
        if not 1 <= count <= self.size:
            raise ValueError(f"take count must be in [1, {self.size}], got {count}")
        return RankGroup(self.ranks[:count])

    def index_of(self, rank: int) -> int:
        """Position of a global rank within this group."""
        return self.ranks.index(rank)
