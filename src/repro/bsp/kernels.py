"""Local (single-rank) compute kernels with F and Q accounting.

These wrap the sequential numerics so that every local operation a virtual
rank performs charges:

* flops per the standard dense linear-algebra counts, and
* vertical traffic per Lemma III.1 (matmul: ``Q = O(mn + mk + nk)``) and
  Lemma III.4 (QR: ``Q = O(mn)``) — the paper drops the ``mnk/√H`` term by
  assuming ``ν ≤ γ·√H``, and so do we.

Operands may carry cache *keys*; a keyed operand that is already resident in
the rank's cache (e.g. the replicated ``A`` blocks of Algorithm III.1 /
Lemma III.3) charges no read traffic.  Unkeyed operands are streamed.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.group import RankGroup
from repro.bsp.machine import BSPMachine


def _span_group(ranks) -> RankGroup | None:
    """Rank spec as a RankGroup for span labelling, when it is one."""
    return ranks if isinstance(ranks, RankGroup) else None


def _read(machine: BSPMachine, rank: int, array: np.ndarray, key: object | None) -> None:
    words = float(array.size)
    if key is None:
        machine.mem_stream(rank, words)
    else:
        machine.mem_read(rank, key, words)


def _write(machine: BSPMachine, rank: int, array: np.ndarray, key: object | None) -> None:
    words = float(array.size)
    if key is None:
        machine.mem_stream(rank, words)
    else:
        machine.mem_write(rank, key, words)


def matmul_flops(m: int, n: int, k: int) -> float:
    """Flop count of an m×n by n×k product (multiply + add)."""
    return 2.0 * m * n * k


def qr_flops(m: int, n: int) -> float:
    """Flop count of Householder QR of an m×n matrix (m >= n)."""
    return 2.0 * m * n * n - (2.0 / 3.0) * n**3


def matmul_flops_arr(m: np.ndarray, n: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Element-wise :func:`matmul_flops` over float64 dimension arrays.

    Bit-equal to the scalar form: the products are exact integers in
    float64, so association order cannot change the result.
    """
    return 2.0 * m * n * k


def qr_flops_arr(m: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Element-wise :func:`qr_flops` over float64 dimension arrays.

    Bit-equal to the scalar form for the same reason as
    :func:`matmul_flops_arr` (both terms exact before the one subtraction).
    """
    return 2.0 * m * n * n - (2.0 / 3.0) * n**3


def local_matmul(
    machine: BSPMachine,
    rank: int,
    a: np.ndarray,
    b: np.ndarray,
    a_key: object | None = None,
    b_key: object | None = None,
    out_key: object | None = None,
    accumulate: np.ndarray | None = None,
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> np.ndarray:
    """Multiply two local matrices on ``rank``; returns the product.

    ``accumulate`` adds the product into an existing array (charged as a
    read-modify-write of the output).
    """
    am = a.T if transpose_a else a
    bm = b.T if transpose_b else b
    m, n = am.shape
    n2, k = bm.shape
    if n != n2:
        raise ValueError(f"inner dimensions mismatch: {am.shape} @ {bm.shape}")
    c = am @ bm
    machine.charge_flops(rank, matmul_flops(m, n, k))
    _read(machine, rank, a, a_key)
    _read(machine, rank, b, b_key)
    if accumulate is not None:
        accumulate += c
        machine.mem_stream(rank, float(c.size))  # read old output
        _write(machine, rank, accumulate, out_key)
        machine.charge_flops(rank, float(c.size))  # the additions
        return accumulate
    _write(machine, rank, c, out_key)
    return c


def local_qr(
    machine: BSPMachine,
    rank: int,
    a: np.ndarray,
    a_key: object | None = None,
    mode: str = "reduced",
) -> tuple[np.ndarray, np.ndarray]:
    """Householder QR of a local m×n matrix (m >= n) on ``rank``.

    Returns ``(Q, R)`` with Q of shape m×n and R upper-triangular n×n.
    The numerics use :func:`repro.linalg.qr.householder_qr`; cost is charged
    per Lemma III.4 (sequential CAQR attains Q = O(mn)).
    """
    from repro.linalg.qr import householder_qr  # late import: avoid cycle

    m, n = a.shape
    if m < n:
        raise ValueError(f"local_qr requires m >= n, got {a.shape}")
    q, r = householder_qr(a, mode=mode)
    machine.charge_flops(rank, qr_flops(m, n))
    _read(machine, rank, a, a_key)
    machine.mem_stream(rank, float(q.size + r.size))  # write Q and R
    return q, r


def local_qr_householder(
    machine: BSPMachine,
    rank: int,
    a: np.ndarray,
    a_key: object | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder-form QR on ``rank``: returns ``(U, T, R)``.

    ``Q = I − U T Uᵀ`` with U unit-lower-trapezoidal m×n and T upper-
    triangular n×n (compact WY form), the representation the eigensolvers
    aggregate (Section IV).
    """
    from repro.linalg.householder import compact_wy_qr  # late import

    m, n = a.shape
    if m < n:
        raise ValueError(f"local_qr_householder requires m >= n, got {a.shape}")
    u, t, r = compact_wy_qr(a)
    machine.charge_flops(rank, qr_flops(m, n) + 2.0 * m * n * n)  # QR + forming T
    _read(machine, rank, a, a_key)
    machine.mem_stream(rank, float(u.size + t.size + r.size))
    return u, t, r


def local_lu_nopivot(
    machine: BSPMachine,
    rank: int,
    a: np.ndarray,
    a_key: object | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Non-pivoted LU of a local square matrix (used by Householder
    reconstruction, Corollary III.7); returns unit-lower L and upper U."""
    from repro.linalg.lu import lu_nopivot  # late import

    n = a.shape[0]
    lo, up = lu_nopivot(a)
    machine.charge_flops(rank, (2.0 / 3.0) * n**3)
    _read(machine, rank, a, a_key)
    machine.mem_stream(rank, float(lo.size + up.size))
    return lo, up


def local_elementwise(machine: BSPMachine, rank: int, arrays: list[np.ndarray], flops_per_elem: float = 1.0) -> None:
    """Charge an elementwise pass over the given arrays (adds, scalings...)."""
    words = float(sum(a.size for a in arrays))
    machine.charge_flops(rank, flops_per_elem * words)
    machine.mem_stream(rank, words)


# ---------------------------------------------------------------------- #
# group-sharded kernels
#
# The one-stage baselines (pdsytrd structure) split each trailing-matrix
# operation evenly over a rank group: every rank computes its 1/g share and
# the group reassembles via the collectives the caller charges.  These
# kernels perform the numerics once (orchestrated simulation) and charge
# each group member its share of flops and streaming traffic, so callers
# never touch raw numpy math.


def _group_size(ranks) -> int:
    size = getattr(ranks, "size", None)
    return int(size) if size is not None else len(tuple(ranks))


def sharded_matvec(
    machine: BSPMachine,
    ranks,
    a: np.ndarray,
    v: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """``y = scale·(A @ v)`` with A's rows sharded over the group.

    Charges each rank 2mn/g flops and mn/g streamed words (A is read once,
    split by rows; v is lower-order).
    """
    m, n = a.shape
    g = _group_size(ranks)
    y = scale * (a @ v)
    with machine.span("sharded_matvec", group=_span_group(ranks)):
        machine.charge_flops(ranks, 2.0 * m * n / g)
        machine.mem_stream_group(ranks, m * n / g)
    if machine.faults.enabled:
        y = machine.faults.corrupt_output(y, "sharded_matvec")
    return y


def sharded_dot(machine: BSPMachine, ranks, x: np.ndarray, y: np.ndarray) -> float:
    """Inner product with the vectors sharded over the group.

    Each rank computes its 2n/g-flop partial; the caller charges the
    allreduce that combines the partials.
    """
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    g = _group_size(ranks)
    n = float(x.size)
    with machine.span("sharded_dot", group=_span_group(ranks)):
        machine.charge_flops(ranks, 2.0 * n / g)
        machine.mem_stream_group(ranks, 2.0 * n / g)
    return float(np.dot(x.ravel(), y.ravel()))


def sharded_axpy(machine: BSPMachine, ranks, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y += alpha·x`` in place, sharded over the group (2n/g flops each)."""
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    g = _group_size(ranks)
    n = float(x.size)
    y += alpha * x
    with machine.span("sharded_axpy", group=_span_group(ranks)):
        machine.charge_flops(ranks, 2.0 * n / g)
        machine.mem_stream_group(ranks, 2.0 * n / g)
    if machine.faults.enabled:
        machine.faults.corrupt_output(y, "sharded_axpy")
    return y


def sharded_rank2_update(machine: BSPMachine, ranks, a: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Symmetric rank-2 update ``A -= v wᵀ + w vᵀ`` in place, sharded.

    4mn flops total (two multiplies + two adds per element), mn streamed
    words, both split over the group — the trailing update of one
    Householder column in the ScaLAPACK-like baseline.
    """
    m, n = a.shape
    if v.shape != (m,) or w.shape != (n,):
        raise ValueError(f"rank-2 update shape mismatch: A {a.shape}, v {v.shape}, w {w.shape}")
    g = _group_size(ranks)
    a -= np.outer(v, w) + np.outer(w, v)
    with machine.span("sharded_rank2_update", group=_span_group(ranks)):
        machine.charge_flops(ranks, 4.0 * m * n / g)
        machine.mem_stream_group(ranks, m * n / g)
    if machine.faults.enabled:
        machine.faults.corrupt_output(a, "sharded_rank2_update")
    return a
