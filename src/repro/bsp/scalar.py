"""Scalar (pre-vectorization) counter store — the accounting oracle.

:class:`ScalarCounterStore` implements the same accumulation interface as
:class:`~repro.bsp.counters.CounterArray` but keeps one Python
:class:`~repro.bsp.counters.RankCounters` object per rank and updates them
with plain loops, exactly as the machine did before the engine was
vectorized.  It exists so the fast path stays falsifiable:

* ``BSPMachine(p, engine="scalar")`` (or ``REPRO_ENGINE=scalar`` in the
  environment) runs any workload on the oracle;
* the equivalence suite (``tests/test_engine_equivalence.py``) and
  ``repro bench`` assert that both engines produce bit-identical
  :class:`~repro.bsp.counters.CostReport`s — identical maxima, totals *and*
  per-rank values, not approximately equal ones.

Bit-identity holds because all charged *values* are computed upstream of the
store; both stores then apply the same IEEE-754 additions per rank in the
same order.
"""

from __future__ import annotations

import numpy as np

from repro.bsp.counters import COUNTER_FIELDS, CostReport, RankCounters, aggregate


def _iter_idx(idx):
    """Iterate an index spec (int or int64 ndarray) as Python ints."""
    if isinstance(idx, (int, np.integer)):
        return (int(idx),)
    return (int(i) for i in idx)


def _amounts(idx, amount):
    """Pair each index with its amount (scalar broadcasts)."""
    if np.ndim(amount) == 0:
        a = float(amount)
        return ((i, a) for i in _iter_idx(idx))
    return ((int(i), float(w)) for i, w in zip(idx, amount))


class ScalarCounterStore:
    """List-of-``RankCounters`` store updated by per-rank Python loops."""

    def __init__(self, p: int):
        self.p = p
        self._counters: list[RankCounters] = [RankCounters() for _ in range(p)]

    # -- sequence protocol ---------------------------------------------- #

    def __len__(self) -> int:
        return self.p

    def __getitem__(self, rank: int) -> RankCounters:
        return self._counters[rank]

    def __iter__(self):
        return iter(self._counters)

    # -- accumulation primitives ---------------------------------------- #

    def add_flops(self, idx, amount, unique: bool = True) -> None:
        for i, a in _amounts(idx, amount):
            self._counters[i].flops += a

    def add_comm(self, send_idx=None, sent=None, recv_idx=None, recvd=None,
                 unique: bool = True) -> None:
        # the loop accumulates duplicate indices regardless, so ``unique``
        # (the CounterArray np.add.at switch) changes nothing here
        if send_idx is not None:
            for i, w in _amounts(send_idx, sent):
                self._counters[i].words_sent += w
        if recv_idx is not None:
            for i, w in _amounts(recv_idx, recvd):
                self._counters[i].words_recv += w

    def add_supersteps(self, idx, count, unique: bool = True) -> None:
        if np.ndim(count) == 0:
            for i in _iter_idx(idx):
                self._counters[i].supersteps += count
        else:
            # per-element counts (batched flush): same zip contract as the
            # float fields' _amounts
            for i, c in zip(_iter_idx(idx), count):
                self._counters[i].supersteps += int(c)

    def add_mem_traffic(self, idx, words, unique: bool = True) -> None:
        for i, w in _amounts(idx, words):
            self._counters[i].mem_traffic += w

    def note_memory(self, idx, words_each, unique: bool = True) -> None:
        for i, w in _amounts(idx, words_each):
            c = self._counters[i]
            c.current_memory_words = max(c.current_memory_words, w)
            c.peak_memory_words = max(c.peak_memory_words, c.current_memory_words)

    def add_memory(self, idx, words_each, unique: bool = True) -> None:
        for i, w in _amounts(idx, words_each):
            c = self._counters[i]
            c.current_memory_words += w
            c.peak_memory_words = max(c.peak_memory_words, c.current_memory_words)

    def release_memory(self, idx, words_each, unique: bool = True) -> None:
        for i, w in _amounts(idx, words_each):
            c = self._counters[i]
            c.current_memory_words = max(0.0, c.current_memory_words - w)

    # -- snapshots and reports ------------------------------------------ #

    def field_array(self, name: str) -> np.ndarray:
        """Materialize one counter quantity as a numpy array (O(p) loop)."""
        if name not in COUNTER_FIELDS:
            raise ValueError(f"unknown counter field {name!r}")
        dtype = np.int64 if name == "supersteps" else np.float64
        return np.array([getattr(c, name) for c in self._counters], dtype=dtype)

    def snapshot(self) -> "ScalarCounterStore":
        out = ScalarCounterStore.__new__(ScalarCounterStore)
        out.p = self.p
        out._counters = [c.copy() for c in self._counters]
        return out

    def reset(self) -> None:
        # Zero IN PLACE, mirroring CounterArray.reset()'s fill(0): replacing
        # the list (the old behavior) left previously handed-out
        # RankCounters references pointing at pre-reset state, so code
        # holding a per-rank view diverged between the engines after a
        # mid-run reset.
        for c in self._counters:
            c.flops = 0.0
            c.words_sent = 0.0
            c.words_recv = 0.0
            c.mem_traffic = 0.0
            c.supersteps = 0
            c.peak_memory_words = 0.0
            c.current_memory_words = 0.0

    def report(self) -> CostReport:
        return aggregate(self._counters)

    def __repr__(self) -> str:
        return f"ScalarCounterStore(p={self.p})"
