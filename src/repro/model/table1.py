"""Table I: asymptotic communication costs of the four eigensolvers.

Renders the paper's table symbolically and evaluates every row numerically
for concrete (n, p, δ), so the benchmark can print predicted-vs-measured
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.costs import (
    AsymptoticCost,
    ca_sbr_eigensolver_cost,
    eigensolver_2p5d_cost,
    elpa_cost,
    scalapack_cost,
)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I: symbolic cost strings + a numeric evaluator."""

    algorithm: str
    w_formula: str
    q_formula: str
    s_formula: str
    evaluate: object  # callable (n, p, delta) -> AsymptoticCost


TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row(
        "ScaLAPACK",
        "n^2/sqrt(p)",
        "n^3/p",
        "n log p",
        lambda n, p, delta=0.5: scalapack_cost(n, p, cache_words=0.0),
    ),
    Table1Row(
        "ELPA",
        "n^2/sqrt(p)",
        "-",
        "n log p",
        lambda n, p, delta=0.5: elpa_cost(n, p),
    ),
    Table1Row(
        "CA-SBR",
        "n^2/sqrt(p)",
        "n^2 log n/sqrt(p)",
        "sqrt(p)(log^2 p + log n)",
        lambda n, p, delta=0.5: ca_sbr_eigensolver_cost(n, p),
    ),
    Table1Row(
        "Theorem IV.4",
        "n^2/p^delta",
        "n^2 log p/p^delta",
        "p^delta log^2 p",
        lambda n, p, delta=0.5: eigensolver_2p5d_cost(n, p, delta),
    ),
)


def render_table1() -> str:
    """The paper's Table I (symbolic), as fixed-width text."""
    header = f"{'Algorithm':<14} {'W (beta)':<20} {'Q (nu)':<22} {'S (alpha)':<26}"
    rule = "-" * len(header)
    lines = [header, rule]
    for row in TABLE1_ROWS:
        lines.append(f"{row.algorithm:<14} {row.w_formula:<20} {row.q_formula:<22} {row.s_formula:<26}")
    lines.append(rule)
    lines.append("All variants require O(n^3/p) computation; delta in [1/2, 2/3].")
    return "\n".join(lines)


def table1_numeric(n: int, p: int, delta: float = 2.0 / 3.0) -> dict[str, AsymptoticCost]:
    """Evaluate every Table I row at concrete parameters."""
    return {row.algorithm: row.evaluate(n, p, delta) for row in TABLE1_ROWS}


def table1_ratios(n: int, p: int, delta: float = 2.0 / 3.0) -> dict[str, float]:
    """Predicted W advantage of Theorem IV.4 over each baseline (= √c)."""
    rows = table1_numeric(n, p, delta)
    ours = rows["Theorem IV.4"].W
    return {
        name: cost.W / ours for name, cost in rows.items() if name != "Theorem IV.4"
    }
