"""Closed-form asymptotic cost models and Table I generation.

:mod:`repro.model.costs` encodes every cost bound stated in the paper as an
explicit function of (n, p, δ, …); :mod:`repro.model.table1` renders Table I
and evaluates it numerically; :mod:`repro.model.tuning` picks (δ, c, b) for
given machine parameters; :mod:`repro.model.bounds` holds the communication
lower bounds the paper cites.
"""

from repro.model.costs import (
    AsymptoticCost,
    carma_cost,
    ca_sbr_eigensolver_cost,
    band_to_band_cost,
    elpa_cost,
    eigensolver_2p5d_cost,
    full_to_band_cost,
    rect_qr_cost,
    scalapack_cost,
    square_qr_cost,
    streaming_mm_cost,
)
from repro.model.table1 import TABLE1_ROWS, render_table1, table1_numeric
from repro.model.tuning import best_delta, predicted_time, tuning_table
from repro.model.bounds import (
    memory_dependent_lower_bound,
    synchronization_tradeoff_lower_bound,
)
from repro.model.analysis import (
    crossover_p,
    dominant_component,
    speedup_curve,
    time_breakdown,
)

__all__ = [
    "AsymptoticCost",
    "carma_cost",
    "streaming_mm_cost",
    "rect_qr_cost",
    "square_qr_cost",
    "full_to_band_cost",
    "band_to_band_cost",
    "eigensolver_2p5d_cost",
    "scalapack_cost",
    "elpa_cost",
    "ca_sbr_eigensolver_cost",
    "TABLE1_ROWS",
    "render_table1",
    "table1_numeric",
    "best_delta",
    "predicted_time",
    "tuning_table",
    "memory_dependent_lower_bound",
    "synchronization_tradeoff_lower_bound",
    "crossover_p",
    "dominant_component",
    "speedup_curve",
    "time_breakdown",
]
