"""Parameter tuning: choose (δ, c, b) for a machine.

Section V: "the flexibility offered by the parameter c increases the
dimensionality of the tuning space" — large c pays off exactly when the
machine is bandwidth-bound (β ≫ γ) and memory is plentiful.  This module
evaluates Theorem IV.4's cost over the feasible δ range and picks the
minimizer, respecting the per-rank memory limit M ≥ n²/p^{2(1−δ)}.
"""

from __future__ import annotations

import math

from repro.bsp.params import MachineParams
from repro.model.costs import delta_to_c, eigensolver_2p5d_cost


def delta_grid(samples: int, lo: float = 0.5, hi: float = 2.0 / 3.0) -> list[float]:
    """``samples`` strictly increasing δ values with the endpoints pinned.

    The first and last entries are ``lo`` and ``hi`` *exactly* — not the
    lerp ``lo + (hi - lo) * i / (samples - 1)``, whose float rounding can
    land the last sample just off 2/3 and silently exclude the paper's
    minimum-W endpoint from every sweep.  Interior points interpolate.
    """
    if samples < 2:
        return [lo]
    grid = [lo + (hi - lo) * i / (samples - 1) for i in range(samples)]
    grid[0], grid[-1] = lo, hi
    return grid


def feasible_deltas(n: int, p: int, memory_words: float, samples: int = 33) -> list[float]:
    """δ values in [1/2, 2/3] whose memory footprint fits ``memory_words``."""
    return [
        d
        for d in delta_grid(samples)
        if n * n / p ** (2.0 * (1.0 - d)) <= memory_words
    ]


def predicted_time(n: int, p: int, delta: float, params: MachineParams) -> float:
    """Modeled execution time of Theorem IV.4 at the given δ."""
    return eigensolver_2p5d_cost(n, p, delta, cache_words=params.cache_words).time(params)


def best_delta(n: int, p: int, params: MachineParams) -> tuple[float, float]:
    """Return (δ*, predicted time) minimizing the modeled cost.

    Raises ``ValueError`` if even δ = 1/2 (the 2-D footprint n²/p) does not
    fit in memory — the problem is simply too large for the machine.
    """
    cands = feasible_deltas(n, p, params.memory_words)
    if not cands:
        raise ValueError(
            f"n={n} does not fit: even c=1 needs {n * n / p:.3g} words/rank, "
            f"machine has {params.memory_words:.3g}"
        )
    # single evaluation per candidate; ties keep the first (smallest) δ
    t_best, best = min((predicted_time(n, p, d, params), d) for d in cands)
    return best, t_best


def replan_delta(n: int, p: int, params: MachineParams) -> float:
    """δ for a machine *degraded* to ``p`` surviving ranks (fault recovery).

    A total variant of :func:`best_delta`: mid-run recovery must come back
    with *some* schedule, so an infeasible memory model or a single
    survivor degrades to δ = 1/2 (the 2-D minimum-memory point) instead of
    raising.
    """
    if p <= 1:
        return 0.5
    try:
        return best_delta(n, p, params)[0]
    except ValueError:
        return 0.5


def tuning_table(n: int, p: int, params: MachineParams, samples: int = 9) -> list[dict]:
    """Sweep δ and report (δ, c, memory, predicted component times)."""
    rows = []
    for d in delta_grid(samples):
        cost = eigensolver_2p5d_cost(n, p, d, cache_words=params.cache_words)
        rows.append(
            {
                "delta": d,
                "c": delta_to_c(p, d),
                "memory_words": cost.M,
                "fits": cost.M <= params.memory_words,
                "W": cost.W,
                "S": cost.S,
                "time": cost.time(params),
            }
        )
    return rows


def bandwidth_bound_speedup(p: int, delta: float = 2.0 / 3.0) -> float:
    """Ideal W speedup of the 2.5D solver over 2-D baselines: √c = p^{δ−1/2}."""
    return math.sqrt(delta_to_c(p, delta))


def tuning_signature(samples: int = 33) -> dict:
    """Everything a memoized :func:`best_delta` result depends on besides
    its ``(n, p, params)`` key.

    The persistent δ-autotuning cache (:mod:`repro.serve.cache`)
    fingerprints this document: if the δ grid, its sample count, or the
    lemma registry backing the cost expressions changes between versions
    of this repo, every cached plan is stale and must be recomputed.  The
    lemma leading terms are included at both δ endpoints so a change in
    any stage's cost exponents shows up even when the closed-form
    constants stay put.
    """
    from repro.model.costs import LEMMA_STAGES, lemma_leading_terms

    grid = delta_grid(samples)
    return {
        "delta_grid": {"samples": samples, "lo": grid[0], "hi": grid[-1]},
        "lemmas": {
            stage: {
                "lo": lemma_leading_terms(stage, grid[0]),
                "hi": lemma_leading_terms(stage, grid[-1]),
            }
            for stage in LEMMA_STAGES
        },
    }
