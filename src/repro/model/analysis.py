"""Cost analysis utilities: time breakdowns and algorithm crossovers.

Downstream users ask two questions the paper's asymptotics answer only
implicitly:

* *where does the time go?* — :func:`time_breakdown` splits a measured (or
  modeled) cost into its γF / βW / νQ / αS components for a machine;
* *when does the communication-avoiding solver win?* — :func:`crossover_p`
  finds the processor count beyond which Theorem IV.4's modeled time beats a
  baseline's on a given machine (the practical content of Table I).
"""

from __future__ import annotations

from typing import Callable

from repro.bsp.counters import CostReport
from repro.bsp.params import MachineParams
from repro.model.costs import (
    AsymptoticCost,
    eigensolver_2p5d_cost,
    elpa_cost,
    scalapack_cost,
)


def time_breakdown(
    cost: CostReport | AsymptoticCost, params: MachineParams
) -> dict[str, float]:
    """Split modeled time into its four components (absolute and shares)."""
    parts = {
        "compute": params.gamma * cost.F,
        "horizontal": params.beta * cost.W,
        "vertical": params.nu * cost.Q,
        "synchronization": params.alpha * cost.S,
    }
    total = sum(parts.values())
    out = dict(parts)
    out["total"] = total
    for k, v in parts.items():
        out[f"{k}_share"] = v / total if total > 0 else 0.0
    return out


def dominant_component(cost: CostReport | AsymptoticCost, params: MachineParams) -> str:
    """Name of the largest time component ('compute', 'horizontal', ...)."""
    bd = time_breakdown(cost, params)
    return max(
        ("compute", "horizontal", "vertical", "synchronization"), key=lambda k: bd[k]
    )


BASELINES: dict[str, Callable[[int, int], AsymptoticCost]] = {
    "scalapack": lambda n, p: scalapack_cost(n, p),
    "elpa": lambda n, p: elpa_cost(n, p),
}


def crossover_p(
    n: int,
    params: MachineParams,
    baseline: str = "scalapack",
    delta: float = 2.0 / 3.0,
    p_max: int = 1 << 22,
) -> int | None:
    """Smallest power-of-two p at which the 2.5D solver's modeled time beats
    the baseline's, or None if it never does up to ``p_max``.

    The 2.5D solver trades α and ν for β, so on bandwidth-dominated machines
    the crossover comes early; on latency-dominated machines it may never
    come (exactly Section V's tuning discussion).
    """
    if baseline not in BASELINES:
        raise ValueError(f"unknown baseline {baseline!r}; choose from {sorted(BASELINES)}")
    base_fn = BASELINES[baseline]
    p = 2
    while p <= p_max and p <= n:
        t_ours = eigensolver_2p5d_cost(n, p, delta).time(params)
        t_base = base_fn(n, p).time(params)
        if t_ours < t_base:
            return p
        p *= 2
    return None


def speedup_curve(
    n: int,
    params: MachineParams,
    baseline: str = "scalapack",
    delta: float = 2.0 / 3.0,
    p_values: tuple[int, ...] = (64, 256, 1024, 4096, 16384),
) -> list[tuple[int, float]]:
    """(p, baseline_time / ours_time) pairs across a p sweep (model)."""
    if baseline not in BASELINES:
        raise ValueError(f"unknown baseline {baseline!r}")
    base_fn = BASELINES[baseline]
    out = []
    for p in p_values:
        t_ours = eigensolver_2p5d_cost(n, p, delta).time(params)
        t_base = base_fn(n, p).time(params)
        out.append((p, t_base / t_ours))
    return out
