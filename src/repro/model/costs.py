"""The paper's cost bounds as explicit functions.

Every lemma/theorem in Sections III–IV states a BSP cost of the form
``O(γ·F + β·W + ν·Q + α·S)`` with a memory footprint ``M``.  This module
encodes them (leading terms, unit constants) so tests can check measured
costs against predictions and the tuning module can optimize parameters.

All functions return an :class:`AsymptoticCost`; log factors are included
where the paper states them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bsp.params import MachineParams


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


@dataclass(frozen=True)
class AsymptoticCost:
    """Leading-order cost terms (unit constants) of an algorithm."""

    flops: float  # F
    words: float  # W (horizontal)
    mem_traffic: float  # Q (vertical)
    supersteps: float  # S
    memory: float  # M per processor

    @property
    def F(self) -> float:  # noqa: N802
        return self.flops

    @property
    def W(self) -> float:  # noqa: N802
        return self.words

    @property
    def Q(self) -> float:  # noqa: N802
        return self.mem_traffic

    @property
    def S(self) -> float:  # noqa: N802
        return self.supersteps

    @property
    def M(self) -> float:  # noqa: N802
        return self.memory

    def time(self, params: MachineParams) -> float:
        return params.time(self.flops, self.words, self.mem_traffic, self.supersteps)

    def __add__(self, other: "AsymptoticCost") -> "AsymptoticCost":
        return AsymptoticCost(
            self.flops + other.flops,
            self.words + other.words,
            self.mem_traffic + other.mem_traffic,
            self.supersteps + other.supersteps,
            max(self.memory, other.memory),
        )


# --------------------------------------------------------------------- #
# Section III building blocks


def carma_cost(m: int, n: int, k: int, p: int, v: float = 1.0) -> AsymptoticCost:
    """Lemma III.2: rectangular matmul in any load-balanced layout."""
    sizes = m * n + n * k + m * k
    return AsymptoticCost(
        flops=2.0 * m * n * k / p,
        words=sizes / p + v ** (1.0 / 3.0) * (m * n * k / p) ** (2.0 / 3.0),
        mem_traffic=sizes / p,
        supersteps=v * _log2(p),
        memory=sizes / p + (m * n * k / (v * p)) ** (2.0 / 3.0),
    )


def streaming_mm_cost(m: int, n: int, k: int, p: int, delta: float, w: float = 1.0,
                      a_in_cache: bool = True) -> AsymptoticCost:
    """Lemma III.3: multiplication against a replicated m×n operand."""
    pd = p**delta
    q = p ** (1.0 - delta)
    extra_q = 0.0 if a_in_cache else w * m * n / q**2
    return AsymptoticCost(
        flops=2.0 * m * n * k / p,
        words=(m * k + n * k) / pd,
        mem_traffic=(m * k + n * k) / pd + extra_q,
        supersteps=w,
        memory=m * n / q**2 + (m * k + n * k) / (w * pd),
    )


def square_qr_cost(n: int, p: int, delta: float) -> AsymptoticCost:
    """Lemma III.5: QR of an n×n matrix (Tiskin-style)."""
    pd = p**delta
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / pd,
        mem_traffic=n * n / pd,
        supersteps=pd,
        memory=(n / p ** (1.0 - delta)) ** 2,
    )


def rect_qr_cost(m: int, n: int, p: int, delta: float = 0.5) -> AsymptoticCost:
    """Theorem III.6: QR of an m×n matrix (m ≥ n) via Algorithm III.2."""
    pd = p**delta
    lg = _log2(p)
    return AsymptoticCost(
        flops=2.0 * m * n * n / p,
        words=m**delta * n ** (2.0 - delta) / pd + m * n / p,
        mem_traffic=m**delta * n ** (2.0 - delta) / pd + m * n / p,
        supersteps=(n * p / m) ** delta * lg * lg,
        memory=(n**delta * m ** (1.0 - delta) / p ** (1.0 - delta)) ** 2,
    )


# --------------------------------------------------------------------- #
# Section IV reductions


def full_to_band_cost(n: int, p: int, delta: float, b: int,
                      cache_words: float = math.inf) -> AsymptoticCost:
    """Lemma IV.1: 2.5D full-to-band reduction to band-width b."""
    pd = p**delta
    q2 = p ** (2.0 * (1.0 - delta))
    lg = _log2(p)
    extra_q = 0.0 if cache_words > 3.0 * n * n / q2 else (n / b) * n * n / q2
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / pd,
        mem_traffic=n * n / pd + extra_q,
        supersteps=pd * lg * lg,
        memory=n * n / q2,
    )


def ca_sbr_halve_cost(n: int, b: int, p: int) -> AsymptoticCost:
    """Lemma IV.2: CA-SBR band halving (b ≤ n/p)."""
    return AsymptoticCost(
        flops=2.0 * n * n * b / p,
        words=float(n * b),
        mem_traffic=n * n / p,
        supersteps=float(p),
        memory=n * b / p,
    )


def band_to_band_cost(n: int, b: int, k: int, p: int, delta: float) -> AsymptoticCost:
    """Lemma IV.3: 2.5D band-to-band reduction from b to b/k (b ≥ n/p)."""
    pd = p**delta
    lg = _log2(p)
    return AsymptoticCost(
        flops=2.0 * n * n * b / p,
        words=n ** (1.0 + delta) * b ** (1.0 - delta) / pd,
        mem_traffic=n ** (1.0 + delta) * b ** (1.0 - delta) / pd,
        supersteps=k**delta * n ** (1.0 - delta) * pd / b ** (1.0 - delta) * lg,
        memory=(n ** (1.0 - delta) * b**delta / p ** (1.0 - delta)) ** 2,
    )


def eigensolver_2p5d_cost(n: int, p: int, delta: float = 0.5,
                          cache_words: float = math.inf) -> AsymptoticCost:
    """Theorem IV.4: the complete 2.5D symmetric eigensolver."""
    pd = p**delta
    lg = _log2(p)
    q2 = p ** (2.0 * (1.0 - delta))
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / pd,
        mem_traffic=n * n * lg / pd,
        supersteps=pd * lg * lg,
        memory=n * n / q2,
    )


# --------------------------------------------------------------------- #
# Table I baselines


def scalapack_cost(n: int, p: int, cache_words: float = math.inf) -> AsymptoticCost:
    """Table I row 1: ScaLAPACK-style direct tridiagonalization."""
    lg = _log2(p)
    small_cache = cache_words < n * n / p
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / math.sqrt(p),
        mem_traffic=(n**3 / p) if small_cache else (n * n / math.sqrt(p)),
        supersteps=n * lg,
        memory=n * n / p,
    )


def elpa_cost(n: int, p: int) -> AsymptoticCost:
    """Table I row 2: ELPA two-stage reduction."""
    lg = _log2(p)
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / math.sqrt(p),
        mem_traffic=n * n / math.sqrt(p),
        supersteps=n * lg,
        memory=n * n / p,
    )


def ca_sbr_eigensolver_cost(n: int, p: int) -> AsymptoticCost:
    """Table I row 3: CA-SBR eigensolver."""
    lg = _log2(p)
    lgn = _log2(n)
    return AsymptoticCost(
        flops=2.0 * n**3 / p,
        words=n * n / math.sqrt(p),
        mem_traffic=n * n * lgn / math.sqrt(p),
        supersteps=math.sqrt(p) * (lg * lg + lgn),
        memory=n * n / p,
    )


# --------------------------------------------------------------------- #
# symbolic leading terms (consumed by repro.lint.certify)

#: stages with machine-checkable certificates; each maps a metric to the
#: leading terms of its lemma as {symbol: exponent} monomials, where the
#: ``p`` exponent may depend on delta.  Sub-leading terms are omitted: the
#: certifier compares leading-term degrees only.
LEMMA_STAGES: tuple[str, ...] = (
    "streaming_mm",
    "carma",
    "rect_qr",
    "square_qr",
    "full_to_band",
    "ca_sbr_halve",
    "band_to_band",
    "eigensolver_2p5d",
)


def lemma_leading_terms(stage: str, delta: float) -> dict[str, list[dict[str, float]]]:
    """Leading terms of a stage's lemma, as exponent maps per metric.

    ``{"flops": [{"n": 3, "p": -1}], "words": [{"n": 2, "p": -delta}]}``
    means F = O(n^3/p) and W = O(n^2/p^delta).  The exponent maps mirror
    the closed forms of the ``*_cost`` functions above (a consistency the
    test suite cross-checks by finite-difference log-slopes).
    """
    d = float(delta)
    table: dict[str, dict[str, list[dict[str, float]]]] = {
        "streaming_mm": {
            "flops": [{"m": 1, "n": 1, "k": 1, "p": -1}],
            "words": [{"m": 1, "k": 1, "p": -d}, {"n": 1, "k": 1, "p": -d}],
        },
        "carma": {
            "flops": [{"m": 1, "n": 1, "k": 1, "p": -1}],
            "words": [
                {"m": 1, "n": 1, "p": -1},
                {"n": 1, "k": 1, "p": -1},
                {"m": 1, "k": 1, "p": -1},
                {"m": 2 / 3, "n": 2 / 3, "k": 2 / 3, "p": -2 / 3},
            ],
        },
        "rect_qr": {
            "flops": [{"m": 1, "n": 2, "p": -1}],
            "words": [{"m": d, "n": 2 - d, "p": -d}, {"m": 1, "n": 1, "p": -1}],
        },
        "square_qr": {
            "flops": [{"n": 3, "p": -1}],
            "words": [{"n": 2, "p": -d}],
        },
        "full_to_band": {
            "flops": [{"n": 3, "p": -1}],
            "words": [{"n": 2, "p": -d}],
        },
        "ca_sbr_halve": {
            "flops": [{"n": 2, "b": 1, "p": -1}],
            "words": [{"n": 1, "b": 1}],
        },
        "band_to_band": {
            "flops": [{"n": 2, "b": 1, "p": -1}],
            "words": [{"n": 1 + d, "b": 1 - d, "p": -d}],
        },
        "eigensolver_2p5d": {
            "flops": [{"n": 3, "p": -1}],
            "words": [{"n": 2, "p": -d}],
        },
    }
    if stage not in table:
        raise KeyError(f"unknown lemma stage {stage!r} (known: {', '.join(LEMMA_STAGES)})")
    return table[stage]


def delta_to_c(p: int, delta: float) -> float:
    """Replication factor c = p^{2δ−1}."""
    return p ** (2.0 * delta - 1.0)


def c_to_delta(p: int, c: float) -> float:
    """δ such that c = p^{2δ−1} (δ = 1/2 when p = 1 or c = 1)."""
    if p <= 1 or c <= 1:
        return 0.5
    return 0.5 * (1.0 + math.log(c) / math.log(p))
