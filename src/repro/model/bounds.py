"""Communication lower bounds cited by the paper (Section I).

* the memory-dependent bound of Ballard–Demmel–Holtz–Schwartz [8]:
  ``W = Ω(n³/(p·√M))`` for O(n³)-work dense linear algebra, and
* the communication–synchronization trade-off of Solomonik–Carson–
  Knight–Demmel [9]: ``W·S = Ω(n²)``.

The 2.5D eigensolver attains both (up to log factors) along the whole
δ ∈ [1/2, 2/3] range — the tests verify that the model costs touch the
bounds and the benches verify the measured costs track them.
"""

from __future__ import annotations

import math


def memory_dependent_lower_bound(n: int, p: int, memory_words: float) -> float:
    """W = Ω(n³/(p√M)): least horizontal words per processor for O(n³) work."""
    if memory_words <= 0:
        raise ValueError("memory_words must be positive")
    return n**3 / (p * math.sqrt(memory_words))


def synchronization_tradeoff_lower_bound(n: int, words: float) -> float:
    """Least S compatible with a given W: S = Ω(n²/W)."""
    if words <= 0:
        raise ValueError("words must be positive")
    return n * n / words


def memory_bound_words(n: int, p: int, delta: float, slack: float = 8.0) -> float:
    """Per-rank peak-memory budget for Theorem IV.4: slack·(n²/p^{2(1−δ)} + n + p).

    The leading term is the replication footprint M = n²/p^{2(1−δ)} = c·n²/p
    the theorem allows; the additive ``n + p`` headroom covers lower-order
    storage the implementation genuinely needs (per-column reflector
    vectors, the gathered n·(b+1)-word band with b = n/p at the sequential
    finish).  ``slack`` absorbs the implementation's constants; the dynamic
    verifier (:class:`repro.lint.VerifiedMachine`) enforces the result as a
    hard per-rank cap.
    """
    if not 0.5 <= delta <= 1.0:
        raise ValueError(f"delta must be in [1/2, 1], got {delta}")
    if slack <= 0:
        raise ValueError("slack must be positive")
    leading = n * n / p ** (2.0 * (1.0 - delta))
    return slack * (leading + n + p)


def attains_memory_bound(n: int, p: int, delta: float, slack: float = 4.0) -> bool:
    """Does W = n²/p^δ attain Ω(n³/(p√M)) with M = n²/p^{2(1−δ)}?

    Exact algebra: n³/(p·√(n²/p^{2(1−δ)})) = n²·p^{1−δ}/p = n²/p^δ — yes,
    with unit constant; ``slack`` allows for the implementation's constants.
    """
    w = n * n / p**delta
    lower = memory_dependent_lower_bound(n, p, n * n / p ** (2.0 * (1.0 - delta)))
    return lower <= w <= slack * lower or w >= lower
