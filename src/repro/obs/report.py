"""The gated ``telemetry.json`` document: build, write, load, check.

The document is a *fully deterministic* digest of one telemetry-enabled
pass of the pinned serve workload: event-log counts and a sha256 of the
canonical JSONL lines, compact gauge summaries (count/last/max plus a
per-series digest), counters, per-SLO-class latency sketches, and the
breaker/hedge chronologies verbatim.  Every field is a pure function of
the seeded workload, so :func:`check_telemetry` gates with **exact
equality** — any drift means the service's observable behavior changed
and the baseline must be recommitted deliberately (the same contract as
the simulated sections of ``BENCH_serve.json``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.bench import BenchError

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry

SCHEMA_VERSION = 1

#: default fresh-results location (the committed baseline lives under
#: benchmarks/results/ like metrics_eig_n96_p16.json)
DEFAULT_TELEMETRY_PATH = Path("benchmarks") / "results" / "telemetry.json"

#: top-level sections compared with exact equality by the gate
GATED_SECTIONS = (
    "config", "events", "counters", "gauges", "latency_sketches",
    "solver", "slo", "timeline", "breaker_chronology", "hedge_chronology",
)


def _slo_section(telemetry: "Telemetry") -> dict[str, Any]:
    """Per-SLO-class deadline hit rates from the terminal events."""
    out: dict[str, dict[str, Any]] = {}
    for e in telemetry.events_of("terminal"):
        entry = out.setdefault(
            str(e["slo"]), {"jobs": 0, "deadline_hits": 0, "shed": 0}
        )
        entry["jobs"] += 1
        entry["deadline_hits"] += int(bool(e["deadline_hit"]))
        entry["shed"] += int(e["disposition"] == "shed")
    for entry in out.values():
        entry["hit_rate"] = (
            entry["deadline_hits"] / entry["jobs"] if entry["jobs"] else 0.0
        )
    return dict(sorted(out.items()))


def build_telemetry_doc(
    telemetry: "Telemetry", config: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The gated document of one telemetry capture."""
    lines = telemetry.event_log_lines()
    by_kind: dict[str, int] = {}
    for e in telemetry.events:
        by_kind[e["ev"]] = by_kind.get(e["ev"], 0) + 1
    log_digest = hashlib.sha256(
        "".join(line + "\n" for line in lines).encode()
    ).hexdigest()
    series = telemetry.series.as_dict()
    span_events = sum(len(v["events"]) for v in telemetry.solver.values())
    return {
        "version": SCHEMA_VERSION,
        "config": dict(config or {}),
        "events": {
            "count": len(lines),
            "by_kind": dict(sorted(by_kind.items())),
            "digest": log_digest,
        },
        "counters": series["counters"],
        "gauges": series["gauges"],
        "latency_sketches": {
            slo: telemetry.sketches[slo].as_dict()
            for slo in sorted(telemetry.sketches)
        },
        "solver": {
            "attempts_with_spans": len(telemetry.solver),
            "span_events": span_events,
        },
        "slo": _slo_section(telemetry),
        # the flight-recorder dashboard's raw material: attempt spans for
        # the machine-lane timeline plus the queue-depth change points —
        # deterministic, so it gates with the rest
        "timeline": {
            "attempts": telemetry.attempt_spans(),
            "queue_depth": [
                [t, v]
                for t, v in (
                    telemetry.series.gauges["queue_depth"].samples
                    if "queue_depth" in telemetry.series.gauges
                    else []
                )
            ],
            "machines": sorted(
                {s["machine"] for s in telemetry.attempt_spans()}
            ),
        },
        "breaker_chronology": telemetry.events_of("breaker"),
        "hedge_chronology": telemetry.events_of("hedge_scheduled", "hedge_fire"),
    }


def check_telemetry(
    fresh: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Gate failures of a fresh telemetry doc vs the baseline ([] = pass).

    Everything is deterministic, so every section compares exactly; the
    failure text names the drifted section (and for the event log, the
    per-kind counts) so a deliberate behavior change is easy to audit
    before recommitting.
    """
    failures: list[str] = []
    if fresh.get("version") != baseline.get("version"):
        return [
            f"telemetry schema version {fresh.get('version')} != baseline "
            f"{baseline.get('version')} — regenerate the baseline"
        ]
    for section in GATED_SECTIONS:
        f, b = fresh.get(section), baseline.get(section)
        if f == b:
            continue
        detail = ""
        if section == "events" and isinstance(f, dict) and isinstance(b, dict):
            if f.get("by_kind") != b.get("by_kind"):
                detail = (
                    f": event counts by kind {b.get('by_kind')!r} -> "
                    f"{f.get('by_kind')!r}"
                )
            else:
                detail = ": same per-kind counts but the event log bytes differ"
        failures.append(
            f"telemetry drift in {section}{detail} (deterministic — the "
            "service's observable behavior changed; recommit deliberately)"
        )
    return failures


def write_telemetry(doc: dict[str, Any], path: Path | str) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return out


def load_telemetry(path: Path | str) -> dict[str, Any]:
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(
            f"no telemetry baseline at {path}; create one with "
            f"`repro serve-bench --telemetry-out {path}`"
        )
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BenchError(f"telemetry baseline {path} is unreadable: {exc}") from exc


def render_telemetry(doc: dict[str, Any]) -> str:
    """One-paragraph console rendering of a telemetry document."""
    ev = doc.get("events", {})
    sketches = doc.get("latency_sketches", {})
    lines = [
        f"telemetry: {ev.get('count', 0)} lifecycle events "
        f"({', '.join(f'{k}:{v}' for k, v in ev.get('by_kind', {}).items())})",
        f"solver spans: {doc.get('solver', {}).get('span_events', 0)} events "
        f"across {doc.get('solver', {}).get('attempts_with_spans', 0)} attempts",
    ]
    for slo, sk in sketches.items():
        q = sk.get("quantiles", {})
        lines.append(
            f"latency[{slo}]: n={sk.get('count', 0)} "
            f"p50={q.get('p50', 0.0):.3g} p95={q.get('p95', 0.0):.3g} "
            f"p99={q.get('p99', 0.0):.3g} max={sk.get('max', 0.0):.3g}"
        )
    if doc.get("breaker_chronology"):
        lines.append(f"breaker transitions: {len(doc['breaker_chronology'])}")
    if doc.get("hedge_chronology"):
        lines.append(f"hedge events: {len(doc['hedge_chronology'])}")
    return "\n".join(lines)
