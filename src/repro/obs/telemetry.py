"""Unified service telemetry: job-lifecycle events in simulated time.

One :class:`Telemetry` instance rides through a service run
(:meth:`repro.serve.service.EigenService.run_workload` →
:func:`repro.serve.resilience.run_resilient`) and records

* a **structured event log**: every lifecycle transition (``submit`` →
  ``plan`` → ``dispatch`` → ``attempt_end`` / ``retry_scheduled`` /
  ``hedge_scheduled`` / ``breaker`` → ``terminal`` or ``shed``) as one
  dict stamped with its simulated time ``t`` and a total-order ``seq``;
* a :class:`~repro.obs.series.SeriesRegistry` of counters and
  change-only gauges (queue depth, per-machine busy ranks and breaker
  state, cache hit counts) sampled at event-loop steps;
* per-SLO-class latency :class:`~repro.metrics.sketch.LatencySketch`\\ es;
* captured **solver spans**: when ``capture_solver_spans`` is on, each
  job attempt's :class:`~repro.bsp.machine.BSPMachine` runs with span
  recording enabled and its :class:`~repro.trace.spans.SpanEvent` tree is
  attached under the owning ``(job, attempt)`` trace context, letting the
  merged Perfetto export (:mod:`repro.obs.perfetto`) nest solver tracks
  under service attempt slices via flow events.

Everything is driven by the simulated clock — no wall time, no PIDs, no
randomness — so two runs of the same seeded workload produce
byte-identical event logs (gated by ``tests/test_obs.py``).

Like spans (``NULL_SPAN``), faults (``NO_FAULTS``) and metrics
(``NO_METRICS``), the disabled path is an inert singleton:
:data:`NO_TELEMETRY` answers every hook with a constant-time no-op and
``enabled`` is False, so a telemetry-off service run executes the exact
pre-telemetry code path (byte-identical ``BENCH_serve.json``, journals,
and pinned traces).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.metrics.sketch import LatencySketch
from repro.obs.series import SeriesRegistry

#: breaker-state gauge encoding (docs/observability.md "Service telemetry")
BREAKER_STATE_CODES = {"closed": 0, "half-open": 1, "open": 2}

#: every event kind the serve layer emits, in lifecycle order
EVENT_KINDS = (
    "submit",
    "plan",
    "shed",
    "dispatch",
    "attempt_end",
    "retry_scheduled",
    "retry_fire",
    "hedge_scheduled",
    "hedge_fire",
    "breaker",
    "terminal",
)


class NoTelemetry:
    """Inert telemetry: every hook is a no-op (the default everywhere)."""

    __slots__ = ()
    enabled = False
    capture_solver_spans = False

    def emit(self, ev: str, t: float, **fields: object) -> None:
        pass

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, t: float, value: float) -> None:
        pass

    def observe_latency(self, slo: str, value: float) -> None:
        pass

    def attach_solver_spans(
        self, job: str, attempt: int, p: int, events: Iterable[dict]
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "NO_TELEMETRY"


#: shared inert instance — identity-comparable, like NO_FAULTS / NO_METRICS
NO_TELEMETRY = NoTelemetry()


class Telemetry:
    """Live telemetry collector for one service run.

    ``capture_solver_spans`` controls whether job solves run with span
    recording enabled (costs and spectra are byte-identical either way —
    the batched chase engine's per-step fallback charges identically — but
    wall-clock is slower, so soak runs turn it off).
    """

    enabled = True

    def __init__(self, capture_solver_spans: bool = True):
        self.capture_solver_spans = capture_solver_spans
        #: structured lifecycle events in emission order
        self.events: list[dict] = []
        self.series = SeriesRegistry()
        #: per-SLO-class latency sketches (terminal latencies, shed excluded)
        self.sketches: dict[str, LatencySketch] = {}
        #: trace context "job:attempt" -> {"p": ..., "events": [span dicts]}
        self.solver: dict[str, dict] = {}
        self._seq = 0

    # -------------------------------------------------------------- #
    # recording hooks (called from repro.serve)

    def emit(self, ev: str, t: float, **fields: object) -> None:
        """Record one lifecycle event at simulated time ``t``."""
        rec: dict = {"ev": ev, "t": float(t), "seq": self._seq}
        self._seq += 1
        rec.update(fields)
        self.events.append(rec)

    def counter(self, name: str, value: float = 1.0) -> None:
        self.series.counter_inc(name, value)

    def gauge(self, name: str, t: float, value: float) -> None:
        self.series.gauge(name, t, value)

    def observe_latency(self, slo: str, value: float) -> None:
        sk = self.sketches.get(slo)
        if sk is None:
            sk = self.sketches[slo] = LatencySketch()
        sk.observe(value)

    def attach_solver_spans(
        self, job: str, attempt: int, p: int, events: Iterable[dict]
    ) -> None:
        """Bind a solve's span events to its ``(job, attempt)`` context.

        Idempotent: memoized solves can surface the same attempt twice
        (e.g. a hedge landing on an identical plan); the first attach wins
        and repeats carry identical data by construction.
        """
        key = f"{job}:{attempt}"
        if key in self.solver:
            return
        self.solver[key] = {"p": int(p), "events": list(events)}
        self.counter("solver_span_captures")
        self.counter("solver_spans", float(len(self.solver[key]["events"])))

    # -------------------------------------------------------------- #
    # views

    def events_of(self, *kinds: str) -> list[dict]:
        want = set(kinds)
        return [e for e in self.events if e["ev"] in want]

    def event_log_lines(self) -> list[str]:
        """One canonical JSON line per event (sorted keys, repr floats) —
        the byte-comparable determinism artifact."""
        return [json.dumps(e, sort_keys=True) for e in self.events]

    def write_event_log(self, path: Path | str) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text("".join(line + "\n" for line in self.event_log_lines()))
        return out

    def attempt_spans(self) -> list[dict]:
        """Service-level attempt spans derived from dispatch events: one
        per (job, attempt, kind) with machine placement and [start, finish]
        in simulated time.  The raw material for the merged Perfetto trace
        and the dashboard timeline."""
        spans = []
        for e in self.events:
            if e["ev"] != "dispatch":
                continue
            spans.append(
                {
                    "job": e["job"],
                    "attempt": e["attempt"],
                    "kind": e["kind"],
                    "rung": e["rung"],
                    "p": e["p"],
                    "machine": e["machine"],
                    "probe": e["probe"],
                    "ok": e["ok"],
                    "start": e["t"],
                    "finish": e["finish"],
                }
            )
        return spans

    def __repr__(self) -> str:
        return (
            f"Telemetry(events={len(self.events)}, "
            f"gauges={len(self.series.gauges)}, solver={len(self.solver)})"
        )


def read_event_log(path: Path | str) -> list[dict]:
    """Load a JSONL event log written by :meth:`Telemetry.write_event_log`."""
    events = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
